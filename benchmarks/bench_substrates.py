"""Substrate microbenchmarks: GP fit, BO suggestion, council step, tree fit.

Not tied to a specific paper figure — these track the cost of the pieces
the experiments are assembled from, so performance regressions surface
in review rather than as a mysteriously slow Fig. 9 sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import CloudInsight, walk_forward
from repro.bayesopt import BayesianOptimizer
from repro.core import search_space_for
from repro.gp import GaussianProcessRegressor, Matern52
from repro.ml import RandomForestRegressor


@pytest.fixture(scope="module")
def gp_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, (60, 4))
    y = np.sin(4 * X[:, 0]) + X[:, 1] * 0.5 + 0.05 * rng.standard_normal(60)
    return X, y


def test_gp_fit_with_hyperopt(benchmark, gp_data):
    X, y = gp_data

    def fit():
        gp = GaussianProcessRegressor(
            kernel=Matern52(ard=True, n_dims=4), n_restarts=1, seed=0
        )
        return gp.fit(X, y)

    gp = benchmark.pedantic(fit, rounds=3, iterations=1)
    assert gp.is_fitted


def test_bo_suggestion_cost(benchmark, gp_data):
    """Cost of one GP-backed suggestion after 20 observed trials."""
    space = search_space_for("gl", "reduced")
    bo = BayesianOptimizer(space, n_initial=5, seed=0)
    rng = np.random.default_rng(1)
    for cfg in space.sample(rng, 20):
        bo.tell(cfg, float(rng.uniform(5, 50)))

    cfg = benchmark(bo.suggest)
    space.validate(cfg)


def test_cloudinsight_interval_cost(benchmark):
    """Per-interval cost of the 21-expert council on a 400-point history."""
    rng = np.random.default_rng(2)
    series = np.maximum(100 + 20 * rng.standard_normal(400).cumsum() * 0.1, 10)
    ci = CloudInsight(profile="fast")
    walk_forward(ci, series, 380, 390)  # warm the council

    def one_interval():
        ci.fit(series[:395])
        return ci.predict_next(series[:395])

    value = benchmark.pedantic(one_interval, rounds=3, iterations=1)
    assert np.isfinite(value)


def test_random_forest_fit_cost(benchmark):
    rng = np.random.default_rng(3)
    X = rng.uniform(0, 1, (400, 8))
    y = rng.uniform(0, 1, 400)

    def fit():
        return RandomForestRegressor(n_estimators=10, max_depth=10, seed=0).fit(X, y)

    model = benchmark.pedantic(fit, rounds=3, iterations=1)
    assert model.predict(X[:5]).shape == (5,)
