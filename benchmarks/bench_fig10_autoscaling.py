"""Fig. 10 — the auto-scaling case study (Azure 60-min, scaled JARs).

Paper shape: LoadDynamics-driven auto-scaling beats the Wood et al.
predictor decisively on turnaround and both provisioning rates, and
reduces VM over-provisioning versus CloudInsight (paper: 4.8% less).
The oracle policy bounds all predictors from below.

Known deviation (recorded in EXPERIMENTS.md): with our synthetic Azure
trace CloudInsight's MAPE deficit versus LoadDynamics is ~2 points
(paper: >4), and its positive prediction bias hedges cold starts, so the
paper's turnaround/under-provisioning win over CloudInsight does not
fully reproduce; the over-provisioning and total-accuracy wins do.
"""

from __future__ import annotations

from benchmarks.conftest import bench_max_eval
from repro.experiments import format_table, run_fig10


def test_fig10_autoscaling(benchmark):
    rows = benchmark.pedantic(
        run_fig10, kwargs={"max_eval": bench_max_eval()}, rounds=1, iterations=1
    )
    print("\n[Fig. 10] auto-scaling on Azure-60m (JARs scaled down):")
    print(
        format_table(
            rows,
            columns=[
                "policy",
                "mean_turnaround_seconds",
                "underprovision_rate_pct",
                "overprovision_rate_pct",
                "vm_hours",
            ],
        )
    )

    by = {r["policy"]: r for r in rows}
    ld, ci, wood = by["loaddynamics"], by["cloudinsight"], by["wood"]
    oracle = by["oracle"]

    # vs Wood: LoadDynamics wins all three panels (paper: 38.1% faster,
    # 10 pts less under-, 17.2 pts less over-provisioning).
    assert ld["mean_turnaround_seconds"] < wood["mean_turnaround_seconds"]
    assert ld["underprovision_rate_pct"] < wood["underprovision_rate_pct"]
    assert ld["overprovision_rate_pct"] < wood["overprovision_rate_pct"]

    # vs CloudInsight: the over-provisioning reduction reproduces
    # (paper: 4.8 pts lower).
    assert ld["overprovision_rate_pct"] < ci["overprovision_rate_pct"]

    # Oracle lower-bounds every policy.
    for r in rows:
        assert (
            r["mean_turnaround_seconds"]
            >= oracle["mean_turnaround_seconds"] - 1e-9
        )
        assert r["vm_hours"] >= oracle["vm_hours"] - 1e-9
