"""Fig. 9 — the headline result: LoadDynamics vs all baselines on the 14
workload configurations.

Paper shape to reproduce (Section IV-B):

* LoadDynamics has the lowest *average* MAPE of the framework baselines
  (paper: 18% vs 24.7/32.1/32.5);
* LoadDynamics lands within a few points of the brute-force-searched
  LSTM (paper: within 1%);
* errors rise at smaller intervals for the small-JAR traces (FB);
* Wikipedia is the easiest workload (paper: ~1%).

Budgets are reduced (maxIters=12 vs paper 100; truncated brute force);
see DESIGN.md §6 and benchmarks/conftest.py for the environment knobs.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table


def test_fig9_accuracy_comparison(benchmark, fig9_result):
    # fig9_result is session-cached; benchmark times the (cheap) summary
    # assembly while the heavy sweep cost is reported by the fixture run.
    avg = benchmark.pedantic(fig9_result.average_row, rounds=1, iterations=1)
    rows = fig9_result.rows + [avg]
    print("\n[Fig. 9] MAPE (%) per workload configuration:")
    print(format_table(rows))

    methods = ("cloudinsight", "cloudscale", "wood")
    # Headline: LoadDynamics wins on average against every framework baseline.
    for m in methods:
        assert avg["loaddynamics"] < avg[m], (
            f"LoadDynamics average {avg['loaddynamics']:.2f}% not below "
            f"{m} {avg[m]:.2f}%"
        )
    # Near-brute-force claim: within 5 points under the truncated budget
    # (paper: within 1% under a 1-day-to-6-week exhaustive search).
    if "lstm_bruteforce" in avg and np.isfinite(avg["lstm_bruteforce"]):
        assert avg["loaddynamics"] <= avg["lstm_bruteforce"] + 5.0

    by = {r["workload"]: r for r in fig9_result.rows}
    # Wikipedia is the easiest trace for LoadDynamics.
    wiki_keys = [k for k in by if k.startswith("wiki")]
    other_keys = [k for k in by if not k.startswith("wiki")]
    if wiki_keys and other_keys:
        best_wiki = min(by[k]["loaddynamics"] for k in wiki_keys)
        assert best_wiki <= min(by[k]["loaddynamics"] for k in other_keys)
    # Small intervals are harder for the small-JAR Facebook trace.
    if "fb-5m" in by and "fb-10m" in by:
        assert by["fb-5m"]["loaddynamics"] >= 0.8 * by["fb-10m"]["loaddynamics"]
