"""Ablations — BO vs random vs grid search; EI vs PI vs LCB.

Paper Section III-A: grid search was less effective than BO; random
search matched BO's accuracy but took longer to find its best (here both
cost the same per trial, so we report the iteration at which the best
configuration was found).  DESIGN.md §7 adds the acquisition ablation.
"""

from __future__ import annotations

from repro.core import FrameworkSettings
from repro.experiments import format_table, run_acquisition_ablation, run_search_ablation


def test_search_strategy_ablation(benchmark):
    rows = benchmark.pedantic(
        run_search_ablation,
        kwargs={
            "workload": "gl-30m",
            "budget": "reduced",
            "n_iters": 12,
            "max_eval": 150,
        },
        rounds=1,
        iterations=1,
    )
    print("\n[Ablation §III-A] hyperparameter search strategies on gl-30m:")
    print(format_table(rows))

    by = {r["optimizer"]: r for r in rows}
    # BO must be competitive with random search (paper: similar accuracy)
    # and no worse than grid under the same budget (paper: grid weaker).
    assert by["bayesian"]["val_mape"] <= 1.5 * by["random"]["val_mape"] + 2.0
    assert by["bayesian"]["val_mape"] <= by["grid"]["val_mape"] + 2.0


def test_acquisition_ablation(benchmark):
    rows = benchmark.pedantic(
        run_acquisition_ablation,
        kwargs={
            "workload": "gl-30m",
            "budget": "reduced",
            "n_iters": 10,
            "settings": FrameworkSettings.reduced(max_iters=10),
            "max_eval": 150,
        },
        rounds=1,
        iterations=1,
    )
    print("\n[Ablation DESIGN §7] acquisition functions on gl-30m:")
    print(format_table(rows))

    assert [r["acquisition"] for r in rows] == ["ei", "pi", "lcb"]
    vals = [r["val_mape"] for r in rows]
    # All three must find a workable model; EI (the paper's choice) must
    # not be grossly dominated.
    assert max(vals) < 100.0
    assert vals[0] <= min(vals) * 2.0 + 2.0
