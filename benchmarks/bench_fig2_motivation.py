"""Fig. 2 — motivation: prior predictors on three dissimilar workloads.

Paper shape: no prior technique stays accurate on *all* of Google,
Facebook and Wikipedia; techniques built for seasonal web workloads
(CloudScale, Wood) degrade on the data-center traces.
"""

from __future__ import annotations

from benchmarks.conftest import bench_max_eval
from repro.experiments import format_table, run_fig2


def test_fig2_prior_predictors(benchmark):
    rows = benchmark.pedantic(
        run_fig2, kwargs={"max_eval": bench_max_eval()}, rounds=1, iterations=1
    )
    print("\n[Fig. 2] MAPE (%) of prior predictive methodologies:")
    print(format_table(rows))

    by = {r["workload"]: r for r in rows}
    # Every prior technique is far worse on the bursty Facebook trace
    # than on seasonal Wikipedia (the generality gap the paper motivates).
    for method in ("cloudinsight", "cloudscale", "wood"):
        assert by["fb-10m"][method] > 2.0 * by["wiki-30m"][method]
    # At least one technique exceeds 50% somewhere (paper: "none ...
    # can always achieve less than 50% error for all workloads").
    worst = max(r[m] for r in rows for m in ("cloudinsight", "cloudscale", "wood"))
    assert worst > 50.0
