"""Section IV-B latency claim — "less than 4.78 ms" per inference.

Trains one representative predictor on the Google 30-minute workload,
then benchmarks the deployed one-step-ahead path
(:meth:`LoadDynamicsPredictor.predict_next`) and the batched test-window
path.  Also microbenchmarks the raw LSTM forward pass and a training
step, the substrate costs everything else inherits.

Every measurement is recorded through :mod:`repro.obs` metrics under
``bench.inference.*`` and the module dumps a machine-readable
``BENCH_inference.json`` artifact at the repo root — the perf
trajectory future optimization PRs diff against.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core import FrameworkSettings, LoadDynamics, search_space_for
from repro.nn import LSTMRegressor
from repro.traces import get_configuration

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_inference.json"


def _record(name: str, benchmark) -> None:
    """Mirror pytest-benchmark stats into the obs metrics registry."""
    stats = benchmark.stats
    hist = obs.histogram(f"bench.inference.{name}_ms")
    for key in ("min", "mean", "max"):
        hist.observe(stats[key] * 1e3)
    obs.gauge(f"bench.inference.{name}_mean_ms").set(stats["mean"] * 1e3)


@pytest.fixture(scope="module", autouse=True)
def bench_artifact():
    """Write the ``bench.inference.*`` metrics to BENCH_inference.json."""
    yield
    report = obs.summary()
    metrics = {
        name: snap
        for name, snap in report["metrics"].items()
        if name.startswith("bench.inference.")
    }
    if not metrics:
        return
    ARTIFACT.write_text(
        json.dumps({"schema": report["schema"], "metrics": metrics}, indent=2)
        + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="module")
def deployed():
    series = get_configuration("gl-30m").load()
    ld = LoadDynamics(
        space=search_space_for("gl", "reduced"),
        settings=FrameworkSettings.reduced(max_iters=6, epochs=20),
    )
    predictor, _ = ld.fit(series)
    return predictor, series


def test_predict_next_latency(benchmark, deployed):
    predictor, series = deployed
    value = benchmark(predictor.predict_next, series)
    assert np.isfinite(value)
    _record("predict_next", benchmark)
    mean_ms = benchmark.stats["mean"] * 1e3
    print(f"\n[§IV-B] one-step inference: {mean_ms:.3f} ms "
          f"(paper claims < 4.78 ms)")
    assert mean_ms < 4.78 * 5  # generous CI-machine allowance


def test_batched_prediction_throughput(benchmark, deployed):
    predictor, series = deployed
    start = len(series) - 150
    preds = benchmark(predictor.predict_series, series, start)
    assert preds.shape == (150,)
    _record("predict_series_150", benchmark)
    per_interval_ms = benchmark.stats["mean"] * 1e3 / 150
    obs.gauge("bench.inference.predict_series_per_interval_ms").set(per_interval_ms)
    print(f"\n[§IV-B] batched inference: {per_interval_ms:.4f} ms/interval")


def test_lstm_forward_microbench(benchmark, rng_seed=3):
    rng = np.random.default_rng(rng_seed)
    model = LSTMRegressor(hidden_size=32, num_layers=2, seed=0)
    x = rng.standard_normal((64, 48, 1))
    out = benchmark(model.predict, x)
    assert out.shape == (64,)
    _record("lstm_forward_64x48", benchmark)


def test_lstm_training_step_microbench(benchmark):
    rng = np.random.default_rng(4)
    x = rng.standard_normal((128, 24, 1))
    y = rng.standard_normal(128)

    def one_epoch():
        model = LSTMRegressor(hidden_size=16, num_layers=1, seed=0)
        model.fit(x, y, epochs=1, batch_size=32, lr=1e-3)
        return model

    benchmark.pedantic(one_epoch, rounds=3, iterations=1)
    _record("train_epoch_128x24", benchmark)
