"""Section IV-B latency claim — "less than 4.78 ms" per inference.

Trains one representative predictor on the Google 30-minute workload,
then benchmarks the deployed one-step-ahead path
(:meth:`LoadDynamicsPredictor.predict_next`) and the batched test-window
path.  Also microbenchmarks the raw LSTM forward pass and a training
step, the substrate costs everything else inherits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FrameworkSettings, LoadDynamics, search_space_for
from repro.nn import LSTMRegressor
from repro.traces import get_configuration


@pytest.fixture(scope="module")
def deployed():
    series = get_configuration("gl-30m").load()
    ld = LoadDynamics(
        space=search_space_for("gl", "reduced"),
        settings=FrameworkSettings.reduced(max_iters=6, epochs=20),
    )
    predictor, _ = ld.fit(series)
    return predictor, series


def test_predict_next_latency(benchmark, deployed):
    predictor, series = deployed
    value = benchmark(predictor.predict_next, series)
    assert np.isfinite(value)
    mean_ms = benchmark.stats["mean"] * 1e3
    print(f"\n[§IV-B] one-step inference: {mean_ms:.3f} ms "
          f"(paper claims < 4.78 ms)")
    assert mean_ms < 4.78 * 5  # generous CI-machine allowance


def test_batched_prediction_throughput(benchmark, deployed):
    predictor, series = deployed
    start = len(series) - 150
    preds = benchmark(predictor.predict_series, series, start)
    assert preds.shape == (150,)
    per_interval_ms = benchmark.stats["mean"] * 1e3 / 150
    print(f"\n[§IV-B] batched inference: {per_interval_ms:.4f} ms/interval")


def test_lstm_forward_microbench(benchmark, rng_seed=3):
    rng = np.random.default_rng(rng_seed)
    model = LSTMRegressor(hidden_size=32, num_layers=2, seed=0)
    x = rng.standard_normal((64, 48, 1))
    out = benchmark(model.predict, x)
    assert out.shape == (64,)


def test_lstm_training_step_microbench(benchmark):
    rng = np.random.default_rng(4)
    x = rng.standard_normal((128, 24, 1))
    y = rng.standard_normal(128)

    def one_epoch():
        model = LSTMRegressor(hidden_size=16, num_layers=1, seed=0)
        model.fit(x, y, epochs=1, batch_size=32, lr=1e-3)
        return model

    benchmark.pedantic(one_epoch, rounds=3, iterations=1)
