"""Section IV-B latency claim — "less than 4.78 ms" per inference.

Trains one representative predictor on the Google 30-minute workload,
then benchmarks the deployed one-step-ahead path
(:meth:`LoadDynamicsPredictor.predict_next`) and the batched test-window
path.  Also microbenchmarks the raw LSTM forward pass, the substrate
cost everything else inherits.  (Training-side timings live in
``bench_training_latency.py`` / ``BENCH_training.json``.)

Every measurement runs through explicit warm-up rounds first — the
first calls pay one-off costs (scratch-buffer allocation, numpy
internals, page faults) that are not steady-state latency — and enough
measured rounds that the recorded percentiles reflect the hot path
rather than allocator noise.

Every measurement is recorded through :mod:`repro.obs` metrics under
``bench.inference.*`` and the module dumps a machine-readable
``BENCH_inference.json`` artifact at the repo root — the perf
trajectory future optimization PRs diff against.

Set ``REPRO_BENCH_QUICK=1`` for a fast smoke run (fewer rounds, tiny
training budget) — used by the CI perf-smoke stage.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core import FrameworkSettings, LoadDynamics, search_space_for
from repro.nn import LSTMRegressor
from repro.traces import get_configuration

# Redirectable so smoke runs don't clobber the committed perf trajectory.
ARTIFACT = Path(
    os.environ.get(
        "REPRO_BENCH_ARTIFACT_DIR", Path(__file__).resolve().parent.parent
    )
) / "BENCH_inference.json"

#: Quick mode: enough rounds to exercise the path and validate the
#: artifact schema, nowhere near enough for stable percentiles.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
WARMUP_ROUNDS = 2 if QUICK else 10
ROUNDS = 5 if QUICK else 50


def _record(name: str, benchmark) -> None:
    """Mirror pytest-benchmark stats into the obs metrics registry."""
    stats = benchmark.stats
    hist = obs.histogram(f"bench.inference.{name}_ms")
    for key in ("min", "mean", "max"):
        hist.observe(stats[key] * 1e3)
    obs.gauge(f"bench.inference.{name}_mean_ms").set(stats["mean"] * 1e3)
    obs.gauge(f"bench.inference.{name}_min_ms").set(stats["min"] * 1e3)


@pytest.fixture(scope="module", autouse=True)
def bench_artifact():
    """Write the ``bench.inference.*`` metrics to BENCH_inference.json."""
    yield
    report = obs.summary()
    metrics = {
        name: snap
        for name, snap in report["metrics"].items()
        if name.startswith("bench.inference.")
    }
    if not metrics:
        return
    ARTIFACT.write_text(
        json.dumps({"schema": report["schema"], "metrics": metrics}, indent=2)
        + "\n",
        encoding="utf-8",
    )


@pytest.fixture(scope="module")
def deployed():
    series = get_configuration("gl-30m").load()
    budget = "tiny" if QUICK else "reduced"
    ld = LoadDynamics(
        space=search_space_for("gl", budget),
        settings=FrameworkSettings.reduced(
            max_iters=2 if QUICK else 6, epochs=4 if QUICK else 20
        ),
    )
    predictor, _ = ld.fit(series)
    return predictor, series


def test_predict_next_latency(benchmark, deployed):
    predictor, series = deployed
    value = benchmark.pedantic(
        predictor.predict_next,
        args=(series,),
        warmup_rounds=WARMUP_ROUNDS,
        rounds=ROUNDS,
        iterations=5,
    )
    assert np.isfinite(value)
    _record("predict_next", benchmark)
    mean_ms = benchmark.stats["mean"] * 1e3
    print(f"\n[§IV-B] one-step inference: {mean_ms:.3f} ms "
          f"(paper claims < 4.78 ms)")
    assert mean_ms < 4.78 * 5  # generous CI-machine allowance


def test_batched_prediction_throughput(benchmark, deployed):
    predictor, series = deployed
    start = len(series) - 150
    preds = benchmark.pedantic(
        predictor.predict_series,
        args=(series, start),
        warmup_rounds=WARMUP_ROUNDS,
        rounds=ROUNDS,
        iterations=1,
    )
    assert preds.shape == (150,)
    _record("predict_series_150", benchmark)
    # Steady-state per-interval cost from the fastest warmed round: on a
    # shared CI machine the mean folds in scheduler preemption — noise,
    # not signal (the same skew the warm-up rounds exist to exclude; cf.
    # timeit's guidance to take the min over repetitions).  The full
    # distribution stays visible via predict_series_150_{mean,min}_ms.
    per_interval_ms = benchmark.stats["min"] * 1e3 / 150
    obs.gauge("bench.inference.predict_series_per_interval_ms").set(per_interval_ms)
    print(f"\n[§IV-B] batched inference: {per_interval_ms:.4f} ms/interval "
          f"(steady-state, min over {ROUNDS} rounds)")


def test_lstm_forward_microbench(benchmark, rng_seed=3):
    rng = np.random.default_rng(rng_seed)
    model = LSTMRegressor(hidden_size=32, num_layers=2, seed=0)
    x = rng.standard_normal((64, 48, 1))
    out = benchmark.pedantic(
        model.predict,
        args=(x,),
        warmup_rounds=WARMUP_ROUNDS,
        rounds=max(ROUNDS // 2, 3),
        iterations=1,
    )
    assert out.shape == (64,)
    _record("lstm_forward_64x48", benchmark)
