"""Fig. 5 — LSTM hyperparameter sensitivity on the Google workload.

Paper shape: across 100 hyperparameter combinations the best and worst
MAPE differ by ~3x — the case for automatic per-workload tuning.  The
bench samples ``REPRO_BENCH_FIG5_MODELS`` (default 30) combinations from
the reduced Table III space; the spread ratio is checked, not the count.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core import FrameworkSettings
from repro.experiments import run_fig5


def test_fig5_hyperparameter_spread(benchmark):
    n_models = int(os.environ.get("REPRO_BENCH_FIG5_MODELS", "30"))
    out = benchmark.pedantic(
        run_fig5,
        kwargs={
            "n_models": n_models,
            "workload": "gl-30m",
            "budget": "reduced",
            "settings": FrameworkSettings.reduced(max_iters=1, epochs=20),
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    print(
        f"\n[Fig. 5] {out['n_feasible']} LSTM models on gl-30m: "
        f"min={out['min']:.2f}%  median={out['median']:.2f}%  "
        f"max={out['max']:.2f}%  spread={out['spread_ratio']:.1f}x"
    )
    deciles = np.percentile(out["mapes_sorted"], [0, 25, 50, 75, 100])
    print("         quartiles:", np.round(deciles, 2))

    assert out["n_feasible"] >= max(10, n_models // 2)
    # The paper reports a ~3x spread over 100 combos of the full Table III
    # space.  Under the reduced space and our trace's ~14% noise floor the
    # measured spread is ~1.9x (recorded in EXPERIMENTS.md); require 1.5x —
    # hyperparameter choice must still change the error substantially.
    assert out["spread_ratio"] >= 1.5
