"""Training-side timings — the companion of ``bench_inference_latency``.

Covers the two costs the search loop actually pays per trial:

* one training epoch of the cached (BPTT) forward/backward path — the
  unit of work ``LoadDynamics`` repeats ``epochs x trials`` times;
* one full ``LoadDynamics.fit`` on a real workload, serial and (when
  the machine has the cores for it) with ``n_workers=4``, so the
  artifact tracks the end-to-end search wall-clock and the parallel
  speedup over time.

Measurements land on ``bench.training.*`` metrics and are dumped to a
machine-readable ``BENCH_training.json`` at the repo root.  Set
``REPRO_BENCH_QUICK=1`` for a fast smoke run (CI perf-smoke stage).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.core import FrameworkSettings, LoadDynamics, search_space_for
from repro.nn import LSTMRegressor
from repro.traces import get_configuration

# Redirectable so smoke runs don't clobber the committed perf trajectory.
ARTIFACT = Path(
    os.environ.get(
        "REPRO_BENCH_ARTIFACT_DIR", Path(__file__).resolve().parent.parent
    )
) / "BENCH_training.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
WARMUP_ROUNDS = 1 if QUICK else 3
ROUNDS = 3 if QUICK else 10


def _record(name: str, benchmark) -> None:
    stats = benchmark.stats
    hist = obs.histogram(f"bench.training.{name}_ms")
    for key in ("min", "mean", "max"):
        hist.observe(stats[key] * 1e3)
    obs.gauge(f"bench.training.{name}_mean_ms").set(stats["mean"] * 1e3)
    obs.gauge(f"bench.training.{name}_min_ms").set(stats["min"] * 1e3)


@pytest.fixture(scope="module", autouse=True)
def bench_artifact():
    """Write the ``bench.training.*`` metrics to BENCH_training.json."""
    yield
    report = obs.summary()
    metrics = {
        name: snap
        for name, snap in report["metrics"].items()
        if name.startswith("bench.training.")
    }
    if not metrics:
        return
    ARTIFACT.write_text(
        json.dumps({"schema": report["schema"], "metrics": metrics}, indent=2)
        + "\n",
        encoding="utf-8",
    )


def test_train_epoch_microbench(benchmark):
    """One epoch of the cached forward + BPTT + Adam step."""
    rng = np.random.default_rng(4)
    x = rng.standard_normal((128, 24, 1))
    y = rng.standard_normal(128)

    def one_epoch():
        model = LSTMRegressor(hidden_size=16, num_layers=1, seed=0)
        model.fit(x, y, epochs=1, batch_size=32, lr=1e-3)
        return model

    benchmark.pedantic(
        one_epoch, warmup_rounds=WARMUP_ROUNDS, rounds=ROUNDS, iterations=1
    )
    _record("train_epoch_128x24", benchmark)


def _fit_settings() -> FrameworkSettings:
    return FrameworkSettings.reduced(
        max_iters=2 if QUICK else 6, epochs=4 if QUICK else 20
    )


def test_full_fit_timing():
    """End-to-end search wall-clock, serial vs ``n_workers=4``.

    One run each (a full fit is far too expensive for repeated rounds);
    the artifact records both so the speedup is diffable across PRs.
    The requested worker count is clamped to the machine's cores
    (``repro.parallel.effective_workers``), so the artifact also records
    the *effective* count — on a 1-core CI box both runs are serial and
    the speedup gauge reads ~1.0 by construction, not by regression.
    """
    from repro.parallel import effective_workers

    series = get_configuration("gl-30m").load()
    budget = "tiny" if QUICK else "reduced"

    def run(n_workers):
        ld = LoadDynamics(
            space=search_space_for("gl", budget), settings=_fit_settings()
        )
        t0 = time.perf_counter()
        _, report = ld.fit(series, n_workers=n_workers)
        return time.perf_counter() - t0, report

    serial_s, report = run(None)
    obs.gauge("bench.training.full_fit_serial_s").set(serial_s)
    obs.gauge("bench.training.full_fit_n_trials").set(float(report.n_trials))
    assert report.n_trials > 0

    parallel_s, preport = run(4)
    workers = effective_workers(4)
    obs.gauge("bench.training.full_fit_parallel4_s").set(parallel_s)
    obs.gauge("bench.training.full_fit_parallel4_speedup").set(
        serial_s / parallel_s if parallel_s > 0 else 0.0
    )
    obs.gauge("bench.training.full_fit_workers_effective").set(float(workers))
    assert preport.n_trials == report.n_trials
    print(
        f"\nfull fit: serial {serial_s:.1f}s, n_workers=4 {parallel_s:.1f}s "
        f"({serial_s / parallel_s:.2f}x, {workers} effective workers)"
    )
