"""Architecture ablation — LSTM vs GRU cells (DESIGN.md §7).

The paper commits to LSTM; related work (Section VI) uses "LSTM or
LSTM-variants".  This bench trains both cell types with identical
hyperparameters on the Google 30-minute workload and compares
cross-validation MAPE and training cost.  Expected: comparable accuracy
with the GRU training faster (25% fewer parameters per layer).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import MinMaxScaler, make_windows, windows_for_range
from repro.metrics import mape
from repro.nn import LSTMRegressor
from repro.traces import get_configuration


def _prepare(workload: str = "gl-30m", n: int = 24):
    series = get_configuration(workload).load()
    i_train = int(0.6 * len(series))
    i_val = int(0.8 * len(series))
    scaler = MinMaxScaler().fit(series[:i_train])
    scaled = scaler.transform(series)
    X_train, y_train = make_windows(scaled[:i_train], n)
    X_val, y_val = windows_for_range(scaled, n, i_train, i_val)
    return scaler, X_train, y_train, X_val, y_val


def test_lstm_vs_gru_cell(benchmark):
    scaler, X_train, y_train, X_val, y_val = _prepare()
    results = {}

    def train_both():
        out = {}
        for cell in ("lstm", "gru"):
            model = LSTMRegressor(hidden_size=16, num_layers=1, seed=0, cell=cell)
            t0 = time.perf_counter()
            model.fit(
                X_train, y_train,
                epochs=20, batch_size=32, lr=1e-3,
                validation=(X_val, y_val), patience=20,
            )
            seconds = time.perf_counter() - t0
            pred = np.maximum(scaler.inverse_transform(model.predict(X_val)), 0.0)
            actual = scaler.inverse_transform(y_val)
            out[cell] = (mape(pred, actual), seconds, model.n_params())
        return out

    results = benchmark.pedantic(train_both, rounds=1, iterations=1)
    lstm_mape, lstm_s, lstm_p = results["lstm"]
    gru_mape, gru_s, gru_p = results["gru"]
    print(
        f"\n[Ablation: cell] LSTM {lstm_mape:.2f}% ({lstm_s:.1f}s, {lstm_p} params) "
        f"vs GRU {gru_mape:.2f}% ({gru_s:.1f}s, {gru_p} params)"
    )
    assert gru_p < lstm_p
    # Both must be in the workable band; neither should collapse.
    assert lstm_mape < 60.0 and gru_mape < 60.0
    # Comparable accuracy: within 2x of each other.
    assert max(lstm_mape, gru_mape) < 2.0 * min(lstm_mape, gru_mape) + 2.0
