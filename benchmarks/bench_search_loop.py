"""Search-loop latency: incremental surrogate vs per-tell refits.

The perf pass replaced the O(n^3) surrogate refit after every ``tell``
with an O(n^2) rank-1 Cholesky append and the scalar L-BFGS-B polish
with a batched candidate sweep.  This bench pins both claims:

1. **Tell latency** (``test_incremental_tell_speedup``): at n=200
   observations, mean :meth:`GaussianProcessRegressor.update` latency
   must be at least **3x** lower than a from-scratch
   ``fit(optimize=False)`` at the same sizes — while the two posteriors
   stay within ``rtol=1e-9`` of each other (speed that changes the
   answer is not speed).  Asserted in full mode; quick mode validates
   the harness at toy sizes.
2. **Loop latency** (``test_bo_loop_latency``): p50 wall-clock of
   ``suggest`` and ``tell`` over a closed incremental+sweep BO loop on
   the paper's default space — the per-iteration overhead LoadDynamics
   pays on top of model training.  The default (per-suggest refit +
   polish) loop is timed alongside for the comparison row.

Every measurement lands under ``bench.search.*`` and is dumped to
``BENCH_search.json``.  Set ``REPRO_BENCH_QUICK=1`` for the CI smoke.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.bayesopt import BayesianOptimizer
from repro.core.config import search_space_for
from repro.gp import GaussianProcessRegressor, Matern52

ARTIFACT = Path(
    os.environ.get(
        "REPRO_BENCH_ARTIFACT_DIR", Path(__file__).resolve().parent.parent
    )
) / "BENCH_search.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
#: Observation count at which tell latency is measured (the acceptance
#: criterion's n=200), and appends averaged over.
N_BASE = 60 if QUICK else 200
N_APPENDS = 8 if QUICK else 25
#: Iterations of the closed BO loops.
N_LOOP = 12 if QUICK else 40


@pytest.fixture(scope="module", autouse=True)
def bench_artifact():
    """Write the ``bench.search.*`` metrics to BENCH_search.json."""
    yield
    report = obs.summary()
    metrics = {
        name: snap
        for name, snap in report["metrics"].items()
        if name.startswith("bench.search.")
    }
    if not metrics:
        return
    ARTIFACT.write_text(
        json.dumps({"schema": report["schema"], "metrics": metrics}, indent=2)
        + "\n",
        encoding="utf-8",
    )


def _surrogate_like_data(n: int, d: int = 6, seed: int = 0):
    """Observations shaped like a BO history: unit-cube X, bounded y."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, d))
    y = np.sum((X - 0.37) ** 2, axis=1) + 0.05 * rng.normal(size=n)
    return X, y


def test_incremental_tell_speedup():
    """Rank-1 append >= 3x faster than per-tell refit at n=200, same answer."""
    n_total = N_BASE + N_APPENDS
    X, y = _surrogate_like_data(n_total)
    perf = time.perf_counter

    def make_gp():
        return GaussianProcessRegressor(
            kernel=Matern52(ard=True, n_dims=X.shape[1], lengthscale=0.3),
            noise=1e-4,
            optimize=False,
        )

    inc = make_gp()
    inc.fit(X[:N_BASE], y[:N_BASE])
    update_s = []
    for i in range(N_BASE, n_total):
        t0 = perf()
        inc.update(X[i], y[i])
        update_s.append(perf() - t0)

    refit_s = []
    ref = None
    for i in range(N_BASE, n_total):
        ref = make_gp()
        t0 = perf()
        ref.fit(X[: i + 1], y[: i + 1])
        refit_s.append(perf() - t0)

    # Parity first: both paths must describe the same posterior.
    rng = np.random.default_rng(99)
    Xq = rng.uniform(size=(64, X.shape[1]))
    mu_i, sd_i = inc.predict(Xq, return_std=True)
    mu_r, sd_r = ref.predict(Xq, return_std=True)
    scale = float(np.max(np.abs(y)))
    np.testing.assert_allclose(mu_i, mu_r, rtol=1e-9, atol=1e-9 * scale)
    np.testing.assert_allclose(sd_i, sd_r, rtol=1e-9, atol=1e-12)

    t_update = float(np.mean(update_s))
    t_refit = float(np.mean(refit_s))
    speedup = t_refit / t_update
    obs.gauge("bench.search.tell_update_ms_mean").set(t_update * 1e3)
    obs.gauge("bench.search.tell_refit_ms_mean").set(t_refit * 1e3)
    obs.gauge("bench.search.tell_speedup").set(speedup)
    print(f"\n[search-loop] tell at n={N_BASE}: rank-1 {t_update*1e3:.3f} ms "
          f"vs refit {t_refit*1e3:.3f} ms = {speedup:.1f}x")
    if not QUICK:
        assert speedup >= 3.0, (
            f"rank-1 tell is only {speedup:.2f}x faster than a full refit "
            f"at n={N_BASE} (required: 3x)"
        )


def _timed_loop(**bo_kwargs) -> tuple[list[float], list[float]]:
    """Run a closed BO loop, returning per-call suggest/tell seconds."""
    space = search_space_for("default", "paper")
    opt = BayesianOptimizer(space, seed=17, **bo_kwargs)
    perf = time.perf_counter
    suggest_s: list[float] = []
    tell_s: list[float] = []
    for _ in range(N_LOOP):
        t0 = perf()
        config = opt.suggest()
        suggest_s.append(perf() - t0)
        u = space.to_unit(config)
        value = float(np.sum((u - 0.42) ** 2) + 0.03 * np.sum(np.cos(7.0 * u)))
        t0 = perf()
        opt.tell(config, value)
        tell_s.append(perf() - t0)
    return suggest_s, tell_s


def test_bo_loop_latency():
    """p50 suggest/tell latency of the incremental+sweep loop (+ default)."""
    inc_suggest, inc_tell = _timed_loop(incremental=True)
    def_suggest, def_tell = _timed_loop()

    p50 = lambda xs: float(np.percentile(xs, 50)) * 1e3  # noqa: E731
    obs.gauge("bench.search.suggest_ms_p50").set(p50(inc_suggest))
    obs.gauge("bench.search.tell_ms_p50").set(p50(inc_tell))
    obs.gauge("bench.search.default_suggest_ms_p50").set(p50(def_suggest))
    obs.gauge("bench.search.default_tell_ms_p50").set(p50(def_tell))
    obs.gauge("bench.search.loop_iters").set(float(N_LOOP))
    print(f"\n[search-loop] incremental loop: suggest p50 "
          f"{p50(inc_suggest):.2f} ms, tell p50 {p50(inc_tell):.3f} ms "
          f"(default: {p50(def_suggest):.2f} / {p50(def_tell):.3f} ms)")
