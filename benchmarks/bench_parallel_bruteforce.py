"""Extension bench — parallel brute-force search scaling.

The paper's brute-force baseline ran for up to six weeks on a 16-core
Xeon; the work is embarrassingly parallel over hyperparameter
combinations.  This bench verifies the parallel sweep (a) selects the
same winner as the serial sweep (determinism across worker counts) and
(b) reports the wall-clock for both so scaling regressions are visible.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core import FrameworkSettings, search_space_for
from repro.core.bruteforce import brute_force_search
from repro.traces import get_configuration


def test_parallel_bruteforce_consistency(benchmark):
    series = get_configuration("fb-10m").load()
    space = search_space_for("fb", "tiny")
    settings = FrameworkSettings.tiny(epochs=10)
    kwargs = dict(points_per_dim=2, max_trials=12)

    t0 = time.perf_counter()
    serial = brute_force_search(series, space, settings, n_workers=1, **kwargs)
    serial_s = time.perf_counter() - t0

    workers = min(os.cpu_count() or 1, 4)

    def parallel_run():
        return brute_force_search(series, space, settings, n_workers=workers, **kwargs)

    parallel = benchmark.pedantic(parallel_run, rounds=1, iterations=1)
    parallel_s = benchmark.stats["mean"]

    print(
        f"\n[brute force] {serial.n_evaluated} trials: serial {serial_s:.1f}s, "
        f"{workers}-worker {parallel_s:.1f}s"
    )
    assert parallel.best_hyperparameters == serial.best_hyperparameters
    assert parallel.best_validation_mape == serial.best_validation_mape
    assert np.isfinite(parallel.best_validation_mape)
