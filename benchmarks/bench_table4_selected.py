"""Table IV — min/max of the hyperparameters LoadDynamics selected.

Paper shape: selected values vary widely across workloads (hence manual
tuning is impractical) and sit below the search-space maxima (hence the
space is large enough).  Derived from the same fit reports as Fig. 9.
"""

from __future__ import annotations

from repro.core import search_space_for
from repro.experiments import format_table, run_table4


def test_table4_selected_hyperparameters(benchmark, fig9_result):
    rows = benchmark.pedantic(run_table4, args=(fig9_result,), rounds=1, iterations=1)
    print("\n[Table IV] BO-selected hyperparameter ranges per trace:")
    print(format_table(rows))

    # Every selected value must lie inside the (reduced) search space.
    for row in rows:
        space = search_space_for(row["workload"], "reduced")
        for field in ("history_len", "cell_size", "num_layers", "batch_size"):
            lo, hi = (int(v) for v in row[field].split("-"))
            param = space[field]
            assert param.low <= lo <= hi <= param.high, (row["workload"], field)

    # High variation across workloads: at least two traces picked
    # different history lengths (the paper's Table IV point).
    if len(rows) >= 2:
        ranges = {r["history_len"] for r in rows}
        assert len(ranges) >= 2
