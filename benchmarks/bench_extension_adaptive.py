"""Extension bench — online adaptive modeling (paper Section V).

The paper leaves drift adaptation as future work; DESIGN.md §7 includes
it in the extension scope.  Scenario: a workload whose pattern flips
mid-stream (level x5, period halved).  A frozen LoadDynamics predictor
trained before the flip must degrade; the adaptive variant must detect
the drift, re-run the optimization, and recover.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import walk_forward
from repro.bayesopt import IntParam, SearchSpace
from repro.core import AdaptiveLoadDynamics, FrameworkSettings, LoadDynamics
from repro.metrics import mape


def _regime_change_series(seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t1 = np.arange(240)
    a = 100 + 30 * np.sin(2 * np.pi * t1 / 24) + rng.normal(0, 2, 240)
    t2 = np.arange(240)
    b = 500 + 150 * np.sin(2 * np.pi * t2 / 12) + rng.normal(0, 10, 240)
    return np.concatenate([a, b])


def test_adaptive_recovers_from_pattern_change(benchmark):
    series = _regime_change_series()
    # A space wide enough to cover both seasonal periods (24 and 12).
    space = SearchSpace(
        [
            IntParam("history_len", 1, 24, log=True),
            IntParam("cell_size", 2, 12),
            IntParam("num_layers", 1, 1),
            IntParam("batch_size", 8, 32, log=True),
        ]
    )
    settings = FrameworkSettings.tiny(max_iters=4, epochs=25)

    frozen, _ = LoadDynamics(space=space, settings=settings).fit(series[:240])

    def run_adaptive():
        adaptive = AdaptiveLoadDynamics(
            space=space,
            settings=settings,
            drift_window=8,
            drift_factor=2.0,
            min_refit_gap=25,
            max_history=200,
        )
        preds = walk_forward(adaptive, series, 200, refit_every=1)
        return adaptive, preds

    adaptive, preds = benchmark.pedantic(run_adaptive, rounds=1, iterations=1)

    eval_start = 420  # the recovery phase (refit windows now mostly new data)
    adaptive_mape = mape(preds[eval_start - 200 :], series[eval_start:])
    frozen_mape = mape(frozen.predict_series(series, eval_start), series[eval_start:])
    print(
        f"\n[§V extension] post-drift MAPE: adaptive={adaptive_mape:.2f}% "
        f"(refits={adaptive.n_refits}) vs frozen={frozen_mape:.2f}%"
    )
    assert adaptive.n_refits >= 2, "drift was never detected"
    assert adaptive_mape < 0.5 * frozen_mape, (
        "adaptation must at least halve the frozen predictor's error"
    )
