"""Fig. 1 / Fig. 8 — trace shapes.

The paper's first two figures just *display* the five traces; the
checkable content is their qualitative statistics (magnitude, burstiness,
seasonality).  This bench regenerates those rows and times trace
generation + aggregation (the substrate every experiment touches).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table
from repro.traces import TRACE_NAMES, get_trace


def _shape_rows() -> list[dict]:
    rows = []
    for name in TRACE_NAMES:
        trace = get_trace(name)
        jars = trace.at_interval(30 if name != "fb" else 5)
        x = jars - jars.mean()
        lag = 48 if name != "fb" else 12
        ac = float(np.dot(x[:-lag], x[lag:]) / np.dot(x, x)) if len(x) > lag else 0.0
        rows.append(
            {
                "trace": name,
                "category": trace.category,
                "minutes": trace.minutes,
                "mean_jar": float(jars.mean()),
                "cv": float(jars.std() / jars.mean()),
                "daily_autocorr": ac,
            }
        )
    return rows


def test_fig1_fig8_trace_shapes(benchmark):
    rows = benchmark.pedantic(_shape_rows, rounds=1, iterations=1)
    print("\n[Fig. 1/8] synthetic trace shapes:")
    print(format_table(rows))

    by = {r["trace"]: r for r in rows}
    # Wikipedia: millions of requests, strong seasonality (paper Fig. 1b).
    assert by["wiki"]["mean_jar"] > 1e6
    assert by["wiki"]["daily_autocorr"] > 0.5
    # Google: large JARs, weak seasonality (paper Fig. 1a).
    assert by["gl"]["mean_jar"] > 1e5
    assert by["gl"]["daily_autocorr"] < by["wiki"]["daily_autocorr"]
    # Facebook: single day, highly fluctuating (paper Fig. 1c).
    assert by["fb"]["minutes"] == 1440
    assert by["fb"]["cv"] > 0.5
    # Azure / LCG: small-to-moderate JARs (Table I narrative).
    assert by["az"]["mean_jar"] < by["gl"]["mean_jar"]
    assert by["lcg"]["cv"] > 0.4


def test_trace_generation_throughput(benchmark):
    """Microbench: regenerate + aggregate the Google trace."""
    from repro.traces.synthetic import google_trace

    def build():
        return google_trace(days=7, seed=123).at_interval(30)

    jars = benchmark(build)
    assert len(jars) == 7 * 48
