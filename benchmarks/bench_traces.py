"""Fig. 1 / Fig. 8 — trace shapes.

The paper's first two figures just *display* the five traces; the
checkable content is their qualitative statistics (magnitude, burstiness,
seasonality).  This bench regenerates those rows and times trace
generation + aggregation (the substrate every experiment touches), plus
the multichannel ``mv`` generator the multivariate pipeline runs on.
Generation rates land in ``bench.traces.*`` gauges dumped to
``BENCH_traces.json`` (informational — not ratio-checked by
``scripts/check_bench.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.experiments import format_table
from repro.traces import TRACE_NAMES, correlated_trace, get_trace

ARTIFACT = Path(
    os.environ.get(
        "REPRO_BENCH_ARTIFACT_DIR", Path(__file__).resolve().parent.parent
    )
) / "BENCH_traces.json"


@pytest.fixture(scope="module", autouse=True)
def bench_artifact():
    """Write the ``bench.traces.*`` metrics to BENCH_traces.json."""
    yield
    report = obs.summary()
    metrics = {
        name: snap
        for name, snap in report["metrics"].items()
        if name.startswith("bench.traces.")
    }
    if not metrics:
        return
    ARTIFACT.write_text(
        json.dumps({"schema": report["schema"], "metrics": metrics}, indent=2)
        + "\n",
        encoding="utf-8",
    )


def _shape_rows() -> list[dict]:
    rows = []
    for name in TRACE_NAMES:
        trace = get_trace(name)
        jars = trace.at_interval(30 if name != "fb" else 5)
        x = jars - jars.mean()
        lag = 48 if name != "fb" else 12
        ac = float(np.dot(x[:-lag], x[lag:]) / np.dot(x, x)) if len(x) > lag else 0.0
        rows.append(
            {
                "trace": name,
                "category": trace.category,
                "minutes": trace.minutes,
                "mean_jar": float(jars.mean()),
                "cv": float(jars.std() / jars.mean()),
                "daily_autocorr": ac,
            }
        )
    return rows


def test_fig1_fig8_trace_shapes(benchmark):
    rows = benchmark.pedantic(_shape_rows, rounds=1, iterations=1)
    print("\n[Fig. 1/8] synthetic trace shapes:")
    print(format_table(rows))

    by = {r["trace"]: r for r in rows}
    # Wikipedia: millions of requests, strong seasonality (paper Fig. 1b).
    assert by["wiki"]["mean_jar"] > 1e6
    assert by["wiki"]["daily_autocorr"] > 0.5
    # Google: large JARs, weak seasonality (paper Fig. 1a).
    assert by["gl"]["mean_jar"] > 1e5
    assert by["gl"]["daily_autocorr"] < by["wiki"]["daily_autocorr"]
    # Facebook: single day, highly fluctuating (paper Fig. 1c).
    assert by["fb"]["minutes"] == 1440
    assert by["fb"]["cv"] > 0.5
    # Azure / LCG: small-to-moderate JARs (Table I narrative).
    assert by["az"]["mean_jar"] < by["gl"]["mean_jar"]
    assert by["lcg"]["cv"] > 0.4


def test_trace_generation_throughput(benchmark):
    """Microbench: regenerate + aggregate the Google trace."""
    from repro.traces.synthetic import google_trace

    def build():
        return google_trace(days=7, seed=123).at_interval(30)

    jars = benchmark(build)
    assert len(jars) == 7 * 48


def test_multichannel_generation_throughput(benchmark):
    """Microbench: the D=3 correlated generator + per-channel aggregation.

    Emits ``bench.traces.mv_minutes_per_s`` — minutes of 3-channel trace
    generated per wall-second — so multivariate-substrate PRs can see
    whether they made trace generation slower.
    """
    days, channels = 7, ("requests", "cpu", "memory")

    def build():
        return correlated_trace(days=days, seed=123, channels=channels).at_interval(30)

    t0 = time.perf_counter()
    jars = benchmark(build)
    elapsed = time.perf_counter() - t0
    assert jars.shape == (days * 48, len(channels))
    assert np.all(np.isfinite(jars))
    # Cross-channel coupling must survive aggregation (the point of 'mv').
    corr = float(np.corrcoef(jars[:, 0], jars[:, 1])[0, 1])
    assert corr > 0.5, f"driver/follower correlation collapsed: {corr:.3f}"
    obs.gauge("bench.traces.mv_channels").set(float(len(channels)))
    obs.gauge("bench.traces.mv_minutes_per_s").set(
        days * 1440.0 * max(benchmark.stats.stats.rounds, 1) / max(elapsed, 1e-9)
    )
    obs.gauge("bench.traces.mv_channel_corr").set(corr)
