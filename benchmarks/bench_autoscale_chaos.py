"""Adversarial autoscaling benchmark: the scenario x policy matrix.

Runs :func:`repro.autoscale.scenarios.run_matrix` — predictive-only vs
reactive-only vs hybrid across steady state, flash crowds, a regime
shift, mid-run trace corruption, and injected ``nan@serve.predict`` /
``drift@serve.predict`` faults — and pins the PR's acceptance criteria:

1. **Robustness** (``test_matrix``): the hybrid controller beats
   predictive-only on under-provision rate in the flash-crowd and
   corruption scenarios (the disturbances a forecast cannot see), and
   every hybrid run completes with finite decisions — no scenario or
   fault combination may take the controller down.
2. **Robustness is near-free** (same test): in the steady-state
   scenario the hybrid's total cost stays within **15%** of
   predictive-only's — the rails/corrector must not buy safety with
   blanket over-provisioning.
3. **Zero overhead** (``test_zero_gain_passthrough``): a passthrough
   controller (gains 0, rails off, burst off) reproduces
   ``PredictivePolicy``'s schedule bit-for-bit on every scenario's
   observable stream.

The full matrix is written to ``BENCH_autoscale.json`` — the committed
artifact future autoscaling PRs diff against.  ``REPRO_BENCH_QUICK=1``
shrinks the traces for the CI ``autoscale-chaos`` stage.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

import numpy as np
import pytest

from repro.autoscale import ControllerConfig, HybridPolicy, PredictivePolicy
from repro.autoscale.scenarios import default_scenarios, run_matrix
from repro.baselines.naive import SeasonalNaivePredictor

# Redirectable so smoke runs don't clobber the committed artifact.
ARTIFACT = Path(
    os.environ.get(
        "REPRO_BENCH_ARTIFACT_DIR", Path(__file__).resolve().parent.parent
    )
) / "BENCH_autoscale.json"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
DAYS, SERVE_DAYS = (6, 3) if QUICK else (14, 7)
PERIOD = 48


@pytest.fixture(scope="module")
def matrix() -> dict:
    return run_matrix(
        default_scenarios(days=DAYS, serve_days=SERVE_DAYS, period=PERIOD),
        period=PERIOD,
    )


@pytest.fixture(scope="module", autouse=True)
def bench_artifact(matrix):
    """Write the scenario x policy matrix to BENCH_autoscale.json."""
    yield
    ARTIFACT.write_text(
        json.dumps(
            {
                "schema": 1,
                "quick": QUICK,
                "days": DAYS,
                "serve_days": SERVE_DAYS,
                "period": PERIOD,
                **matrix,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )


def test_matrix(matrix):
    """Hybrid robustness wins where it must, near-free where it must not."""
    cells = matrix["scenarios"]
    for scenario, cell in cells.items():
        for policy, row in cell["policies"].items():
            for key in ("mean_turnaround_seconds", "underprovision_rate_pct",
                        "overprovision_rate_pct", "total_cost"):
                assert math.isfinite(row[key]), f"{scenario}/{policy}: bad {key}"

    for scenario in ("flash_crowd", "corruption"):
        hybrid = cells[scenario]["policies"]["hybrid"]
        predictive = cells[scenario]["policies"]["predictive"]
        assert (
            hybrid["underprovision_rate_pct"]
            < predictive["underprovision_rate_pct"]
        ), (
            f"{scenario}: hybrid under-provision "
            f"{hybrid['underprovision_rate_pct']:.2f}% must beat predictive "
            f"{predictive['underprovision_rate_pct']:.2f}%"
        )

    steady = cells["steady"]["policies"]
    cost_ratio = steady["hybrid"]["total_cost"] / steady["predictive"]["total_cost"]
    assert cost_ratio <= 1.15, (
        f"steady-state hybrid cost is {100 * (cost_ratio - 1):+.1f}% of "
        "predictive (budget: +15%)"
    )

    # Tiered degradation is visible in provenance: the open breaker under
    # nan@serve.predict shifts hybrid decisions to the reactive tier, and
    # the silent forecast degradation latches burst mode.
    nan_ctl = cells["nan_flash"]["policies"]["hybrid"]["controller"]
    assert nan_ctl["decided_by"].get("reactive", 0) > 0
    drift_ctl = cells["drift_fault"]["policies"]["hybrid"]["controller"]
    assert drift_ctl["burst_episodes"] >= 1


def test_zero_gain_passthrough():
    """Passthrough hybrid == PredictivePolicy, bit-for-bit, everywhere."""
    for scenario in default_scenarios(days=6, serve_days=3, period=PERIOD):
        if not np.all(np.isfinite(scenario.observed)):
            continue  # PredictivePolicy has no NaN-stream contract
        predictive = PredictivePolicy(SeasonalNaivePredictor(PERIOD)).schedule(
            scenario.observed, scenario.start
        )
        hybrid = HybridPolicy(
            SeasonalNaivePredictor(PERIOD), config=ControllerConfig.passthrough()
        ).schedule(scenario.observed, scenario.start)
        assert np.array_equal(predictive, hybrid), scenario.name
