"""Serving-stream throughput and monitoring overhead.

Drives ~1M synthetic intervals through the full online pipeline —
sanitize → guard → monitor → simulate — and answers the two questions
the monitoring PR must not regress:

1. **Streaming capacity** (``test_stream_throughput``): how many
   intervals/second the monitored serving path sustains end to end,
   including trace sanitization, the guarded fallback chain, per-interval
   quality/drift/SLO scoring, and the cloud simulator replay.  Uses a
   persistence primary so the number measures the *pipeline*, not model
   inference.  The regime shift planted in the trace must latch the
   drift detectors — a throughput run that outruns its own monitoring
   would be meaningless.
2. **Monitor overhead** (``test_monitor_overhead``): the wall-clock cost
   of attaching a :class:`~repro.obs.monitor.monitor.ForecastMonitor`
   to a realistically-priced deployment (a trained LoadDynamics
   predictor behind the guard), measured as monitored vs unmonitored
   ``serve_and_simulate`` over the same trace.  Budget: **<= 10%**
   (asserted in full mode; quick mode only validates the harness).
3. **Steady-state pipeline rate** (``test_pipeline_throughput``): the
   trace arrives in chunks, as it would from a metrics scraper — each
   chunk is sanitized on arrival, every revealed interval is served
   through the guard and scored by the monitor, and the full schedule
   replays through the cloud simulator at the end.  The headline
   ``bench.serving.pipeline_intervals_per_s`` excludes the warmup chunk
   (guard fit, cold caches) so it measures the rate a long-lived
   deployment actually sustains.

4. **Checkpoint overhead** (``test_chunked_checkpoint_overhead``): the
   crash-safe streaming runtime (:class:`~repro.serving.stream.
   StreamingServer`) with atomic checkpoints every ``K=100`` chunks vs
   the same chunked run with checkpointing off.  The schedule must be
   bit-for-bit identical either way, and the durability tax is budgeted
   at **<= 10%** throughput (asserted in full mode).  Also records the
   chunked runtime's own rate, ``bench.serving.chunked_intervals_per_s``.

Every measurement is recorded under ``bench.serving.*`` and dumped to
``BENCH_serving.json`` — the artifact future serving/monitoring PRs
diff against.  Set ``REPRO_BENCH_QUICK=1`` for the CI smoke run (small
interval counts, tiny fit).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.autoscale import CloudSimulator
from repro.core import FrameworkSettings, LoadDynamics, search_space_for
from repro.obs import metrics as _metrics
from repro.obs.monitor import ForecastMonitor, SLOTracker
from repro.serving import (
    GuardedPredictor,
    StreamConfig,
    TraceSanitizer,
    serve_and_simulate,
)
from repro.baselines.naive import LastValuePredictor

# Redirectable so smoke runs don't clobber the committed perf trajectory.
ARTIFACT = Path(
    os.environ.get(
        "REPRO_BENCH_ARTIFACT_DIR", Path(__file__).resolve().parent.parent
    )
) / "BENCH_serving.json"

#: Quick mode: enough intervals to exercise every pipeline stage and
#: validate the artifact schema, nowhere near enough for stable rates.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
N_STREAM = 20_000 if QUICK else 1_000_000
N_OVERHEAD = 12_000 if QUICK else 200_000
#: Prefix the deployed predictor trains on in the overhead test.
FIT_PREFIX = 2_000


def _synthetic_trace(n: int, *, seed: int, shift_frac: float = 0.6) -> np.ndarray:
    """A noisy daily cycle with a planted regime shift and NaN gaps.

    The level shift at ``shift_frac`` is what the drift detectors must
    catch; the NaN gaps give the sanitizer real work so the measured
    pipeline includes stage one.
    """
    rng = np.random.default_rng(seed)
    x = np.arange(n, dtype=np.float64)
    trace = np.abs(np.sin(x / 288.0)) * 400.0 + 100.0 + rng.normal(0.0, 5.0, n)
    trace[int(n * shift_frac):] *= 3.0
    gaps = rng.choice(n, size=max(n // 500, 1), replace=False)
    trace[gaps] = np.nan
    return trace


@pytest.fixture(scope="module", autouse=True)
def bench_artifact():
    """Write the ``bench.serving.*`` metrics to BENCH_serving.json."""
    yield
    report = obs.summary()
    metrics = {
        name: snap
        for name, snap in report["metrics"].items()
        if name.startswith("bench.serving.")
    }
    if not metrics:
        return
    ARTIFACT.write_text(
        json.dumps({"schema": report["schema"], "metrics": metrics}, indent=2)
        + "\n",
        encoding="utf-8",
    )


def _serve(trace: np.ndarray, start: int, predictor, monitor):
    """One timed pass of the guard→monitor→simulate pipeline."""
    guarded = GuardedPredictor(predictor)
    t0 = time.perf_counter()
    report = serve_and_simulate(
        guarded, trace, start, refit_every=10**9, monitor=monitor
    )
    return time.perf_counter() - t0, report


def test_stream_throughput():
    """~1M intervals through sanitize→guard→monitor→simulate."""
    raw = _synthetic_trace(N_STREAM, seed=7)
    start = min(2_000, N_STREAM // 10)

    t0 = time.perf_counter()
    trace, san_report = TraceSanitizer(policy="interpolate").sanitize(raw)
    sanitize_s = time.perf_counter() - t0
    assert san_report.n_repaired > 0, "the planted NaN gaps must be repaired"

    monitor = ForecastMonitor(
        slo=SLOTracker(latency_slo_ms=5.0, accuracy_slo_mape=50.0)
    )
    serve_s, report = _serve(trace, start, LastValuePredictor(), monitor)

    n_served = N_STREAM - start
    total_s = sanitize_s + serve_s
    ips = n_served / total_s
    obs.gauge("bench.serving.stream_intervals").set(float(n_served))
    obs.gauge("bench.serving.stream_intervals_per_s").set(ips)
    obs.gauge("bench.serving.sanitize_s").set(sanitize_s)

    # Per-prediction latency percentiles from the monitor's own histogram
    # — the same numbers `repro metrics` exposes in production.
    lat = _metrics.histogram("monitor.latency_ms").snapshot()
    obs.gauge("bench.serving.predict_p50_ms").set(lat["p50"])
    obs.gauge("bench.serving.predict_p99_ms").set(lat["p99"])

    assert report.drifted, "the planted regime shift must latch a detector"
    assert report.health is not None and report.health["status"] != "healthy"
    print(f"\n[serving-stream] {n_served:,} intervals in {total_s:.1f}s "
          f"= {ips:,.0f} intervals/s "
          f"(predict p50 {lat['p50']:.4f} ms, p99 {lat['p99']:.4f} ms)")


def test_pipeline_throughput():
    """Chunked streaming through the whole stack, steady-state rate.

    Unlike ``test_stream_throughput`` (one bulk sanitize, then a serve
    pass), this drives the pipeline the way an online deployment runs
    it: per-chunk sanitization interleaved with per-interval guarded
    prediction and monitor scoring, simulator replay at the end.  The
    first serving chunk is warmup (guard fit, allocator and cache
    cold-start) and is excluded from the steady-state rate.
    """
    raw = _synthetic_trace(N_STREAM, seed=23)
    start = min(2_000, N_STREAM // 10)
    chunk_size = max(N_STREAM // 32, start)
    perf = time.perf_counter

    sanitizer = TraceSanitizer(policy="interpolate")
    guarded = GuardedPredictor(LastValuePredictor())
    monitor = ForecastMonitor(
        slo=SLOTracker(latency_slo_ms=5.0, accuracy_slo_mape=50.0)
    )

    clean = np.empty(N_STREAM)
    preds = np.empty(N_STREAM - start)
    n_repaired = 0
    j = 0
    #: ``(intervals served, seconds)`` per chunk that served any.
    serve_chunks: list[tuple[int, float]] = []
    for c0 in range(0, N_STREAM, chunk_size):
        c1 = min(c0 + chunk_size, N_STREAM)
        t0 = perf()
        part, rep = sanitizer.sanitize(raw[c0:c1])
        clean[c0:c1] = part
        n_repaired += rep.n_repaired
        lo = max(c0, start)
        for i in range(lo, c1):
            history = clean[:i]
            if j == 0:
                guarded.fit(history)
            t_pred = perf()
            p = guarded.predict_next(history)
            latency = perf() - t_pred
            if not np.isfinite(p):
                last = float(history[-1])
                p = last if np.isfinite(last) else 0.0
            p = max(p, 0.0)
            preds[j] = p
            monitor.observe(p, float(clean[i]), latency_s=latency)
            j += 1
        if c1 > lo:
            serve_chunks.append((c1 - lo, perf() - t0))

    assert n_repaired > 0, "the planted NaN gaps must be repaired"
    assert j == N_STREAM - start
    assert monitor.drifted, "the planted regime shift must latch a detector"

    t_sim = perf()
    schedule = np.ceil(np.maximum(preds, 0.0))
    result = CloudSimulator(seed=0).run(clean[start:], schedule)
    simulate_s = perf() - t_sim
    assert result.n_intervals == j
    assert np.isfinite(result.underprovision_rate)

    steady = serve_chunks[1:] if len(serve_chunks) > 1 else serve_chunks
    steady_n = sum(n for n, _ in steady)
    steady_s = sum(s for _, s in steady)
    ips = steady_n / steady_s
    obs.gauge("bench.serving.pipeline_intervals").set(float(j))
    obs.gauge("bench.serving.pipeline_intervals_per_s").set(ips)
    obs.gauge("bench.serving.pipeline_simulate_s").set(simulate_s)
    print(f"\n[serving-stream] pipeline: {j:,} intervals, steady-state "
          f"{ips:,.0f} intervals/s over {len(steady)} chunks "
          f"(simulate {simulate_s:.2f}s)")


def test_chunked_checkpoint_overhead(tmp_path):
    """Crash-safe checkpoints every K=100 chunks must cost <= 10%."""
    n = 20_000 if QUICK else 200_000
    raw = _synthetic_trace(n, seed=31)
    start = min(2_000, n // 10)

    def chunked_run(ckpt_dir):
        guarded = GuardedPredictor(LastValuePredictor())
        monitor = ForecastMonitor(
            slo=SLOTracker(latency_slo_ms=5.0, accuracy_slo_mape=50.0)
        )
        cfg = StreamConfig(
            chunk_size=256, seed=3, checkpoint_every=100,
            checkpoint_dir=ckpt_dir,
        )
        t0 = time.perf_counter()
        report = serve_and_simulate(
            guarded, raw, start, refit_every=10**9, monitor=monitor,
            stream=cfg, sanitizer=TraceSanitizer(policy="interpolate"),
        )
        return time.perf_counter() - t0, report

    # Interleaved best-of-two: a single A/B pair is dominated by cache
    # and allocator transients (the first run is routinely the slower
    # one regardless of configuration).
    base_s, base = chunked_run(None)
    ckpt_s, ckpt = chunked_run(str(tmp_path / "ckpt"))
    if not QUICK:
        base_s = min(base_s, chunked_run(None)[0])
        ckpt_s = min(ckpt_s, chunked_run(str(tmp_path / "ckpt2"))[0])

    # Durability must be free of *behaviour*: the checkpointed run serves
    # the exact same schedule, it only also persists it.
    assert np.array_equal(base.schedule, ckpt.schedule)
    assert base.stream["checkpoints_written"] == 0
    assert ckpt.stream["checkpoints_written"] >= 1
    assert (tmp_path / "ckpt" / "checkpoint.json").exists()
    assert base.stream["repaired_values"] > 0, \
        "the planted NaN gaps must be repaired chunk by chunk"

    n_served = n - start
    overhead_pct = 100.0 * (ckpt_s - base_s) / base_s
    obs.gauge("bench.serving.chunked_intervals_per_s").set(n_served / base_s)
    obs.gauge("bench.serving.checkpoint_overhead_pct").set(overhead_pct)
    print(f"\n[serving-stream] chunked: {n_served / base_s:,.0f} intervals/s; "
          f"checkpoint overhead {overhead_pct:+.1f}% "
          f"({ckpt.stream['checkpoints_written']} checkpoints)")
    if not QUICK:
        # Quick mode writes a single checkpoint over a short run — noise.
        assert overhead_pct <= 10.0, (
            f"checkpointing cost {overhead_pct:.1f}% of chunked serving "
            "(budget: 10%)"
        )


def test_monitor_overhead():
    """Monitoring a deployed model must cost <= 10% end to end."""
    raw = _synthetic_trace(N_OVERHEAD, seed=11)
    trace, _ = TraceSanitizer(policy="interpolate").sanitize(raw)
    start = FIT_PREFIX

    ld = LoadDynamics(
        space=search_space_for("default", "tiny"),
        settings=FrameworkSettings.tiny(max_iters=2, epochs=4),
    )
    primary, _ = ld.fit(trace[:start])

    def monitored():
        return ForecastMonitor(
            slo=SLOTracker(latency_slo_ms=5.0, accuracy_slo_mape=50.0)
        )

    # Interleaved best-of-two, for the same reason as the checkpoint
    # test: one A/B pair confounds the monitor's cost with warmup.
    base_s, base_report = _serve(trace, start, primary, None)
    mon_s, mon_report = _serve(trace, start, primary, monitored())
    if not QUICK:
        base_s = min(base_s, _serve(trace, start, primary, None)[0])
        mon_s = min(mon_s, _serve(trace, start, primary, monitored())[0])

    # The monitored walk must not change what is served: the schedule is
    # the same bit-for-bit (the monitor only *observes* the stream).
    assert np.array_equal(base_report.schedule, mon_report.schedule)
    assert mon_report.drifted, "a frozen model must drift across the shift"

    n_served = N_OVERHEAD - start
    overhead_pct = 100.0 * (mon_s - base_s) / base_s
    obs.gauge("bench.serving.baseline_intervals_per_s").set(n_served / base_s)
    obs.gauge("bench.serving.monitored_intervals_per_s").set(n_served / mon_s)
    obs.gauge("bench.serving.monitor_overhead_pct").set(overhead_pct)
    print(f"\n[serving-stream] monitor overhead: {overhead_pct:+.1f}% "
          f"({base_s:.1f}s -> {mon_s:.1f}s over {n_served:,} intervals)")
    if not QUICK:
        # Quick mode runs too few intervals for the ratio to be signal.
        assert overhead_pct <= 10.0, (
            f"monitoring cost {overhead_pct:.1f}% of the serving path "
            "(budget: 10%)"
        )
