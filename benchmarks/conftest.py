"""Shared fixtures for the benchmark harness.

The heavyweight Fig. 9 sweep (14 workload configurations x 5 methods)
runs once per session and is shared by the Fig. 9 and Table IV benches.

Budgets are the CI-scale defaults of DESIGN.md §6; override via
environment variables:

* ``REPRO_BENCH_CONFIGS`` — comma-separated configuration keys (default:
  all 14);
* ``REPRO_BENCH_MAX_ITERS`` — BO iterations per config (default 10;
  paper used 100);
* ``REPRO_BENCH_MAX_EVAL`` — scored test intervals per config (default
  100).
"""

from __future__ import annotations

import os

import pytest

from repro.core import FrameworkSettings
from repro.experiments import run_fig9


def bench_configs() -> list[str] | None:
    env = os.environ.get("REPRO_BENCH_CONFIGS")
    if env:
        return [k.strip() for k in env.split(",") if k.strip()]
    return None  # all 14


def bench_max_iters() -> int:
    return int(os.environ.get("REPRO_BENCH_MAX_ITERS", "10"))


def bench_max_eval() -> int:
    return int(os.environ.get("REPRO_BENCH_MAX_EVAL", "100"))


@pytest.fixture(scope="session")
def fig9_result():
    """The full Fig. 9 sweep, shared across benches."""
    return run_fig9(
        configurations=bench_configs(),
        budget="reduced",
        settings=FrameworkSettings.reduced(max_iters=bench_max_iters()),
        brute_force_trials=bench_max_iters(),
        max_eval=bench_max_eval(),
        verbose=True,
    )
