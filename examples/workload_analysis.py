#!/usr/bin/env python3
"""Workload characterization across all 14 configurations.

Before choosing or tuning a predictor, understand the workload.  This
example runs the characterization suite (:mod:`repro.traces.stats`) on
every Table I configuration and prints the statistics the paper uses to
motivate generality: magnitude, variability, burstiness, seasonality,
long-range dependence, and the dominant FFT period CloudScale would
lock onto.

It closes with a simple evidence-based hint per workload — whether a
seasonal signature method could work or a learned model is required —
mirroring the paper's Fig. 2 discussion.

Usage::

    python examples/workload_analysis.py
"""

from __future__ import annotations

from repro.experiments import format_table
from repro.traces import get_configuration, list_configurations
from repro.traces.stats import characterize


def main() -> None:
    rows = []
    for key in list_configurations():
        cfg = get_configuration(key)
        series = cfg.load()
        daily = (24 * 60) // cfg.interval_minutes  # intervals per day
        stats = characterize(series, daily_period=min(daily, len(series) // 3))
        rows.append(
            {
                "workload": key,
                "mean_jar": stats["mean"],
                "cv": stats["cv"],
                "burstiness": stats["burstiness"],
                "hurst": stats["hurst"],
                "seasonality": stats["daily_seasonality"],
                "fft_period": stats["dominant_period"] or "-",
            }
        )
    print(format_table(rows))

    print("\nInterpretation:")
    for row in rows:
        if row["seasonality"] > 0.5:
            hint = "strong daily cycle — signature methods viable"
        elif row["burstiness"] > 0.1 or row["cv"] > 0.6:
            hint = "bursty/irregular — needs a learned, tuned predictor"
        else:
            hint = "drifting level — short-memory smoothing is competitive"
        print(f"  {row['workload']:9s} {hint}")


if __name__ == "__main__":
    main()
