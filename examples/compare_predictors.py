#!/usr/bin/env python3
"""Bake-off: LoadDynamics vs every prior technique on one workload.

Walks LoadDynamics, the three framework baselines (CloudInsight,
CloudScale, Wood et al.) and a representative slice of CloudInsight's
individual experts over the same test window of a chosen workload
configuration, reporting the paper's metric (MAPE) plus RMSE.

Usage::

    python examples/compare_predictors.py [config-key]

e.g. ``python examples/compare_predictors.py lcg-30m``.  Run
``python -c "from repro.traces import list_configurations; print(list_configurations())"``
to see all 14 keys.
"""

from __future__ import annotations

import sys
import time

from repro.baselines import make_baseline, walk_forward
from repro.experiments import fit_loaddynamics, format_table, test_start_index
from repro.metrics import mape, rmse
from repro.traces import get_configuration

#: Individual experts shown alongside the frameworks.
SOLO_PREDICTORS = ("ema", "holt-des", "ar", "arima", "knn", "random-forest")
FRAMEWORKS = ("cloudinsight", "cloudscale", "wood")


def main(config_key: str = "lcg-30m", max_eval: int = 120) -> None:
    series = get_configuration(config_key).load()
    start = test_start_index(len(series), max_eval)
    actual = series[start:]
    print(f"Workload {config_key}: {len(series)} intervals, "
          f"scoring the last {len(actual)}\n")

    rows = []
    t0 = time.perf_counter()
    _, report, ld_mape = fit_loaddynamics(
        series, config_key.split("-")[0], max_eval=max_eval
    )
    hp = report.best_hyperparameters
    rows.append(
        {
            "predictor": f"loaddynamics (n={hp.history_len}, s={hp.cell_size}, "
                         f"L={hp.num_layers})",
            "mape_pct": ld_mape,
            "seconds": time.perf_counter() - t0,
        }
    )

    for name in FRAMEWORKS + SOLO_PREDICTORS:
        predictor = make_baseline(name)
        refit = 1 if name == "cloudinsight" else 5
        t0 = time.perf_counter()
        preds = walk_forward(predictor, series, start, refit_every=refit)
        rows.append(
            {
                "predictor": name,
                "mape_pct": mape(preds, actual),
                "rmse": rmse(preds, actual),
                "seconds": time.perf_counter() - t0,
            }
        )

    rows.sort(key=lambda r: r["mape_pct"])
    print(format_table(rows, columns=["predictor", "mape_pct", "seconds"]))


if __name__ == "__main__":
    main(*(sys.argv[1:2] or ["lcg-30m"]))
