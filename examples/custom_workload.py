#!/usr/bin/env python3
"""Bring your own trace: LoadDynamics on a workload it has never seen.

The paper's claim is *genericity* — the framework should produce an
accurate predictor for any workload without hand-tuning.  This example
fabricates a workload unlike the five built-in traces (an e-commerce
flash-sale pattern: weekly seasonality plus sharp promotional bursts and
a Black-Friday-style level shift), runs the unchanged workflow on it,
and shows the selected hyperparameters adapting to the new pattern.

It also demonstrates predictor persistence: the tuned model is saved to
disk and reloaded, as a deployed auto-scaler process would.

Usage::

    python examples/custom_workload.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import FrameworkSettings, LoadDynamics, search_space_for
from repro.core import LoadDynamicsPredictor
from repro.metrics import mape


def flash_sale_workload(n_intervals: int = 1200, seed: int = 99) -> np.ndarray:
    """Hourly order volume with weekly cycle, promos, and a level shift."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_intervals)
    weekly = 1.0 + 0.45 * np.sin(2 * np.pi * t / 168.0)        # 168h = 1 week
    daily = 1.0 + 0.30 * np.sin(2 * np.pi * t / 24.0 - 1.0)
    level = np.where(t < int(0.7 * n_intervals), 1.0, 1.8)     # big campaign
    lam = 500.0 * weekly * daily * level
    # Flash sales: 6-hour bursts at random weekday noons.
    for s in rng.integers(0, n_intervals - 6, size=10):
        lam[s : s + 6] *= rng.uniform(2.0, 4.0)
    return rng.poisson(lam).astype(float)


def main() -> None:
    series = flash_sale_workload()
    print(f"Custom workload: {len(series)} hourly intervals, "
          f"mean {series.mean():.0f} orders/h, peak {series.max():.0f}")

    ld = LoadDynamics(
        space=search_space_for("default", budget="reduced"),
        settings=FrameworkSettings.reduced(max_iters=10),
    )
    predictor, report = ld.fit(series)
    hp = report.best_hyperparameters
    print(f"\nSelected: n={hp.history_len}, s={hp.cell_size}, "
          f"layers={hp.num_layers}, batch={hp.batch_size} "
          f"(val MAPE {report.best_validation_mape:.2f}%)")
    print(f"Test MAPE: {ld.evaluate(predictor, series):.2f}%")

    # Persist and reload, then verify identical predictions.
    with tempfile.TemporaryDirectory() as d:
        path = predictor.save(Path(d) / "flash-sale-predictor")
        reloaded = LoadDynamicsPredictor.load(path)
        p1 = predictor.predict_next(series)
        p2 = reloaded.predict_next(series)
        assert abs(p1 - p2) < 1e-9, "reload changed predictions"
        print(f"\nSaved+reloaded predictor agrees: next-hour forecast "
              f"{p2:,.0f} orders")

    # Compare against the naive answer an ops team might use.
    test_start = int(0.8 * len(series))
    preds = predictor.predict_series(series, test_start)
    persistence = series[test_start - 1 : -1]
    print(f"LoadDynamics test MAPE {mape(preds, series[test_start:]):.2f}% vs "
          f"persistence {mape(persistence, series[test_start:]):.2f}%")


if __name__ == "__main__":
    main()
