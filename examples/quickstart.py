#!/usr/bin/env python3
"""Quickstart: self-optimize a workload predictor in ~30 seconds.

Runs the complete LoadDynamics workflow (paper Fig. 6) on the synthetic
Google 30-minute workload configuration:

1. Bayesian Optimization proposes LSTM hyperparameters from the
   Table III search space (reduced budget for a quick demo);
2. each proposal is trained on the first 60% of the trace and validated
   on the next 20%;
3. the best model becomes the predictor, scored here on the final 20%.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import FrameworkSettings, LoadDynamics, mape, search_space_for
from repro.traces import get_configuration


def main() -> None:
    series = get_configuration("gl-30m").load()
    print(f"Workload: Google data-center trace, 30-minute intervals "
          f"({len(series)} intervals, mean JAR {series.mean():,.0f})")

    ld = LoadDynamics(
        space=search_space_for("gl", budget="reduced"),
        settings=FrameworkSettings.reduced(max_iters=8),
    )
    t0 = time.perf_counter()
    predictor, report = ld.fit(series)
    print(f"\nSelf-optimization finished in {time.perf_counter() - t0:.1f}s "
          f"({report.n_trials} BO trials, {report.n_infeasible} infeasible)")
    hp = report.best_hyperparameters
    print(f"Selected hyperparameters: history n={hp.history_len}, "
          f"cell size s={hp.cell_size}, layers={hp.num_layers}, "
          f"batch={hp.batch_size}")
    print(f"Cross-validation MAPE: {report.best_validation_mape:.2f}%")

    # Score the held-out test split (last 20%) the way the paper does.
    test_mape = ld.evaluate(predictor, series)
    print(f"Test MAPE (last 20% of the trace): {test_mape:.2f}%")

    # One-step-ahead prediction from the full known history.
    next_jar = predictor.predict_next(series)
    print(f"\nPredicted JAR for the next 30-minute interval: {next_jar:,.0f}")
    print(f"(last observed interval had {series[-1]:,.0f})")


if __name__ == "__main__":
    main()
