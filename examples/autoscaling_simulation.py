#!/usr/bin/env python3
"""Auto-scaling case study (paper Section IV-C / Fig. 10).

Drives the predictive auto-scaling policy on the simulated cloud with
three predictors — LoadDynamics, CloudInsight and Wood et al. — plus the
reactive and oracle reference policies, over the Azure 60-minute
workload scaled down 100x (the paper's quota-friendly setup).

Reported per policy, exactly the three Fig. 10 panels:

* average job turnaround time,
* VM under-provisioning rate,
* VM over-provisioning rate.

Usage::

    python examples/autoscaling_simulation.py
"""

from __future__ import annotations

import time

from repro.experiments import format_table, run_fig10


def main() -> None:
    print("Simulating predictive auto-scaling on Azure-60m (JARs / 100)…")
    t0 = time.perf_counter()
    rows = run_fig10(max_eval=120)
    print(f"done in {time.perf_counter() - t0:.1f}s\n")
    print(
        format_table(
            rows,
            columns=[
                "policy",
                "mean_turnaround_seconds",
                "underprovision_rate_pct",
                "overprovision_rate_pct",
                "vm_hours",
            ],
        )
    )
    ld = next(r for r in rows if r["policy"] == "loaddynamics")
    ci = next(r for r in rows if r["policy"] == "cloudinsight")
    wood = next(r for r in rows if r["policy"] == "wood")
    print("\nLoadDynamics vs CloudInsight: "
          f"turnaround {100*(ci['mean_turnaround_seconds']/ld['mean_turnaround_seconds']-1):+.1f}%, "
          f"overprovision {ci['overprovision_rate_pct']-ld['overprovision_rate_pct']:+.1f} pts")
    print("LoadDynamics vs Wood et al.:  "
          f"turnaround {100*(wood['mean_turnaround_seconds']/ld['mean_turnaround_seconds']-1):+.1f}%, "
          f"overprovision {wood['overprovision_rate_pct']-ld['overprovision_rate_pct']:+.1f} pts")


if __name__ == "__main__":
    main()
