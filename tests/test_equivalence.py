"""Default-path regression against pre-refactor recorded fixtures.

The model-family refactor's acceptance bar: a seeded ``family="lstm"``
fit must reproduce the monolithic framework's behaviour bit-for-bit —
same suggested configs, same objective values, same deterministic
journal records — and a journal written *before* the refactor must
resume under the refactored framework and land on the same result.

Fixtures live in ``tests/data/`` and were recorded by
``scripts/make_equivalence_fixtures.py`` running the pre-refactor code.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.core import FrameworkSettings, LoadDynamics, search_space_for

DATA = Path(__file__).parent / "data"

#: Must match scripts/make_equivalence_fixtures.py.
DETERMINISTIC_META = (
    "epochs_run",
    "stopped_early",
    "best_epoch",
    "n_train_windows",
    "attempts",
    "infeasible",
    "reason",
)


@pytest.fixture
def fixture() -> dict:
    return json.loads((DATA / "equivalence_lstm.json").read_text())


def _assert_matches_fixture(report, fixture: dict) -> None:
    assert report.best_hyperparameters.as_dict() == fixture["best_hyperparameters"]
    assert report.best_validation_mape == fixture["best_validation_mape"]
    assert report.n_trials == len(fixture["trials"])
    for record, want in zip(report.trials, fixture["trials"], strict=True):
        assert record.iteration == want["iteration"]
        assert record.config == want["config"]
        assert record.value == want["value"]
        got_meta = {
            k: record.metadata[k]
            for k in DETERMINISTIC_META
            if k in record.metadata
        }
        assert got_meta == want["metadata"]


class TestDefaultPathEquivalence:
    def test_seeded_lstm_fit_reproduces_prerefactor_run(self, sine_series, fixture):
        ld = LoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=fixture["max_iters"]),
        )
        predictor, report = ld.fit(sine_series)
        _assert_matches_fixture(report, fixture)
        assert predictor.family == "lstm"

    def test_journal_records_match_prerefactor_journal(
        self, sine_series, fixture, tmp_path
    ):
        from repro.resilience.journal import TrialJournal

        journal = tmp_path / "journal.jsonl"
        ld = LoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=fixture["max_iters"]),
        )
        ld.fit(sine_series, journal=journal)
        _header, trials = TrialJournal.load(journal)
        _old_header, old_trials = TrialJournal.load(
            DATA / "prerefactor_journal_full.jsonl"
        )
        assert len(trials) == len(old_trials)
        for new, old in zip(trials, old_trials, strict=True):
            assert new["iteration"] == old["iteration"]
            assert new["config"] == old["config"]
            assert new["value"] == old["value"]
            for key in DETERMINISTIC_META:
                assert new["metadata"].get(key) == old["metadata"].get(key)
            # The optimizer search state drives the resumed RNG — it must
            # round-trip unchanged or resume determinism breaks.
            assert new.get("state") == old.get("state")

    def test_prerefactor_journal_resumes_bit_for_bit(
        self, sine_series, fixture, tmp_path
    ):
        """A journal written by the monolith (no ``family`` header key)
        resumes under the refactored framework: the family tag defaults
        to lstm and the continued run reproduces the uninterrupted one."""
        journal = tmp_path / "journal.jsonl"
        shutil.copy(DATA / "prerefactor_journal_partial.jsonl", journal)
        stored_header = json.loads(journal.read_text().splitlines()[0])
        assert "family" not in stored_header  # genuinely pre-refactor

        ld = LoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=fixture["max_iters"]),
        )
        predictor, report = ld.fit(sine_series, journal=journal, resume=True)
        assert report.n_resumed == fixture["partial_trials"]
        _assert_matches_fixture(report, fixture)
        assert predictor.family == "lstm"

    def test_wrong_family_refuses_prerefactor_journal(self, sine_series, fixture, tmp_path):
        """The defaulted family tag is still an identity key: resuming an
        (implicitly lstm) journal under another family must be refused."""
        from repro.resilience.journal import JournalError

        journal = tmp_path / "journal.jsonl"
        shutil.copy(DATA / "prerefactor_journal_partial.jsonl", journal)
        ld = LoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=fixture["max_iters"]),
            family="gru",
        )
        with pytest.raises(JournalError, match="family"):
            ld.fit(sine_series, journal=journal, resume=True)
