"""scripts/check_bench.py: the benchmark regression gate.

Exercised as a subprocess, the way CI runs it — exit codes are the
contract.  The artifacts are tiny hand-built BENCH_serving.json /
BENCH_search.json files so every direction heuristic and the quick-mode
schema-only path are covered without running any real bench.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench.py"


def _write(dirpath: Path, fname: str, metrics: dict) -> None:
    doc = {
        "schema": 1,
        "metrics": {
            name: {"kind": "gauge", "value": value}
            for name, value in metrics.items()
        },
    }
    (dirpath / fname).write_text(json.dumps(doc))


def _run(candidate: Path, baseline: Path, *, quick: bool = False, extra=()):
    env = {"PATH": "/usr/bin:/bin", "REPRO_BENCH_QUICK": "1" if quick else ""}
    return subprocess.run(
        [
            sys.executable,
            str(SCRIPT),
            "--candidate-dir",
            str(candidate),
            "--baseline-dir",
            str(baseline),
            *extra,
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=60,
    )


@pytest.fixture()
def dirs(tmp_path: Path) -> tuple[Path, Path]:
    base = tmp_path / "base"
    cand = tmp_path / "cand"
    base.mkdir()
    cand.mkdir()
    return base, cand


def test_no_regression_passes(dirs):
    base, cand = dirs
    _write(base, "BENCH_serving.json", {"bench.serving.pipeline_intervals_per_s": 1000.0})
    _write(cand, "BENCH_serving.json", {"bench.serving.pipeline_intervals_per_s": 990.0})
    proc = _run(cand, base)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_throughput_drop_fails(dirs):
    base, cand = dirs
    _write(base, "BENCH_serving.json", {"bench.serving.pipeline_intervals_per_s": 1000.0})
    _write(cand, "BENCH_serving.json", {"bench.serving.pipeline_intervals_per_s": 700.0})
    proc = _run(cand, base)
    assert proc.returncode == 1
    assert "REGRESSED" in proc.stdout


def test_latency_rise_fails(dirs):
    base, cand = dirs
    _write(base, "BENCH_search.json", {"bench.search.tell_ms_p50": 1.0})
    _write(cand, "BENCH_search.json", {"bench.search.tell_ms_p50": 1.4})
    proc = _run(cand, base)
    assert proc.returncode == 1


def test_large_improvement_passes(dirs):
    base, cand = dirs
    _write(base, "BENCH_search.json", {"bench.search.tell_speedup": 3.0,
                                       "bench.search.tell_ms_p50": 2.0})
    _write(cand, "BENCH_search.json", {"bench.search.tell_speedup": 9.0,
                                       "bench.search.tell_ms_p50": 0.5})
    proc = _run(cand, base)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_informational_metrics_never_fail(dirs):
    base, cand = dirs
    _write(base, "BENCH_serving.json", {"bench.serving.pipeline_intervals": 1_000_000.0})
    _write(cand, "BENCH_serving.json", {"bench.serving.pipeline_intervals": 10.0})
    proc = _run(cand, base)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_quick_mode_skips_ratios_but_checks_schema(dirs):
    base, cand = dirs
    _write(base, "BENCH_serving.json", {"bench.serving.pipeline_intervals_per_s": 1000.0})
    _write(cand, "BENCH_serving.json", {"bench.serving.pipeline_intervals_per_s": 1.0})
    proc = _run(cand, base, quick=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    # ... but a malformed candidate still fails in quick mode.
    (cand / "BENCH_search.json").write_text(json.dumps({"metrics": {"x": {}}}))
    proc = _run(cand, base, quick=True)
    assert proc.returncode == 1


def test_missing_candidate_is_skipped(dirs):
    base, cand = dirs
    _write(base, "BENCH_serving.json", {"bench.serving.pipeline_intervals_per_s": 1000.0})
    proc = _run(cand, base)
    assert proc.returncode == 0
    assert "skipping" in proc.stdout


def test_threshold_is_configurable(dirs):
    base, cand = dirs
    _write(base, "BENCH_serving.json", {"bench.serving.pipeline_intervals_per_s": 1000.0})
    _write(cand, "BENCH_serving.json", {"bench.serving.pipeline_intervals_per_s": 900.0})
    proc = _run(cand, base, extra=("--max-regression", "5"))
    assert proc.returncode == 1
