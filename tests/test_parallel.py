"""Tests for the parallel-map utilities."""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics as _metrics
from repro.parallel import (
    MAX_WORKERS_ENV,
    SharedArray,
    as_ndarray,
    chunk_indices,
    effective_workers,
    parallel_map,
    share_arrays,
)


def _square(x):
    return x * x


def _shared_sum(handle):
    """Worker-side task: materialize the handle and reduce it."""
    return float(as_ndarray(handle).sum())


class TestChunkIndices:
    def test_even_split(self):
        assert chunk_indices(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_balanced(self):
        spans = chunk_indices(10, 3)
        sizes = [b - a for a, b in spans]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        spans = chunk_indices(2, 10)
        assert spans == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_indices(0, 3) == [(0, 0)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)
        with pytest.raises(ValueError):
            chunk_indices(5, 0)

    @given(n=st.integers(0, 200), k=st.integers(1, 20))
    @settings(max_examples=100, deadline=None)
    def test_spans_cover_range_exactly(self, n, k):
        spans = chunk_indices(n, k)
        covered = [i for a, b in spans for i in range(a, b)]
        assert covered == list(range(n))


class TestEffectiveWorkers:
    def test_none_uses_cpu_count(self):
        assert effective_workers(None) >= 1

    def test_clamped_to_one(self):
        assert effective_workers(0) == 1
        assert effective_workers(-5) == 1

    def test_env_cap(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        assert effective_workers(8) == 1

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "not-a-number")
        assert effective_workers(2) >= 1

    @pytest.mark.parametrize("bad_cap", ["0", "-3"])
    def test_subserial_env_clamped_to_one_with_warning(
        self, monkeypatch, caplog, bad_cap
    ):
        """Regression: REPRO_MAX_WORKERS<=0 used to propagate into
        ProcessPoolExecutor(max_workers=0) and crash; it must clamp to
        serial and say so."""
        monkeypatch.setenv(MAX_WORKERS_ENV, bad_cap)
        with caplog.at_level("WARNING", logger="repro.parallel"):
            assert effective_workers(8) == 1
        assert any("clamping to 1" in r.message for r in caplog.records)

    def test_noninteger_env_warns(self, monkeypatch, caplog):
        monkeypatch.setenv(MAX_WORKERS_ENV, "many")
        with caplog.at_level("WARNING", logger="repro.parallel"):
            effective_workers(2)
        assert any("non-integer" in r.message for r in caplog.records)


class TestParallelMap:
    def test_serial_matches_map(self):
        items = list(range(20))
        assert parallel_map(_square, items, n_workers=1) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(50))
        serial = parallel_map(_square, items, n_workers=1)
        parallel = parallel_map(_square, items, n_workers=2)
        assert serial == parallel

    def test_empty(self):
        assert parallel_map(_square, [], n_workers=2) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [3], n_workers=4) == [9]

    def test_order_preserved(self):
        items = list(range(100, 0, -1))
        assert parallel_map(_square, items, n_workers=2) == [x * x for x in items]

    def test_gauges_record_requested_vs_effective(self):
        parallel_map(_square, [1, 2, 3], n_workers=1)
        assert _metrics.gauge("parallel.workers_requested").value == 1.0
        assert _metrics.gauge("parallel.workers_effective").value == 1.0
        parallel_map(_square, list(range(8)), n_workers=4)
        assert _metrics.gauge("parallel.workers_requested").value == 4.0
        # The cpu clamp / fork availability decide what was delivered;
        # the point is that the two gauges make the gap observable.
        assert _metrics.gauge("parallel.workers_effective").value >= 1.0


class TestSharedArray:
    def test_view_round_trips_data(self):
        arr = np.linspace(0.0, 1.0, 257)
        sa = SharedArray(arr)
        try:
            np.testing.assert_array_equal(sa.array, arr)
            assert sa.shape == arr.shape
            assert sa.dtype == arr.dtype
        finally:
            sa.close()
            sa.unlink()

    def test_pickle_is_a_handle_not_a_copy(self):
        arr = np.arange(50_000, dtype=np.float64)
        sa = SharedArray(arr)
        try:
            blob = pickle.dumps(sa)
            # The whole point: the wire format is a name+shape tuple,
            # orders of magnitude smaller than the 400 kB payload.
            assert len(blob) < 1024
            attached = pickle.loads(blob)
            try:
                np.testing.assert_array_equal(attached.array, arr)
            finally:
                attached.close()
            # The attachment closing must not unlink the owner's pages.
            assert float(sa.array[-1]) == arr[-1]
        finally:
            sa.close()
            sa.unlink()

    def test_attachment_never_unlinks(self):
        sa = SharedArray(np.ones(8))
        attached = pickle.loads(pickle.dumps(sa))
        attached.unlink()  # no-op: not the owner
        attached.close()
        assert float(sa.array.sum()) == 8.0
        sa.close()
        sa.unlink()

    def test_empty_array(self):
        sa = SharedArray(np.empty(0))
        try:
            assert sa.array.size == 0
        finally:
            sa.close()
            sa.unlink()

    def test_as_ndarray_passthrough(self):
        arr = np.arange(4.0)
        np.testing.assert_array_equal(as_ndarray(arr), arr)
        np.testing.assert_array_equal(as_ndarray([1.0, 2.0]), [1.0, 2.0])

    def test_share_arrays_cleans_up(self):
        arr = np.arange(16.0)
        with share_arrays(arr) as (h,):
            if not isinstance(h, SharedArray):
                pytest.skip("shared memory unavailable on this platform")
            name = h._shm.name
            np.testing.assert_array_equal(h.array, arr)
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_worker_reads_shared_pages(self):
        """End-to-end: a worker process attaches, reads, exits — and the
        owner's segment survives the worker's resource tracker
        (the bpo-38119 unlink-on-exit trap)."""
        arr = np.arange(10_000.0)
        want = float(arr.sum())
        with share_arrays(arr) as (h,):
            if not isinstance(h, SharedArray):
                pytest.skip("shared memory unavailable on this platform")
            try:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    got = pool.submit(_shared_sum, h).result(timeout=120)
            except (OSError, PermissionError, RuntimeError):
                pytest.skip("process pools unavailable in this sandbox")
            assert got == want
            # After the pool (and its tracker) shut down, the owner's
            # pages must still be mapped and intact.
            assert float(h.array.sum()) == want

    def test_parallel_map_with_shared_handles(self):
        arr = np.arange(4096.0)
        with share_arrays(arr) as (h,):
            outs = parallel_map(_shared_sum, [h, h, h], n_workers=2)
        assert outs == [float(arr.sum())] * 3
