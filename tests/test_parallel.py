"""Tests for the parallel-map utilities."""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import MAX_WORKERS_ENV, chunk_indices, effective_workers, parallel_map


def _square(x):
    return x * x


class TestChunkIndices:
    def test_even_split(self):
        assert chunk_indices(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_balanced(self):
        spans = chunk_indices(10, 3)
        sizes = [b - a for a, b in spans]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        spans = chunk_indices(2, 10)
        assert spans == [(0, 1), (1, 2)]

    def test_zero_items(self):
        assert chunk_indices(0, 3) == [(0, 0)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_indices(-1, 2)
        with pytest.raises(ValueError):
            chunk_indices(5, 0)

    @given(n=st.integers(0, 200), k=st.integers(1, 20))
    @settings(max_examples=100, deadline=None)
    def test_spans_cover_range_exactly(self, n, k):
        spans = chunk_indices(n, k)
        covered = [i for a, b in spans for i in range(a, b)]
        assert covered == list(range(n))


class TestEffectiveWorkers:
    def test_none_uses_cpu_count(self):
        assert effective_workers(None) >= 1

    def test_clamped_to_one(self):
        assert effective_workers(0) == 1
        assert effective_workers(-5) == 1

    def test_env_cap(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "1")
        assert effective_workers(8) == 1

    def test_bad_env_ignored(self, monkeypatch):
        monkeypatch.setenv(MAX_WORKERS_ENV, "not-a-number")
        assert effective_workers(2) >= 1

    @pytest.mark.parametrize("bad_cap", ["0", "-3"])
    def test_subserial_env_clamped_to_one_with_warning(
        self, monkeypatch, caplog, bad_cap
    ):
        """Regression: REPRO_MAX_WORKERS<=0 used to propagate into
        ProcessPoolExecutor(max_workers=0) and crash; it must clamp to
        serial and say so."""
        monkeypatch.setenv(MAX_WORKERS_ENV, bad_cap)
        with caplog.at_level("WARNING", logger="repro.parallel"):
            assert effective_workers(8) == 1
        assert any("clamping to 1" in r.message for r in caplog.records)

    def test_noninteger_env_warns(self, monkeypatch, caplog):
        monkeypatch.setenv(MAX_WORKERS_ENV, "many")
        with caplog.at_level("WARNING", logger="repro.parallel"):
            effective_workers(2)
        assert any("non-integer" in r.message for r in caplog.records)


class TestParallelMap:
    def test_serial_matches_map(self):
        items = list(range(20))
        assert parallel_map(_square, items, n_workers=1) == [x * x for x in items]

    def test_parallel_matches_serial(self):
        items = list(range(50))
        serial = parallel_map(_square, items, n_workers=1)
        parallel = parallel_map(_square, items, n_workers=2)
        assert serial == parallel

    def test_empty(self):
        assert parallel_map(_square, [], n_workers=2) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [3], n_workers=4) == [9]

    def test_order_preserved(self):
        items = list(range(100, 0, -1))
        assert parallel_map(_square, items, n_workers=2) == [x * x for x in items]
