"""Crash-safe streaming serving: chunking, degradation, resume parity.

Two families of guarantees:

* **state round-trips** — every stateful serving component
  (`state_dict()`/`load_state_dict()`) must survive a
  serialize-through-JSON/restore cycle *bit-for-bit*, and a restored
  instance must behave identically to the original from that point on.
  These are hypothesis properties over random event streams.
* **stream semantics** — chunked ingestion is deterministic; drop /
  stall / shed / quarantine each degrade exactly the affected intervals;
  and the headline guarantee: kill mid-stream + resume produces a
  bit-for-bit identical provisioning schedule and ServingReport.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autoscale.controller import HybridController
from repro.obs.metrics import reset_metrics
from repro.obs.monitor.drift import CusumDetector, PageHinkleyDetector
from repro.obs.monitor.monitor import ForecastMonitor
from repro.obs.monitor.quality import QualityTracker
from repro.obs.monitor.slo import SLOTracker
from repro.resilience import faults as _faults
from repro.serving import (
    CheckpointError,
    CircuitBreaker,
    GuardedPredictor,
    StreamConfig,
    StreamingServer,
    TraceSanitizer,
    chunk_stream,
    default_fallbacks,
    serve_and_simulate,
)
from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN


def _json_roundtrip(state: dict) -> dict:
    """Force the state through the same JSON layer checkpoints use."""
    return json.loads(json.dumps(state))


def _canon(state: dict) -> str:
    """Canonical JSON form — NaN-safe (``nan != nan`` breaks dict ==)."""
    return json.dumps(state, sort_keys=True)


# ----------------------------------------------------------------------
# state_dict round-trips (hypothesis properties)
# ----------------------------------------------------------------------
class TestStateRoundTrips:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(["ok", "fail", "allow"]), max_size=60))
    def test_breaker_roundtrip_continues_identically(self, events):
        a = CircuitBreaker(window=8, min_calls=3, cooldown=4, probes=2)
        for ev in events:
            if ev == "allow":
                a.allow()
            elif ev == "ok":
                a.record_success()
            else:
                a.record_failure()
        state = _json_roundtrip(a.state_dict())
        b = CircuitBreaker(window=8, min_calls=3, cooldown=4, probes=2)
        b.load_state_dict(state)
        assert b.state_dict() == a.state_dict()
        # A restored breaker must behave identically from here on.
        for _ in range(30):
            assert a.allow() == b.allow()
            a.record_failure(); b.record_failure()
            assert a.state == b.state
        assert a.transitions == b.transitions

    def test_breaker_halfopen_probe_accounting_survives(self):
        """The satellite case: restore mid-probation, finish the probes."""
        br = CircuitBreaker(window=4, min_calls=2, cooldown=2, probes=3)
        br.record_failure(); br.record_failure()          # -> open
        assert br.state == OPEN
        assert not br.allow()                              # denial 1 of 2
        assert br.allow()                                  # cooldown elapses
        assert br.state == HALF_OPEN
        br.record_success()                                # probe 1 of 3
        restored = CircuitBreaker(window=4, min_calls=2, cooldown=2, probes=3)
        restored.load_state_dict(_json_roundtrip(br.state_dict()))
        assert restored.state == HALF_OPEN
        assert restored._probe_successes == 1
        restored.record_success()
        assert restored.state == HALF_OPEN                 # 2 of 3: still probing
        restored.record_success()
        assert restored.state == CLOSED                    # 3 of 3: closes
        assert restored.transitions == [
            (CLOSED, OPEN, "failure_rate"),
            (OPEN, HALF_OPEN, "cooldown_elapsed"),
            (HALF_OPEN, CLOSED, "probes_passed"),
        ]

    def test_breaker_rejects_garbage(self):
        br = CircuitBreaker(window=4, min_calls=2)
        with pytest.raises(ValueError):
            br.load_state_dict({"state": "melted", "outcomes": [],
                                "denied": 0, "probe_successes": 0,
                                "transitions": []})
        with pytest.raises(ValueError):
            br.load_state_dict({"state": CLOSED, "outcomes": [True] * 9,
                                "denied": 0, "probe_successes": 0,
                                "transitions": []})

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 1e4, allow_nan=False),
                st.floats(0.0, 1e4, allow_nan=False),
            ),
            max_size=50,
        )
    )
    def test_quality_tracker_roundtrip(self, pairs):
        a = QualityTracker(window=16)
        for p, t in pairs:
            a.update(p, t)
        b = QualityTracker(window=16)
        b.load_state_dict(_json_roundtrip(a.state_dict()))
        assert b.state_dict() == a.state_dict()
        assert b.snapshot() == a.snapshot()
        for p, t in pairs[:10]:
            assert a.update(p + 1.0, t) == b.update(p + 1.0, t)
        assert b.snapshot() == a.snapshot()

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.0, 500.0, allow_nan=False), max_size=80))
    def test_drift_detector_roundtrips(self, apes):
        for make in (CusumDetector, PageHinkleyDetector):
            a, b = make(), make()
            for ape in apes:
                a.update(ape)
            b.load_state_dict(_json_roundtrip(a.state_dict()))
            assert b.state_dict() == a.state_dict()
            for ape in apes[:20]:
                a.update(ape * 2.0)
                b.update(ape * 2.0)
            assert b.state_dict() == a.state_dict()
            assert b.snapshot() == a.snapshot()

    def test_drift_detector_name_mismatch_rejected(self):
        state = CusumDetector().state_dict()
        with pytest.raises(ValueError):
            PageHinkleyDetector().load_state_dict(state)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 2.0, allow_nan=False),
                st.floats(0.0, 200.0, allow_nan=False),
            ),
            max_size=60,
        )
    )
    def test_slo_tracker_roundtrip(self, pairs):
        def make():
            return SLOTracker(
                latency_slo_ms=100.0, accuracy_slo_mape=25.0,
                window=12, min_intervals=5,
            )

        a = make()
        for lat, ape in pairs:
            a.update(latency_s=lat, ape=ape)
        b = make()
        b.load_state_dict(_json_roundtrip(a.state_dict()))
        assert b.state_dict() == a.state_dict()
        assert b.snapshot() == a.snapshot()

    def test_slo_objective_mismatch_rejected(self):
        saved = SLOTracker(latency_slo_ms=10.0).state_dict()
        with pytest.raises(ValueError):
            SLOTracker(accuracy_slo_mape=30.0).load_state_dict(saved)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0.0, 1e3, allow_nan=False),
                st.floats(0.0, 1e3, allow_nan=False),
            ),
            max_size=60,
        )
    )
    def test_monitor_composed_roundtrip(self, pairs):
        def make():
            return ForecastMonitor(
                quality=QualityTracker(window=16),
                slo=SLOTracker(accuracy_slo_mape=30.0, window=8),
            )

        a = make()
        for p, t in pairs:
            a.observe(p, t, latency_s=None)
        b = make()
        b.load_state_dict(_json_roundtrip(a.state_dict()))
        assert b.state_dict() == a.state_dict()
        for p, t in pairs[:15]:
            assert a.observe(p, t) == b.observe(p, t)
        assert a.drifted == b.drifted

    def test_monitor_detector_count_mismatch_rejected(self):
        saved = ForecastMonitor(detectors=[CusumDetector()]).state_dict()
        with pytest.raises(ValueError):
            ForecastMonitor(detectors=[]).load_state_dict(saved)
        saved = ForecastMonitor(detectors=[], slo=SLOTracker(
            accuracy_slo_mape=10.0)).state_dict()
        with pytest.raises(ValueError):
            ForecastMonitor(detectors=[]).load_state_dict(saved)

    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.floats(-50.0, 400.0, allow_nan=False), min_size=5, max_size=60
        ),
        st.integers(0, 4),
    )
    def test_controller_roundtrip_continues_identically(self, targets, nan_every):
        def make():
            return HybridController(drift_detector=PageHinkleyDetector())

        series = np.abs(np.asarray(targets, dtype=np.float64))
        a = make()
        for i in range(1, series.size):
            f = math.nan if nan_every and i % (nan_every + 1) == 0 else series[i - 1]
            a.step(f, series[:i])
        b = make()
        b.load_state_dict(_json_roundtrip(a.state_dict()))
        assert _canon(b.state_dict()) == _canon(a.state_dict())
        for i in range(1, series.size):
            da = a.step(series[i - 1] * 1.1, series[:i])
            db = b.step(series[i - 1] * 1.1, series[:i])
            assert da == db
        assert _canon(a.state_dict()) == _canon(b.state_dict())

    def test_controller_error_window_overflow_rejected(self):
        a = HybridController()
        state = a.state_dict()
        state["errors"] = [1.0] * (a.config.error_window + 1)
        with pytest.raises(ValueError):
            HybridController().load_state_dict(state)

    def test_guarded_predictor_roundtrip(self):
        a = GuardedPredictor(None, fallbacks=default_fallbacks(4))
        h = np.abs(np.sin(np.arange(40, dtype=np.float64))) * 10 + 1
        for i in range(10, 40):
            a.predict_next(h[:i])
        a._drift_shift = 1.5
        b = GuardedPredictor(None, fallbacks=default_fallbacks(4))
        b.load_state_dict(_json_roundtrip(a.state_dict()))
        assert b.state_dict() == a.state_dict()
        assert b.served_by == a.served_by
        assert b.predict_next(h) == a.predict_next(h)

    def test_guarded_predictor_primary_state_mismatch_rejected(self):
        state = GuardedPredictor(None).state_dict()
        state["primary"] = {"anything": 1}
        with pytest.raises(ValueError):
            GuardedPredictor(None).load_state_dict(state)

    def test_adaptive_bookkeeping_roundtrip(self):
        from repro.core import AdaptiveLoadDynamics

        def make():
            return AdaptiveLoadDynamics(
                drift_window=6, drift_factor=2.0, min_refit_gap=10,
                refit_on_drift=CusumDetector(),
            )

        a = make()
        a.refit_history = [30, 60]
        a.failed_refits = 1
        a.drift_refits = 2
        a._recent_errors.extend([5.0, 7.5, 40.0])
        a._last_pred = 123.25
        a._last_len = 61
        a._since_refit = 3
        a._best_val_mape = 8.125
        for ape in (4.0, 5.0, 6.0, 90.0):
            a.refit_on_drift.update(ape)
        b = make()
        b.load_state_dict(_json_roundtrip(a.state_dict()))
        assert b.state_dict() == a.state_dict()
        assert b.predictor is None  # bookkeeping-only restore

    def test_adaptive_error_window_overflow_rejected(self):
        from repro.core import AdaptiveLoadDynamics

        a = AdaptiveLoadDynamics(drift_window=4)
        state = a.state_dict()
        state["recent_errors"] = [1.0] * 5
        with pytest.raises(ValueError):
            AdaptiveLoadDynamics(drift_window=4).load_state_dict(state)


# ----------------------------------------------------------------------
# chunked ingestion semantics
# ----------------------------------------------------------------------
def _diurnal(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    return np.clip(
        100 + 30 * np.sin(2 * np.pi * t / 48) + rng.normal(0, 5, n), 0, None
    )


def _stream_run(
    trace: np.ndarray,
    start: int,
    *,
    ckpt: str | None = None,
    resume: bool = False,
    faults: str | None = None,
    sanitizer: TraceSanitizer | None = None,
    monitor: bool = True,
    controller: bool = False,
    **cfg_kwargs,
):
    """One full streamed run with a fresh metrics registry."""
    reset_metrics()
    predictor = GuardedPredictor(None, fallbacks=default_fallbacks(48))
    mon = (
        ForecastMonitor(slo=SLOTracker(accuracy_slo_mape=30.0))
        if monitor else None
    )
    ctl = HybridController() if controller else None
    cfg_kwargs.setdefault("chunk_size", 64)
    cfg_kwargs.setdefault("size_jitter", 8)
    cfg_kwargs.setdefault("seed", 3)
    cfg = StreamConfig(
        checkpoint_dir=ckpt, resume=resume, checkpoint_every=5, **cfg_kwargs
    )
    kwargs = dict(
        spec=None, seed=0, monitor=mon, controller=ctl,
        stream=cfg, sanitizer=sanitizer,
    )
    if faults:
        with _faults.injected(faults):
            return serve_and_simulate(predictor, trace, start, **kwargs)
    return serve_and_simulate(predictor, trace, start, **kwargs)


def _report_fingerprint(rep) -> tuple:
    """Everything observable about a run, JSON-canonicalized."""
    return (
        rep.schedule.tobytes(),
        json.dumps(
            {
                "counters": rep.serving_counters,
                "served_by": rep.served_by,
                "breaker_state": rep.breaker_state,
                "transitions": rep.breaker_transitions,
                "quality": rep.quality,
                "drift": rep.drift,
                "slo": rep.slo,
                "health": rep.health,
                "controller": rep.controller,
                "stream": rep.stream,
                "provisioned": rep.result.provisioned.tobytes().hex(),
                "arrivals": rep.result.arrivals.tobytes().hex(),
                "vm_seconds": rep.result.vm_seconds,
            },
            sort_keys=True, default=str,
        ),
    )


class TestChunkStream:
    def test_deterministic_and_covering(self):
        trace = _diurnal(500)
        cfg = StreamConfig(chunk_size=32, size_jitter=6, seed=9)
        a = list(chunk_stream(trace, config=cfg))
        b = list(chunk_stream(trace, config=cfg))
        assert [c.offset for c in a] == [c.offset for c in b]
        assert all(np.array_equal(x.values, y.values) for x, y in zip(a, b))
        rebuilt = np.concatenate([c.values for c in a])
        np.testing.assert_array_equal(rebuilt, trace)
        arrivals = [c.arrival_s for c in a]
        assert arrivals == sorted(arrivals)

    def test_drop_fault_leaves_offset_gap(self):
        trace = _diurnal(300)
        cfg = StreamConfig(chunk_size=50, seed=1)
        with _faults.injected("drop@stream.chunk:2"):
            chunks = list(chunk_stream(trace, config=cfg))
        offsets = [c.offset for c in chunks]
        assert 50 not in offsets  # second chunk lost
        assert offsets[0] == 0 and offsets[1] == 100

    def test_stall_fault_delays_arrival(self):
        trace = _diurnal(300)
        cfg = StreamConfig(chunk_size=50, seed=1)
        plain = list(chunk_stream(trace, config=cfg))
        with _faults.injected("stall@stream.chunk:2=500"):
            stalled = list(chunk_stream(trace, config=cfg))
        assert stalled[1].arrival_s == pytest.approx(plain[1].arrival_s + 500.0)
        # Monotonic clock: successors never arrive before the stalled chunk.
        assert stalled[2].arrival_s >= stalled[1].arrival_s

    def test_config_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(chunk_size=0)
        with pytest.raises(ValueError):
            StreamConfig(chunk_size=4, size_jitter=4)
        with pytest.raises(ValueError):
            StreamConfig(deadline_s=0.0)
        with pytest.raises(ValueError):
            StreamConfig(service_time_per_interval=-1.0)


class TestStreamingDegradation:
    def test_clean_stream_serves_every_interval(self):
        trace = _diurnal(2000)
        rep = _stream_run(trace, 1000)
        assert rep.stream["intervals"] == 1000
        assert rep.stream["served_intervals"] == 1000
        assert rep.stream["held_intervals"] == 0
        assert rep.schedule.size == 1000
        assert np.all(np.isfinite(rep.schedule))

    def test_dropped_chunk_serves_gap_blind(self):
        trace = _diurnal(2000)
        rep = _stream_run(trace, 1000, faults="drop@stream.chunk:3")
        assert rep.stream["intervals"] == 1000  # nothing silently vanishes
        assert rep.stream["gap_intervals"] > 0
        assert rep.stream["held_intervals"] == rep.stream["gap_intervals"]

    def test_stalled_feed_holds_then_recovers(self):
        trace = _diurnal(2000)
        rep = _stream_run(
            trace, 1000, deadline_s=120.0, faults="stall@stream.chunk:4=600",
        )
        assert len(rep.stream["stalls"]) == 1
        stall = rep.stream["stalls"][0]
        assert stall["gap_s"] > stall["deadline_s"]
        assert rep.stream["held_intervals"] == stall["intervals_held"]
        # Recovery: every interval after the stalled chunk served normally.
        assert (
            rep.stream["served_intervals"]
            == 1000 - stall["intervals_held"]
        )
        # Held intervals repeat the pre-stall decision.
        held = rep.schedule[stall["offset"] : stall["offset"]
                            + stall["intervals_held"]]
        assert np.all(held == held[0])

    def test_backpressure_sheds_on_burst(self):
        trace = _diurnal(2000)
        # A long stall piles up a burst; with ~0.9s of work per interval
        # arriving every 1.0s the backlog drains slowly enough that the
        # tiny queue overflows and whole chunks are shed.
        rep = _stream_run(
            trace, 1000,
            deadline_s=None,
            service_time_per_interval=0.9,
            queue_capacity=64,
            faults="stall@stream.chunk:4=600",
        )
        assert rep.stream["shed_chunks"] > 0
        assert rep.stream["queue_peak_intervals"] > 64
        assert rep.stream["intervals"] == 1000

    def test_rejected_chunk_quarantined_and_served_from_fallbacks(self):
        trace = _diurnal(2000)
        trace[1300:1310] = np.nan
        rep = _stream_run(
            trace, 1000, sanitizer=TraceSanitizer(policy="reject"),
        )
        assert rep.stream["quarantined_chunks"] >= 1
        assert all("rejected" in q["reason"] for q in rep.stream["quarantine"])
        assert rep.stream["quarantined_intervals"] == sum(
            q["intervals"] for q in rep.stream["quarantine"]
        )
        assert rep.stream["intervals"] == 1000
        assert np.all(np.isfinite(rep.schedule))

    def test_repair_policy_keeps_chunk_in_service(self):
        trace = _diurnal(2000)
        trace[1300:1310] = np.nan
        rep = _stream_run(
            trace, 1000, sanitizer=TraceSanitizer(policy="interpolate"),
        )
        assert rep.stream["quarantined_chunks"] == 0
        assert rep.stream["repaired_values"] == 10
        assert rep.stream["served_intervals"] == 1000

    def test_seasonality_break_mid_stream_trips_drift(self):
        """A mid-stream period change must flow through monitoring."""
        n = 3000
        t = np.arange(n, dtype=np.float64)
        rng = np.random.default_rng(5)
        trace = 100 + 40 * np.sin(2 * np.pi * t / 48)
        trace[2000:] = 100 + 40 * np.sin(2 * np.pi * t[2000:] / 24)
        trace = np.clip(trace + rng.normal(0, 2, n), 0, None)
        rep = _stream_run(trace, 1000, size_jitter=0)
        assert rep.stream["served_intervals"] == 2000
        assert rep.drifted  # the break must not pass silently
        assert rep.health["status"] in ("degraded", "breached")

    def test_streamed_scenario_fixture(self):
        """The harness's seasonality_break scenario streams end to end."""
        from repro.autoscale.scenarios import SCENARIO_NAMES, default_scenarios

        assert "seasonality_break" in SCENARIO_NAMES
        scen = {
            s.name: s for s in default_scenarios(days=6, serve_days=3, seed=7)
        }["seasonality_break"]
        rep = _stream_run(scen.observed, scen.start, size_jitter=0)
        assert rep.stream["intervals"] == scen.observed.size - scen.start
        assert rep.drifted


class TestCheckpointResume:
    def test_kill_midstream_resume_bit_for_bit(self, tmp_path):
        trace = _diurnal(3000)
        trace[1500:1505] = np.nan  # exercise the sanitizer on the way
        ref = _stream_run(
            trace, 1000, ckpt=str(tmp_path / "ref"), deadline_s=120.0,
        )
        with pytest.raises(_faults.SimulatedCrash):
            _stream_run(
                trace, 1000, ckpt=str(tmp_path / "crash"), deadline_s=120.0,
                faults="kill@stream.chunk:20",
            )
        resumed = _stream_run(
            trace, 1000, ckpt=str(tmp_path / "crash"), deadline_s=120.0,
            resume=True,
        )
        assert _report_fingerprint(resumed) == _report_fingerprint(ref)

    def test_kill_midstream_resume_with_controller(self, tmp_path):
        trace = _diurnal(2500)
        ref = _stream_run(trace, 1500, ckpt=str(tmp_path / "ref"),
                          controller=True)
        with pytest.raises(_faults.SimulatedCrash):
            _stream_run(trace, 1500, ckpt=str(tmp_path / "crash"),
                        controller=True, faults="kill@stream.chunk:10")
        resumed = _stream_run(trace, 1500, ckpt=str(tmp_path / "crash"),
                              controller=True, resume=True)
        assert _report_fingerprint(resumed) == _report_fingerprint(ref)

    def test_crash_before_first_checkpoint_restarts_fresh(self, tmp_path):
        trace = _diurnal(2000)
        ref = _stream_run(trace, 1000, ckpt=str(tmp_path / "ref"))
        with pytest.raises(_faults.SimulatedCrash):
            _stream_run(trace, 1000, ckpt=str(tmp_path / "crash"),
                        faults="kill@stream.chunk:2")  # before checkpoint 1
        resumed = _stream_run(trace, 1000, ckpt=str(tmp_path / "crash"),
                              resume=True)
        assert _report_fingerprint(resumed) == _report_fingerprint(ref)

    def test_resume_after_finish_is_idempotent(self, tmp_path):
        trace = _diurnal(2000)
        ref = _stream_run(trace, 1000, ckpt=str(tmp_path / "done"))
        again = _stream_run(trace, 1000, ckpt=str(tmp_path / "done"),
                            resume=True)
        assert _report_fingerprint(again) == _report_fingerprint(ref)

    def test_schema_mismatch_is_typed_error(self, tmp_path):
        trace = _diurnal(2000)
        _stream_run(trace, 1000, ckpt=str(tmp_path / "ck"))
        path = tmp_path / "ck" / "checkpoint.json"
        state = json.loads(path.read_text())
        state["schema"] = 99
        path.write_text(json.dumps(state))
        with pytest.raises(CheckpointError, match="schema"):
            _stream_run(trace, 1000, ckpt=str(tmp_path / "ck"), resume=True)

    def test_corrupt_checkpoint_is_typed_error(self, tmp_path):
        trace = _diurnal(2000)
        _stream_run(trace, 1000, ckpt=str(tmp_path / "ck"))
        (tmp_path / "ck" / "checkpoint.json").write_text("{truncated")
        with pytest.raises(CheckpointError, match="unreadable"):
            _stream_run(trace, 1000, ckpt=str(tmp_path / "ck"), resume=True)

    def test_identity_mismatch_is_typed_error(self, tmp_path):
        trace = _diurnal(2000)
        _stream_run(trace, 1000, ckpt=str(tmp_path / "ck"), chunk_size=64)
        with pytest.raises(CheckpointError, match="identity"):
            _stream_run(trace, 1000, ckpt=str(tmp_path / "ck"),
                        resume=True, chunk_size=32)

    def test_truncated_sidecar_is_typed_error(self, tmp_path):
        trace = _diurnal(2000)
        _stream_run(trace, 1000, ckpt=str(tmp_path / "ck"))
        sidecar = tmp_path / "ck" / "schedule.f64"
        sidecar.write_bytes(sidecar.read_bytes()[:64])
        with pytest.raises(CheckpointError, match="sidecar"):
            _stream_run(trace, 1000, ckpt=str(tmp_path / "ck"), resume=True)

    def test_resume_without_checkpoint_dir_is_typed_error(self):
        server = StreamingServer(
            GuardedPredictor(None), np.ones(10), config=StreamConfig()
        )
        with pytest.raises(CheckpointError, match="directory"):
            server.restore()

    def test_checkpoint_overhead_intervals_match_sidecars(self, tmp_path):
        """Sidecars + checkpoint always agree on the durable prefix."""
        trace = _diurnal(2000)
        _stream_run(trace, 1000, ckpt=str(tmp_path / "ck"))
        state = json.loads((tmp_path / "ck" / "checkpoint.json").read_text())
        n = state["sidecar"]["n"]
        assert n == 1000
        for name in ("schedule.f64", "actuals.f64"):
            blob = (tmp_path / "ck" / name).read_bytes()
            assert len(blob) == n * 8

    def test_stream_section_on_report(self):
        trace = _diurnal(2000)
        rep = _stream_run(trace, 1000)
        assert rep.stream is not None
        for key in ("chunks", "intervals", "served_intervals",
                    "checkpoints_written", "stalls", "quarantine"):
            assert key in rep.stream
        # Batch path keeps stream=None.
        reset_metrics()
        batch = serve_and_simulate(
            GuardedPredictor(None, fallbacks=default_fallbacks(48)),
            trace, 1800,
        )
        assert batch.stream is None
