"""Tests for workload characterization statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.traces.stats import (
    autocorrelation,
    burstiness,
    characterize,
    coefficient_of_variation,
    dominant_period,
    hurst_exponent,
    peak_to_median,
    seasonality_strength,
    trend_slope,
)


@pytest.fixture
def sine():
    t = np.arange(480)
    return 100 + 50 * np.sin(2 * np.pi * t / 24)


class TestAutocorrelation:
    def test_periodic_peak(self, sine):
        # Biased estimator: perfect periodicity gives (1 - lag/n).
        assert autocorrelation(sine, 24) == pytest.approx(1.0 - 24 / 480, abs=1e-6)
        assert autocorrelation(sine, 12) == pytest.approx(-(1.0 - 12 / 480), abs=1e-6)

    def test_noise_near_zero(self, rng):
        s = rng.standard_normal(2000)
        assert abs(autocorrelation(s, 5)) < 0.1

    def test_constant_series(self):
        assert autocorrelation(np.full(50, 3.0), 5) == 0.0

    def test_lag_validation(self, sine):
        with pytest.raises(ValueError):
            autocorrelation(sine, 0)
        assert autocorrelation(sine[:10], 9) == 0.0


class TestSeasonality:
    def test_pure_sine_is_fully_seasonal(self, sine):
        assert seasonality_strength(sine, 24) == pytest.approx(1.0, abs=1e-9)

    def test_noise_is_not(self, rng):
        assert seasonality_strength(rng.standard_normal(960), 24) < 0.2

    def test_wrong_period_scores_low(self, sine):
        assert seasonality_strength(sine, 17) < 0.3

    def test_period_validation(self, sine):
        with pytest.raises(ValueError):
            seasonality_strength(sine, 1)


class TestDominantPeriod:
    def test_recovers_sine_period(self, sine):
        assert dominant_period(sine) == 24

    def test_constant_has_none(self):
        assert dominant_period(np.full(100, 2.0)) is None

    def test_max_period_filter(self, sine):
        assert dominant_period(sine, max_period=10) is None


class TestScalars:
    def test_burstiness_regular_vs_bursty(self):
        regular = np.full(100, 10.0)
        assert burstiness(regular) == pytest.approx(-1.0)
        bursty = np.zeros(100)
        bursty[::10] = 100.0
        assert burstiness(bursty) > 0.2

    def test_cv_known(self):
        s = np.array([5.0, 15.0, 5.0, 15.0])  # mean 10, std 5
        assert coefficient_of_variation(s) == pytest.approx(0.5)

    def test_peak_to_median(self):
        s = np.ones(99)
        s[0] = 10.0
        assert peak_to_median(s) == pytest.approx(10.0)

    def test_trend_slope_direction(self):
        up = np.linspace(10, 20, 100)
        down = np.linspace(20, 10, 100)
        assert trend_slope(up) > 0.5
        assert trend_slope(down) < -0.5
        assert abs(trend_slope(np.full(50, 7.0))) < 1e-9

    @given(arrays(np.float64, st.integers(3, 60), elements=st.floats(0.0, 1e6)))
    @settings(max_examples=40, deadline=None)
    def test_burstiness_bounded(self, s):
        assert -1.0 <= burstiness(s) <= 1.0


class TestHurst:
    def test_random_walk_is_persistent(self, rng):
        walk = np.cumsum(rng.standard_normal(4096))
        assert hurst_exponent(walk) > 0.8

    def test_white_noise_near_half(self, rng):
        noise = rng.standard_normal(4096)
        assert 0.3 < hurst_exponent(noise) < 0.7

    def test_short_series_defaults(self):
        assert hurst_exponent(np.arange(10.0)) == 0.5

    def test_clamped(self, rng):
        assert 0.0 <= hurst_exponent(rng.standard_normal(512)) <= 1.0


class TestCharacterize:
    def test_full_report_keys(self, sine):
        rep = characterize(sine, daily_period=24)
        for key in ("n", "mean", "cv", "burstiness", "peak_to_median",
                    "trend_slope", "hurst", "dominant_period",
                    "daily_autocorr", "daily_seasonality"):
            assert key in rep
        assert rep["dominant_period"] == 24
        assert rep["daily_seasonality"] == pytest.approx(1.0, abs=1e-9)

    def test_distinguishes_builtin_traces(self):
        """Wikipedia must characterize as seasonal; Google as not."""
        from repro.traces import get_trace

        wiki = characterize(get_trace("wiki").at_interval(30), daily_period=48)
        gl = characterize(get_trace("gl").at_interval(30), daily_period=48)
        assert wiki["daily_seasonality"] > 0.5
        assert gl["daily_seasonality"] < wiki["daily_seasonality"]

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            characterize(np.array([1.0, 2.0]))
