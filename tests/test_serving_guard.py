"""Guarded serving: zero overhead, fallback chain, breaker, corrupt models."""

import numpy as np
import pytest

from repro.baselines import LastValuePredictor, SeasonalNaivePredictor, walk_forward
from repro.baselines.base import Predictor
from repro.core import LSTMHyperparameters, LoadDynamicsPredictor, MinMaxScaler
from repro.core.predictor import NaiveLastValueModel
from repro.resilience import SimulatedCrash, faults
from repro.serving import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CorruptModelError,
    GuardedPredictor,
    default_fallbacks,
    daily_period,
    serve_and_simulate,
)


def series():
    x = np.arange(240.0)
    return np.abs(np.sin(x / 12)) * 400 + 100 + 10 * np.cos(x / 5)


def naive_predictor(s):
    return LoadDynamicsPredictor(
        model=NaiveLastValueModel(),
        scaler=MinMaxScaler().fit(s),
        hyperparameters=LSTMHyperparameters(1, 1, 1, 1),
        family="naive",
    )


class _ScriptedPredictor(Predictor):
    """Returns scripted values/exceptions in order, then repeats the last."""

    name = "scripted"

    def __init__(self, *outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def predict_next(self, history):
        out = self.outcomes[min(self.calls, len(self.outcomes) - 1)]
        self.calls += 1
        if isinstance(out, BaseException):
            raise out
        return out


class TestZeroOverhead:
    def test_guarded_predictions_bit_for_bit_identical(self):
        s = series()
        raw = walk_forward(naive_predictor(s), s, 200, 240)
        guarded = GuardedPredictor(naive_predictor(s))
        safe = walk_forward(guarded, s, 200, 240)
        # Exact equality, not approx: the guard must not touch a healthy
        # model's in-range forecasts.
        assert (raw == safe).all()
        assert guarded.served_by == {"primary": 40}

    def test_clean_run_records_no_faults(self):
        s = series()
        guarded = GuardedPredictor(naive_predictor(s))
        walk_forward(guarded, s, 200, 240)
        assert guarded.breaker.state == CLOSED
        assert guarded.breaker.transitions == []


class TestValidationAndFallback:
    def test_nonfinite_forecast_goes_to_fallback(self):
        guarded = GuardedPredictor(_ScriptedPredictor(float("nan")))
        h = np.array([5.0, 6.0, 7.0])
        assert guarded.predict_next(h) == 7.0
        assert guarded.served_by == {"last-value": 1}

    def test_negative_forecast_clamped_to_zero(self):
        guarded = GuardedPredictor(_ScriptedPredictor(-25.0))
        assert guarded.predict_next(np.array([5.0, 6.0])) == 0.0
        assert guarded.served_by == {"primary": 1}

    def test_explosion_clamped_to_rolling_bound(self):
        guarded = GuardedPredictor(_ScriptedPredictor(1e12), guard_factor=10.0)
        h = np.array([50.0, 80.0, 60.0])
        assert guarded.predict_next(h) == 800.0  # 10 x rolling max

    def test_fallback_chain_order(self):
        fallbacks = [SeasonalNaivePredictor(4), LastValuePredictor()]
        guarded = GuardedPredictor(_ScriptedPredictor(float("inf")), fallbacks=fallbacks)
        h = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        # Seasonal naive (period 4) answers first: h[-4] == 5.
        assert guarded.predict_next(h) == 5.0
        assert guarded.served_by == {"seasonal-naive-4": 1}

    def test_primary_exception_goes_to_fallback(self):
        guarded = GuardedPredictor(_ScriptedPredictor(RuntimeError("sick")))
        assert guarded.predict_next(np.array([3.0])) == 3.0
        assert guarded.served_by == {"last-value": 1}

    def test_simulated_crash_propagates(self):
        guarded = GuardedPredictor(_ScriptedPredictor(SimulatedCrash("kill")))
        with pytest.raises(SimulatedCrash):
            guarded.predict_next(np.array([1.0]))

    def test_all_stages_dry_serves_zero(self):
        guarded = GuardedPredictor(None, fallbacks=[])
        assert guarded.predict_next(np.array([np.nan])) == 0.0
        assert guarded.served_by == {"zero": 1}

    def test_output_always_finite_under_nan_faults(self):
        s = series()
        guarded = GuardedPredictor(naive_predictor(s), fallbacks=default_fallbacks(24))
        with faults.injected("nan@serve.predict:*"):
            preds = walk_forward(guarded, s, 200, 240)
        assert np.all(np.isfinite(preds)) and np.all(preds >= 0)
        assert guarded.served_by.get("primary", 0) == 0


class TestBreaker:
    def test_opens_under_sustained_failure_and_sheds(self):
        breaker = CircuitBreaker(min_calls=4, window=8, cooldown=5, probes=2)
        guarded = GuardedPredictor(
            _ScriptedPredictor(RuntimeError("down")), breaker=breaker
        )
        h = np.array([10.0, 11.0])
        for _ in range(4):
            guarded.predict_next(h)
        assert breaker.state == OPEN
        calls_when_open = guarded.primary.calls
        guarded.predict_next(h)  # shed: primary not probed
        assert guarded.primary.calls == calls_when_open

    def test_half_open_probe_recovers(self):
        breaker = CircuitBreaker(min_calls=2, window=4, cooldown=2, probes=2)
        primary = _ScriptedPredictor(RuntimeError("a"), RuntimeError("b"), 42.0)
        guarded = GuardedPredictor(primary, breaker=breaker)
        h = np.array([40.0, 41.0])
        guarded.predict_next(h)
        guarded.predict_next(h)
        assert breaker.state == OPEN
        # Cool-down burns on shed calls, then a probe is admitted.
        outs = [guarded.predict_next(h) for _ in range(4)]
        assert breaker.state in (HALF_OPEN, CLOSED)
        assert 42.0 in outs
        assert [t[1] for t in breaker.transitions[:2]] == [OPEN, HALF_OPEN]

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(min_calls=2, window=4, cooldown=1, probes=2)
        guarded = GuardedPredictor(
            _ScriptedPredictor(RuntimeError("down")), breaker=breaker
        )
        h = np.array([1.0])
        for _ in range(5):
            guarded.predict_next(h)
        assert ("half_open", "open", "probe_failed") in breaker.transitions


class TestCorruptModel:
    def test_truncated_manifest_raises_typed_error(self, tmp_path):
        s = series()
        directory = naive_predictor(s).save(tmp_path / "model")
        manifest = directory / "predictor.json"
        manifest.write_text(manifest.read_text()[:25])
        with pytest.raises(CorruptModelError) as exc:
            GuardedPredictor.load(directory)
        assert exc.value.directory == str(directory)

    def test_corrupt_weight_file_raises_typed_error(self, tmp_path):
        s = series()
        directory = naive_predictor(s).save(tmp_path / "model")
        manifest = directory / "predictor.json"
        # Point the manifest at the npz family and plant garbage weights.
        manifest.write_text(manifest.read_text().replace('"naive"', '"lstm"'))
        (directory / "model.npz").write_bytes(b"not a zip archive")
        with pytest.raises(CorruptModelError):
            GuardedPredictor.load(directory)

    def test_injected_corruption_raises_typed_error(self, tmp_path):
        directory = naive_predictor(series()).save(tmp_path / "model")
        with faults.injected("corrupt@model.load:*"):
            with pytest.raises(CorruptModelError):
                GuardedPredictor.load(directory)

    def test_on_corrupt_fallback_still_serves(self, tmp_path):
        s = series()
        directory = naive_predictor(s).save(tmp_path / "model")
        (directory / "predictor.json").write_text("{")
        guarded = GuardedPredictor.load(directory, on_corrupt="fallback")
        assert guarded.primary is None
        p = guarded.predict_next(s)
        assert np.isfinite(p) and p >= 0

    def test_intact_directory_loads_primary(self, tmp_path):
        s = series()
        directory = naive_predictor(s).save(tmp_path / "model")
        guarded = GuardedPredictor.load(directory)
        assert guarded.primary is not None
        assert guarded.predict_next(s) == pytest.approx(s[-1])


class TestOnlineLoop:
    def test_daily_period(self):
        assert daily_period(10) == 144
        assert daily_period(30) == 48
        assert daily_period(0) is None
        assert daily_period(1441) is None

    def test_serve_and_simulate_reports(self):
        s = series()
        guarded = GuardedPredictor(naive_predictor(s))
        report = serve_and_simulate(guarded, s, 200)
        assert report.result.n_intervals == 40
        assert report.schedule.shape == (40,)
        assert report.served_by == {"primary": 40}
        assert report.n_fallback_serves == 0
        assert "serving.predictions" in report.serving_counters

    def test_simulation_survives_boom_faults(self):
        s = series()
        guarded = GuardedPredictor(naive_predictor(s), fallbacks=default_fallbacks(24))
        with faults.injected("boom@serve.predict:*"):
            report = serve_and_simulate(guarded, s, 200)
        assert np.all(np.isfinite(report.schedule))
        assert report.n_fallback_serves == 40
        assert any(t[1] == OPEN for t in report.breaker_transitions)
