"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for cmd in ("list", "fit", "predict", "simulate", "fig2", "fig5",
                    "fig9", "fig10", "ablation"):
            args = parser.parse_args(
                [cmd] + (["gl-30m"] if cmd in ("fit", "simulate") else
                         ["d", "gl-30m"] if cmd == "predict" else [])
            )
            assert args.command == cmd

    def test_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "fb-10m", "--guarded", "--adaptive",
             "--repair", "interpolate", "--refit-every", "2"]
        )
        assert args.guarded and args.adaptive
        assert args.repair == "interpolate"
        assert args.refit_every == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "fb-10m", "--repair", "drop"])

    def test_simulate_monitor_options(self):
        args = build_parser().parse_args(
            ["simulate", "fb-10m", "--monitor", "--slo-latency-ms", "5",
             "--slo-mape", "25", "--metrics-out", "snap.json"]
        )
        assert args.monitor
        assert args.slo_latency_ms == 5.0
        assert args.slo_mape == 25.0
        assert args.metrics_out == "snap.json"

    def test_metrics_command_registered(self):
        args = build_parser().parse_args(
            ["metrics", "snap.json", "--format", "json", "--prefix", "monitor."]
        )
        assert args.command == "metrics"
        assert args.snapshot == "snap.json"
        assert args.format == "json"
        assert args.prefix == "monitor."
        assert build_parser().parse_args(["metrics", "x"]).format == "prometheus"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics", "x", "--format", "xml"])

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig9_options(self):
        args = build_parser().parse_args(
            ["fig9", "--configs", "gl-30m", "fb-10m", "--max-iters", "3",
             "--no-brute-force", "--table4"]
        )
        assert args.configs == ["gl-30m", "fb-10m"]
        assert args.max_iters == 3
        assert args.no_brute_force and args.table4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gl-30m" in out
        assert "cloudinsight" in out

    def test_fit_and_predict_roundtrip(self, capsys, tmp_path):
        save_dir = str(tmp_path / "model")
        rc = main([
            "fit", "fb-10m", "--budget", "tiny",
            "--max-iters", "3", "--epochs", "5", "--save", save_dir,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "validation MAPE" in out and "saved predictor" in out

        rc = main(["predict", save_dir, "fb-10m"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted next JAR" in out

    def test_simulate_guarded(self, capsys):
        rc = main([
            "simulate", "fb-10m", "--budget", "tiny",
            "--max-iters", "2", "--epochs", "3", "--guarded",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean turnaround" in out
        assert "serving.predictions" in out

    def test_simulate_guarded_survives_corrupt_model(self, capsys, tmp_path):
        save_dir = str(tmp_path / "model")
        rc = main([
            "fit", "fb-10m", "--budget", "tiny",
            "--max-iters", "2", "--epochs", "3", "--save", save_dir,
        ])
        assert rc == 0
        manifest = tmp_path / "model" / "predictor.json"
        manifest.write_text(manifest.read_text()[:30])
        capsys.readouterr()
        rc = main(["simulate", "fb-10m", "--guarded", "--model-dir", save_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "guarded[none]" in out  # degraded to the fallback chain

    def test_simulate_conflicting_flags(self, capsys, tmp_path):
        rc = main(["simulate", "fb-10m", "--adaptive", "--model-dir", "x"])
        assert rc == 2

    def test_simulate_monitored_and_metrics_render(self, capsys, tmp_path):
        snap = str(tmp_path / "snap.json")
        rc = main([
            "simulate", "fb-10m", "--budget", "tiny",
            "--max-iters", "2", "--epochs", "3",
            "--slo-mape", "60", "--metrics-out", snap,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rolling MAPE" in out
        assert "drift [cusum" in out
        assert "SLO [accuracy" in out
        assert "health" in out
        assert snap in out

        rc = main(["metrics", snap])
        assert rc == 0
        prom = capsys.readouterr().out
        assert "# TYPE monitor_intervals counter" in prom
        assert "monitor_latency_ms_count" in prom

        rc = main(["metrics", snap, "--format", "json", "--prefix", "monitor."])
        assert rc == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        metrics = payload["metrics"]
        assert metrics and all(k.startswith("monitor.") for k in metrics)

    def test_metrics_bad_snapshot_errors(self, capsys, tmp_path):
        assert main(["metrics", str(tmp_path / "missing.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text('{"no_metrics": true}')
        assert main(["metrics", str(bad)]) == 2

    def test_fit_extended_space(self, capsys, tmp_path):
        rc = main([
            "fit", "fb-10m", "--budget", "tiny",
            "--max-iters", "3", "--epochs", "5", "--extended",
        ])
        assert rc == 0
        assert "selected" in capsys.readouterr().out


class TestAutoscale:
    def test_parser_options(self):
        args = build_parser().parse_args(
            ["autoscale", "--quick", "--scenarios", "steady", "flash_crowd",
             "--policies", "hybrid", "--seed", "3", "--json-out", "m.json"]
        )
        assert args.command == "autoscale"
        assert args.scenarios == ["steady", "flash_crowd"]
        assert args.policies == ["hybrid"]
        assert args.quick and args.seed == 3 and args.json_out == "m.json"

    def test_unknown_names_error(self, capsys):
        assert main(["autoscale", "--scenarios", "bogus"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
        assert main(["autoscale", "--policies", "oracle"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_quick_single_cell_runs(self, capsys, tmp_path):
        out_json = tmp_path / "matrix.json"
        rc = main([
            "autoscale", "--quick", "--scenarios", "steady",
            "--policies", "reactive", "hybrid", "--json-out", str(out_json),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "steady" in out and "reactive" in out and "hybrid" in out
        import json

        payload = json.loads(out_json.read_text())
        cell = payload["scenarios"]["steady"]["policies"]
        assert set(cell) == {"reactive", "hybrid"}
        assert cell["hybrid"]["controller"]["n_decisions"] > 0
