"""Tests for the LoadDynamics workflow and the deployable predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesopt import IntParam, SearchSpace
from repro.bayesopt.grid_search import GridSearch
from repro.bayesopt.random_search import RandomSearch
from repro.core import (
    FrameworkSettings,
    LoadDynamics,
    LoadDynamicsPredictor,
    LSTMHyperparameters,
    MinMaxScaler,
    search_space_for,
)
from repro.metrics import mape
from repro.nn import LSTMRegressor


@pytest.fixture
def tiny_space():
    return search_space_for("default", "tiny")


@pytest.fixture
def fitted(sine_series, tiny_space, tiny_settings):
    ld = LoadDynamics(space=tiny_space, settings=tiny_settings)
    predictor, report = ld.fit(sine_series)
    return ld, predictor, report


class TestWorkflow:
    def test_fit_returns_predictor_and_report(self, fitted):
        ld, predictor, report = fitted
        assert isinstance(predictor, LoadDynamicsPredictor)
        assert report.n_trials == ld.settings.max_iters
        assert np.isfinite(report.best_validation_mape)
        assert report.total_seconds > 0

    def test_best_is_minimum_of_trials(self, fitted):
        _, predictor, report = fitted
        feasible = [t.value for t in report.trials if t.value < 1e5]
        assert report.best_validation_mape == pytest.approx(min(feasible))

    def test_predictor_respects_selected_hyperparameters(self, fitted):
        _, predictor, report = fitted
        hp = report.best_hyperparameters
        assert predictor.model.hidden_size == hp.cell_size
        assert predictor.model.num_layers == hp.num_layers
        assert predictor.min_history == hp.history_len

    def test_learns_the_sine(self, sine_series, tiny_space):
        settings = FrameworkSettings.tiny(max_iters=6, epochs=30)
        ld = LoadDynamics(space=tiny_space, settings=settings)
        predictor, _ = ld.fit(sine_series)
        test_mape = ld.evaluate(predictor, sine_series)
        # persistence on this sine is ~12%; the tuned LSTM must beat it.
        assert test_mape < 10.0

    def test_deterministic_given_seed(self, sine_series, tiny_space):
        def run():
            ld = LoadDynamics(space=tiny_space, settings=FrameworkSettings.tiny())
            _, report = ld.fit(sine_series)
            return report.best_validation_mape

        assert run() == pytest.approx(run())

    def test_scaler_fit_on_train_only(self, tiny_space, tiny_settings):
        """Leakage guard: a huge test-split value must not change the
        scaler, hence must not change training behaviour."""
        base = np.abs(np.sin(np.arange(120.0) / 6)) * 100 + 50
        inflated = base.copy()
        inflated[-5:] *= 50.0  # extreme values only in the test split

        ld1 = LoadDynamics(space=tiny_space, settings=tiny_settings)
        _, rep1 = ld1.fit(base)
        ld2 = LoadDynamics(space=tiny_space, settings=tiny_settings)
        _, rep2 = ld2.fit(inflated)
        assert rep1.best_validation_mape == pytest.approx(
            rep2.best_validation_mape, rel=1e-9
        )

    def test_infeasible_history_degrades_gracefully(self, tiny_settings):
        """History lengths longer than the training split must be counted
        infeasible; an all-infeasible search must degrade to the naive
        last-value fallback instead of raising."""
        space = SearchSpace(
            [
                IntParam("history_len", 500, 600),
                IntParam("cell_size", 2, 4),
                IntParam("num_layers", 1, 1),
                IntParam("batch_size", 4, 8),
            ]
        )
        ld = LoadDynamics(space=space, settings=tiny_settings)
        series = np.abs(np.sin(np.arange(100.0))) + 1.0
        predictor, report = ld.fit(series)
        assert report.degraded
        assert report.degraded_reason == "no_feasible_trials"
        assert report.n_infeasible == report.n_trials == ld.settings.max_iters
        assert all(t.metadata["infeasible"] for t in report.trials)
        # The fallback is persistence: next prediction == last observation.
        assert predictor.predict_next(series) == pytest.approx(series[-1])

    def test_too_short_series_raises(self, tiny_space, tiny_settings):
        ld = LoadDynamics(space=tiny_space, settings=tiny_settings)
        with pytest.raises(ValueError, match="too short"):
            ld.fit(np.ones(5))

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (RandomSearch, {}),
        (GridSearch, {"points_per_dim": 2, "shuffle": True, "seed": 0}),
    ])
    def test_alternative_optimizers(self, sine_series, tiny_space, tiny_settings,
                                    optimizer_cls, kwargs):
        ld = LoadDynamics(
            space=tiny_space,
            settings=tiny_settings,
            optimizer_cls=optimizer_cls,
            optimizer_kwargs=kwargs,
        )
        predictor, report = ld.fit(sine_series)
        assert report.n_trials >= 1
        assert np.isfinite(predictor.validation_mape)

    def test_trial_values_array(self, fitted):
        _, _, report = fitted
        vals = report.trial_values()
        assert vals.shape == (report.n_trials,)


class TestPredictor:
    def test_predict_next_scalar(self, fitted, sine_series):
        _, predictor, _ = fitted
        v = predictor.predict_next(sine_series)
        assert np.isfinite(v) and v >= 0.0

    def test_predict_next_short_history_fallback(self, fitted):
        _, predictor, _ = fitted
        short = np.array([42.0])
        assert predictor.predict_next(short) == 42.0

    def test_predict_series_matches_predict_next(self, fitted, sine_series):
        """The batched path must agree with the per-interval path."""
        _, predictor, _ = fitted
        start = 210
        batched = predictor.predict_series(sine_series, start)
        stepped = np.array(
            [predictor.predict_next(sine_series[:i]) for i in range(start, len(sine_series))]
        )
        np.testing.assert_allclose(batched, stepped, atol=1e-9)

    def test_predict_series_full_coverage(self, fitted, sine_series):
        _, predictor, _ = fitted
        out = predictor.predict_series(sine_series, 200, 220)
        assert out.shape == (20,)
        assert np.all(np.isfinite(out))

    def test_predictions_nonnegative(self, fitted):
        _, predictor, _ = fitted
        tiny = np.full(predictor.min_history + 1, 1e-6)
        assert predictor.predict_next(tiny) >= 0.0

    def test_save_load_roundtrip(self, fitted, sine_series, tmp_path):
        _, predictor, _ = fitted
        predictor.save(tmp_path / "p")
        loaded = LoadDynamicsPredictor.load(tmp_path / "p")
        assert loaded.hyperparameters == predictor.hyperparameters
        assert loaded.predict_next(sine_series) == pytest.approx(
            predictor.predict_next(sine_series)
        )

    def test_constructor_consistency_checks(self, rng):
        model = LSTMRegressor(hidden_size=4, num_layers=1)
        scaler = MinMaxScaler().fit(np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match="hidden size"):
            LoadDynamicsPredictor(
                model, scaler, LSTMHyperparameters(4, 8, 1, 8)
            )
        with pytest.raises(ValueError, match="layer count"):
            LoadDynamicsPredictor(
                model, scaler, LSTMHyperparameters(4, 4, 2, 8)
            )


class TestEvaluate:
    def test_evaluate_uses_last_20pct(self, fitted, sine_series):
        ld, predictor, _ = fitted
        m = ld.evaluate(predictor, sine_series)
        start = int(round(0.8 * len(sine_series)))
        manual = mape(
            predictor.predict_series(sine_series, start), sine_series[start:]
        )
        assert m == pytest.approx(manual)
