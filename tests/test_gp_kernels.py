"""Tests for the GP kernels: PSD-ness, symmetry, analytic gradients."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.gp import (
    RBF,
    ConstantKernel,
    Matern32,
    Matern52,
    Product,
    Sum,
    WhiteNoise,
)

ALL_KERNELS = [
    lambda: RBF(variance=1.5, lengthscale=0.7),
    lambda: RBF(ard=True, n_dims=3, lengthscale=[0.5, 1.0, 2.0]),
    lambda: Matern32(variance=0.8, lengthscale=1.2),
    lambda: Matern52(variance=2.0, lengthscale=0.5),
    lambda: Matern52(ard=True, n_dims=3),
    lambda: WhiteNoise(noise=0.1),
    lambda: ConstantKernel(0.5),
    lambda: Sum(RBF(), WhiteNoise(0.01)),
    lambda: Product(RBF(lengthscale=2.0), ConstantKernel(0.3)),
]


@pytest.fixture
def X(rng):
    return rng.uniform(0, 1, (12, 3))


class TestKernelBasics:
    @pytest.mark.parametrize("factory", ALL_KERNELS)
    def test_gram_symmetric_psd(self, factory, X):
        K = factory()(X)
        np.testing.assert_allclose(K, K.T, atol=1e-12)
        eig = np.linalg.eigvalsh(K)
        assert eig.min() > -1e-9

    @pytest.mark.parametrize("factory", ALL_KERNELS)
    def test_diag_matches_gram(self, factory, X):
        k = factory()
        np.testing.assert_allclose(k.diag(X), np.diag(k(X)), atol=1e-12)

    @pytest.mark.parametrize("factory", ALL_KERNELS)
    def test_theta_roundtrip(self, factory):
        k = factory()
        t = k.theta.copy()
        k.theta = t
        np.testing.assert_allclose(k.theta, t)

    @pytest.mark.parametrize("factory", ALL_KERNELS)
    def test_bounds_shape(self, factory):
        k = factory()
        assert k.bounds.shape == (k.n_theta, 2)
        assert np.all(k.bounds[:, 0] < k.bounds[:, 1])

    def test_cross_kernel_shape(self, X, rng):
        k = RBF()
        X2 = rng.uniform(0, 1, (5, 3))
        assert k(X, X2).shape == (12, 5)

    def test_stationary_unit_diagonal_scaling(self, X):
        k = RBF(variance=3.0)
        np.testing.assert_allclose(np.diag(k(X)), 3.0)

    def test_white_noise_off_diagonal_zero(self, X, rng):
        k = WhiteNoise(0.5)
        np.testing.assert_allclose(k(X) - 0.5 * np.eye(12), 0.0)
        X2 = rng.uniform(0, 1, (4, 3))
        np.testing.assert_allclose(k(X, X2), 0.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RBF(variance=-1.0)
        with pytest.raises(ValueError):
            RBF(lengthscale=0.0)
        with pytest.raises(ValueError):
            WhiteNoise(0.0)
        with pytest.raises(ValueError):
            RBF(ard=True)  # needs n_dims

    def test_composition_operators(self, X):
        k = RBF() + WhiteNoise(0.1)
        assert isinstance(k, Sum)
        k2 = RBF() * ConstantKernel(2.0)
        assert isinstance(k2, Product)
        np.testing.assert_allclose(k2(X), 2.0 * RBF()(X), atol=1e-12)


class TestKernelGradients:
    @pytest.mark.parametrize("factory", ALL_KERNELS)
    def test_analytic_matches_numeric(self, factory, X):
        k = factory()
        grads = k.gradients(X)
        t0 = k.theta.copy()
        eps = 1e-6
        for j in range(k.n_theta):
            tp = t0.copy()
            tp[j] += eps
            k.theta = tp
            Kp = k(X)
            tm = t0.copy()
            tm[j] -= eps
            k.theta = tm
            Km = k(X)
            k.theta = t0
            num = (Kp - Km) / (2 * eps)
            np.testing.assert_allclose(grads[j], num, atol=1e-5)

    def test_gradient_stack_shape(self, X):
        k = RBF(ard=True, n_dims=3)
        assert k.gradients(X).shape == (4, 12, 12)


class TestKernelProperties:
    @given(
        x=arrays(np.float64, (6, 2), elements=st.floats(-5, 5)),
        ls=st.floats(0.1, 10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_rbf_bounded_by_variance(self, x, ls):
        k = RBF(variance=2.0, lengthscale=ls)
        K = k(x)
        assert np.all(K <= 2.0 + 1e-12)
        assert np.all(K >= 0.0)

    @given(x=arrays(np.float64, (5, 2), elements=st.floats(-3, 3, width=32)))
    @settings(max_examples=30, deadline=None)
    def test_matern_self_similarity_is_max(self, x):
        K = Matern52()(x)
        diag = np.diag(K)
        assert np.all(K <= diag[:, None] + 1e-9)
