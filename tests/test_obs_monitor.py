"""Tests for ``repro.obs.monitor``: quality, drift, SLOs, serving wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.baselines import LastValuePredictor, walk_forward
from repro.core import AdaptiveLoadDynamics, FrameworkSettings, search_space_for
from repro.obs.monitor import (
    BREACHED,
    DEGRADED,
    HEALTHY,
    CusumDetector,
    DriftDetector,
    ForecastMonitor,
    HealthReport,
    PageHinkleyDetector,
    QualityTracker,
    SLOTracker,
    default_detectors,
)
from repro.serving import GuardedPredictor, serve_and_simulate


@pytest.fixture(autouse=True)
def clean_telemetry():
    obs.clear_sinks()
    obs.reset_metrics()
    yield
    obs.clear_sinks()
    obs.reset_metrics()


def steady_errors(n: int, level: float = 2.0, seed: int = 0) -> list[float]:
    """A stationary APE stream around ``level`` percent."""
    rng = np.random.default_rng(seed)
    return [max(level + e, 0.0) for e in rng.normal(0.0, 0.5, n)]


# ----------------------------------------------------------------------
# quality
# ----------------------------------------------------------------------
class TestQualityTracker:
    def test_known_values(self):
        q = QualityTracker(window=8)
        ape = q.update(110.0, 100.0)
        assert ape == pytest.approx(10.0)
        q.update(90.0, 100.0)
        snap = q.snapshot()
        assert snap["intervals"] == 2
        win = snap["window"]
        assert win["n"] == 2
        assert win["mae"] == pytest.approx(10.0)
        assert win["mape"] == pytest.approx(10.0)
        assert win["bias"] == pytest.approx(0.0)  # +10 and -10 cancel
        assert win["over_rate"] == pytest.approx(50.0)
        assert win["under_rate"] == pytest.approx(50.0)

    def test_rolling_window_evicts(self):
        q = QualityTracker(window=4)
        for _ in range(10):
            q.update(120.0, 100.0)  # 20% APE
        for _ in range(4):
            q.update(101.0, 100.0)  # 1% APE fills the window
        snap = q.snapshot()
        assert snap["window"]["mape"] == pytest.approx(1.0)
        # Cumulative still remembers the full stream.
        assert snap["cumulative"]["n"] == 14
        assert snap["cumulative"]["mape"] == pytest.approx(
            (10 * 20.0 + 4 * 1.0) / 14
        )

    def test_periodic_refresh_matches_exact_sums(self):
        # Force the full-recompute path several times and confirm the
        # rolling sums stay exactly the window mean.
        q = QualityTracker(window=4)
        rng = np.random.default_rng(3)
        preds = 100.0 + rng.normal(0, 10, 4 * 64 * 3 + 5)
        for p in preds:
            q.update(float(p), 100.0)
        expected = np.mean([abs(p - 100.0) for p in preds[-4:]])
        assert q.snapshot()["window"]["mae"] == pytest.approx(expected)

    def test_zero_actual_uses_eps_floor(self):
        q = QualityTracker()
        assert np.isfinite(q.update(5.0, 0.0))

    def test_empty_snapshot_is_none_filled(self):
        snap = QualityTracker().snapshot()
        assert snap["intervals"] == 0
        assert snap["window"]["mape"] is None
        assert snap["cumulative"]["mae"] is None

    def test_window_validation(self):
        with pytest.raises(ValueError):
            QualityTracker(window=0)


# ----------------------------------------------------------------------
# drift detectors
# ----------------------------------------------------------------------
class TestDriftDetectors:
    @pytest.mark.parametrize("detector_cls", [CusumDetector, PageHinkleyDetector])
    def test_quiet_on_stationary_errors(self, detector_cls):
        det = detector_cls()
        for e in steady_errors(400):
            det.update(e)
        assert not det.drifted

    @pytest.mark.parametrize("detector_cls", [CusumDetector, PageHinkleyDetector])
    def test_fires_within_bounded_delay_of_shift(self, detector_cls):
        det = detector_cls()
        errors = steady_errors(100) + [50.0] * 50  # sustained 25x jump
        for e in errors:
            if det.update(e):
                break
        assert det.drifted
        assert det.fired_at is not None
        assert 100 < det.fired_at <= 110, \
            f"{det.name} fired at {det.fired_at}, expected within 10 of the shift"

    def test_latch_holds_until_reset(self):
        det = CusumDetector()
        for e in steady_errors(50) + [80.0] * 20:
            det.update(e)
        assert det.drifted
        fired_at = det.fired_at
        # Errors going quiet again must NOT unlatch.
        for e in steady_errors(50, seed=1):
            det.update(e)
        assert det.drifted and det.fired_at == fired_at
        det.reset()
        assert not det.drifted and det.fired_at is None
        # After reset the detector recalibrates and stays quiet on the
        # (new) healthy stream.
        for e in steady_errors(100, seed=2):
            det.update(e)
        assert not det.drifted

    def test_cusum_freezes_baseline_after_warmup(self):
        det = CusumDetector(warmup=20)
        for e in steady_errors(20):
            det.update(e)
        assert det.calibrated
        snap = det.snapshot()
        assert snap["baseline_mean"] == pytest.approx(2.0, abs=0.5)
        assert snap["baseline_std"] is not None

    def test_fire_emits_event_and_counters(self):
        sink = obs.add_sink(obs.MemorySink())
        det = PageHinkleyDetector()
        for e in steady_errors(30) + [100.0] * 10:
            det.update(e)
        assert det.drifted
        assert obs.counter("monitor.drift").value == 1.0
        assert obs.counter("monitor.drift.page-hinkley").value == 1.0
        events = sink.by_name("monitor.drift")
        assert len(events) == 1 and events[0]["detector"] == "page-hinkley"

    def test_protocol_conformance(self):
        for det in default_detectors():
            assert isinstance(det, DriftDetector)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CusumDetector(threshold=0)
        with pytest.raises(ValueError):
            CusumDetector(warmup=1)
        with pytest.raises(ValueError):
            PageHinkleyDetector(threshold=-1)
        with pytest.raises(ValueError):
            PageHinkleyDetector(min_samples=1)


# ----------------------------------------------------------------------
# SLOs
# ----------------------------------------------------------------------
class TestSLOTracker:
    def test_healthy_within_budget(self):
        slo = SLOTracker(accuracy_slo_mape=50.0, target=0.9, min_intervals=10)
        for _ in range(100):
            slo.update(ape=5.0)
        assert slo.health().status == HEALTHY

    def test_grace_period_before_verdicts(self):
        slo = SLOTracker(accuracy_slo_mape=50.0, min_intervals=30)
        for _ in range(10):
            slo.update(ape=100.0)  # every interval violates
        assert slo.health().status == HEALTHY  # still in grace
        for _ in range(30):
            slo.update(ape=100.0)
        assert slo.health().status == BREACHED

    def test_burn_rate_degrades_before_budget_breach(self):
        # 1000 clean intervals bank budget; a recent hot streak burns it
        # faster than it accrues without exhausting the lifetime budget.
        slo = SLOTracker(accuracy_slo_mape=50.0, target=0.9, window=50)
        for _ in range(2000):
            slo.update(ape=1.0)
        for _ in range(20):
            slo.update(ape=99.0)
        health = slo.health()
        assert health.status == DEGRADED
        assert any("burning" in r for r in health.reasons)

    def test_latency_objective(self):
        slo = SLOTracker(latency_slo_ms=10.0, min_intervals=5)
        for _ in range(50):
            slo.update(latency_s=0.5)  # 500 ms >> 10 ms
        health = slo.health()
        assert health.status == BREACHED
        assert any("latency" in r for r in health.reasons)
        snap = slo.snapshot()
        assert snap["objectives"]["latency"]["violations"] == 50

    def test_worse_of_folds_severity_and_reasons(self):
        a = HealthReport(status=DEGRADED, reasons=("x",))
        b = HealthReport(status=BREACHED, reasons=("y",))
        folded = a.worse_of(b)
        assert folded.status == BREACHED and folded.reasons == ("x", "y")
        assert HealthReport(HEALTHY).worse_of(HealthReport(HEALTHY)).healthy

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOTracker(target=1.0)
        with pytest.raises(ValueError):
            SLOTracker(latency_slo_ms=0.0)
        with pytest.raises(ValueError):
            HealthReport(status="fine")


# ----------------------------------------------------------------------
# the composed monitor
# ----------------------------------------------------------------------
class TestForecastMonitor:
    def test_observe_returns_ape_and_tracks(self):
        m = ForecastMonitor()
        assert m.observe(110.0, 100.0) == pytest.approx(10.0)
        assert m.intervals == 1
        assert not m.drifted

    def test_drift_latch_degrades_health(self):
        m = ForecastMonitor(detectors=[PageHinkleyDetector()])
        for e in steady_errors(30):
            m.observe(100.0 + e, 100.0)
        assert m.health().healthy
        for _ in range(30):
            m.observe(200.0, 100.0)
        assert m.drifted
        health = m.health()
        assert health.status == DEGRADED
        assert any("drift" in r for r in health.reasons)

    def test_report_sections_and_gauges(self):
        m = ForecastMonitor(slo=SLOTracker(accuracy_slo_mape=50.0))
        for _ in range(40):
            m.observe(105.0, 100.0, latency_s=0.001)
        report = m.report()
        assert report["intervals"] == 40
        assert report["quality"]["window"]["mape"] == pytest.approx(5.0)
        assert [d["name"] for d in report["drift"]] == ["cusum", "page-hinkley"]
        assert report["slo"]["objectives"]["accuracy"]["n"] == 40
        assert report["health"]["status"] == HEALTHY
        # Headline gauges + lazily-synced interval counter.
        assert obs.gauge("monitor.rolling_mape").value == pytest.approx(5.0)
        assert obs.counter("monitor.intervals").value == 40.0
        m.observe(105.0, 100.0)
        m.report()
        assert obs.counter("monitor.intervals").value == 41.0


# ----------------------------------------------------------------------
# serving wiring
# ----------------------------------------------------------------------
def serving_series(n: int = 300) -> np.ndarray:
    """Slow cycle + mild noise: persistence errors stay stationary."""
    rng = np.random.default_rng(9)
    x = np.arange(float(n))
    return np.sin(x / 288.0) * 300 + 500 + rng.normal(0, 4, n)


class TestServingIntegration:
    def test_monitored_schedule_bit_for_bit_identical(self):
        """monitor= must never change what is served."""
        s = serving_series()
        base = serve_and_simulate(LastValuePredictor(), s, 200, seed=3)
        monitored = serve_and_simulate(
            LastValuePredictor(), s, 200, seed=3, monitor=ForecastMonitor()
        )
        assert np.array_equal(base.schedule, monitored.schedule)
        assert base.result.vm_seconds == monitored.result.vm_seconds
        assert base.result.mean_turnaround == monitored.result.mean_turnaround

    def test_report_carries_monitor_sections(self):
        s = serving_series()
        m = ForecastMonitor(slo=SLOTracker(accuracy_slo_mape=60.0))
        report = serve_and_simulate(GuardedPredictor(LastValuePredictor()), s, 200,
                                    monitor=m)
        assert report.quality["intervals"] == 100
        assert len(report.drift) == 2
        assert report.slo is not None and report.health is not None
        assert not report.drifted  # steady series, adapted persistence

    def test_unmonitored_report_sections_stay_none(self):
        s = serving_series()
        report = serve_and_simulate(LastValuePredictor(), s, 250)
        assert report.quality is None and report.drift is None
        assert report.slo is None and report.health is None
        assert not report.drifted

    def test_monitored_walk_counts_every_interval(self):
        s = serving_series()
        m = ForecastMonitor()
        serve_and_simulate(LastValuePredictor(), s, 240, monitor=m)
        assert m.intervals == 60


class TestRefitOnDrift:
    def test_detector_triggers_exactly_one_refit(self):
        """A latched detector must refit once, then recalibrate."""
        from tests.test_core_adaptive import regime_change_series

        series = regime_change_series()
        detector = CusumDetector(warmup=10)
        adaptive = AdaptiveLoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=2, epochs=6),
            min_refit_gap=60,  # long cool-down: at most one drift refit fits
            refit_on_drift=detector,
        )
        walk_forward(adaptive, series, 100, 200, refit_every=1)
        assert adaptive.drift_refits == 1
        assert adaptive.n_refits == 2  # initial + the drift-triggered one
        # The refit must land after the regime change at interval 120.
        assert adaptive.refit_history[1] > 120
        # The refit reset the shared detector's latch.
        assert not detector.drifted
        assert obs.counter("adaptive.drift_refit").value == 1.0

    def test_window_rule_still_default(self):
        adaptive = AdaptiveLoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=2, epochs=6),
        )
        assert adaptive.refit_on_drift is None
        assert not adaptive.drift_detected()

    def test_detector_replaces_window_rule(self):
        det = PageHinkleyDetector()
        adaptive = AdaptiveLoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=2, epochs=6),
            refit_on_drift=det,
        )
        # The window rule would need a full error window; the detector's
        # latch alone must drive the signal.
        det.drifted = True
        assert adaptive.drift_detected()
        det.drifted = False
        assert not adaptive.drift_detected()
