"""Cross-module property-based tests (hypothesis).

Each property here is an invariant the experiment pipeline silently
relies on; violating any of them would corrupt results without crashing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autoscale import CloudSimulator, VMSpec
from repro.baselines import walk_forward
from repro.baselines.base import Predictor
from repro.core import MinMaxScaler, make_windows, windows_for_range
from repro.metrics import mape
from repro.nn import LSTMRegressor

# Positive, non-degenerate JAR-like series.
jar_series = arrays(
    np.float64,
    st.integers(30, 80),
    elements=st.floats(1.0, 1e5, allow_nan=False),
)


class TestScalingWindowingPipeline:
    @given(series=jar_series, n=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_scale_then_window_equals_window_then_scale(self, series, n):
        """Min-max scaling is affine, so it commutes with windowing."""
        if len(series) <= n + 2 or series.max() == series.min():
            return
        scaler = MinMaxScaler().fit(series)
        Xa, ya = make_windows(scaler.transform(series), n)
        Xb, yb = make_windows(series, n)
        np.testing.assert_allclose(Xa, scaler.transform(Xb), atol=1e-10)
        np.testing.assert_allclose(ya, scaler.transform(yb), atol=1e-10)

    @given(series=jar_series, n=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_windows_for_range_is_suffix_of_make_windows(self, series, n):
        """Targets >= n: windows_for_range(start) is a suffix slice of the
        full supervised set."""
        if len(series) <= n + 4:
            return
        start = len(series) - 3
        X_all, y_all = make_windows(series, n)
        X_r, y_r = windows_for_range(series, n, start)
        np.testing.assert_array_equal(X_r, X_all[start - n :])
        np.testing.assert_array_equal(y_r, y_all[start - n :])


class _ConstantPredictor(Predictor):
    """Always predicts a fixed value (possibly invalid)."""

    def __init__(self, value: float):
        self.value = value

    def predict_next(self, history):
        return self.value


class TestWalkForwardContracts:
    @given(
        series=jar_series,
        value=st.floats(allow_nan=True, allow_infinity=True),
    )
    @settings(max_examples=40, deadline=None)
    def test_outputs_always_finite_nonnegative(self, series, value):
        start = len(series) // 2
        preds = walk_forward(_ConstantPredictor(value), series, start)
        assert preds.shape == (len(series) - start,)
        assert np.all(np.isfinite(preds))
        assert np.all(preds >= 0.0)

    @given(series=jar_series)
    @settings(max_examples=20, deadline=None)
    def test_persistence_mape_matches_manual(self, series):
        class Persist(Predictor):
            def predict_next(self, history):
                return float(history[-1])

        start = len(series) // 2
        preds = walk_forward(Persist(), series, start)
        np.testing.assert_array_equal(preds, series[start - 1 : -1])
        manual = mape(series[start - 1 : -1], series[start:])
        assert mape(preds, series[start:]) == pytest.approx(manual)


class TestSimulatorInvariants:
    @given(
        arrivals=arrays(np.float64, 12, elements=st.floats(0, 50)),
        provisioned=arrays(np.float64, 12, elements=st.floats(0, 50)),
    )
    @settings(max_examples=40, deadline=None)
    def test_provisioning_accounting_identity(self, arrivals, provisioned):
        sim = CloudSimulator(spec=VMSpec(job_jitter_frac=0.0), seed=0)
        res = sim.run(arrivals, provisioned)
        np.testing.assert_allclose(
            res.under_provisioned + res.over_provisioned,
            np.abs(res.provisioned - res.arrivals),
        )
        assert res.vm_seconds >= 0.0

    @given(arrivals=arrays(np.float64, 10, elements=st.floats(0, 40)))
    @settings(max_examples=40, deadline=None)
    def test_more_provisioning_never_slows_jobs(self, arrivals):
        """Adding VMs can only reduce (or keep) turnaround."""
        spec = VMSpec(job_jitter_frac=0.0)
        a = CloudSimulator(spec=spec, seed=1).run(arrivals, np.ceil(arrivals))
        b = CloudSimulator(spec=spec, seed=1).run(arrivals, np.zeros_like(arrivals))
        busy = a.arrivals > 0
        assert np.all(
            a.turnaround_seconds[busy] <= b.turnaround_seconds[busy] + 1e-9
        )


class TestServingInvariants:
    # Series that may carry every kind of ingestion damage.
    dirty_series = arrays(
        np.float64,
        st.integers(4, 60),
        elements=st.one_of(
            st.floats(-1e6, 1e6),
            st.sampled_from((np.nan, np.inf, -np.inf)),
        ),
    )

    @given(series=dirty_series, policy=st.sampled_from(("interpolate", "clip", "ffill")))
    @settings(max_examples=60, deadline=None)
    def test_sanitize_is_idempotent(self, series, policy):
        """sanitize(sanitize(x)) == sanitize(x), and the output is servable."""
        from repro.serving import TraceSanitizer
        from repro.traces import TraceValidationError

        san = TraceSanitizer(policy=policy)
        try:
            once, report1 = san.sanitize(series)
        except TraceValidationError:
            # No valid sample to repair from — rejection is the contract.
            assert not np.any(np.isfinite(series) & (series >= 0))
            return
        assert np.all(np.isfinite(once)) and np.all(once >= 0)
        twice, report2 = san.sanitize(once)
        np.testing.assert_array_equal(once, twice)
        assert report2.n_repaired == 0

    @given(
        series=jar_series,
        value=st.floats(allow_nan=True, allow_infinity=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_guarded_outputs_always_servable(self, series, value):
        """Whatever the primary emits, the guard serves finite and >= 0."""
        from repro.serving import GuardedPredictor

        guarded = GuardedPredictor(_ConstantPredictor(value))
        p = guarded.predict_next(series)
        assert np.isfinite(p)
        assert p >= 0.0
        assert p <= guarded.guard_factor * series.max() + 1e-9

    @given(outcomes=st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_breaker_state_machine_invariants(self, outcomes):
        """Under any outcome sequence the breaker stays in a legal state
        and every transition is one of the machine's edges."""
        from repro.serving import CLOSED, HALF_OPEN, OPEN, CircuitBreaker

        legal_edges = {
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
            (HALF_OPEN, OPEN),
        }
        breaker = CircuitBreaker(min_calls=3, window=6, cooldown=4, probes=2)
        for failed in outcomes:
            if not breaker.allow():
                continue
            if failed:
                breaker.record_failure()
            else:
                breaker.record_success()
            assert breaker.state in (CLOSED, OPEN, HALF_OPEN)
            assert 0.0 <= breaker.failure_rate <= 1.0
        for frm, to, _reason in breaker.transitions:
            assert (frm, to) in legal_edges


class TestLSTMInvariants:
    @given(
        batch=st.integers(1, 4),
        time=st.integers(1, 6),
        hidden=st.integers(1, 6),
        layers=st.integers(1, 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_forward_shape_contract(self, batch, time, hidden, layers):
        rng = np.random.default_rng(0)
        m = LSTMRegressor(hidden_size=hidden, num_layers=layers, seed=1)
        x = rng.standard_normal((batch, time, 1))
        out = m.predict(x)
        assert out.shape == (batch,)
        assert np.all(np.isfinite(out))

    @given(scale=st.floats(0.1, 100.0))
    @settings(max_examples=20, deadline=None)
    def test_prediction_finite_under_input_scaling(self, scale):
        """Gate saturation must never produce non-finite outputs."""
        rng = np.random.default_rng(2)
        m = LSTMRegressor(hidden_size=4, seed=3)
        x = scale * rng.standard_normal((3, 5, 1))
        assert np.all(np.isfinite(m.predict(x)))
