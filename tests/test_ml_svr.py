"""Tests for the linear and RBF-kernel SVR implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import KernelSVR, LinearSVR


class TestLinearSVR:
    def test_recovers_linear_relation(self, rng):
        X = rng.uniform(-2, 2, (80, 2))
        y = X @ np.array([1.0, -2.0]) + 0.5
        m = LinearSVR(C=10.0, epsilon=0.01).fit(X, y)
        pred = m.predict(X)
        assert np.sqrt(np.mean((pred - y) ** 2)) < 0.1

    def test_epsilon_tube_ignores_small_noise(self, rng):
        """Targets jittered within epsilon should give near-identical fits."""
        X = rng.uniform(-2, 2, (60, 1))
        y = 2.0 * X[:, 0]
        m_clean = LinearSVR(C=1.0, epsilon=0.3).fit(X, y)
        y_jit = y + rng.uniform(-0.2, 0.2, 60)
        m_jit = LinearSVR(C=1.0, epsilon=0.3).fit(X, y_jit)
        p1, p2 = m_clean.predict(X), m_jit.predict(X)
        assert np.max(np.abs(p1 - p2)) < 0.3

    def test_robust_vs_large_C_sensitivity(self, rng):
        """Small C regularizes harder → smaller standardized weights."""
        X = rng.uniform(-2, 2, (50, 3))
        y = X @ np.array([3.0, 0.0, -1.0])
        w_small = LinearSVR(C=0.01).fit(X, y).coef_
        w_large = LinearSVR(C=100.0).fit(X, y).coef_
        assert np.linalg.norm(w_small) < np.linalg.norm(w_large)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearSVR(C=0.0)
        with pytest.raises(ValueError):
            LinearSVR(epsilon=-0.1)
        with pytest.raises(RuntimeError):
            LinearSVR().predict(np.zeros((1, 1)))


class TestKernelSVR:
    def test_fits_nonlinear_function(self, rng):
        X = rng.uniform(-3, 3, (120, 1))
        y = np.sin(X[:, 0])
        m = KernelSVR(C=10.0, epsilon=0.01).fit(X, y)
        Xt = np.linspace(-3, 3, 50)[:, None]
        pred = m.predict(Xt)
        assert np.sqrt(np.mean((pred - np.sin(Xt[:, 0])) ** 2)) < 0.15

    def test_beats_linear_on_nonlinear_target(self, rng):
        X = rng.uniform(-3, 3, (100, 1))
        y = np.sin(2 * X[:, 0])
        lin = LinearSVR(C=1.0).fit(X, y)
        ker = KernelSVR(C=10.0).fit(X, y)
        mse_lin = np.mean((lin.predict(X) - y) ** 2)
        mse_ker = np.mean((ker.predict(X) - y) ** 2)
        assert mse_ker < mse_lin

    def test_max_samples_subsampling_keeps_recent(self, rng):
        """With max_samples smaller than n, the model trains on the tail."""
        X = np.arange(600, dtype=np.float64)[:, None]
        y = np.where(X[:, 0] < 400, 0.0, 10.0)  # ancient data says 0, recent 10
        m = KernelSVR(C=10.0, max_samples=100).fit(X, y)
        assert m.predict(np.array([[599.0]]))[0] > 5.0

    def test_explicit_gamma(self, rng):
        X = rng.uniform(-1, 1, (40, 2))
        y = X[:, 0] ** 2
        m = KernelSVR(C=5.0, gamma=2.0).fit(X, y)
        assert m._gamma_val == 2.0
        assert np.mean((m.predict(X) - y) ** 2) < np.var(y)

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelSVR(C=-1.0)
        with pytest.raises(RuntimeError):
            KernelSVR().predict(np.zeros((1, 1)))
