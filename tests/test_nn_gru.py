"""Tests for the GRU layer and the cell-type option of LSTMRegressor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import LSTMRegressor, load_regressor, save_regressor
from repro.nn.gru import GRULayer
from repro.nn.losses import mse_loss


@pytest.fixture
def layer(rng):
    return GRULayer(input_size=2, hidden_size=4, rng=rng)


class TestGRUForward:
    def test_shapes(self, layer, rng):
        x = rng.standard_normal((3, 6, 2))
        h, cache = layer.forward(x)
        assert h.shape == (3, 6, 4)
        assert cache.h.shape == (6, 3, 4)

    def test_hidden_bounded(self, layer, rng):
        """h_t is a convex combination of h_{t-1} (starts at 0) and a tanh
        candidate, so |h| < 1 always."""
        x = 20.0 * rng.standard_normal((4, 10, 2))
        h, _ = layer.forward(x)
        # tanh saturates to exactly 1.0 in float64 for huge inputs.
        assert np.all(np.abs(h) <= 1.0)

    def test_causality(self, layer, rng):
        x = rng.standard_normal((2, 8, 2))
        full, _ = layer.forward(x)
        prefix, _ = layer.forward(x[:, :4, :])
        np.testing.assert_allclose(full[:, :4, :], prefix, atol=1e-12)

    def test_input_validation(self, layer, rng):
        with pytest.raises(ValueError):
            layer.forward(rng.standard_normal((3, 6)))
        with pytest.raises(ValueError):
            layer.forward(rng.standard_normal((3, 6, 5)))
        with pytest.raises(ValueError):
            layer.forward(rng.standard_normal((3, 0, 2)))

    def test_fewer_params_than_lstm(self, rng):
        from repro.nn.lstm import LSTMLayer

        gru = GRULayer(1, 8, np.random.default_rng(0))
        lstm = LSTMLayer(1, 8, np.random.default_rng(0))
        assert gru.n_params() == lstm.n_params() * 3 // 4  # 3 gates vs 4


class TestGRUBackward:
    def test_gradient_check(self, rng):
        layer = GRULayer(1, 3, rng)
        x = rng.standard_normal((3, 5, 1))
        target = rng.standard_normal((3, 5, 3))

        def loss():
            h, _ = layer.forward(x)
            return 0.5 * float(np.sum((h - target) ** 2))

        h, cache = layer.forward(x)
        dx, grads = layer.backward(h - target, cache)
        eps = 1e-6
        for p, g in zip(layer.params, grads, strict=True):
            flat, gflat = p.ravel(), g.ravel()
            for i in rng.choice(flat.size, size=min(8, flat.size), replace=False):
                orig = flat[i]
                flat[i] = orig + eps
                lp = loss()
                flat[i] = orig - eps
                lm = loss()
                flat[i] = orig
                num = (lp - lm) / (2 * eps)
                assert num == pytest.approx(gflat[i], rel=1e-4, abs=1e-7)

    def test_input_gradient_check(self, rng):
        layer = GRULayer(2, 3, rng)
        x = rng.standard_normal((2, 4, 2))
        target = rng.standard_normal((2, 4, 3))
        h, cache = layer.forward(x)
        dx, _ = layer.backward(h - target, cache)
        eps = 1e-6
        flat = x.ravel()
        for i in rng.choice(flat.size, size=6, replace=False):
            orig = flat[i]
            flat[i] = orig + eps
            lp = 0.5 * float(np.sum((layer.forward(x)[0] - target) ** 2))
            flat[i] = orig - eps
            lm = 0.5 * float(np.sum((layer.forward(x)[0] - target) ** 2))
            flat[i] = orig
            assert (lp - lm) / (2 * eps) == pytest.approx(
                dx.ravel()[i], rel=1e-4, abs=1e-7
            )

    def test_shape_validation(self, layer, rng):
        x = rng.standard_normal((2, 5, 2))
        _, cache = layer.forward(x)
        with pytest.raises(ValueError):
            layer.backward(np.zeros((2, 5, 9)), cache)


class TestGRURegressor:
    def test_full_stack_gradient_check(self, rng):
        m = LSTMRegressor(hidden_size=3, num_layers=2, seed=5, cell="gru")
        x = rng.standard_normal((4, 5, 1))
        y = rng.standard_normal(4)
        pred, caches = m._forward(x)
        _, d_pred = mse_loss(pred, y)
        grads = m._backward(d_pred, caches, x.shape)
        eps = 1e-6
        for p, g in zip(m.params, grads, strict=True):
            flat, gflat = p.ravel(), g.ravel()
            for i in rng.choice(flat.size, size=min(4, flat.size), replace=False):
                orig = flat[i]
                flat[i] = orig + eps
                lp, _ = mse_loss(m._forward(x)[0], y)
                flat[i] = orig - eps
                lm, _ = mse_loss(m._forward(x)[0], y)
                flat[i] = orig
                assert (lp - lm) / (2 * eps) == pytest.approx(
                    gflat[i], rel=1e-3, abs=1e-8
                )

    def test_gru_learns_sine(self, sine_series):
        s = (sine_series - 100.0) / 50.0
        X = np.stack([s[i : i + 12] for i in range(len(s) - 12)])
        y = s[12:]
        m = LSTMRegressor(hidden_size=10, seed=0, cell="gru")
        m.fit(X[:180], y[:180], epochs=25, batch_size=32, lr=0.01)
        rmse = float(np.sqrt(np.mean((m.predict(X[180:]) - y[180:]) ** 2)))
        assert rmse < 0.15

    def test_serialization_roundtrip(self, tmp_path, rng):
        m = LSTMRegressor(hidden_size=4, num_layers=2, seed=2, cell="gru")
        x = rng.standard_normal((5, 6, 1))
        path = save_regressor(m, tmp_path / "gru")
        m2 = load_regressor(path)
        assert m2.cell == "gru"
        np.testing.assert_array_equal(m.predict(x), m2.predict(x))

    def test_invalid_cell(self):
        with pytest.raises(ValueError, match="cell"):
            LSTMRegressor(hidden_size=3, cell="rnn")
