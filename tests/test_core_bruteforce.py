"""Tests for the parallel brute-force search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FrameworkSettings, search_space_for
from repro.core.bruteforce import BruteForceResult, brute_force_search, fit_best


@pytest.fixture(scope="module")
def sweep(request):
    t = np.arange(240)
    rng = np.random.default_rng(7)
    series = 100.0 + 40.0 * np.sin(2 * np.pi * t / 24.0) + rng.normal(0, 2.0, 240)
    result = brute_force_search(
        series,
        search_space_for("default", "tiny"),
        settings=FrameworkSettings.tiny(epochs=8),
        points_per_dim=2,
        max_trials=8,
        n_workers=1,
    )
    return series, result


class TestBruteForce:
    def test_evaluates_requested_trials(self, sweep):
        _, result = sweep
        assert result.n_evaluated == 8
        assert np.isfinite(result.best_validation_mape)

    def test_best_is_minimum(self, sweep):
        _, result = sweep
        feasible = [v for _, v in result.evaluations if v < 1e5]
        assert result.best_validation_mape == pytest.approx(min(feasible))

    def test_serial_parallel_equivalence(self, sweep):
        series, serial = sweep
        parallel = brute_force_search(
            series,
            search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(epochs=8),
            points_per_dim=2,
            max_trials=8,
            n_workers=2,
        )
        assert parallel.best_hyperparameters == serial.best_hyperparameters
        assert parallel.best_validation_mape == pytest.approx(
            serial.best_validation_mape
        )

    def test_fit_best_returns_predictor(self, sweep):
        series, result = sweep
        predictor = fit_best(series, result, settings=FrameworkSettings.tiny(epochs=8))
        assert predictor.hyperparameters == result.best_hyperparameters
        assert np.isfinite(predictor.predict_next(series))

    def test_too_short_series(self):
        with pytest.raises(ValueError, match="too short"):
            brute_force_search(
                np.ones(6), search_space_for("default", "tiny"),
                settings=FrameworkSettings.tiny(),
            )

    def test_result_dataclass(self):
        from repro.core import LSTMHyperparameters

        r = BruteForceResult(
            best_hyperparameters=LSTMHyperparameters(2, 2, 1, 4),
            best_validation_mape=10.0,
            evaluations=[({}, 10.0)],
        )
        assert r.n_evaluated == 1
