"""Tests for the LSTM layer: shapes, recurrence semantics, and BPTT.

The gradient checks are the load-bearing tests of the whole nn
substrate: if backward matches numerical differentiation to ~1e-6, the
training loop is trustworthy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.losses import mse_loss
from repro.nn.lstm import LSTMLayer
from repro.nn.network import LSTMRegressor


@pytest.fixture
def layer(rng):
    return LSTMLayer(input_size=2, hidden_size=4, rng=rng)


class TestForward:
    def test_output_shape(self, layer, rng):
        x = rng.standard_normal((3, 7, 2))
        h, cache = layer.forward(x)
        assert h.shape == (3, 7, 4)
        assert cache.h.shape == (7, 3, 4)

    def test_hidden_in_tanh_range(self, layer, rng):
        x = 10.0 * rng.standard_normal((4, 9, 2))
        h, _ = layer.forward(x)
        # h = o * tanh(C) with o in (0,1): |h| < 1 always
        assert np.all(np.abs(h) < 1.0)

    def test_rejects_bad_rank(self, layer, rng):
        with pytest.raises(ValueError, match="batch, time, features"):
            layer.forward(rng.standard_normal((3, 7)))

    def test_rejects_wrong_feature_dim(self, layer, rng):
        with pytest.raises(ValueError, match="input_size"):
            layer.forward(rng.standard_normal((3, 7, 5)))

    def test_rejects_empty_sequence(self, layer, rng):
        with pytest.raises(ValueError, match="positive"):
            layer.forward(rng.standard_normal((3, 0, 2)))

    def test_deterministic(self, rng):
        x = rng.standard_normal((2, 5, 2))
        a = LSTMLayer(2, 3, np.random.default_rng(0)).forward(x)[0]
        b = LSTMLayer(2, 3, np.random.default_rng(0)).forward(x)[0]
        np.testing.assert_array_equal(a, b)

    def test_initial_state_respected(self, layer, rng):
        """Non-zero initial states must change the first step's output."""
        x = rng.standard_normal((2, 3, 2))
        h_zero, _ = layer.forward(x)
        h0 = np.full((2, 4), 0.5)
        c0 = np.full((2, 4), -0.5)
        h_init, _ = layer.forward(x, h0=h0, c0=c0)
        assert not np.allclose(h_zero[:, 0, :], h_init[:, 0, :])

    def test_recurrence_prefix_property(self, layer, rng):
        """Hidden states for a prefix equal the prefix of the full run
        (causality: future inputs cannot affect past outputs)."""
        x = rng.standard_normal((2, 8, 2))
        full, _ = layer.forward(x)
        prefix, _ = layer.forward(x[:, :5, :])
        np.testing.assert_allclose(full[:, :5, :], prefix, atol=1e-12)

    def test_batch_independence(self, layer, rng):
        """Each batch row is processed independently."""
        x = rng.standard_normal((3, 6, 2))
        together, _ = layer.forward(x)
        solo, _ = layer.forward(x[1:2])
        np.testing.assert_allclose(together[1:2], solo, atol=1e-12)


class TestBackward:
    def test_gradient_check_single_layer(self, rng):
        layer = LSTMLayer(1, 3, rng)
        x = rng.standard_normal((4, 6, 1))
        target = rng.standard_normal((4, 6, 3))

        def loss_of_params():
            h, _ = layer.forward(x)
            return 0.5 * float(np.sum((h - target) ** 2))

        h, cache = layer.forward(x)
        dx, grads = layer.backward(h - target, cache)

        eps = 1e-6
        for p, g in zip(layer.params, grads, strict=True):
            flat = p.ravel()
            gflat = g.ravel()
            idx = rng.choice(flat.size, size=min(8, flat.size), replace=False)
            for i in idx:
                orig = flat[i]
                flat[i] = orig + eps
                lp = loss_of_params()
                flat[i] = orig - eps
                lm = loss_of_params()
                flat[i] = orig
                num = (lp - lm) / (2 * eps)
                assert num == pytest.approx(gflat[i], rel=1e-4, abs=1e-7)

    def test_gradient_check_input(self, rng):
        layer = LSTMLayer(2, 3, rng)
        x = rng.standard_normal((2, 4, 2))
        target = rng.standard_normal((2, 4, 3))
        h, cache = layer.forward(x)
        dx, _ = layer.backward(h - target, cache)
        eps = 1e-6
        flat = x.ravel()
        for i in rng.choice(flat.size, size=6, replace=False):
            orig = flat[i]
            flat[i] = orig + eps
            lp = 0.5 * float(np.sum((layer.forward(x)[0] - target) ** 2))
            flat[i] = orig - eps
            lm = 0.5 * float(np.sum((layer.forward(x)[0] - target) ** 2))
            flat[i] = orig
            num = (lp - lm) / (2 * eps)
            assert num == pytest.approx(dx.ravel()[i], rel=1e-4, abs=1e-7)

    def test_backward_shape_validation(self, layer, rng):
        x = rng.standard_normal((2, 5, 2))
        _, cache = layer.forward(x)
        with pytest.raises(ValueError, match="d_h_seq"):
            layer.backward(np.zeros((2, 5, 7)), cache)


class TestRegressorGradients:
    def test_full_stack_gradient_check(self, rng):
        """End-to-end: 2-layer LSTM + dense head through the MSE loss."""
        m = LSTMRegressor(hidden_size=3, num_layers=2, seed=5)
        x = rng.standard_normal((4, 5, 1))
        y = rng.standard_normal(4)
        pred, caches = m._forward(x)
        _, d_pred = mse_loss(pred, y)
        grads = m._backward(d_pred, caches, x.shape)
        params = m.params
        eps = 1e-6
        for p, g in zip(params, grads, strict=True):
            flat, gflat = p.ravel(), g.ravel()
            for i in rng.choice(flat.size, size=min(4, flat.size), replace=False):
                orig = flat[i]
                flat[i] = orig + eps
                lp, _ = mse_loss(m._forward(x)[0], y)
                flat[i] = orig - eps
                lm, _ = mse_loss(m._forward(x)[0], y)
                flat[i] = orig
                num = (lp - lm) / (2 * eps)
                assert num == pytest.approx(gflat[i], rel=1e-3, abs=1e-8)

    def test_param_count(self):
        m = LSTMRegressor(hidden_size=4, num_layers=1, input_size=1)
        # LSTM: W(1x16) + U(4x16) + b(16) = 96; head: 4+1 = 5
        assert m.n_params() == 96 + 5
