"""The multivariate refactor's central promise, pinned from both sides.

Side one — **D=1 is bit-for-bit unchanged**: every stage the channel
dimension was threaded through (``prepare_data`` scaling + windowing,
the ``forward_inference`` fast path, an end-to-end seeded fit's
``predict_series``/``predict_next``) is replayed against hex-encoded
float64 recordings made *before* the refactor
(``tests/data/equivalence_pipeline.json``, written by
``scripts/make_pipeline_fixtures.py``).  Comparison is on raw bytes —
no tolerances.

Side two — **D>1 is self-consistent**: multivariate windowing equals
stacked per-channel univariate windowing, the per-channel scaler
round-trips and agrees with its scalar sub-scalers (hypothesis
properties), and an (N, D) series flows through fit → evaluate →
persist → reload → guarded serving end to end.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    FrameworkSettings,
    LoadDynamics,
    LoadDynamicsPredictor,
    MinMaxScaler,
    make_windows,
    search_space_for,
    windows_for_range,
)
from repro.core.data import prepare_data
from repro.nn.network import LSTMRegressor

FIXTURE = Path(__file__).parent / "data" / "equivalence_pipeline.json"


def hex64(a: np.ndarray) -> str:
    return np.ascontiguousarray(np.asarray(a, dtype="<f8")).tobytes().hex()


def fixture_series() -> np.ndarray:
    t = np.arange(240)
    rng = np.random.default_rng(7)
    return 100.0 + 40.0 * np.sin(2 * np.pi * t / 24.0) + rng.normal(0, 2.0, 240)


@pytest.fixture(scope="module")
def recorded() -> dict:
    return json.loads(FIXTURE.read_text())


# ----------------------------------------------------------------------
# side one: recorded D=1 equivalence
# ----------------------------------------------------------------------
class TestRecordedUnivariateEquivalence:
    def test_prepare_data_bitwise(self, recorded):
        rec = recorded["prepare_data"]
        prepared = prepare_data(fixture_series(), FrameworkSettings.tiny())
        assert prepared.i_train_end == rec["i_train_end"]
        assert prepared.i_val_end == rec["i_val_end"]
        assert prepared.scaler.state() == rec["scaler_state"]
        assert hex64(prepared.scaled) == rec["scaled"]
        assert prepared.n_channels == 1 and prepared.target_channel == 0
        for n_str, w in rec["windows"].items():
            X_train, y_train, X_val, y_val = prepared.window_cache.get(int(n_str))
            assert list(X_train.shape) == w["X_train_shape"]
            assert hex64(X_train) == w["X_train"]
            assert hex64(y_train) == w["y_train"]
            assert list(X_val.shape) == w["X_val_shape"]
            assert hex64(X_val) == w["X_val"]
            assert hex64(y_val) == w["y_val"]

    def test_forward_inference_bitwise(self, recorded):
        rec = recorded["forward_inference"]
        model = LSTMRegressor(
            hidden_size=rec["hidden_size"],
            num_layers=rec["num_layers"],
            seed=rec["seed"],
        )
        rng = np.random.default_rng(rec["input_seed"])
        x = rng.uniform(0.0, 1.0, size=tuple(rec["batch_shape"]))
        assert hex64(model.predict(x)) == rec["output"]

    def test_fit_predictions_bitwise(self, recorded):
        rec = recorded["fit"]
        series = fixture_series()
        ld = LoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=rec["max_iters"]),
        )
        predictor, report = ld.fit(series)
        assert report.best_hyperparameters.as_dict() == rec["best_hyperparameters"]
        preds = predictor.predict_series(series, rec["i_test"])
        assert hex64(preds) == rec["predict_series"]
        nxt = np.array([predictor.predict_next(series[: rec["i_test"]])])
        assert hex64(nxt) == rec["predict_next"]


# ----------------------------------------------------------------------
# side two: multivariate self-consistency (hypothesis)
# ----------------------------------------------------------------------
mv_series = arrays(
    np.float64,
    st.tuples(st.integers(12, 40), st.integers(2, 4)),
    elements=st.floats(0.0, 1e5, allow_nan=False, width=32),
)


class TestMultivariateProperties:
    @given(series=mv_series)
    @hyp_settings(max_examples=40, deadline=None)
    def test_per_channel_scaler_round_trip(self, series):
        spans = series.max(axis=0) - series.min(axis=0)
        scaler = MinMaxScaler().fit(series)
        assert scaler.n_channels_ == series.shape[1]
        back = scaler.inverse_transform(scaler.transform(series))
        for d in range(series.shape[1]):
            if spans[d] > 1e-9:
                np.testing.assert_allclose(
                    back[:, d], series[:, d], rtol=1e-9, atol=1e-6
                )

    @given(series=mv_series)
    @hyp_settings(max_examples=40, deadline=None)
    def test_channel_sub_scaler_matches_column(self, series):
        """scaler.channel(d) is exactly the scalar fit of column d."""
        scaler = MinMaxScaler().fit(series)
        for d in range(series.shape[1]):
            sub = scaler.channel(d)
            col = MinMaxScaler().fit(series[:, d])
            assert sub.data_min_ == col.data_min_
            assert sub.data_max_ == col.data_max_
            np.testing.assert_array_equal(
                sub.transform(series[:, d]), scaler.transform(series)[:, d]
            )

    @given(
        series=mv_series,
        n=st.integers(1, 6),
        target=st.integers(0, 3),
    )
    @hyp_settings(max_examples=40, deadline=None)
    def test_mv_windowing_equals_stacked_univariate(self, series, n, target):
        if series.shape[0] <= n + 1:
            return
        target %= series.shape[1]
        X, y = make_windows(series, n, target=target)
        assert X.shape == (series.shape[0] - n, n, series.shape[1])
        for d in range(series.shape[1]):
            X1, y1 = make_windows(series[:, d], n)
            np.testing.assert_array_equal(X[:, :, d], X1)
            if d == target:
                np.testing.assert_array_equal(y, y1)

    @given(series=mv_series, n=st.integers(1, 6))
    @hyp_settings(max_examples=40, deadline=None)
    def test_mv_windows_for_range_equals_stacked(self, series, n):
        rows = series.shape[0]
        if rows <= n + 2:
            return
        start, end = n, rows - 1
        X, y = windows_for_range(series, n, start, end, target=1)
        for d in range(series.shape[1]):
            X1, y1 = windows_for_range(series[:, d], n, start, end)
            np.testing.assert_array_equal(X[:, :, d], X1)
        np.testing.assert_array_equal(
            y, windows_for_range(series[:, 1], n, start, end)[1]
        )


# ----------------------------------------------------------------------
# multivariate end to end
# ----------------------------------------------------------------------
def _mv_series(rows: int = 200, channels: int = 3, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(rows)
    base = 100.0 + 40.0 * np.sin(2 * np.pi * t / 24.0)
    cols = [base + rng.normal(0, 2.0, rows)]
    for d in range(1, channels):
        cols.append(0.5 * cols[0] + 10.0 * d + rng.normal(0, 1.0, rows))
    return np.column_stack(cols)


class TestMultivariateEndToEnd:
    @pytest.mark.parametrize("family", ["lstm", "gbr", "naive"])
    def test_fit_predict_persist_roundtrip(self, family, tmp_path):
        series = _mv_series()
        ld = LoadDynamics(
            space=search_space_for("default", "tiny", family=family),
            settings=FrameworkSettings.tiny(max_iters=2, epochs=3),
            family=family,
        )
        predictor, report = ld.fit(series, target_channel=1)
        assert predictor.n_channels == 3
        assert predictor.target_channel == 1
        assert np.isfinite(ld.evaluate(predictor, series))
        value = predictor.predict_next(series)
        assert np.isfinite(value) and value >= 0.0

        predictor.save(tmp_path / "mv")
        loaded = LoadDynamicsPredictor.load(tmp_path / "mv")
        assert loaded.n_channels == 3 and loaded.target_channel == 1
        np.testing.assert_array_equal(
            loaded.predict_series(series, 150), predictor.predict_series(series, 150)
        )

    def test_predict_next_rejects_wrong_width(self):
        series = _mv_series()
        ld = LoadDynamics(
            space=search_space_for("default", "tiny", family="gbr"),
            settings=FrameworkSettings.tiny(max_iters=1),
            family="gbr",
        )
        predictor, _ = ld.fit(series)
        with pytest.raises(ValueError, match="channel"):
            predictor.predict_next(series[:, :2])

    def test_guarded_serving_multivariate(self):
        from repro.serving import GuardedPredictor, serve_and_simulate

        series = _mv_series(rows=160)
        ld = LoadDynamics(
            space=search_space_for("default", "tiny", family="gbr"),
            settings=FrameworkSettings.tiny(max_iters=1),
            family="gbr",
        )
        predictor, _ = ld.fit(series[:140], target_channel=1)
        guarded = GuardedPredictor(predictor)
        assert guarded.target_channel == 1
        report = serve_and_simulate(guarded, series, 140, refit_every=10**9)
        assert report.result.n_intervals == 20
        assert np.all(np.isfinite(report.schedule))
        assert report.served_by.get("primary", 0) > 0

    def test_guard_bound_uses_target_channel(self):
        """The rolling-max clamp binds against the target channel, not D=0."""
        from repro.baselines.base import Predictor
        from repro.serving.guard import GuardedPredictor

        class Exploder(Predictor):
            name = "exploder"
            target_channel = 1

            def predict_next(self, history):
                return 1e12

        g = GuardedPredictor(Exploder(), guard_factor=2.0)
        h = np.column_stack([np.full(50, 1e6), np.full(50, 10.0)])
        assert g.predict_next(h) == pytest.approx(20.0)  # 2 x max(channel 1)
