"""Tests for the cloud simulator, policies, and summaries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autoscale import (
    CloudSimulator,
    OraclePolicy,
    PredictivePolicy,
    ReactivePolicy,
    VMSpec,
    provisioning_schedule,
    summarize,
)
from repro.baselines.naive import MeanPredictor


@pytest.fixture
def spec():
    return VMSpec(startup_seconds=100.0, job_seconds=200.0, job_jitter_frac=0.0)


class TestVMSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            VMSpec(startup_seconds=-1.0)
        with pytest.raises(ValueError):
            VMSpec(job_seconds=0.0)
        with pytest.raises(ValueError):
            VMSpec(job_jitter_frac=1.0)
        with pytest.raises(ValueError):
            VMSpec(max_concurrent_startups=0)


class TestSimulator:
    def test_perfect_provisioning_no_startup_cost(self, spec):
        arrivals = np.array([5.0, 3.0, 8.0])
        sim = CloudSimulator(spec=spec, seed=0)
        res = sim.run(arrivals, arrivals)
        np.testing.assert_allclose(res.turnaround_seconds, 200.0)
        assert res.underprovision_rate == 0.0
        assert res.overprovision_rate == 0.0

    def test_underprovisioning_adds_startup(self, spec):
        sim = CloudSimulator(spec=spec, seed=0)
        res = sim.run(np.array([4.0]), np.array([2.0]))
        # 2 warm jobs at 200s; 2 cold jobs at 200+100 (one startup wave).
        assert res.turnaround_seconds[0] == pytest.approx((2 * 200 + 2 * 300) / 4)
        assert res.makespan_seconds[0] == pytest.approx(300.0)
        assert res.underprovision_rate == pytest.approx(50.0)

    def test_startup_waves_throttled(self):
        spec = VMSpec(
            startup_seconds=100.0,
            job_seconds=200.0,
            job_jitter_frac=0.0,
            max_concurrent_startups=2,
        )
        sim = CloudSimulator(spec=spec, seed=0)
        res = sim.run(np.array([5.0]), np.array([0.0]))
        # Cold jobs 0,1 wait one wave (100s); 2,3 two waves; 4 three waves.
        assert res.makespan_seconds[0] == pytest.approx(200.0 + 3 * 100.0)

    def test_overprovisioning_counts_idle(self, spec):
        sim = CloudSimulator(spec=spec, seed=0)
        res = sim.run(np.array([2.0]), np.array([6.0]))
        assert res.overprovision_rate == pytest.approx(200.0)
        assert res.underprovision_rate == 0.0
        # vm time: 2 jobs * 200s + 4 idle * 200s
        assert res.vm_seconds == pytest.approx(2 * 200 + 4 * 200)

    def test_zero_arrival_interval(self, spec):
        sim = CloudSimulator(spec=spec, seed=0)
        res = sim.run(np.array([0.0, 3.0]), np.array([2.0, 3.0]))
        assert res.turnaround_seconds[0] == 0.0
        assert res.mean_turnaround == pytest.approx(200.0)  # only interval 2

    def test_fractional_counts_rounded_up(self, spec):
        sim = CloudSimulator(spec=spec, seed=0)
        res = sim.run(np.array([2.4]), np.array([1.2]))
        assert res.arrivals[0] == 3.0 and res.provisioned[0] == 2.0

    def test_jitter_reproducible(self):
        spec = VMSpec(job_jitter_frac=0.2)
        a = CloudSimulator(spec=spec, seed=5).run(np.array([10.0]), np.array([10.0]))
        b = CloudSimulator(spec=spec, seed=5).run(np.array([10.0]), np.array([10.0]))
        np.testing.assert_array_equal(a.turnaround_seconds, b.turnaround_seconds)

    def test_length_mismatch(self, spec):
        with pytest.raises(ValueError):
            CloudSimulator(spec=spec).run(np.ones(3), np.ones(4))

    def test_negative_counts_rejected(self, spec):
        with pytest.raises(ValueError):
            CloudSimulator(spec=spec).run(np.array([-1.0]), np.array([1.0]))

    @given(
        arrivals=arrays(np.float64, 10, elements=st.floats(0, 30)),
        provisioned=arrays(np.float64, 10, elements=st.floats(0, 30)),
    )
    @settings(max_examples=30, deadline=None)
    def test_turnaround_at_least_job_time(self, arrivals, provisioned):
        spec = VMSpec(job_jitter_frac=0.0)
        res = CloudSimulator(spec=spec, seed=1).run(arrivals, provisioned)
        busy = res.arrivals > 0
        assert np.all(res.turnaround_seconds[busy] >= spec.job_seconds - 1e-9)

    @given(arrivals=arrays(np.float64, 8, elements=st.floats(0, 20)))
    @settings(max_examples=30, deadline=None)
    def test_oracle_provisioning_is_optimal(self, arrivals):
        """No schedule can beat provisioning exactly the arrivals."""
        spec = VMSpec(job_jitter_frac=0.0)
        sim = CloudSimulator(spec=spec, seed=2)
        oracle = sim.run(arrivals, np.ceil(arrivals))
        assert oracle.underprovision_rate == 0.0
        assert oracle.overprovision_rate <= 100.0  # ceil() surplus only


class TestPolicies:
    def test_reactive_shifts_by_one(self):
        arrivals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        sched = ReactivePolicy().schedule(arrivals, start=2)
        np.testing.assert_array_equal(sched, [2.0, 3.0, 4.0])

    def test_oracle_matches_arrivals(self):
        arrivals = np.array([1.4, 2.0, 3.7])
        sched = OraclePolicy().schedule(arrivals, start=1)
        np.testing.assert_array_equal(sched, [2.0, 4.0])

    def test_predictive_uses_walk_forward(self):
        arrivals = np.full(30, 10.0)
        policy = PredictivePolicy(MeanPredictor(window=5))
        sched = policy.schedule(arrivals, start=20)
        np.testing.assert_allclose(sched, 10.0)

    def test_provisioning_schedule_nonnegative_integERS(self):
        rng = np.random.default_rng(0)
        arrivals = rng.uniform(0, 20, 40)
        sched = provisioning_schedule(MeanPredictor(), arrivals, 30)
        assert np.all(sched >= 0)
        np.testing.assert_array_equal(sched, np.round(sched))

    def test_policy_bounds_validation(self):
        with pytest.raises(ValueError):
            ReactivePolicy().schedule(np.ones(5), start=0)
        with pytest.raises(ValueError):
            OraclePolicy().schedule(np.ones(5), start=9)


class TestReactiveGeneralized:
    def test_defaults_bit_for_bit_identical(self):
        """window=1, headroom=1.0 must reproduce the original rule exactly."""
        rng = np.random.default_rng(3)
        arrivals = rng.uniform(0, 500, 200)
        old_rule = np.ceil(arrivals[49:199])
        np.testing.assert_array_equal(
            ReactivePolicy().schedule(arrivals, start=50), old_rule
        )
        assert ReactivePolicy().name == "reactive"

    def test_window_takes_max_of_last_k(self):
        arrivals = np.array([5.0, 1.0, 2.0, 9.0, 3.0, 4.0])
        sched = ReactivePolicy(window=3).schedule(arrivals, start=3)
        # max of [5,1,2]=5, [1,2,9]=9, [2,9,3]=9
        np.testing.assert_array_equal(sched, [5.0, 9.0, 9.0])

    def test_headroom_scales_before_ceil(self):
        arrivals = np.array([10.0, 10.0, 10.0])
        sched = ReactivePolicy(headroom=1.25).schedule(arrivals, start=1)
        np.testing.assert_array_equal(sched, [13.0, 13.0])

    def test_nonfinite_observations_ignored(self):
        arrivals = np.array([4.0, np.nan, 6.0, np.nan, np.nan])
        sched = ReactivePolicy(window=2).schedule(arrivals, start=2)
        # windows: [4,nan]->4, [nan,6]->6, [6,nan]->6
        np.testing.assert_array_equal(sched, [4.0, 6.0, 6.0])

    def test_all_nonfinite_window_provisions_zero(self):
        arrivals = np.array([np.nan, np.nan, 5.0])
        sched = ReactivePolicy().schedule(arrivals, start=2)
        np.testing.assert_array_equal(sched, [0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            ReactivePolicy(window=0)
        with pytest.raises(ValueError):
            ReactivePolicy(headroom=0.0)

    @given(
        arrivals=arrays(np.float64, 30, elements=st.floats(0, 100)),
        window=st.integers(1, 6),
        headroom=st.floats(1.0, 3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_generalized_dominates_window_values(self, arrivals, window, headroom):
        """Every decision covers headroom x every finite value in its window."""
        sched = ReactivePolicy(window=window, headroom=headroom).schedule(
            arrivals, start=10
        )
        for j, i in enumerate(range(10, arrivals.size)):
            tail = arrivals[max(i - window, 0) : i]
            finite = tail[np.isfinite(tail)]
            if finite.size:
                assert sched[j] >= headroom * finite.max() - 1e-6


class TestSummary:
    def test_summarize_fields(self, spec):
        sim = CloudSimulator(spec=spec, seed=0)
        res = sim.run(np.array([4.0, 2.0]), np.array([3.0, 3.0]))
        s = summarize("test-policy", res)
        assert s.policy == "test-policy"
        assert s.n_intervals == 2
        assert s.mean_turnaround_seconds == pytest.approx(res.mean_turnaround)
        assert s.vm_hours == pytest.approx(res.vm_seconds / 3600.0)
        d = s.as_dict()
        assert set(d) == {
            "policy",
            "mean_turnaround_seconds",
            "underprovision_rate_pct",
            "overprovision_rate_pct",
            "vm_hours",
            "n_intervals",
        }
