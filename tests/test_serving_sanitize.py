"""Trace sanitization: quality reports, repair policies, strict ingestion."""

import numpy as np
import pytest

from repro.serving import REPAIR_POLICIES, TraceSanitizer
from repro.traces import TraceValidationError, load


def dirty_series():
    s = np.array([10.0, 12.0, np.nan, 16.0, -3.0, np.inf, 14.0, 11.0, 13.0, 12.0])
    return s


class TestCheck:
    def test_counts_invalid_kinds(self):
        report = TraceSanitizer().check(dirty_series())
        assert report.n_samples == 10
        assert report.n_nan == 1
        assert report.n_inf == 1
        assert report.n_negative == 1
        assert report.n_invalid == 3
        assert not report.is_clean

    def test_gap_spans_are_nonfinite_runs(self):
        s = np.ones(20)
        s[3:6] = np.nan
        s[10] = np.inf
        report = TraceSanitizer().check(s)
        assert report.gap_spans == [(3, 3), (10, 1)]

    def test_flat_segments(self):
        s = np.sin(np.arange(64.0)) + 2.0
        s[20:40] = 5.0
        report = TraceSanitizer(flat_min_run=16).check(s)
        assert len(report.flat_segments) == 1
        start, length = report.flat_segments[0]
        assert start == 20 and length == 20

    def test_mad_outliers_flagged_not_repaired(self):
        s = np.ones(64) + 0.01 * np.sin(np.arange(64.0))
        s[30] = 1e6
        report = TraceSanitizer(mad_threshold=8.0).check(s)
        assert 30 in report.outlier_indices

    def test_clean_series_is_clean(self):
        report = TraceSanitizer().check(np.arange(1.0, 50.0))
        assert report.is_clean
        assert report.summary().endswith("clean")

    def test_empty_series_rejected(self):
        with pytest.raises(TraceValidationError):
            TraceSanitizer().check(np.array([]))


class TestRepairPolicies:
    def test_reject_is_default_and_raises(self):
        with pytest.raises(TraceValidationError) as exc:
            TraceSanitizer().sanitize(dirty_series())
        assert exc.value.report is not None
        assert exc.value.report.n_invalid == 3

    def test_interpolate_uses_neighbours(self):
        s = np.array([10.0, np.nan, 20.0])
        repaired, report = TraceSanitizer(policy="interpolate").sanitize(s)
        assert repaired[1] == pytest.approx(15.0)
        assert report.repairs == {"interpolated": 1}

    def test_ffill_carries_last_valid(self):
        s = np.array([np.nan, 10.0, np.nan, np.nan, 30.0])
        repaired, _ = TraceSanitizer(policy="ffill").sanitize(s)
        # Leading gap borrows the first valid value.
        assert repaired.tolist() == [10.0, 10.0, 10.0, 10.0, 30.0]

    def test_clip_bounds_into_valid_range(self):
        s = np.array([5.0, -2.0, np.inf, np.nan, 8.0])
        repaired, report = TraceSanitizer(policy="clip").sanitize(s)
        assert repaired.tolist() == [5.0, 0.0, 8.0, 0.0, 8.0]
        assert report.repairs == {"clipped": 3}

    @pytest.mark.parametrize("policy", [p for p in REPAIR_POLICIES if p != "reject"])
    def test_every_policy_outputs_servable_values(self, policy):
        repaired, _ = TraceSanitizer(policy=policy).sanitize(dirty_series())
        assert np.all(np.isfinite(repaired))
        assert np.all(repaired >= 0)

    @pytest.mark.parametrize("policy", REPAIR_POLICIES)
    def test_clean_input_returned_bit_for_bit(self, policy):
        s = np.abs(np.sin(np.arange(50.0))) * 100
        repaired, report = TraceSanitizer(policy=policy).sanitize(s)
        assert report.is_clean and report.n_repaired == 0
        np.testing.assert_array_equal(repaired, s)

    def test_all_invalid_cannot_be_repaired(self):
        with pytest.raises(TraceValidationError):
            TraceSanitizer(policy="interpolate").sanitize(np.full(5, np.nan))

    def test_repair_outliers_opt_in(self):
        s = np.ones(64) + 0.01 * np.sin(np.arange(64.0))
        s[30] = 1e6
        repaired, report = TraceSanitizer(
            policy="interpolate", repair_outliers=True
        ).sanitize(s)
        assert repaired[30] < 10.0
        assert report.repairs["interpolated"] == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            TraceSanitizer(policy="drop")


class TestLoaderIntegration:
    def test_load_is_strict_by_default(self):
        with pytest.raises(TraceValidationError):
            load(dirty_series())

    def test_load_with_repair_ingests(self):
        trace = load(dirty_series(), name="dirty", repair="interpolate")
        assert np.all(np.isfinite(trace.counts))
        assert np.all(trace.counts >= 0)

    def test_load_with_preconfigured_sanitizer(self):
        san = TraceSanitizer(policy="clip")
        trace = load(dirty_series(), sanitizer=san)
        assert np.all(np.isfinite(trace.counts))

    def test_workload_trace_constructor_rejects_nan(self):
        from repro.traces import WorkloadTrace

        with pytest.raises(TraceValidationError):
            WorkloadTrace(name="bad", counts=np.array([1.0, np.nan]), category="test")

    def test_workload_trace_constructor_rejects_negative(self):
        from repro.traces import WorkloadTrace

        with pytest.raises(TraceValidationError):
            WorkloadTrace(name="bad", counts=np.array([1.0, -1.0]), category="test")
