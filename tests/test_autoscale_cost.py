"""Tests for the cloud cost accounting module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autoscale import (
    CloudSimulator,
    CostReport,
    PricingModel,
    VMSpec,
    price_run,
)


@pytest.fixture
def result():
    spec = VMSpec(startup_seconds=100.0, job_seconds=200.0, job_jitter_frac=0.0)
    sim = CloudSimulator(spec=spec, seed=0)
    return sim.run(np.array([4.0, 2.0, 0.0]), np.array([2.0, 4.0, 1.0]))


class TestPricingModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PricingModel(vm_hourly_rate=-1.0)
        with pytest.raises(ValueError):
            PricingModel(billing_increment_seconds=0.0)
        with pytest.raises(ValueError):
            PricingModel(sla_penalty_per_violation=-0.1)


class TestPriceRun:
    def test_vm_cost_matches_vm_seconds(self, result):
        pricing = PricingModel(vm_hourly_rate=3600.0, billing_increment_seconds=1e-9)
        report = price_run("x", result, pricing)
        # rate of 3600/h = 1/s → cost equals vm_seconds
        assert report.vm_cost == pytest.approx(result.vm_seconds, rel=1e-9)

    def test_billing_increment_rounds_up(self, result):
        fine = price_run("x", result, PricingModel(billing_increment_seconds=1.0))
        coarse = price_run("x", result, PricingModel(billing_increment_seconds=3600.0))
        assert coarse.vm_cost >= fine.vm_cost

    def test_sla_violations_counted(self, result):
        # Interval 1 has 2 cold jobs → makespan 300 s; interval 2 idle.
        strict = PricingModel(sla_deadline_seconds=250.0, sla_penalty_per_violation=5.0)
        report = price_run("x", result, strict)
        assert report.sla_violations == 1
        assert report.sla_cost == pytest.approx(5.0)
        assert report.total_cost == report.vm_cost + 5.0

    def test_no_sla_by_default(self, result):
        report = price_run("x", result)
        assert report.sla_violations == 0
        assert report.sla_cost == 0.0

    def test_report_dict(self, result):
        d = price_run("mypolicy", result).as_dict()
        assert d["policy"] == "mypolicy"
        assert set(d) == {"policy", "vm_cost", "sla_violations", "sla_cost", "total_cost"}

    def test_overprovisioning_costs_more(self):
        """More idle VMs must cost more money — the Section II-A claim."""
        spec = VMSpec(job_jitter_frac=0.0)
        sim = CloudSimulator(spec=spec, seed=0)
        arrivals = np.full(5, 10.0)
        exact = sim.run(arrivals, arrivals)
        padded = sim.run(arrivals, arrivals + 10.0)
        assert (
            price_run("padded", padded).vm_cost
            > price_run("exact", exact).vm_cost
        )
