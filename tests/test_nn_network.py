"""Tests for LSTMRegressor training, losses, optimizers, dense layer,
and model serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    DenseLayer,
    LSTMRegressor,
    RMSProp,
    SGD,
    huber_loss,
    load_regressor,
    mae_loss,
    make_optimizer,
    mse_loss,
    save_regressor,
)
from repro.nn.optimizers import clip_gradients


def _windows(series: np.ndarray, n: int):
    X = np.stack([series[i : i + n] for i in range(len(series) - n)])
    return X, series[n:]


class TestLosses:
    @pytest.mark.parametrize("loss", [mse_loss, mae_loss, huber_loss])
    def test_zero_at_target(self, loss, rng):
        y = rng.standard_normal(10)
        value, grad = loss(y.copy(), y)
        assert value == pytest.approx(0.0)
        np.testing.assert_allclose(grad, 0.0, atol=1e-12)

    @pytest.mark.parametrize("loss", [mse_loss, mae_loss, huber_loss])
    def test_gradient_matches_numeric(self, loss, rng):
        pred = rng.standard_normal(8)
        target = rng.standard_normal(8)
        value, grad = loss(pred, target)
        eps = 1e-7
        for i in range(8):
            p = pred.copy()
            p[i] += eps
            lp, _ = loss(p, target)
            p[i] -= 2 * eps
            lm, _ = loss(p, target)
            assert (lp - lm) / (2 * eps) == pytest.approx(grad[i], rel=1e-4, abs=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse_loss(np.zeros(3), np.zeros(4))

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            huber_loss(np.zeros(2), np.zeros(2), delta=0.0)


class TestOptimizers:
    def _quadratic_descent(self, opt, steps=800):
        """Minimize ||p||^2 from a fixed start; return final norm."""
        p = np.array([3.0, -2.0])
        params = [p]
        for _ in range(steps):
            opt.step(params, [2.0 * p])
        return float(np.linalg.norm(p))

    @pytest.mark.parametrize(
        "opt,tol",
        [
            (SGD(lr=0.05), 1e-2),
            (SGD(lr=0.05, momentum=0.9), 1e-2),
            (Adam(lr=0.1), 1e-2),
            # RMSProp's normalized step oscillates at ~lr amplitude near
            # the optimum; it reaches the lr-ball, not machine zero.
            (RMSProp(lr=0.01), 5e-2),
        ],
    )
    def test_converges_on_quadratic(self, opt, tol):
        assert self._quadratic_descent(opt) < tol

    def test_make_optimizer_registry(self):
        assert isinstance(make_optimizer("adam", 0.1), Adam)
        assert isinstance(make_optimizer("SGD", 0.1), SGD)
        with pytest.raises(ValueError):
            make_optimizer("adagrad", 0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam(lr=0.0)

    def test_reset_clears_state(self):
        opt = Adam(lr=0.1)
        p = np.ones(2)
        opt.step([p], [np.ones(2)])
        assert opt._t == 1
        opt.reset()
        assert opt._t == 0 and opt._m is None

    def test_clip_gradients(self):
        g = [np.array([3.0, 4.0])]  # norm 5
        norm = clip_gradients(g, max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(g[0]) == pytest.approx(1.0)

    def test_clip_noop_when_small(self):
        g = [np.array([0.3, 0.4])]
        clip_gradients(g, max_norm=1.0)
        np.testing.assert_allclose(g[0], [0.3, 0.4])

    def test_clip_invalid(self):
        with pytest.raises(ValueError):
            clip_gradients([np.ones(2)], 0.0)


class TestDenseLayer:
    def test_linear_forward(self, rng):
        d = DenseLayer(3, 2, rng)
        x = rng.standard_normal((5, 3))
        np.testing.assert_allclose(d.forward(x), x @ d.W + d.b)

    def test_backward_before_forward_raises(self, rng):
        d = DenseLayer(3, 2, rng)
        with pytest.raises(RuntimeError):
            d.backward(np.zeros((5, 2)))

    def test_relu_gradient(self, rng):
        d = DenseLayer(2, 2, rng, activation="relu")
        x = rng.standard_normal((4, 2))
        out = d.forward(x)
        dx, (dW, db) = d.backward(np.ones_like(out))
        eps = 1e-6
        for i in range(dW.size):
            flat = d.W.ravel()
            orig = flat[i]
            flat[i] = orig + eps
            lp = float(d.forward(x).sum())
            flat[i] = orig - eps
            lm = float(d.forward(x).sum())
            flat[i] = orig
            assert (lp - lm) / (2 * eps) == pytest.approx(
                dW.ravel()[i], rel=1e-4, abs=1e-8
            )

    def test_invalid_activation(self, rng):
        with pytest.raises(ValueError):
            DenseLayer(2, 2, rng, activation="gelu")


class TestTraining:
    def test_learns_sine(self, sine_series):
        X, y = _windows((sine_series - 100.0) / 50.0, 12)
        m = LSTMRegressor(hidden_size=10, num_layers=1, seed=0)
        hist = m.fit(X[:180], y[:180], epochs=25, batch_size=32, lr=0.01)
        pred = m.predict(X[180:])
        rmse = float(np.sqrt(np.mean((pred - y[180:]) ** 2)))
        assert rmse < 0.15  # ~7 units of an 80-unit swing
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_training_is_deterministic(self, sine_series):
        X, y = _windows(sine_series / 150.0, 8)

        def train():
            m = LSTMRegressor(hidden_size=6, seed=3)
            m.fit(X, y, epochs=3, batch_size=16, lr=0.01)
            return m.predict(X[:5])

        np.testing.assert_array_equal(train(), train())

    def test_early_stopping_restores_best(self, sine_series):
        X, y = _windows(sine_series / 150.0, 8)
        m = LSTMRegressor(hidden_size=6, seed=1)
        hist = m.fit(
            X[:150], y[:150],
            epochs=200, batch_size=32, lr=0.05,
            validation=(X[150:], y[150:]), patience=3,
        )
        assert hist.epochs_run < 200  # stopped early
        assert hist.best_epoch >= 0

    def test_validation_loss_tracked(self, sine_series):
        X, y = _windows(sine_series / 150.0, 8)
        m = LSTMRegressor(hidden_size=4, seed=1)
        hist = m.fit(X[:100], y[:100], epochs=4, validation=(X[100:], y[100:]),
                     patience=100)
        assert len(hist.val_loss) == hist.epochs_run

    def test_2d_input_accepted(self, rng):
        X = rng.standard_normal((20, 5))
        y = rng.standard_normal(20)
        m = LSTMRegressor(hidden_size=3, seed=0)
        m.fit(X, y, epochs=2)
        assert m.predict(X).shape == (20,)

    def test_batch_size_clamped(self, rng):
        X = rng.standard_normal((10, 4, 1))
        y = rng.standard_normal(10)
        m = LSTMRegressor(hidden_size=3, seed=0)
        m.fit(X, y, epochs=2, batch_size=10_000)  # must not crash

    def test_mismatched_lengths_raise(self, rng):
        m = LSTMRegressor(hidden_size=3)
        with pytest.raises(ValueError, match="windows but"):
            m.fit(rng.standard_normal((5, 4, 1)), np.zeros(6))

    def test_empty_fit_raises(self):
        m = LSTMRegressor(hidden_size=3)
        with pytest.raises(ValueError):
            m.fit(np.empty((0, 4, 1)), np.empty(0))

    def test_bad_loss_name(self, rng):
        m = LSTMRegressor(hidden_size=3)
        with pytest.raises(ValueError, match="unknown loss"):
            m.fit(rng.standard_normal((5, 4, 1)), np.zeros(5), loss="l0")

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            LSTMRegressor(hidden_size=3, num_layers=0)


class TestSerialization:
    def test_roundtrip_preserves_predictions(self, tmp_path, rng):
        m = LSTMRegressor(hidden_size=5, num_layers=2, seed=9)
        X = rng.standard_normal((7, 6, 1))
        path = save_regressor(m, tmp_path / "model")
        assert path.suffix == ".npz"
        m2 = load_regressor(path)
        np.testing.assert_array_equal(m.predict(X), m2.predict(X))
        assert m2.config() == m.config()

    def test_missing_array_detected(self, tmp_path):
        m = LSTMRegressor(hidden_size=3, seed=0)
        path = save_regressor(m, tmp_path / "m.npz")
        import numpy as np_

        data = dict(np_.load(path))
        del data["param_0"]
        np_.savez(path, **data)
        with pytest.raises(ValueError, match="missing array"):
            load_regressor(path)
