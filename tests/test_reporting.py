"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.core import LSTMHyperparameters
from repro.core.framework import FitReport
from repro.experiments.fig9 import Fig9Result
from repro.experiments.reporting import fig9_report, full_report, rows_to_markdown


@pytest.fixture
def fig9():
    result = Fig9Result()
    result.rows = [
        {"workload": "fb-10m", "loaddynamics": 40.0, "wood": 60.0},
        {"workload": "fb-5m", "loaddynamics": 50.0, "wood": 70.0},
    ]
    for key, n in (("fb-10m", 4), ("fb-5m", 8)):
        result.reports[key] = FitReport(
            best_hyperparameters=LSTMHyperparameters(n, 8, 1, 16),
            best_validation_mape=42.0,
        )
    return result


class TestRowsToMarkdown:
    def test_table_structure(self):
        md = rows_to_markdown([{"a": 1.234, "b": "x"}, {"a": 2.0, "b": "y"}])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "1.23" in lines[2]
        assert len(lines) == 4

    def test_column_selection(self):
        md = rows_to_markdown([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in md.splitlines()[0]

    def test_empty(self):
        assert rows_to_markdown([]) == "*(no rows)*"

    def test_missing_cell_blank(self):
        md = rows_to_markdown([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "|  |" in md.splitlines()[2]


class TestFig9Report:
    def test_contains_rows_average_and_table4(self, fig9):
        md = fig9_report(fig9)
        assert "fb-10m" in md and "AVG" in md
        assert "Table IV" in md
        assert "4-8" in md  # history_len min-max across the two configs

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fig9_report(Fig9Result())


class TestFullReport:
    def test_stitches_sections(self, fig9):
        doc = full_report({"Accuracy": fig9_report(fig9), "Notes": "all good"})
        assert doc.startswith("# Reproduction report")
        assert "## Notes" in doc
        assert "all good" in doc
        # A section that is already a heading is not double-wrapped.
        assert "## ## " not in doc
