"""Tests for the three framework baselines: CloudScale, Wood, CloudInsight,
plus the ML wrappers and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    CloudInsight,
    CloudScale,
    WindowedMLPredictor,
    WoodPredictor,
    cloudinsight_pool,
    list_baselines,
    make_baseline,
    walk_forward,
)
from repro.baselines.naive import MeanPredictor
from repro.metrics import mape
from repro.ml import DecisionTreeRegressor


class TestCloudScale:
    def test_detects_period_of_pure_sine(self):
        t = np.arange(512)
        series = 100 + 50 * np.sin(2 * np.pi * t / 32)
        cs = CloudScale()
        cs.fit(series)
        assert cs.detected_period_ == 32

    def test_periodic_prediction_uses_signature(self):
        t = np.arange(256)
        series = 100 + 50 * np.sin(2 * np.pi * t / 16)
        cs = CloudScale()
        cs.fit(series)
        assert cs.predict_next(series) == pytest.approx(series[-16], rel=1e-9)

    def test_no_period_on_noise_uses_markov(self, rng):
        series = rng.uniform(10, 20, 600)
        cs = CloudScale()
        cs.fit(series)
        assert cs.detected_period_ is None
        pred = cs.predict_next(series)
        assert 10 <= pred <= 20  # Markov expectation stays in range

    def test_markov_transition_rows_are_distributions(self, rng):
        series = np.abs(rng.normal(50, 20, 400))
        cs = CloudScale(n_states=8)
        cs.fit(series)
        if cs._transition is not None:
            np.testing.assert_allclose(cs._transition.sum(axis=1), 1.0, atol=1e-9)

    def test_constant_series_fallback(self):
        series = np.full(100, 5.0)
        cs = CloudScale()
        cs.fit(series)
        assert cs.predict_next(series) == pytest.approx(5.0)

    def test_seasonal_beats_markov_workload(self, sine_series):
        preds = walk_forward(CloudScale(), sine_series, 200, refit_every=5)
        assert mape(preds, sine_series[200:]) < 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudScale(fft_window=4)
        with pytest.raises(ValueError):
            CloudScale(dominance_threshold=1.5)
        with pytest.raises(ValueError):
            CloudScale(n_states=1)


class TestWood:
    def test_tracks_linear_trend(self):
        series = 5.0 * np.arange(60.0) + 100
        w = WoodPredictor(window=20)
        w.fit(series)
        assert w.predict_next(series) == pytest.approx(5.0 * 60 + 100, rel=0.02)

    def test_robust_to_spikes(self):
        series = 10.0 * np.ones(40)
        series[35] = 1000.0  # one spike inside the window
        w = WoodPredictor(window=20)
        w.fit(series)
        assert w.predict_next(series) < 100.0  # spike mostly ignored

    def test_short_history(self):
        w = WoodPredictor()
        assert np.isfinite(w.predict_next(np.array([4.0, 5.0])))

    def test_validation(self):
        with pytest.raises(ValueError):
            WoodPredictor(window=2)


class TestWindowedML:
    def test_wraps_tree_model(self, sine_series):
        p = WindowedMLPredictor(
            lambda: DecisionTreeRegressor(max_depth=6), window=8, name="tree"
        )
        preds = walk_forward(p, sine_series, 200, refit_every=10)
        assert mape(preds, sine_series[200:]) < 15.0

    def test_max_train_caps_pairs(self):
        calls = {}

        class SpyModel:
            def fit(self, X, y):
                calls["n"] = len(y)

            def predict(self, X):
                return np.zeros(len(X))

        p = WindowedMLPredictor(SpyModel, window=4, max_train=50)
        p.fit(np.arange(500.0))
        assert calls["n"] == 50

    def test_short_history_fallback(self):
        p = WindowedMLPredictor(lambda: DecisionTreeRegressor(), window=10)
        assert p.predict_next(np.array([1.0, 2.0])) == 2.0


class TestCloudInsight:
    def test_pool_has_21_members_with_unique_names(self):
        pool = cloudinsight_pool("fast")
        assert len(pool) == 21
        names = [m.name for m in pool]
        assert len(set(names)) == 21

    def test_paper_profile_pool(self):
        assert len(cloudinsight_pool("paper")) == 21

    def test_invalid_profile(self):
        with pytest.raises(ValueError):
            cloudinsight_pool("huge")

    def test_selects_good_expert_on_trend(self):
        """On a clean linear trend the council must not keep using the
        flat-mean expert once errors accumulate."""
        series = 10.0 * np.arange(80.0) + 50
        pool = [MeanPredictor(window=5), _PerfectTrend()]
        ci = CloudInsight(pool=pool, rebuild_every=1, eval_window=5)
        preds = walk_forward(ci, series, 40, refit_every=1)
        assert ci.selected_member is pool[1]
        assert mape(preds[5:], series[45:]) < 5.0

    def test_member_scores_shape(self):
        pool = [MeanPredictor(), _PerfectTrend()]
        ci = CloudInsight(pool=pool)
        scores = ci.member_scores()
        assert scores.shape == (2,)
        assert np.all(np.isinf(scores))  # unscored before any interval

    def test_series_restart_resets_state(self):
        pool = [MeanPredictor(), _PerfectTrend()]
        ci = CloudInsight(pool=pool, rebuild_every=1)
        long = np.arange(1.0, 40.0)
        walk_forward(ci, long, 30)
        assert ci._seen_len > 10
        short = np.arange(1.0, 12.0)
        ci.fit(short)  # shorter series → reset, not crash
        assert ci._seen_len == len(short)

    def test_member_exception_is_contained(self):
        class Exploding(MeanPredictor):
            def predict_next(self, history):
                raise ValueError("boom")

        ci = CloudInsight(pool=[Exploding(), _PerfectTrend()], rebuild_every=1)
        series = np.arange(1.0, 30.0)
        preds = walk_forward(ci, series, 20)
        assert np.all(np.isfinite(preds))

    def test_full_council_on_real_series(self, sine_series):
        """End-to-end with all 21 members on a seasonal series."""
        ci = CloudInsight(profile="fast")
        preds = walk_forward(ci, sine_series, 225, refit_every=1)
        assert mape(preds, sine_series[225:]) < 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CloudInsight(pool=[])
        with pytest.raises(ValueError):
            CloudInsight(rebuild_every=0)


class _PerfectTrend:
    """Helper expert: exact one-step extrapolation of a linear trend."""

    name = "perfect-trend"
    min_history = 2

    def fit(self, history):
        return self

    def predict_next(self, history):
        if len(history) < 2:
            return float(history[-1]) if len(history) else 0.0
        return float(2 * history[-1] - history[-2])


class TestRegistry:
    def test_all_names_instantiable(self):
        for name in list_baselines():
            p = make_baseline(name)
            assert hasattr(p, "predict_next")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown baseline"):
            make_baseline("prophet")

    def test_registry_covers_frameworks(self):
        names = list_baselines()
        for required in ("cloudinsight", "cloudscale", "wood", "arima", "knn"):
            assert required in names
