"""Tests for core data plumbing: scaling, windowing, config/search spaces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    LSTMHyperparameters,
    FrameworkSettings,
    MinMaxScaler,
    make_windows,
    search_space_for,
    windows_for_range,
)


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self, rng):
        v = rng.uniform(100, 900, 50)
        s = MinMaxScaler().fit(v)
        out = s.transform(v)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    @given(arrays(np.float64, st.integers(2, 50), elements=st.floats(-1e6, 1e6)))
    @settings(max_examples=50, deadline=None)
    def test_inverse_is_exact(self, v):
        s = MinMaxScaler().fit(v)
        np.testing.assert_allclose(
            s.inverse_transform(s.transform(v)), v, atol=1e-6, rtol=1e-9
        )

    def test_out_of_range_values_not_clipped(self):
        s = MinMaxScaler().fit(np.array([0.0, 10.0]))
        assert s.transform(np.array([20.0]))[0] == pytest.approx(2.0)
        assert s.inverse_transform(np.array([2.0]))[0] == pytest.approx(20.0)

    def test_constant_series(self):
        s = MinMaxScaler().fit(np.full(5, 3.0))
        out = s.transform(np.full(5, 3.0))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(s.inverse_transform(out), 3.0)

    def test_custom_range(self):
        s = MinMaxScaler(feature_range=(-1.0, 1.0)).fit(np.array([0.0, 4.0]))
        np.testing.assert_allclose(s.transform(np.array([0.0, 2.0, 4.0])), [-1, 0, 1])

    def test_state_roundtrip(self):
        s = MinMaxScaler().fit(np.array([2.0, 8.0]))
        s2 = MinMaxScaler.from_state(s.state())
        v = np.array([3.5, 9.9])
        np.testing.assert_array_equal(s.transform(v), s2.transform(v))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxScaler().transform(np.zeros(2))

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 1.0))

    def test_empty_fit(self):
        with pytest.raises(ValueError):
            MinMaxScaler().fit(np.array([]))


class TestWindowing:
    def test_make_windows_contents(self):
        s = np.arange(6.0)
        X, y = make_windows(s, 2)
        np.testing.assert_array_equal(X, [[0, 1], [1, 2], [2, 3], [3, 4]])
        np.testing.assert_array_equal(y, [2, 3, 4, 5])

    def test_make_windows_count(self):
        X, y = make_windows(np.arange(100.0), 10)
        assert X.shape == (90, 10) and y.shape == (90,)

    def test_make_windows_too_short(self):
        with pytest.raises(ValueError, match="no windows"):
            make_windows(np.arange(5.0), 5)

    def test_make_windows_invalid_n(self):
        with pytest.raises(ValueError):
            make_windows(np.arange(5.0), 0)

    def test_windows_for_range_targets(self):
        s = np.arange(20.0)
        X, y = windows_for_range(s, 3, 10, 15)
        np.testing.assert_array_equal(y, [10, 11, 12, 13, 14])
        np.testing.assert_array_equal(X[0], [7, 8, 9])

    def test_windows_cross_split_boundary(self):
        """Validation windows may reach back into training data (Fig. 7:
        the series is continuous)."""
        s = np.arange(20.0)
        X, y = windows_for_range(s, 8, 10, 12)
        np.testing.assert_array_equal(X[0], np.arange(2.0, 10.0))

    def test_short_prefix_targets_dropped(self):
        s = np.arange(10.0)
        X, y = windows_for_range(s, 5, 2, 8)
        # Targets 2,3,4 lack a full 5-window; first usable target is 5.
        np.testing.assert_array_equal(y, [5, 6, 7])

    def test_empty_result(self):
        X, y = windows_for_range(np.arange(10.0), 9, 2, 5)
        assert X.shape == (0, 9) and y.shape == (0,)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            windows_for_range(np.arange(10.0), 3, 8, 5)

    @given(
        n=st.integers(1, 10),
        start=st.integers(1, 40),
        length=st.integers(50, 80),
    )
    @settings(max_examples=40, deadline=None)
    def test_window_target_consistency(self, n, start, length):
        """Every (window, target) pair satisfies X[j] = s[i-n:i], y[j]=s[i]."""
        s = np.arange(float(length))
        X, y = windows_for_range(s, n, start)
        for xj, yj in zip(X, y, strict=True):
            i = int(yj)
            np.testing.assert_array_equal(xj, s[i - n : i])


class TestConfig:
    def test_table3_paper_ranges(self):
        space = search_space_for("gl", "paper")
        assert space["history_len"].low == 1 and space["history_len"].high == 512
        assert space["cell_size"].high == 100
        assert space["num_layers"].high == 5
        assert space["batch_size"].low == 16 and space["batch_size"].high == 1024

    def test_table3_facebook_ranges(self):
        space = search_space_for("fb", "paper")
        assert space["history_len"].high == 100
        assert space["cell_size"].high == 50
        assert space["batch_size"].low == 8 and space["batch_size"].high == 128

    def test_budget_ordering(self):
        for trace in ("gl", "fb"):
            paper = search_space_for(trace, "paper")
            reduced = search_space_for(trace, "reduced")
            assert reduced["history_len"].high <= paper["history_len"].high
            assert reduced["cell_size"].high <= paper["cell_size"].high

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            search_space_for("gl", "huge")

    def test_hyperparameters_validation(self):
        with pytest.raises(ValueError):
            LSTMHyperparameters(0, 4, 1, 8)
        with pytest.raises(ValueError):
            LSTMHyperparameters(4, 4, 0, 8)

    def test_hyperparameters_dict_roundtrip(self):
        hp = LSTMHyperparameters(12, 30, 2, 64)
        assert LSTMHyperparameters.from_dict(hp.as_dict()) == hp

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            FrameworkSettings(max_iters=0)
        with pytest.raises(ValueError):
            FrameworkSettings(train_frac=0.8, val_frac=0.3)
        with pytest.raises(ValueError):
            FrameworkSettings(epochs=0)

    def test_settings_presets(self):
        r = FrameworkSettings.reduced()
        t = FrameworkSettings.tiny()
        assert t.max_iters < r.max_iters < FrameworkSettings().max_iters
        custom = FrameworkSettings.reduced(max_iters=3)
        assert custom.max_iters == 3
