"""The model-family layer: registry, per-family end-to-end fits, naive
fallback model behaviour, and family-tagged persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FrameworkSettings,
    GenericHyperparameters,
    LoadDynamics,
    LoadDynamicsPredictor,
)
from repro.core.predictor import NaiveLastValueModel
from repro.models import (
    ModelFamily,
    get_family,
    list_families,
    register_family,
)


class TestRegistry:
    def test_at_least_four_families_registered(self):
        names = list_families()
        assert len(names) >= 4
        for required in ("lstm", "gru", "gbr", "svr"):
            assert required in names

    def test_get_family_by_name_and_instance(self):
        lstm = get_family("lstm")
        assert lstm.name == "lstm"
        assert get_family(lstm) is lstm  # instances pass through

    def test_unknown_family_lists_known_names(self):
        with pytest.raises(ValueError, match="lstm"):
            get_family("transformer")

    def test_register_rejects_non_family(self):
        with pytest.raises(TypeError):
            register_family(object())

    def test_every_family_space_includes_history_len(self):
        for name in list_families():
            space = get_family(name).search_space(budget="tiny")
            assert "history_len" in [p.name for p in space.params]


class TestFamiliesEndToEnd:
    @pytest.mark.parametrize("family", ["lstm", "gru", "gbr", "svr"])
    def test_fit_save_load_predict(self, family, sine_series, tmp_path):
        ld = LoadDynamics(
            settings=FrameworkSettings.tiny(),
            budget="tiny",
            family=family,
        )
        predictor, report = ld.fit(sine_series)
        assert not report.degraded
        assert predictor.family == family
        assert np.isfinite(report.best_validation_mape)
        assert report.best_hyperparameters.as_dict()["history_len"] >= 1

        directory = predictor.save(tmp_path / family)
        loaded = LoadDynamicsPredictor.load(directory)
        assert loaded.family == family
        assert loaded.hyperparameters == predictor.hyperparameters
        assert loaded.predict_next(sine_series) == pytest.approx(
            predictor.predict_next(sine_series)
        )
        got = loaded.predict_series(sine_series, 200)
        want = predictor.predict_series(sine_series, 200)
        np.testing.assert_allclose(got, want)

    def test_classical_families_report_generic_hyperparameters(self, sine_series):
        _, report = LoadDynamics(
            settings=FrameworkSettings.tiny(), budget="tiny", family="gbr"
        ).fit(sine_series)
        hp = report.best_hyperparameters
        assert isinstance(hp, GenericHyperparameters)
        assert {"history_len", "n_estimators", "max_depth", "learning_rate"} <= set(
            hp.as_dict()
        )

    def test_family_is_a_journal_identity_key(self, sine_series, tmp_path):
        """A journal written by one family must refuse to resume under
        another — the recorded trials would mean nothing there."""
        from repro.resilience.journal import JournalError

        journal = tmp_path / "journal.jsonl"
        settings = FrameworkSettings.tiny()
        LoadDynamics(settings=settings, budget="tiny", family="gbr").fit(
            sine_series, journal=journal
        )
        with pytest.raises(JournalError, match="family"):
            LoadDynamics(settings=settings, budget="tiny", family="svr").fit(
                sine_series, journal=journal, resume=True
            )


class TestNaiveLastValueModel:
    def test_predicts_last_window_value_2d(self):
        x = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        np.testing.assert_allclose(
            NaiveLastValueModel().predict(x), np.array([3.0, 6.0])
        )

    def test_accepts_3d_windows(self):
        x = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])[:, :, None]
        np.testing.assert_allclose(
            NaiveLastValueModel().predict(x), np.array([3.0, 6.0])
        )

    def test_rejects_other_ranks(self):
        with pytest.raises(ValueError, match="windows"):
            NaiveLastValueModel().predict(np.arange(4.0))

    def test_empty_history_falls_back_to_zero(self):
        from repro.core.scaling import MinMaxScaler

        scaler = MinMaxScaler().fit(np.array([1.0, 2.0, 3.0]))
        predictor = LoadDynamicsPredictor(
            model=NaiveLastValueModel(),
            scaler=scaler,
            hyperparameters=get_family("naive").hyperparameters({}),
            family="naive",
        )
        assert predictor.predict_next(np.array([])) == 0.0
        # A one-value history is enough for history_len=1: persistence.
        assert predictor.predict_next(np.array([42.0])) == pytest.approx(42.0)


class TestCustomFamilyRegistration:
    def test_third_party_family_plugs_into_fit(self, sine_series):
        """The extension point works end to end: a family defined outside
        the package drives the same workflow."""
        from pathlib import Path

        from repro.bayesopt.space import IntParam, SearchSpace

        class MeanModel:
            def fit(self, X, y):
                self._mean = float(np.mean(y))

            def predict(self, X, batch_size=4096):
                return np.full(np.asarray(X).shape[0], self._mean)

        class MeanFamily(ModelFamily):
            name = "test-mean"
            kind = "classical"

            def search_space(self, trace_name="default", budget="paper",
                             extended=False):
                return SearchSpace([IntParam("history_len", 1, 4)])

            def build(self, config, settings, seed):
                return MeanModel()

            def train(self, model, X_train, y_train, X_val, y_val, config,
                      settings, epochs, patience, callbacks):
                model.fit(X_train, y_train)
                return None

            def hyperparameters(self, config):
                return GenericHyperparameters.from_dict(config)

            def save_model(self, model, directory: Path):
                raise NotImplementedError

            def load_model(self, directory: Path):
                raise NotImplementedError

        predictor, report = LoadDynamics(
            settings=FrameworkSettings.tiny(), family=MeanFamily()
        ).fit(sine_series)
        assert not report.degraded
        assert predictor.family == "test-mean"
        assert np.isfinite(predictor.predict_next(sine_series))
