"""Tests for the online adaptive variant and the extended search space
(paper Section V features)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import walk_forward
from repro.core import (
    AdaptiveLoadDynamics,
    FrameworkSettings,
    LoadDynamics,
    search_space_for,
)
from repro.metrics import mape


def regime_change_series(n1: int = 120, n2: int = 120, seed: int = 5) -> np.ndarray:
    """A workload whose pattern flips completely at n1: slow sine →
    faster, 5x larger sine (the Section V failure scenario)."""
    rng = np.random.default_rng(seed)
    t1 = np.arange(n1)
    a = 100 + 30 * np.sin(2 * np.pi * t1 / 24) + rng.normal(0, 2, n1)
    t2 = np.arange(n2)
    b = 500 + 150 * np.sin(2 * np.pi * t2 / 12) + rng.normal(0, 10, n2)
    return np.concatenate([a, b])


@pytest.fixture
def adaptive():
    return AdaptiveLoadDynamics(
        space=search_space_for("default", "tiny"),
        settings=FrameworkSettings.tiny(max_iters=3, epochs=10),
        drift_window=6,
        drift_factor=2.0,
        min_refit_gap=10,
    )


class TestAdaptive:
    def test_initial_fit_happens_lazily(self, adaptive, sine_series):
        assert adaptive.predictor is None
        adaptive.fit(sine_series[:100])
        assert adaptive.predictor is not None
        assert adaptive.n_refits == 1

    def test_no_refit_on_stable_pattern(self, adaptive, sine_series):
        walk_forward(adaptive, sine_series, 120, 180, refit_every=1)
        assert adaptive.n_refits == 1  # only the initial fit

    def test_refit_triggered_by_regime_change(self, adaptive):
        series = regime_change_series()
        walk_forward(adaptive, series, 100, 180, refit_every=1)
        assert adaptive.n_refits >= 2  # drift detected and retrained
        # Retrains must happen after the change point.
        assert all(n > 120 for n in adaptive.refit_history[1:])

    def test_adaptation_beats_frozen_predictor(self):
        """After the regime change, the adaptive variant must beat a
        predictor frozen on the old pattern — the Section V motivation."""
        series = regime_change_series()
        settings = FrameworkSettings.tiny(max_iters=3, epochs=10)
        space = search_space_for("default", "tiny")

        frozen, _ = LoadDynamics(space=space, settings=settings).fit(series[:120])
        frozen_preds = frozen.predict_series(series, 170)

        adaptive = AdaptiveLoadDynamics(
            space=space, settings=settings,
            drift_window=6, drift_factor=2.0, min_refit_gap=10,
        )
        adaptive_preds = walk_forward(adaptive, series, 100, refit_every=1)[70:]

        frozen_mape = mape(frozen_preds, series[170:])
        adaptive_mape = mape(adaptive_preds, series[170:])
        assert adaptive.n_refits >= 2
        assert adaptive_mape < frozen_mape

    def test_cooldown_respected(self):
        adaptive = AdaptiveLoadDynamics(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=2, epochs=5),
            drift_window=4,
            drift_factor=1.5,
            min_refit_gap=50,
        )
        series = regime_change_series()
        walk_forward(adaptive, series, 100, 160, refit_every=1)
        # With a 50-interval cool-down at most one retrain fits in 60 steps.
        assert adaptive.n_refits <= 2

    def test_series_restart_resets(self, adaptive, sine_series):
        adaptive.fit(sine_series[:150])
        assert adaptive.n_refits == 1
        adaptive.fit(sine_series[:60])  # shorter → treated as a new series
        assert adaptive.n_refits == 1  # re-initialized fresh fit
        assert adaptive.refit_history == [60]

    def test_predict_next_without_fit(self, adaptive, sine_series):
        v = adaptive.predict_next(sine_series[:100])
        assert np.isfinite(v)

    def test_short_history_fallback(self, adaptive):
        assert adaptive.predict_next(np.array([5.0, 6.0])) == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLoadDynamics(drift_window=1)
        with pytest.raises(ValueError):
            AdaptiveLoadDynamics(drift_factor=1.0)
        with pytest.raises(ValueError):
            AdaptiveLoadDynamics(min_refit_gap=0)


class TestRefitResilience:
    def _adaptive(self, **overrides):
        kwargs = dict(
            space=search_space_for("default", "tiny"),
            settings=FrameworkSettings.tiny(max_iters=2, epochs=5),
            drift_window=4,
            drift_factor=1.5,
            min_refit_gap=10,
            refit_retries=0,
        )
        kwargs.update(overrides)
        return AdaptiveLoadDynamics(**kwargs)

    def test_refit_crash_keeps_incumbent(self):
        from repro import obs
        from repro.resilience import faults

        adaptive = self._adaptive()
        series = regime_change_series()
        sink = obs.add_sink(obs.MemorySink())
        try:
            # First fit succeeds; the drift-triggered refit crashes.
            with faults.injected("boom@adaptive.refit:2"):
                preds = walk_forward(adaptive, series, 100, 160, refit_every=1)
        finally:
            obs.remove_sink(sink)
        assert adaptive.predictor is not None, "incumbent must keep serving"
        assert adaptive.failed_refits >= 1
        assert np.all(np.isfinite(preds))
        failures = sink.by_name("adaptive.refit_failed")
        assert failures and failures[0]["has_incumbent"]

    def test_initial_fit_failure_still_serves(self):
        from repro.resilience import faults

        adaptive = self._adaptive()
        series = regime_change_series()
        with faults.injected("boom@adaptive.refit:*"):
            preds = walk_forward(adaptive, series, 100, 130, refit_every=1)
        assert adaptive.predictor is None
        assert adaptive.failed_refits >= 1
        # Persistence keeps the loop alive without any model.
        assert np.all(np.isfinite(preds))

    def test_failed_refit_applies_cooldown(self):
        from repro.resilience import faults

        adaptive = self._adaptive(min_refit_gap=200)
        series = regime_change_series()
        with faults.injected("boom@adaptive.refit:*"):
            walk_forward(adaptive, series, 100, 160, refit_every=1)
        # Without the cool-down every interval would retry the fit.
        assert adaptive.failed_refits == 1

    def test_refit_retries_use_fresh_seed(self):
        from repro.resilience import faults

        adaptive = self._adaptive(refit_retries=1)
        series = regime_change_series()
        # Only the very first fit attempt crashes; the in-loop retry
        # (reseeded) succeeds, so no failure is recorded.
        with faults.injected("boom@adaptive.refit:1"):
            walk_forward(adaptive, series, 100, 120, refit_every=1)
        assert adaptive.predictor is not None
        assert adaptive.failed_refits == 0

    def test_refit_deadline_keeps_incumbent(self):
        adaptive = self._adaptive(refit_deadline_s=1e-6)
        series = regime_change_series()
        adaptive.fit(series[:100])  # initial fit: no incumbent, deadline waived
        assert adaptive.predictor is not None
        incumbent = adaptive.predictor
        walk_forward(adaptive, series, 100, 160, refit_every=1)
        # Every post-initial refit blows the microsecond deadline: the
        # late result is discarded and the incumbent keeps serving.
        assert adaptive.predictor is incumbent
        assert adaptive.failed_refits >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLoadDynamics(refit_retries=-1)
        with pytest.raises(ValueError):
            AdaptiveLoadDynamics(refit_deadline_s=0.0)


class TestExtendedSpace:
    def test_extended_space_has_six_dims(self):
        space = search_space_for("gl", "reduced", extended=True)
        assert space.names == [
            "history_len", "cell_size", "num_layers", "batch_size",
            "loss", "optimizer",
        ]

    def test_extended_configs_sampled_valid(self, rng):
        space = search_space_for("gl", "tiny", extended=True)
        for cfg in space.sample(rng, 10):
            assert cfg["loss"] in ("mse", "mae", "huber")
            assert cfg["optimizer"] in ("adam", "rmsprop", "sgd")

    def test_framework_trains_with_extended_space(self, sine_series):
        ld = LoadDynamics(
            space=search_space_for("default", "tiny", extended=True),
            settings=FrameworkSettings.tiny(max_iters=4, epochs=8),
        )
        predictor, report = ld.fit(sine_series)
        assert np.isfinite(report.best_validation_mape)
        # The winning trial's config carries the extended keys.
        best = min(report.trials, key=lambda t: t.value)
        assert "loss" in best.config and "optimizer" in best.config
