"""Public-API hygiene: __all__ correctness and docstring coverage.

A reproduction meant for adoption lives or dies by its public surface;
these tests pin it.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.gp",
    "repro.bayesopt",
    "repro.ml",
    "repro.baselines",
    "repro.traces",
    "repro.core",
    "repro.autoscale",
    "repro.experiments",
    "repro.obs",
    "repro.obs.monitor",
    "repro.serving",
]

MODULES = PACKAGES + [
    "repro.obs.events",
    "repro.obs.metrics",
    "repro.obs.tracing",
    "repro.obs.callbacks",
    "repro.obs.logging",
    "repro.obs.monitor.quality",
    "repro.obs.monitor.drift",
    "repro.obs.monitor.slo",
    "repro.obs.monitor.exposition",
    "repro.obs.monitor.monitor",
    "repro.metrics",
    "repro.parallel",
    "repro.cli",
    "repro.nn.lstm",
    "repro.nn.network",
    "repro.gp.gp",
    "repro.gp.kernels",
    "repro.bayesopt.optimizer",
    "repro.bayesopt.space",
    "repro.ml.tree",
    "repro.ml.svr",
    "repro.baselines.base",
    "repro.baselines.cloudinsight",
    "repro.baselines.cloudscale",
    "repro.baselines.wood",
    "repro.traces.synthetic",
    "repro.core.framework",
    "repro.core.adaptive",
    "repro.core.bruteforce",
    "repro.autoscale.cloudsim",
    "repro.autoscale.controller",
    "repro.autoscale.scenarios",
    "repro.serving.sanitize",
    "repro.serving.guard",
    "repro.serving.breaker",
    "repro.serving.online",
    "repro.serving.stream",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), f"{name} must define __all__"
    for symbol in mod.__all__:
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", MODULES)
def test_module_docstrings(name):
    mod = importlib.import_module(name)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, f"{name} lacks a docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_and_functions_documented(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        obj = getattr(mod, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_star_import_clean():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate
    assert "LoadDynamics" in namespace
