"""Seeded default BO path vs recorded fixture (bit-identical configs).

The search-loop perf pass (incremental surrogate, vectorized sweep
acquisition) must leave the *default* :class:`BayesianOptimizer`
proposal math untouched: same RNG stream, same candidate sweep, same
L-BFGS-B polish, therefore the same suggested configs bit for bit.
The fixture was recorded by ``scripts/make_bo_fixture.py`` running the
pre-rewrite code.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bayesopt import BayesianOptimizer
from repro.core.config import search_space_for

DATA = Path(__file__).parent / "data"


def analytic_objective(space, config: dict) -> float:
    """Must match ``scripts/make_bo_fixture.py`` exactly."""
    u = space.to_unit(config)
    return float(np.sum((u - 0.37) ** 2) + 0.05 * np.sum(np.sin(10.0 * u)))


@pytest.fixture(scope="module")
def fixture() -> dict:
    return json.loads((DATA / "bo_default_path.json").read_text())


def test_default_path_configs_bit_identical(fixture):
    for run in fixture["runs"]:
        space = search_space_for("default", "paper")
        opt = BayesianOptimizer(space, seed=run["seed"])
        best = opt.run(
            lambda c: analytic_objective(space, c), run["n_iters"]
        )
        assert len(opt.history) == len(run["trials"])
        for record, want in zip(opt.history, run["trials"], strict=True):
            assert record.iteration == want["iteration"]
            assert record.config == want["config"], (
                f"seed={run['seed']} trial {record.iteration}: the default "
                "BO path proposed a different config than the recorded one"
            )
            assert record.value == want["value"]
        assert best.config == run["best_config"]
        assert best.value == run["best_value"]
