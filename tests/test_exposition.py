"""Tests for the metrics exposition layer (Prometheus text + JSON)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.monitor import (
    flatten_snapshot,
    load_snapshot,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
    write_snapshot,
)


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.reset_metrics()
    yield
    obs.reset_metrics()


# Metric names stay distinct after sanitization as long as we draw from
# word characters and join with dots (no "a.b" vs "a_b" collisions).
metric_word = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8
)
metric_name = st.builds(
    lambda parts: ".".join(parts), st.lists(metric_word, min_size=1, max_size=3)
)
finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


@st.composite
def registry_snapshots(draw):
    """Build a registry dump by driving real metric objects."""
    obs.reset_metrics()
    names = draw(st.lists(metric_name, min_size=1, max_size=6, unique=True))
    for i, name in enumerate(names):
        kind = draw(st.sampled_from(["counter", "gauge", "histogram"]))
        # Distinct kinds need distinct names in one registry.
        full = f"{kind[0]}{i}.{name}"
        if kind == "counter":
            obs.counter(full).inc(abs(draw(finite)))
        elif kind == "gauge":
            obs.gauge(full).set(draw(finite))
        else:
            h = obs.histogram(full)
            for v in draw(st.lists(finite, min_size=0, max_size=8)):
                h.observe(v)
    return obs.summary()["metrics"]


class TestPrometheusRoundTrip:
    @given(metrics=registry_snapshots())
    @settings(max_examples=50, deadline=None)
    def test_render_parse_recovers_every_sample(self, metrics):
        """Rendered text parses back to exactly the flattened samples."""
        text = render_prometheus(metrics)
        assert parse_prometheus(text) == flatten_snapshot(metrics)

    def test_counter_and_gauge_render(self):
        obs.counter("serve.hits").inc(3)
        obs.gauge("serve.level").set(-2.5)
        text = render_prometheus()
        assert "# TYPE serve_hits counter" in text
        assert "serve_hits 3.0" in text
        assert "serve_level -2.5" in text

    def test_histogram_renders_summary_with_quantiles(self):
        h = obs.histogram("lat.ms")
        h.observe_many(float(i) for i in range(100))
        text = render_prometheus()
        assert "# TYPE lat_ms summary" in text
        assert 'lat_ms{quantile="0.5"}' in text
        assert 'lat_ms{quantile="0.99"}' in text
        assert "lat_ms_count 100.0" in text
        assert "lat_ms_sum 4950.0" in text
        assert "lat_ms_reservoir_wrapped 0.0" in text

    def test_empty_histogram_renders_count_only(self):
        obs.histogram("lat.ms")
        samples = parse_prometheus(render_prometheus())
        assert samples[("lat_ms_count", ())] == 0.0
        assert ("lat_ms", (("quantile", "0.5"),)) not in samples

    def test_prefix_filter(self):
        obs.counter("a.x").inc()
        obs.counter("b.y").inc()
        text = render_prometheus(prefix="a.")
        assert "a_x" in text and "b_y" not in text

    def test_exact_float_round_trip(self):
        value = 0.1 + 0.2  # classically unrepresentable as short decimal
        obs.gauge("g.v").set(value)
        samples = parse_prometheus(render_prometheus())
        assert samples[("g_v", ())] == value  # bit-exact

    def test_sanitization_collision_raises(self):
        metrics = {
            "a.b": {"kind": "counter", "value": 1.0},
            "a_b": {"kind": "counter", "value": 2.0},
        }
        with pytest.raises(ValueError, match="collision"):
            render_prometheus(metrics)

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_prometheus("ok_metric 1.0\n{{{nonsense\n")


class TestSanitizeName:
    @given(name=st.text(min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_output_always_valid(self, name):
        out = sanitize_metric_name(name)
        assert out
        assert not out[0].isdigit()
        assert all(c.isalnum() or c in "_:" for c in out)

    def test_deterministic_examples(self):
        assert sanitize_metric_name("serving.fault.nonfinite") == \
            "serving_fault_nonfinite"
        assert sanitize_metric_name("9lives") == "_9lives"


class TestJsonSnapshots:
    def test_write_load_round_trip(self, tmp_path):
        obs.counter("x.hits").inc(7)
        obs.histogram("x.lat").observe(1.5)
        path = write_snapshot(tmp_path / "snap.json")
        assert load_snapshot(path) == obs.summary()["metrics"]

    def test_output_is_stable(self, tmp_path):
        obs.gauge("b.g").set(1.0)
        obs.counter("a.c").inc()
        first = write_snapshot(tmp_path / "one.json").read_text()
        second = write_snapshot(tmp_path / "two.json").read_text()
        assert first == second
        assert json.loads(first)["schema"] == 1

    def test_prefix_filtered_snapshot(self, tmp_path):
        obs.counter("keep.c").inc()
        obs.counter("drop.c").inc()
        path = write_snapshot(tmp_path / "snap.json", prefix="keep.")
        assert set(load_snapshot(path)) == {"keep.c"}

    def test_load_rejects_non_snapshot(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"nope": 1}')
        with pytest.raises(ValueError, match="metrics"):
            load_snapshot(bad)
        worse = tmp_path / "worse.json"
        worse.write_text('{"metrics": [1, 2]}')
        with pytest.raises(ValueError, match="object"):
            load_snapshot(worse)
