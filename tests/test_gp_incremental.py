"""Incremental (rank-1 Cholesky) GP updates vs from-scratch refits.

The search-loop perf pass replaces the per-``tell`` O(n^3) surrogate
refit with an O(n^2) rank-1 append (:meth:`GaussianProcessRegressor.update`).
The contract: for fixed kernel hyperparameters the incremental posterior
is the *same function* as a from-scratch fit — these tests pin the
parity to ``rtol=1e-9`` across random append sequences (property-based),
and exercise the jitter-escalation fallback and the periodic exact
refactorization that bound numerical drift.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import GaussianProcessRegressor, Matern52, RBF
from repro.obs import metrics as _metrics


def _counter(name: str) -> float:
    return _metrics.counter(name).value


def _make_pair(kernel_cls, d, noise, **kernel_kwargs):
    """Incremental and reference GPs sharing identical hyperparameters."""
    k1 = kernel_cls(**kernel_kwargs)
    k2 = kernel_cls(**kernel_kwargs)
    inc = GaussianProcessRegressor(kernel=k1, noise=noise, optimize=False)
    ref = GaussianProcessRegressor(kernel=k2, noise=noise, optimize=False)
    return inc, ref


def _assert_posterior_parity(inc, ref, Xq, rtol=1e-9):
    """Mean/std parity at ``rtol`` relative to the problem scale.

    The mean's absolute tolerance is anchored to the training-target
    magnitude: where the posterior mean passes near zero, the relative
    error of two algebraically-identical factorizations is unbounded
    even though both are accurate to ``rtol * |y|``.
    """
    mu_i, sd_i = inc.predict(Xq, return_std=True)
    mu_r, sd_r = ref.predict(Xq, return_std=True)
    scale = max(1.0, float(np.max(np.abs(ref._y_raw))))
    np.testing.assert_allclose(mu_i, mu_r, rtol=rtol, atol=rtol * scale)
    np.testing.assert_allclose(sd_i, sd_r, rtol=rtol, atol=1e-12)


class TestRank1Parity:
    @given(
        seed=st.integers(0, 2**16),
        n0=st.integers(2, 10),
        n_appends=st.integers(1, 8),
        d=st.integers(1, 4),
        use_matern=st.booleans(),
        log_noise=st.floats(-5.0, -2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_posterior_matches_full_refit(
        self, seed, n0, n_appends, d, use_matern, log_noise
    ):
        """Random append sequences: mean/std parity to rtol=1e-9.

        The noise domain keeps cond(K) <= ~1e5: factorization-order
        differences between the rank-1 append and a from-scratch potrf
        are bounded by cond(K)*eps, so a 1e-9 parity bar is only
        meaningful on matrices at least that well conditioned.  The BO
        surrogate runs at gp_noise=1e-4, inside this domain.
        """
        rng = np.random.default_rng(seed)
        n = n0 + n_appends
        X = rng.uniform(size=(n, d))
        y = rng.normal(size=n) * rng.uniform(0.5, 50.0)
        noise = 10.0**log_noise
        kernel_cls = Matern52 if use_matern else RBF
        inc, ref = _make_pair(
            kernel_cls, d, noise, lengthscale=float(rng.uniform(0.2, 1.0))
        )
        inc.fit(X[:n0], y[:n0])
        for i in range(n0, n):
            inc.update(X[i], y[i])
        ref.fit(X, y)
        Xq = rng.uniform(size=(16, d))
        _assert_posterior_parity(inc, ref, Xq)

    def test_parity_holds_at_every_intermediate_length(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(24, 3))
        y = rng.normal(size=24)
        inc, _ = _make_pair(Matern52, 3, 1e-5, lengthscale=0.6)
        inc.fit(X[:4], y[:4])
        Xq = rng.uniform(size=(10, 3))
        for i in range(4, 24):
            inc.update(X[i], y[i])
            _, ref = _make_pair(Matern52, 3, 1e-5, lengthscale=0.6)
            ref.fit(X[: i + 1], y[: i + 1])
            _assert_posterior_parity(inc, ref, Xq)

    def test_update_counts_rank1(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(8, 2))
        y = rng.normal(size=8)
        gp = GaussianProcessRegressor(kernel=RBF(), noise=1e-4, optimize=False)
        gp.fit(X[:5], y[:5])
        full0, rank0 = _counter("gp.refit.full"), _counter("gp.refit.rank1")
        for i in range(5, 8):
            gp.update(X[i], y[i])
        assert _counter("gp.refit.rank1") == rank0 + 3
        assert _counter("gp.refit.full") == full0
        assert gp.n_observations == 8


class TestFallbackAndRefactor:
    def test_duplicate_point_falls_back_to_full_refactor(self):
        """A near-duplicate row makes the Schur complement collapse; the
        update must refactorize (escalating jitter) instead of growing a
        rank-deficient factor — and still match a from-scratch refit,
        whose jitter ladder lands on the same regularization."""
        rng = np.random.default_rng(11)
        X = rng.uniform(size=(6, 2))
        y = rng.normal(size=6)
        # Noise below the Schur floor: a duplicate's complement is ~noise,
        # which must be treated as rank deficiency, not appended.
        inc, ref = _make_pair(RBF, 2, 1e-12, lengthscale=0.8)
        inc.fit(X, y)
        full0 = _counter("gp.refit.full")
        dup_x = X[2] + 1e-14
        dup_y = float(y[2])
        inc.update(dup_x, dup_y)
        assert _counter("gp.refit.full") == full0 + 1, (
            "duplicate append must take the full-refactor fallback"
        )
        ref.fit(np.vstack([X, dup_x]), np.append(y, dup_y))
        _assert_posterior_parity(inc, ref, rng.uniform(size=(12, 2)))

    def test_periodic_exact_refactor_every_k(self):
        rng = np.random.default_rng(13)
        X = rng.uniform(size=(16, 2))
        y = rng.normal(size=16)
        gp = GaussianProcessRegressor(
            kernel=RBF(), noise=1e-4, optimize=False, refactor_every=3
        )
        gp.fit(X[:4], y[:4])
        full0, rank0 = _counter("gp.refit.full"), _counter("gp.refit.rank1")
        for i in range(4, 16):
            gp.update(X[i], y[i])
        # Every third update is an exact refactorization: 12 updates =
        # 4 full + 8 rank-1.
        assert _counter("gp.refit.full") == full0 + 4
        assert _counter("gp.refit.rank1") == rank0 + 8
        _, ref = _make_pair(RBF, 2, 1e-4)
        ref.fit(X, y)
        _assert_posterior_parity(gp, ref, rng.uniform(size=(8, 2)))

    def test_update_before_fit_raises(self):
        gp = GaussianProcessRegressor(optimize=False)
        with pytest.raises(RuntimeError):
            gp.update(np.zeros(2), 0.0)

    def test_update_wrong_dims_raises(self):
        rng = np.random.default_rng(17)
        gp = GaussianProcessRegressor(optimize=False)
        gp.fit(rng.uniform(size=(4, 3)), rng.normal(size=4))
        with pytest.raises(ValueError):
            gp.update(np.zeros(2), 0.0)

    def test_refactor_every_validates(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(refactor_every=0)
