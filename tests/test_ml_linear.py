"""Tests for repro.ml.linear (OLS, ridge, Huber) and repro.ml.neighbors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import HuberRegressor, KNNRegressor, LinearRegression, RidgeRegression


@pytest.fixture
def linear_data(rng):
    X = rng.uniform(-2, 2, (60, 3))
    y = X @ np.array([2.0, -1.0, 0.5]) + 3.0
    return X, y


class TestLinearRegression:
    def test_recovers_exact_coefficients(self, linear_data):
        X, y = linear_data
        m = LinearRegression().fit(X, y)
        np.testing.assert_allclose(m.coef_, [2.0, -1.0, 0.5], atol=1e-10)
        assert m.intercept_ == pytest.approx(3.0)

    def test_no_intercept(self, rng):
        X = rng.uniform(-1, 1, (30, 2))
        y = X @ np.array([1.5, -0.5])
        m = LinearRegression(fit_intercept=False).fit(X, y)
        assert m.intercept_ == 0.0
        np.testing.assert_allclose(m.coef_, [1.5, -0.5], atol=1e-10)

    def test_1d_features(self):
        m = LinearRegression().fit(np.arange(10.0), 2 * np.arange(10.0))
        np.testing.assert_allclose(m.predict(np.array([20.0])), [40.0], atol=1e-9)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearRegression().predict(np.zeros((2, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((0, 2)), np.zeros(0))


class TestRidge:
    def test_zero_alpha_matches_ols(self, linear_data):
        X, y = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        np.testing.assert_allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinkage_monotone(self, linear_data):
        X, y = linear_data
        norms = [
            np.linalg.norm(RidgeRegression(alpha=a).fit(X, y).coef_)
            for a in (0.0, 1.0, 100.0)
        ]
        assert norms[0] >= norms[1] >= norms[2]

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestHuber:
    def test_matches_ols_on_clean_data(self, linear_data):
        X, y = linear_data
        h = HuberRegressor().fit(X, y)
        np.testing.assert_allclose(h.coef_, [2.0, -1.0, 0.5], atol=1e-6)

    def test_robust_to_outliers(self, rng):
        X = np.linspace(0, 10, 80)[:, None]
        y = 3.0 * X[:, 0] + 1.0
        y_corrupt = y.copy()
        y_corrupt[::8] += 200.0  # 10% gross outliers
        h = HuberRegressor().fit(X, y_corrupt)
        ols = LinearRegression().fit(X, y_corrupt)
        assert abs(h.coef_[0] - 3.0) < 0.1
        assert abs(ols.coef_[0] - 3.0) > abs(h.coef_[0] - 3.0)

    def test_converges_flag(self, linear_data):
        X, y = linear_data
        h = HuberRegressor(max_iter=50).fit(X, y)
        assert 1 <= h.n_iter_ <= 50

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            HuberRegressor(delta=0.0)

    @given(slope=st.floats(-5, 5), intercept=st.floats(-5, 5))
    @settings(max_examples=25, deadline=None)
    def test_recovers_any_line(self, slope, intercept):
        X = np.linspace(-3, 3, 40)[:, None]
        y = slope * X[:, 0] + intercept
        h = HuberRegressor().fit(X, y)
        assert h.coef_[0] == pytest.approx(slope, abs=1e-4)
        assert h.intercept_ == pytest.approx(intercept, abs=1e-4)


class TestKNN:
    def test_exact_neighbor_recall(self, rng):
        X = rng.uniform(0, 1, (50, 2))
        y = rng.uniform(0, 1, 50)
        m = KNNRegressor(k=1).fit(X, y)
        np.testing.assert_allclose(m.predict(X), y, atol=1e-12)

    def test_k_larger_than_train_clamped(self):
        m = KNNRegressor(k=10).fit(np.arange(3.0)[:, None], np.array([1.0, 2.0, 3.0]))
        assert m.predict(np.array([[1.0]]))[0] == pytest.approx(2.0)

    def test_distance_weighting_prefers_closer(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        m = KNNRegressor(k=2, weights="distance").fit(X, y)
        near_zero = m.predict(np.array([[0.1]]))[0]
        assert near_zero < 5.0

    def test_uniform_weighting_averages(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        m = KNNRegressor(k=2, weights="uniform").fit(X, y)
        assert m.predict(np.array([[0.2]]))[0] == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KNNRegressor(k=0)
        with pytest.raises(ValueError):
            KNNRegressor(weights="cosine")
        with pytest.raises(RuntimeError):
            KNNRegressor().predict(np.zeros((1, 1)))
