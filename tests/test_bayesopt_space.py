"""Tests for search spaces and acquisition functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesopt import (
    CategoricalParam,
    FloatParam,
    IntParam,
    SearchSpace,
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)


class TestIntParam:
    def test_roundtrip_endpoints(self):
        p = IntParam("n", 1, 512, log=True)
        assert p.from_unit(0.0) == 1
        assert p.from_unit(1.0) == 512
        assert p.to_unit(1) == pytest.approx(0.0)
        assert p.to_unit(512) == pytest.approx(1.0)

    @given(st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_log_roundtrip_near_identity(self, v):
        p = IntParam("n", 1, 512, log=True)
        # Rounding may shift by a grid cell but must stay close in log space.
        back = p.from_unit(p.to_unit(v))
        assert abs(np.log(back) - np.log(v)) < 0.05 or back == v

    @given(st.floats(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_from_unit_in_range(self, u):
        p = IntParam("k", 3, 17)
        assert 3 <= p.from_unit(u) <= 17

    def test_out_of_range_rejected(self):
        p = IntParam("k", 3, 17)
        with pytest.raises(ValueError):
            p.to_unit(2)

    def test_clip_outside_unit(self):
        p = IntParam("k", 3, 17)
        assert p.from_unit(-0.5) == 3
        assert p.from_unit(1.5) == 17

    def test_degenerate_range(self):
        p = IntParam("k", 5, 5)
        assert p.from_unit(0.7) == 5
        assert p.to_unit(5) == 0.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            IntParam("k", 5, 3)
        with pytest.raises(ValueError):
            IntParam("k", 0, 3, log=True)

    def test_grid_values_sorted_unique(self):
        vals = IntParam("n", 1, 100, log=True).grid_values(5)
        assert vals == sorted(set(vals))
        assert vals[0] == 1 and vals[-1] == 100


class TestFloatParam:
    @given(st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, u):
        p = FloatParam("lr", 1e-4, 1e-1, log=True)
        v = p.from_unit(u)
        assert p.to_unit(v) == pytest.approx(u, abs=1e-9)

    def test_invalid_log_range(self):
        with pytest.raises(ValueError):
            FloatParam("x", -1.0, 1.0, log=True)


class TestCategoricalParam:
    def test_roundtrip_all_choices(self):
        p = CategoricalParam("act", ("tanh", "relu", "sigmoid"))
        for c in p.choices:
            assert p.from_unit(p.to_unit(c)) == c

    def test_unknown_choice(self):
        p = CategoricalParam("act", ("a", "b"))
        with pytest.raises(ValueError):
            p.to_unit("c")

    def test_empty_choices(self):
        with pytest.raises(ValueError):
            CategoricalParam("x", ())


class TestSearchSpace:
    @pytest.fixture
    def space(self):
        return SearchSpace(
            [
                IntParam("n", 1, 64, log=True),
                IntParam("s", 1, 32),
                CategoricalParam("act", ("tanh", "relu")),
            ]
        )

    def test_vector_roundtrip(self, space):
        cfg = {"n": 16, "s": 20, "act": "relu"}
        u = space.to_unit(cfg)
        assert u.shape == (3,)
        assert space.from_unit(u) == cfg

    def test_sample_valid(self, space, rng):
        for cfg in space.sample(rng, 50):
            space.validate(cfg)  # must not raise

    def test_sample_deterministic(self, space):
        a = SearchSpace.sample(space, np.random.default_rng(3), 5)
        b = SearchSpace.sample(space, np.random.default_rng(3), 5)
        assert a == b

    def test_validate_missing_key(self, space):
        with pytest.raises(ValueError, match="missing"):
            space.validate({"n": 4, "s": 2})

    def test_grid_full_factorial(self, space):
        grid = space.grid(points_per_dim=2)
        assert len(grid) == space.size_of_grid(2)
        assert len({tuple(sorted(g.items())) for g in grid}) == len(grid)

    def test_grid_max_points(self, space):
        grid = space.grid(points_per_dim=3, max_points=4)
        assert len(grid) == 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace([IntParam("n", 1, 2), IntParam("n", 1, 3)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace([])

    def test_getitem(self, space):
        assert space["n"].name == "n"
        with pytest.raises(KeyError):
            space["zz"]


class TestAcquisitions:
    def test_ei_zero_when_hopeless(self):
        # mean far above best with tiny sigma → no expected improvement
        ei = expected_improvement(np.array([10.0]), np.array([1e-9]), best=0.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-12)

    def test_ei_large_when_mean_below_best(self):
        ei = expected_improvement(np.array([-1.0]), np.array([0.1]), best=0.0)
        assert ei[0] == pytest.approx(1.0, abs=0.05)

    def test_ei_increases_with_sigma_at_same_mean(self):
        mu = np.array([1.0, 1.0])
        sd = np.array([0.1, 2.0])
        ei = expected_improvement(mu, sd, best=0.0)
        assert ei[1] > ei[0]

    def test_pi_is_probability(self):
        pi = probability_of_improvement(
            np.array([-5.0, 0.0, 5.0]), np.array([1.0, 1.0, 1.0]), best=0.0
        )
        assert np.all((pi >= 0.0) & (pi <= 1.0))
        assert pi[0] > pi[1] > pi[2]

    def test_lcb_prefers_low_mean_high_sigma(self):
        s = lower_confidence_bound(np.array([1.0, 1.0]), np.array([0.1, 1.0]))
        assert s[1] > s[0]
        s2 = lower_confidence_bound(np.array([0.0, 1.0]), np.array([0.5, 0.5]))
        assert s2[0] > s2[1]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            expected_improvement(np.zeros(2), np.zeros(3), best=0.0)
