"""Tests for Gaussian-process regression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gp import RBF, GaussianProcessRegressor, Matern52


@pytest.fixture
def data(rng):
    X = rng.uniform(0, 1, (30, 2))
    y = np.sin(5 * X[:, 0]) + 0.3 * X[:, 1] + 0.01 * rng.standard_normal(30)
    return X, y


class TestFitPredict:
    def test_interpolates_training_points(self, data):
        X, y = data
        # A short lengthscale keeps the Gram matrix well-conditioned so
        # near-noiseless GP regression should interpolate.
        gp = GaussianProcessRegressor(
            kernel=RBF(lengthscale=0.2), noise=1e-8, optimize=False
        ).fit(X, y)
        np.testing.assert_allclose(gp.predict(X), y, atol=1e-3)

    def test_uncertainty_grows_away_from_data(self, data):
        X, y = data
        gp = GaussianProcessRegressor(optimize=False).fit(X, y)
        _, sd_near = gp.predict(X[:1], return_std=True)
        _, sd_far = gp.predict(np.array([[10.0, 10.0]]), return_std=True)
        assert sd_far[0] > sd_near[0]

    def test_optimized_beats_default_on_lml(self, data):
        X, y = data
        gp0 = GaussianProcessRegressor(kernel=RBF(), optimize=False).fit(X, y)
        lml0 = gp0.log_marginal_likelihood()
        gp1 = GaussianProcessRegressor(kernel=RBF(), optimize=True, seed=0).fit(X, y)
        lml1 = gp1.log_marginal_likelihood()
        assert lml1 >= lml0 - 1e-6

    def test_generalizes(self, data, rng):
        X, y = data
        gp = GaussianProcessRegressor(kernel=Matern52(), seed=0).fit(X, y)
        Xs = rng.uniform(0, 1, (100, 2))
        ys = np.sin(5 * Xs[:, 0]) + 0.3 * Xs[:, 1]
        rmse = float(np.sqrt(np.mean((gp.predict(Xs) - ys) ** 2)))
        assert rmse < 0.1

    def test_predict_1d_query(self, data):
        X, y = data
        gp = GaussianProcessRegressor(optimize=False).fit(X, y)
        assert gp.predict(X[0]).shape == (1,)

    def test_constant_targets_handled(self, rng):
        X = rng.uniform(0, 1, (10, 2))
        y = np.full(10, 3.0)
        gp = GaussianProcessRegressor(optimize=False).fit(X, y)
        np.testing.assert_allclose(gp.predict(X), 3.0, atol=1e-6)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcessRegressor().predict(np.zeros((1, 2)))

    def test_input_validation(self, rng):
        gp = GaussianProcessRegressor()
        with pytest.raises(ValueError):
            gp.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            gp.fit(np.zeros(3), np.zeros(3))  # 1-D X

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(noise=0.0)


class TestLML:
    def test_gradient_matches_numeric(self, rng):
        X = rng.uniform(0, 1, (10, 2))
        y = np.sin(4 * X[:, 0]) + 0.05 * rng.standard_normal(10)
        gp = GaussianProcessRegressor(
            kernel=RBF(ard=True, n_dims=2), optimize=False, noise=1e-2
        ).fit(X, y)
        t0 = gp._pack_theta()
        _, g = gp.log_marginal_likelihood(t0, eval_gradient=True)
        eps = 1e-6
        for j in range(t0.size):
            tp, tm = t0.copy(), t0.copy()
            tp[j] += eps
            tm[j] -= eps
            num = (
                gp.log_marginal_likelihood(tp) - gp.log_marginal_likelihood(tm)
            ) / (2 * eps)
            gp._unpack_theta(t0)
            assert num == pytest.approx(g[j], rel=1e-4, abs=1e-6)

    def test_lml_higher_for_true_structure(self, rng):
        """A GP with a sane lengthscale explains smooth data better than a
        wildly mis-scaled one."""
        X = np.linspace(0, 1, 25)[:, None]
        y = np.sin(4 * X[:, 0])
        good = GaussianProcessRegressor(
            kernel=RBF(lengthscale=0.3), optimize=False, noise=1e-4
        ).fit(X, y)
        bad = GaussianProcessRegressor(
            kernel=RBF(lengthscale=1e-3), optimize=False, noise=1e-4
        ).fit(X, y)
        assert good.log_marginal_likelihood() > bad.log_marginal_likelihood()


class TestPosteriorSampling:
    def test_sample_shapes_and_spread(self, data):
        X, y = data
        gp = GaussianProcessRegressor(optimize=False, seed=4).fit(X, y)
        Xs = np.array([[0.5, 0.5], [5.0, 5.0]])
        draws = gp.sample_posterior(Xs, n_samples=64, seed=1)
        assert draws.shape == (64, 2)
        # Far point has much higher posterior variance than near point.
        assert draws[:, 1].std() > draws[:, 0].std()
