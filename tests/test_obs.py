"""Tests for the ``repro.obs`` observability subsystem."""

from __future__ import annotations

import io
import json
import logging as std_logging
import threading

import numpy as np
import pytest

from repro import obs
from repro.bayesopt.optimizer import BayesianOptimizer
from repro.bayesopt.space import IntParam, SearchSpace


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Isolate every test: no leftover sinks or metrics."""
    obs.clear_sinks()
    obs.reset_metrics()
    yield
    obs.clear_sinks()
    obs.reset_metrics()


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
class TestEvents:
    def test_disabled_without_sinks(self):
        assert not obs.enabled()
        obs.emit("ignored", x=1)  # must be a silent no-op

    def test_emission_to_memory_sink(self):
        sink = obs.add_sink(obs.MemorySink())
        assert obs.enabled()
        obs.emit("unit.test", value=42, label="hello")
        assert len(sink.records) == 1
        rec = sink.records[0]
        assert rec["event"] == "unit.test"
        assert rec["value"] == 42 and rec["label"] == "hello"
        assert rec["time"] > 0 and rec["v"] >= 1

    def test_remove_sink_stops_delivery(self):
        sink = obs.add_sink(obs.MemorySink())
        obs.remove_sink(sink)
        assert not obs.enabled()
        obs.emit("late", x=1)
        assert len(sink.records) == 0

    def test_memory_sink_by_name_and_cap(self):
        sink = obs.MemorySink(max_events=3)
        for i in range(5):
            sink.handle({"event": "a" if i % 2 else "b", "i": i})
        assert len(sink.records) == 3
        assert all(r["i"] >= 2 for r in sink.records)
        assert {r["i"] for r in sink.by_name("a")} <= {3}

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = obs.add_sink(obs.JsonlSink(path))
        obs.emit("first", a=1, arr=np.array([1.0, 2.0]), scalar=np.float64(3.5))
        obs.emit("second", b="text")
        obs.remove_sink(sink, close=True)
        records = list(obs.read_jsonl(path))
        assert [r["event"] for r in records] == ["first", "second"]
        assert records[0]["arr"] == [1.0, 2.0]       # numpy serialized
        assert records[0]["scalar"] == 3.5
        assert records[1]["b"] == "text"


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_gauge(self):
        c = obs.counter("t.count")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)
        g = obs.gauge("t.gauge")
        g.set(7.0)
        g.add(-2.0)
        assert g.value == 5.0

    def test_histogram_percentiles(self):
        h = obs.histogram("t.hist")
        h.observe_many(float(v) for v in range(1, 101))
        assert h.count == 100 and h.min == 1.0 and h.max == 100.0
        assert h.mean == pytest.approx(50.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(90) == pytest.approx(90.1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_histogram_reservoir_bounded(self):
        h = obs.Histogram(max_samples=8)
        h.observe_many(float(v) for v in range(1000))
        assert h.count == 1000            # exact stream stats survive
        assert h.max == 999.0
        assert len(h._samples) == 8       # reservoir stays bounded

    def test_timer_context_manager(self):
        t = obs.timer("t.timer")
        with t.time() as timing:
            pass
        assert t.count == 1
        assert timing.seconds >= 0.0
        snap = t.snapshot()
        assert snap["kind"] == "timer" and snap["count"] == 1

    def test_registry_snapshot_and_conflict(self):
        obs.counter("t.c").inc()
        obs.histogram("t.h").observe(1.0)
        snap = obs.get_registry().snapshot()
        assert snap["t.c"] == {"kind": "counter", "value": 1.0}
        assert snap["t.h"]["count"] == 1
        with pytest.raises(TypeError):
            obs.gauge("t.c")              # name already taken by a counter
        report = obs.summary()
        assert report["metrics"]["t.c"]["value"] == 1.0

    def test_thread_safety_of_counter(self):
        c = obs.counter("t.mt")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000

    def test_registry_concurrency_storm(self):
        """Mixed inc/observe/registration from many threads: exact totals.

        Every thread hammers a shared counter, a shared histogram, and a
        per-thread counter it registers itself — exercising the registry
        lock (get-or-create) and each metric's own lock together.
        """
        n_threads, n_ops = 8, 500
        shared_c = obs.counter("storm.shared")
        shared_h = obs.histogram("storm.lat")
        barrier = threading.Barrier(n_threads)

        def work(tid: int):
            barrier.wait()  # maximize interleaving
            mine = obs.counter(f"storm.thread.{tid}")
            for i in range(n_ops):
                shared_c.inc()
                shared_h.observe(float(i))
                mine.inc(2.0)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert shared_c.value == n_threads * n_ops
        assert shared_h.count == n_threads * n_ops
        assert shared_h.total == n_threads * sum(range(n_ops))
        assert shared_h.min == 0.0 and shared_h.max == float(n_ops - 1)
        snap = obs.get_registry().snapshot("storm.thread.")
        assert len(snap) == n_threads
        assert all(s["value"] == 2.0 * n_ops for s in snap.values())

    def test_prefix_filtered_snapshot_and_summary(self):
        obs.counter("serving.hits").inc()
        obs.counter("serving_hits_lookalike").inc()   # no dot: prefix excludes
        obs.gauge("serve.level").set(1.0)             # sibling namespace
        obs.histogram("serving.lat").observe(2.0)

        snap = obs.get_registry().snapshot("serving.")
        assert set(snap) == {"serving.hits", "serving.lat"}

        report = obs.summary("serving.")
        assert report["schema"] == 1
        assert set(report["metrics"]) == {"serving.hits", "serving.lat"}
        # Unmatched prefix yields an empty mapping, not an error.
        assert obs.get_registry().snapshot("nothing.") == {}
        assert obs.summary("nothing.")["metrics"] == {}
        # No prefix means everything.
        assert len(obs.get_registry().snapshot()) == 4

    def test_histogram_snapshot_reservoir_provenance(self):
        h = obs.Histogram(max_samples=8)
        h.observe_many(float(v) for v in range(5))
        snap = h.snapshot()
        assert snap["reservoir_size"] == 5
        assert snap["reservoir_wrapped"] is False

        h.observe_many(float(v) for v in range(5, 100))
        snap = h.snapshot()
        assert snap["count"] == 100        # exact stream stats survive
        assert snap["reservoir_size"] == 8  # reservoir stays bounded
        assert snap["reservoir_wrapped"] is True

        empty = obs.Histogram().snapshot()
        assert empty["count"] == 0 and empty["reservoir_size"] == 0
        assert empty["reservoir_wrapped"] is False
        assert empty["min"] is None and "p50" not in empty


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracing:
    def test_span_nesting_and_records(self):
        sink = obs.add_sink(obs.MemorySink())
        assert obs.current_span() is None
        with obs.span("outer", task="test") as outer:
            assert obs.current_span() is outer
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.depth == outer.depth + 1
            outer.set("extra", 5)
        assert obs.current_span() is None
        spans = sink.by_name("span")
        assert [r["span"] for r in spans] == ["inner", "outer"]  # exit order
        outer_rec = spans[1]
        assert outer_rec["extra"] == 5 and outer_rec["task"] == "test"
        assert outer_rec["duration_s"] >= spans[0]["duration_s"]

    def test_span_metrics_recorded_without_sinks(self):
        with obs.span("quiet.block"):
            pass
        snap = obs.get_registry().snapshot()
        assert snap["span.quiet.block.seconds"]["count"] == 1

    def test_span_closes_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError("x")
        assert obs.current_span() is None


# ----------------------------------------------------------------------
# logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_namespacing(self):
        assert obs.get_logger("bayesopt").name == "repro.bayesopt"
        assert obs.get_logger("repro.core").name == "repro.core"
        assert obs.get_logger().name == "repro"

    def test_configure_json_mode(self):
        stream = io.StringIO()
        obs.configure_logging("DEBUG", json_mode=True, stream=stream)
        obs.get_logger("unit").info("hello %s", "world")
        payload = json.loads(stream.getvalue().strip())
        assert payload["logger"] == "repro.unit"
        assert payload["level"] == "INFO"
        assert payload["message"] == "hello world"

    def test_reconfigure_replaces_handler(self):
        s1, s2 = io.StringIO(), io.StringIO()
        obs.configure_logging("INFO", stream=s1)
        obs.configure_logging("INFO", stream=s2)
        obs.get_logger("unit").warning("once")
        assert "once" not in s1.getvalue()
        assert "once" in s2.getvalue()
        root = std_logging.getLogger("repro")
        stream_handlers = [
            h for h in root.handlers if isinstance(h, std_logging.StreamHandler)
            and not isinstance(h, std_logging.NullHandler)
        ]
        assert len(stream_handlers) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obs.configure_logging("NOPE")


# ----------------------------------------------------------------------
# training callbacks
# ----------------------------------------------------------------------
class TestTrainingCallbacks:
    def _data(self, n=48, t=6):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((n, t, 1))
        y = rng.standard_normal(n)
        return x, y

    def test_one_callback_per_epoch_monotonic(self):
        from repro.nn import LSTMRegressor

        x, y = self._data()
        epochs_seen: list[int] = []

        class Recorder(obs.TrainingCallback):
            def __init__(self):
                self.began = self.ended = 0

            def on_train_begin(self, model, n_epochs):
                self.began += 1

            def on_epoch_end(self, epoch, logs):
                epochs_seen.append(epoch)
                assert logs["train_loss"] >= 0.0
                assert logs["duration_s"] >= 0.0
                assert logs["n_batches"] >= 1

            def on_train_end(self, history):
                self.ended += 1

        rec = Recorder()
        model = LSTMRegressor(hidden_size=4, seed=0)
        history = model.fit(x, y, epochs=5, batch_size=16, callbacks=[rec])
        assert epochs_seen == [0, 1, 2, 3, 4]
        assert len(epochs_seen) == history.epochs_run
        assert rec.began == 1 and rec.ended == 1

    def test_plain_callable_and_early_stop(self):
        from repro.nn import LSTMRegressor

        x, y = self._data(64, 5)
        seen: list[int] = []
        model = LSTMRegressor(hidden_size=4, seed=0)
        history = model.fit(
            x, y, epochs=40, batch_size=32,
            validation=(x[:8], y[:8]), patience=2,
            callbacks=[lambda epoch, logs: seen.append(epoch)],
        )
        assert seen == list(range(history.epochs_run))
        if history.stopped_early:
            assert history.epochs_run < 40

    def test_epoch_events_emitted(self):
        from repro.nn import LSTMRegressor

        sink = obs.add_sink(obs.MemorySink())
        x, y = self._data()
        LSTMRegressor(hidden_size=4, seed=0).fit(x, y, epochs=3, batch_size=16)
        records = sink.by_name("train.epoch")
        assert [r["epoch"] for r in records] == [0, 1, 2]

    def test_telemetry_callback(self):
        from repro.nn import LSTMRegressor

        x, y = self._data()
        cb = obs.TelemetryCallback(prefix="unit.train")
        LSTMRegressor(hidden_size=4, seed=0).fit(
            x, y, epochs=4, batch_size=16, callbacks=[cb]
        )
        snap = obs.get_registry().snapshot()
        assert snap["unit.train.epochs"]["value"] == 4
        assert snap["unit.train.epoch_loss"]["count"] == 4

    def test_bad_callback_rejected(self):
        with pytest.raises(TypeError):
            obs.CallbackList([42])


# ----------------------------------------------------------------------
# BO instrumentation
# ----------------------------------------------------------------------
class TestSearchTelemetry:
    def test_trial_events_and_surrogate_timings(self):
        sink = obs.add_sink(obs.MemorySink())
        space = SearchSpace([IntParam("x", 1, 32)])
        opt = BayesianOptimizer(space, n_initial=2, seed=3)

        opt.run(lambda cfg: float((cfg["x"] - 7) ** 2), n_iters=5)

        trials = sink.by_name("bo.trial")
        assert len(trials) == 5
        assert [t["iteration"] for t in trials] == list(range(5))
        assert all(t["optimizer"] == "bayesian" for t in trials)
        # GP-phase trials carry surrogate + acquisition timings.
        gp_trials = [t for t in trials if "surrogate_fit_s" in t]
        assert gp_trials, "expected at least one GP-suggested trial"
        assert all(t["acq_opt_s"] >= 0.0 for t in gp_trials)
        assert obs.get_registry().snapshot()["bo.trials"]["value"] == 5

    def test_objective_metadata_lands_on_record(self):
        space = SearchSpace([IntParam("x", 1, 32)])
        opt = BayesianOptimizer(space, n_initial=2, seed=3)
        best = opt.run(
            lambda cfg: (float(cfg["x"]), {"note": f"x={cfg['x']}"}), n_iters=3
        )
        assert all("note" in r.metadata for r in opt.history)
        assert best.metadata["note"] == f"x={best.config['x']}"


# ----------------------------------------------------------------------
# end-to-end: LoadDynamics + autoscale trace
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_fit_trace_and_telemetry(self, sine_series, tiny_settings, tmp_path):
        from repro.core import LoadDynamics, search_space_for

        path = str(tmp_path / "fit.jsonl")
        sink = obs.add_sink(obs.JsonlSink(path))
        ld = LoadDynamics(
            space=search_space_for("default", "tiny"), settings=tiny_settings
        )
        predictor, report = ld.fit(sine_series)
        obs.remove_sink(sink, close=True)

        records = list(obs.read_jsonl(path))
        roots = [
            r for r in records
            if r.get("event") == "span" and r.get("span") == "loaddynamics.fit"
        ]
        assert len(roots) == 1
        root = roots[0]
        assert root["parent_id"] is None and root["n_trials"] == report.n_trials
        trials = [r for r in records if r.get("event") == "bo.trial"]
        assert len(trials) == tiny_settings.max_iters
        epochs = [r for r in records if r.get("event") == "train.epoch"]
        assert epochs, "expected per-epoch training events in the trace"

        # Trial metadata explains each outlier: feasible trials carry the
        # training cost, infeasible ones the reason.
        for t in report.trials:
            if t.metadata.get("infeasible"):
                assert "reason" in t.metadata
            else:
                assert t.metadata["train_seconds"] >= 0.0
                assert t.metadata["epochs_run"] >= 1
                assert isinstance(t.metadata["stopped_early"], bool)
        tel = report.telemetry
        assert tel["n_trials"] == report.n_trials
        assert tel["epochs_total"] >= 1
        assert tel["fit_span_seconds"] > 0.0
        assert tel["train_seconds_total"] <= tel["total_seconds"]

    def test_autoscale_step_events(self):
        from repro.autoscale import CloudSimulator

        sink = obs.add_sink(obs.MemorySink())
        arrivals = np.array([3, 0, 5, 2])
        provisioned = np.array([2, 1, 5, 4])
        sim = CloudSimulator(seed=0)
        sim.run(arrivals, provisioned)
        steps = sink.by_name("autoscale.step")
        assert [s["interval"] for s in steps] == [0, 1, 2, 3]
        assert steps[0]["cold_starts"] == 1
        assert steps[1]["arrivals"] == 0 and steps[1]["idle_vms"] == 1
        assert steps[3]["idle_vms"] == 2
        snap = obs.get_registry().snapshot()
        assert snap["autoscale.intervals"]["value"] == 4
