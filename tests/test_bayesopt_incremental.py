"""Incremental-surrogate and sweep-acquisition BO modes.

The perf pass adds two opt-in fast paths to :class:`BayesianOptimizer`:
a persistent surrogate updated rank-1 at ``tell`` time (full hyperopt
refits only every ``reopt_every`` tells) and a vectorized Sobol-sweep
acquisition optimizer.  These tests pin the refit schedule exactly
(counter arithmetic — the same contract the CI search-perf smoke
asserts), both modes' internal determinism, and that constant-liar
batching never leaks lie observations into the persistent GP.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesopt import BayesianOptimizer
from repro.core.config import search_space_for
from repro.obs import metrics as _metrics


def _counter(name: str) -> float:
    return _metrics.counter(name).value


def _objective(space):
    def fn(config: dict) -> float:
        u = space.to_unit(config)
        return float(np.sum((u - 0.42) ** 2) + 0.03 * np.sum(np.cos(7.0 * u)))

    return fn


def _run(n_iters=12, seed=3, **kwargs) -> BayesianOptimizer:
    space = search_space_for("default", "paper")
    opt = BayesianOptimizer(space, seed=seed, **kwargs)
    opt.run(_objective(space), n_iters)
    return opt


class TestConstruction:
    def test_auto_resolves_by_mode(self):
        space = search_space_for("default", "paper")
        assert BayesianOptimizer(space).acq_optimizer == "polish"
        assert BayesianOptimizer(space, incremental=True).acq_optimizer == "sweep"
        assert (
            BayesianOptimizer(space, incremental=True, acq_optimizer="polish")
            .acq_optimizer
            == "polish"
        )

    def test_validation(self):
        space = search_space_for("default", "paper")
        with pytest.raises(ValueError):
            BayesianOptimizer(space, acq_optimizer="newton")
        with pytest.raises(ValueError):
            BayesianOptimizer(space, incremental=True, reopt_every=0)


class TestIncrementalSchedule:
    def test_refit_schedule_exact(self):
        """full/rank-1 counts follow the ``reopt_every`` arithmetic.

        With ``n_initial=2`` and 10 trials, trials 2..9 are GP-backed
        (8 suggests, 8 absorbing tells).  At ``reopt_every=3`` every
        third GP-backed tell drops the surrogate instead of updating
        it, so: full fits at trials 2, 5, 8 (=3), rank-1 updates on the
        other six tells, surrogate reuse on the five suggests that
        found a live in-sync GP.
        """
        full0 = _counter("gp.refit.full")
        rank0 = _counter("gp.refit.rank1")
        reuse0 = _counter("bo.surrogate.reused")
        _run(n_iters=10, n_initial=2, incremental=True, reopt_every=3)
        assert _counter("gp.refit.full") == full0 + 3
        assert _counter("gp.refit.rank1") == rank0 + 6
        assert _counter("bo.surrogate.reused") == reuse0 + 5

    def test_incremental_run_deterministic(self):
        a = _run(incremental=True, reopt_every=4)
        b = _run(incremental=True, reopt_every=4)
        assert [r.config for r in a.history] == [r.config for r in b.history]
        assert [r.value for r in a.history] == [r.value for r in b.history]

    def test_surrogate_stays_in_sync(self):
        opt = _run(n_iters=11, incremental=True, reopt_every=50)
        assert opt._gp is not None
        assert opt._gp.n_observations == len(opt._y)

    def test_external_tell_absorbs_then_desync_invalidates(self):
        opt = _run(n_iters=9, incremental=True, reopt_every=50)
        assert opt._gp is not None
        space = opt.space
        # An external (never-suggested) tell is still one new
        # observation: a normal rank-1 absorb keeps the GP in sync.
        extern = space.sample(np.random.default_rng(99), 1)[0]
        opt.tell(extern, 1.23)
        assert opt._gp is not None
        assert opt._gp.n_observations == len(opt._y)
        # A replay-style desync (history grew behind the GP's back)
        # must drop the surrogate, never guess.
        opt._X.append(space.to_unit(extern))
        opt._y.append(0.5)
        opt.tell(space.sample(np.random.default_rng(7), 1)[0], 0.9)
        assert opt._gp is None

    def test_batch_lies_never_enter_persistent_gp(self):
        space = search_space_for("default", "paper")
        opt = BayesianOptimizer(
            space, seed=5, n_initial=2, incremental=True, reopt_every=50
        )
        fn = _objective(space)
        for _ in range(6):
            c = opt.suggest()
            opt.tell(c, fn(c))
        assert opt._gp is not None
        configs = opt.suggest_batch(3)
        assert len(configs) == 3
        # Lies were appended and popped; the persistent GP must not have
        # absorbed them.
        assert opt._gp is None or opt._gp.n_observations <= len(opt._y)
        for c in configs:
            opt.tell(c, fn(c))
        assert len(opt._y) == 9
        if opt._gp is not None:
            assert opt._gp.n_observations <= len(opt._y)
        # The loop keeps producing valid suggestions afterwards.
        c = opt.suggest()
        opt.tell(c, fn(c))
        assert len(opt.history) == 10

    def test_restore_search_state_drops_surrogate(self):
        opt = _run(n_iters=9, incremental=True, reopt_every=50)
        assert opt._gp is not None
        opt.restore_search_state(opt.search_state())
        assert opt._gp is None


class TestSweepAcquisition:
    def test_sweep_run_deterministic(self):
        a = _run(acq_optimizer="sweep")
        b = _run(acq_optimizer="sweep")
        assert [r.config for r in a.history] == [r.config for r in b.history]

    def test_sweep_improves_over_random_start(self):
        opt = _run(n_iters=16, acq_optimizer="sweep")
        random_best = min(r.value for r in opt.history[: opt.n_initial])
        assert opt.best_value <= random_best

    def test_sweep_emits_candidate_gauge(self):
        _run(n_iters=8, acq_optimizer="sweep")
        # Sobol sweep (1024) + incumbent-local pool (256) + batched
        # polish rounds: the gauge records every scored candidate.
        assert _metrics.gauge("bo.acquisition.candidates").value >= 1024 + 256

    def test_polish_emits_candidate_gauge(self):
        _run(n_iters=8, acq_optimizer="polish")
        assert _metrics.gauge("bo.acquisition.candidates").value >= 1024 + 256

    def test_sweep_with_non_power_of_two_candidates(self):
        opt = _run(n_iters=8, acq_optimizer="sweep", n_candidates=300)
        assert len(opt.history) == 8

    def test_sweep_honors_exclusions(self):
        space = search_space_for("default", "paper")
        opt = BayesianOptimizer(
            space, seed=11, n_initial=2, incremental=True
        )
        banned = {"history_len"}
        opt.set_excluded(lambda c: c["history_len"] > 40)
        fn = _objective(space)
        for _ in range(8):
            c = opt.suggest()
            assert c["history_len"] <= 40, banned
            opt.tell(c, fn(c))
