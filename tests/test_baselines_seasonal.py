"""Tests for the seasonal Holt-Winters predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    HoltDESPredictor,
    HoltWintersSeasonalPredictor,
    make_baseline,
    walk_forward,
)
from repro.metrics import mape


@pytest.fixture
def seasonal_series():
    t = np.arange(360)
    rng = np.random.default_rng(4)
    return (100 + 10 * t / 360) * (1.0 + 0.4 * np.sin(2 * np.pi * t / 24)) + rng.normal(
        0, 1.5, 360
    )


class TestHoltWintersSeasonal:
    def test_tracks_seasonal_series(self, seasonal_series):
        p = HoltWintersSeasonalPredictor(period=24)
        preds = walk_forward(p, seasonal_series, 300)
        assert mape(preds, seasonal_series[300:]) < 5.0

    def test_beats_nonseasonal_holt(self, seasonal_series):
        hw = walk_forward(
            HoltWintersSeasonalPredictor(period=24), seasonal_series, 300
        )
        holt = walk_forward(HoltDESPredictor(), seasonal_series, 300)
        assert mape(hw, seasonal_series[300:]) < mape(holt, seasonal_series[300:])

    def test_additive_mode(self, seasonal_series):
        p = HoltWintersSeasonalPredictor(period=24, multiplicative=False)
        preds = walk_forward(p, seasonal_series, 300)
        assert mape(preds, seasonal_series[300:]) < 10.0

    def test_wrong_period_degrades(self, seasonal_series):
        right = walk_forward(
            HoltWintersSeasonalPredictor(period=24), seasonal_series, 300
        )
        wrong = walk_forward(
            HoltWintersSeasonalPredictor(period=17), seasonal_series, 300
        )
        assert mape(right, seasonal_series[300:]) < mape(wrong, seasonal_series[300:])

    def test_short_history_fallback(self):
        p = HoltWintersSeasonalPredictor(period=24)
        assert p.predict_next(np.array([5.0, 6.0])) == 6.0

    def test_constant_series_stable(self):
        p = HoltWintersSeasonalPredictor(period=4)
        series = np.full(40, 10.0)
        assert p.predict_next(series) == pytest.approx(10.0, rel=1e-6)

    def test_in_registry(self):
        p = make_baseline("holt-winters-seasonal")
        assert p.period == 48

    def test_validation(self):
        with pytest.raises(ValueError):
            HoltWintersSeasonalPredictor(period=1)
        with pytest.raises(ValueError):
            HoltWintersSeasonalPredictor(period=4, alpha=0.0)
        with pytest.raises(ValueError):
            HoltWintersSeasonalPredictor(period=4, gamma=1.5)
