"""Tests for repro.nn.activations and repro.nn.initializers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.activations import (
    drelu_from_x,
    dsigmoid_from_y,
    dtanh_from_y,
    relu,
    sigmoid,
    tanh,
)
from repro.nn.initializers import glorot_uniform, lstm_bias, orthogonal


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_no_overflow_extreme_inputs(self):
        x = np.array([-1e9, 1e9])
        y = sigmoid(x)
        assert y[0] == pytest.approx(0.0, abs=1e-15)
        assert y[1] == pytest.approx(1.0, abs=1e-15)
        assert np.all(np.isfinite(y))

    @given(arrays(np.float64, 20, elements=st.floats(-1e6, 1e6)))
    @settings(max_examples=50, deadline=None)
    def test_range_and_monotonicity(self, x):
        y = sigmoid(x)
        assert np.all((y >= 0.0) & (y <= 1.0))
        order = np.argsort(x)
        assert np.all(np.diff(y[order]) >= -1e-15)

    def test_derivative_matches_numeric(self):
        x = np.linspace(-4, 4, 41)
        eps = 1e-6
        num = (sigmoid(x + eps) - sigmoid(x - eps)) / (2 * eps)
        ana = dsigmoid_from_y(sigmoid(x))
        np.testing.assert_allclose(ana, num, atol=1e-8)


class TestTanh:
    def test_derivative_matches_numeric(self):
        x = np.linspace(-3, 3, 31)
        eps = 1e-6
        num = (tanh(x + eps) - tanh(x - eps)) / (2 * eps)
        np.testing.assert_allclose(dtanh_from_y(tanh(x)), num, atol=1e-8)


class TestRelu:
    def test_values(self):
        np.testing.assert_array_equal(
            relu(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0]
        )

    def test_derivative(self):
        np.testing.assert_array_equal(
            drelu_from_x(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 1.0]
        )


class TestInitializers:
    def test_glorot_bounds(self, rng):
        w = glorot_uniform(rng, 10, 20, (10, 20))
        limit = np.sqrt(6.0 / 30.0)
        assert np.all(np.abs(w) <= limit)
        assert w.shape == (10, 20)

    def test_glorot_invalid_fans(self, rng):
        with pytest.raises(ValueError):
            glorot_uniform(rng, 0, 5, (5,))

    def test_orthogonal_square_is_orthogonal(self, rng):
        q = orthogonal(rng, 16, 16)
        np.testing.assert_allclose(q @ q.T, np.eye(16), atol=1e-10)

    def test_orthogonal_tall_has_orthonormal_columns(self, rng):
        q = orthogonal(rng, 20, 8)
        np.testing.assert_allclose(q.T @ q, np.eye(8), atol=1e-10)

    def test_orthogonal_invalid(self, rng):
        with pytest.raises(ValueError):
            orthogonal(rng, 0, 4)

    def test_lstm_bias_forget_gate_slice(self):
        b = lstm_bias(5, forget_bias=1.0)
        assert b.shape == (20,)
        np.testing.assert_array_equal(b[5:10], np.ones(5))
        assert b[:5].sum() == 0.0 and b[10:].sum() == 0.0

    def test_lstm_bias_invalid(self):
        with pytest.raises(ValueError):
            lstm_bias(0)
