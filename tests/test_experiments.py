"""Smoke tests for the experiment runners (tiny budgets).

These verify that every table/figure runner produces well-formed rows
with the expected columns and sane values; the full-scale shapes are
checked by the benchmark harnesses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FrameworkSettings
from repro.experiments import (
    baseline_test_mape,
    fit_loaddynamics,
    format_table,
    run_fig2,
    run_fig5,
    run_fig9,
    run_fig10,
    run_search_ablation,
    run_table4,
)
from repro.experiments import test_start_index as _test_start_index
from repro.traces import get_configuration

TINY = dict(settings=None)


@pytest.fixture(scope="module")
def tiny_fig9():
    """One shared tiny fig9 run (fb-10m is the shortest config)."""
    return run_fig9(
        configurations=["fb-10m", "fb-5m"],
        budget="tiny",
        settings=FrameworkSettings.tiny(),
        brute_force_trials=2,
        max_eval=20,
    )


class TestCommon:
    def test_test_start_index_80pct(self):
        assert _test_start_index(100) == 80

    def test_test_start_index_capped(self):
        assert _test_start_index(1000, max_eval=50) == 950

    def test_baseline_test_mape_runs(self):
        series = get_configuration("fb-10m").load()
        v = baseline_test_mape("ema", series, max_eval=15)
        assert np.isfinite(v) and v >= 0

    def test_fit_loaddynamics_returns_triple(self):
        series = get_configuration("fb-10m").load()
        predictor, report, m = fit_loaddynamics(
            series, "fb", budget="tiny",
            settings=FrameworkSettings.tiny(), max_eval=15,
        )
        assert np.isfinite(m)
        assert report.n_trials == FrameworkSettings.tiny().max_iters

    def test_format_table_alignment(self):
        rows = [{"a": 1.2345, "b": "x"}, {"a": 22.0, "b": "yyyy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "1.23" in text
        assert format_table([]) == "(no rows)"


class TestFig2:
    def test_rows_shape(self):
        rows = run_fig2(max_eval=15)
        assert len(rows) == 3
        for row in rows:
            assert set(row) == {"workload", "cloudinsight", "cloudscale", "wood"}
            for k in ("cloudinsight", "cloudscale", "wood"):
                assert np.isfinite(row[k]) and row[k] >= 0


class TestFig5:
    def test_spread_statistics(self):
        out = run_fig5(
            n_models=4,
            workload="fb-10m",
            budget="tiny",
            settings=FrameworkSettings.tiny(max_iters=1),
            seed=3,
        )
        assert out["n_feasible"] >= 2
        assert out["min"] <= out["median"] <= out["max"]
        assert out["spread_ratio"] >= 1.0
        assert np.all(np.diff(out["mapes_sorted"]) >= 0)

    def test_n_models_validation(self):
        with pytest.raises(ValueError):
            run_fig5(n_models=1)


class TestFig9:
    def test_rows_and_reports(self, tiny_fig9):
        assert len(tiny_fig9.rows) == 2
        assert set(tiny_fig9.reports) == {"fb-10m", "fb-5m"}
        for row in tiny_fig9.rows:
            for col in ("loaddynamics", "cloudinsight", "cloudscale", "wood",
                        "lstm_bruteforce"):
                assert col in row
                assert np.isfinite(row[col])

    def test_average_row(self, tiny_fig9):
        avg = tiny_fig9.average_row()
        assert avg["workload"] == "AVG"
        lds = [r["loaddynamics"] for r in tiny_fig9.rows]
        assert avg["loaddynamics"] == pytest.approx(np.mean(lds))


class TestTable4:
    def test_min_max_format(self, tiny_fig9):
        rows = run_table4(tiny_fig9)
        assert len(rows) == 1  # both configs are fb
        row = rows[0]
        assert row["workload"] == "fb"
        assert row["n_configs"] == 2
        lo, hi = row["history_len"].split("-")
        assert int(lo) <= int(hi)

    def test_empty_result_rejected(self):
        from repro.experiments.fig9 import Fig9Result

        with pytest.raises(ValueError):
            run_table4(Fig9Result())


class TestFig10:
    def test_policies_present_and_oracle_dominates(self):
        rows = run_fig10(
            budget="tiny",
            settings=FrameworkSettings.tiny(),
            max_eval=30,
            baselines=("wood",),
        )
        policies = {r["policy"] for r in rows}
        assert {"loaddynamics", "wood", "reactive", "oracle"} <= policies
        oracle = next(r for r in rows if r["policy"] == "oracle")
        assert oracle["underprovision_rate_pct"] == 0.0
        assert oracle["overprovision_rate_pct"] == 0.0
        for r in rows:
            assert r["mean_turnaround_seconds"] >= oracle["mean_turnaround_seconds"] - 1e-9


class TestAblation:
    def test_search_ablation_rows(self):
        rows = run_search_ablation(
            workload="fb-10m",
            budget="tiny",
            n_iters=3,
            settings=FrameworkSettings.tiny(),
            max_eval=15,
        )
        assert [r["optimizer"] for r in rows] == ["bayesian", "random", "grid"]
        for r in rows:
            assert np.isfinite(r["val_mape"]) and r["seconds"] > 0
