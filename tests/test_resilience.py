"""Tests for the resilience subsystem: fault injection, crash-safe
journal/resume, retries, quarantine, and graceful degradation."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bayesopt import BayesianOptimizer, FloatParam, IntParam, SearchSpace
from repro.bayesopt.grid_search import GridSearch
from repro.bayesopt.random_search import RandomSearch
from repro.core import FrameworkSettings, LoadDynamics, search_space_for
from repro.nn import CorruptModelError, LSTMRegressor, load_regressor, save_regressor
from repro.resilience import (
    DeadlineCallback,
    FaultInjector,
    FaultSpec,
    JournalError,
    Quarantine,
    RetryPolicy,
    SimulatedCrash,
    TrialJournal,
    TrialTimeout,
    injected,
)


@pytest.fixture
def tiny_space():
    return search_space_for("default", "tiny")


# ----------------------------------------------------------------------
# fault injector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_parse_spec(self):
        spec = FaultSpec.parse("slow@objective:3=0.2")
        assert spec == FaultSpec(kind="slow", site="objective", at=3, arg=0.2)
        assert FaultSpec.parse("kill@nn.fit:*").at is None

    @pytest.mark.parametrize(
        "text", ["explode@objective:1", "kill@objective", "kill@objective:0",
                 "kill@objective:x", "kill@objective:1=z"]
    )
    def test_parse_rejects_bad_specs(self, text):
        with pytest.raises(ValueError):
            FaultSpec.parse(text)

    def test_fires_at_exact_invocation(self):
        inj = FaultInjector.parse("linalg@gp.fit:2")
        assert inj.maybe_fire("gp.fit") == {}
        with pytest.raises(np.linalg.LinAlgError):
            inj.maybe_fire("gp.fit")
        assert inj.maybe_fire("gp.fit") == {}  # only invocation 2
        assert inj.count("gp.fit") == 3

    def test_kill_is_baseexception(self):
        inj = FaultInjector.parse("kill@objective:1")
        with pytest.raises(SimulatedCrash):
            try:
                inj.maybe_fire("objective")
            except Exception:  # recovery code must NOT be able to do this
                pytest.fail("SimulatedCrash was caught by `except Exception`")

    def test_nan_loss_returned_to_caller(self):
        inj = FaultInjector.parse("nan_loss@nn.fit:1=3")
        fired = inj.maybe_fire("nn.fit")
        assert fired["nan_loss"].arg == 3
        assert inj.maybe_fire("other.site") == {}

    def test_env_roundtrip(self, monkeypatch):
        from repro.resilience import faults

        monkeypatch.setenv(faults.FAULTS_ENV, "kill@objective:5")
        faults.clear_injector()
        inj = faults.active()
        assert inj is not None and inj.specs[0].kind == "kill"
        assert faults.active() is inj  # counters persist across calls
        monkeypatch.delenv(faults.FAULTS_ENV)
        faults.clear_injector()
        assert faults.active() is None

    def test_injected_context_manager(self):
        from repro.resilience import faults

        with injected("slow@objective:1=0.0") as inj:
            assert faults.active() is inj
        assert faults.active() is None


# ----------------------------------------------------------------------
# trial journal
# ----------------------------------------------------------------------
class TestTrialJournal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = TrialJournal(path)
        journal.start({"optimizer": "BayesianOptimizer", "seed": 0})
        journal.append_trial(0, {"x": 1}, 2.5, {"train_seconds": 0.1},
                             state={"cursor": 1})
        journal.append_trial(1, {"x": 2}, 1.5, {})
        journal.close()
        header, trials = TrialJournal.load(path)
        assert header["optimizer"] == "BayesianOptimizer"
        assert [t["value"] for t in trials] == [2.5, 1.5]
        assert trials[0]["state"] == {"cursor": 1}

    def test_truncated_tail_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = TrialJournal(path)
        journal.start({"seed": 0})
        journal.append_trial(0, {"x": 1}, 2.5)
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"kind": "trial", "iteration": 1, "con')  # crash mid-write
        header, trials = TrialJournal.load(path)
        assert len(trials) == 1

    def test_numpy_metadata_serializable(self, tmp_path):
        journal = TrialJournal(tmp_path / "run.jsonl")
        journal.start({})
        journal.append_trial(
            0, {"x": 1}, np.float64(3.5), {"epochs": np.int64(4), "ok": np.True_}
        )
        journal.close()
        _, trials = TrialJournal.load(tmp_path / "run.jsonl")
        assert trials[0]["metadata"]["epochs"] == 4

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "trial", "iteration": 0}) + "\n")
        with pytest.raises(JournalError, match="header"):
            TrialJournal.load(path)

    def test_header_mismatch_rejected(self):
        with pytest.raises(JournalError, match="different run"):
            TrialJournal.check_header({"seed": 0}, {"seed": 1})

    def test_reopen_missing_file_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="does not exist"):
            TrialJournal(tmp_path / "nope.jsonl").reopen()


# ----------------------------------------------------------------------
# retry / quarantine / deadline primitives
# ----------------------------------------------------------------------
class TestRetryPrimitives:
    def test_retry_policy_backoff(self):
        policy = RetryPolicy(max_retries=2, backoff=0.5)
        assert policy.attempts == 3
        assert policy.epochs_for(40, 0) == 40
        assert policy.epochs_for(40, 1) == 20
        assert policy.epochs_for(40, 2) == 10
        assert policy.epochs_for(1, 2) == 1  # floor
        seeds = {policy.seed_for(0, a) for a in range(3)}
        assert len(seeds) == 3

    def test_quarantine_threshold(self):
        q = Quarantine(threshold=2)
        cfg = {"x": 1}
        assert not q.is_quarantined(cfg)
        q.record_failure(cfg)
        assert not q.is_quarantined(cfg)
        q.record_failure({"x": 1})  # equal config, different dict object
        assert q.is_quarantined(cfg)
        assert len(q) == 1
        assert q.quarantined_configs() == [{"x": 1}]

    def test_deadline_callback_raises(self):
        cb = DeadlineCallback(timeout_s=1e-9)
        with pytest.raises(TrialTimeout):
            cb.on_epoch_end(0, {})

    def test_deadline_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DeadlineCallback(0.0)


# ----------------------------------------------------------------------
# optimizer-level resilience
# ----------------------------------------------------------------------
def bowl(cfg):
    return (cfg["x"] - 1.0) ** 2 + (cfg["y"] + 1.0) ** 2


@pytest.fixture
def float_space():
    return SearchSpace([FloatParam("x", -3.0, 3.0), FloatParam("y", -3.0, 3.0)])


class TestOptimizerResilience:
    def test_gp_failure_degrades_to_random(self, float_space):
        bo = BayesianOptimizer(float_space, n_initial=2, seed=0)
        with injected("linalg@gp.fit:*"):
            rec = bo.run(bowl, 8)
        assert bo.n_trials == 8
        assert np.isfinite(rec.value)
        degraded = [t for t in bo.history if t.metadata.get("degraded_suggest")]
        assert len(degraded) == 8 - 2  # every GP iteration fell back

    def test_excluded_never_suggested_random(self):
        space = SearchSpace([IntParam("k", 1, 2)])
        rs = RandomSearch(space, seed=0, avoid_duplicates=False)
        rs.set_excluded(lambda cfg: cfg["k"] == 1)
        assert all(rs.suggest()["k"] == 2 for _ in range(20))

    def test_excluded_skipped_by_grid(self):
        space = SearchSpace([IntParam("k", 1, 4)])
        gs = GridSearch(space, points_per_dim=4)
        gs.set_excluded(lambda cfg: cfg["k"] in (1, 3))
        seen = []
        with pytest.raises(StopIteration):
            while True:
                seen.append(gs.suggest()["k"])
        assert seen == [2, 4]

    def test_excluded_respected_by_bo(self, float_space):
        bo = BayesianOptimizer(float_space, n_initial=3, seed=0)
        bo.set_excluded(lambda cfg: cfg["x"] > 0)
        for _ in range(10):
            cfg = bo.suggest()
            assert cfg["x"] <= 0
            bo.tell(cfg, bowl(cfg))

    def test_state_restore_resumes_identically(self, float_space):
        full = BayesianOptimizer(float_space, n_initial=2, seed=3)
        full.run(bowl, 8)

        # Interrupted twin: 4 trials, then a fresh optimizer replays them.
        half = BayesianOptimizer(float_space, n_initial=2, seed=3)
        half.run(bowl, 4)
        state = half.search_state()
        resumed = BayesianOptimizer(float_space, n_initial=2, seed=3)
        for t in half.history:
            resumed.tell(t.config, t.value)
        resumed.restore_search_state(state)
        resumed.run(bowl, 4)
        assert [t.config for t in resumed.history] == [t.config for t in full.history]
        np.testing.assert_array_equal(
            [t.value for t in resumed.history], [t.value for t in full.history]
        )


# ----------------------------------------------------------------------
# LoadDynamics end-to-end resilience
# ----------------------------------------------------------------------
class TestLoadDynamicsResilience:
    def test_nan_loss_fault_degrades_with_metadata(self, sine_series, tiny_space):
        settings = FrameworkSettings.tiny(max_iters=3, max_retries=1)
        ld = LoadDynamics(space=tiny_space, settings=settings)
        with injected("nan_loss@nn.fit:*"):
            predictor, report = ld.fit(sine_series)
        assert report.degraded
        assert report.n_infeasible == report.n_trials
        meta = report.trials[0].metadata
        assert meta["reason"] == "training_diverged"
        assert meta["error"] == "nonfinite_train_loss"
        assert meta["failing_epoch"] == 0
        assert meta["attempts"] == 2  # one retry-with-reseed happened
        assert report.telemetry["n_retries"] == report.n_trials

    def test_trial_timeout_degrades(self, sine_series, tiny_space):
        settings = FrameworkSettings.tiny(max_iters=2, trial_timeout_s=1e-5)
        ld = LoadDynamics(space=tiny_space, settings=settings)
        predictor, report = ld.fit(sine_series)
        assert report.degraded
        assert all(t.metadata["reason"] == "trial_timeout" for t in report.trials)
        assert all(t.metadata["attempts"] == 1 for t in report.trials)  # no retry
        # The naive fallback still predicts.
        assert predictor.predict_next(sine_series) == pytest.approx(sine_series[-1])

    def test_degraded_predictor_persists_via_naive_family(
        self, sine_series, tiny_space, tmp_path
    ):
        from repro.core import LoadDynamicsPredictor

        settings = FrameworkSettings.tiny(max_iters=2, trial_timeout_s=1e-5)
        predictor, report = LoadDynamics(
            space=tiny_space, settings=settings
        ).fit(sine_series)
        assert report.degraded
        assert predictor.family == "naive"
        # Degraded fits persist like any other: the naive family owns the
        # (weight-free) model format, and the round-trip predicts the same.
        predictor.save(tmp_path / "model")
        loaded = LoadDynamicsPredictor.load(tmp_path / "model")
        assert loaded.family == "naive"
        assert loaded.model.degraded
        assert loaded.predict_next(sine_series) == pytest.approx(
            predictor.predict_next(sine_series)
        )

    def test_gp_fault_does_not_abort_fit(self, sine_series, tiny_space):
        settings = FrameworkSettings.tiny(max_iters=4)
        ld = LoadDynamics(space=tiny_space, settings=settings)
        with injected("linalg@gp.fit:*"):
            predictor, report = ld.fit(sine_series)
        assert not report.degraded
        assert report.n_trials == 4
        assert report.telemetry["n_degraded_suggests"] >= 1

    def test_journal_written_and_loadable(self, sine_series, tiny_space, tmp_path):
        path = tmp_path / "run.jsonl"
        settings = FrameworkSettings.tiny(max_iters=3)
        ld = LoadDynamics(space=tiny_space, settings=settings)
        _, report = ld.fit(sine_series, journal=path)
        header, trials = TrialJournal.load(path)
        assert header["optimizer"] == "BayesianOptimizer"
        assert len(trials) == report.n_trials == 3
        assert trials[-1]["state"]["rng"]["bit_generator"] == "PCG64"

    def test_resume_requires_journal(self, sine_series, tiny_space):
        ld = LoadDynamics(space=tiny_space, settings=FrameworkSettings.tiny())
        with pytest.raises(ValueError, match="requires a journal"):
            ld.fit(sine_series, resume=True)

    def test_resume_header_mismatch_rejected(self, sine_series, tiny_space,
                                             tmp_path):
        path = tmp_path / "run.jsonl"
        LoadDynamics(
            space=tiny_space, settings=FrameworkSettings.tiny(seed=0)
        ).fit(sine_series, journal=path)
        other = LoadDynamics(space=tiny_space, settings=FrameworkSettings.tiny(seed=9))
        with pytest.raises(JournalError, match="different run"):
            other.fit(sine_series, journal=path, resume=True)

    def test_crash_and_resume_matches_uninterrupted_run(self, sine_series,
                                                        tiny_space, tmp_path):
        """The acceptance scenario: kill the run mid-flight via an injected
        fault, resume from the journal, and get a bit-for-bit identical
        result to the uninterrupted run."""
        settings = FrameworkSettings.tiny(max_iters=6)

        full_path = tmp_path / "full.jsonl"
        ld_full = LoadDynamics(space=tiny_space, settings=settings)
        _, rep_full = ld_full.fit(sine_series, journal=full_path)

        # Killed at the 4th objective evaluation: 3 trials reach the journal.
        crash_path = tmp_path / "crash.jsonl"
        ld_crash = LoadDynamics(space=tiny_space, settings=settings)
        with injected("kill@objective:4"):
            with pytest.raises(SimulatedCrash):
                ld_crash.fit(sine_series, journal=crash_path)
        _, trials_after_crash = TrialJournal.load(crash_path)
        assert len(trials_after_crash) == 3

        ld_resume = LoadDynamics(space=tiny_space, settings=settings)
        predictor, rep_resumed = ld_resume.fit(
            sine_series, journal=crash_path, resume=True
        )
        assert rep_resumed.n_resumed == 3
        assert rep_resumed.n_trials == rep_full.n_trials == 6
        assert rep_resumed.best_hyperparameters == rep_full.best_hyperparameters
        np.testing.assert_array_equal(
            rep_resumed.trial_values(), rep_full.trial_values()
        )
        assert rep_resumed.best_validation_mape == rep_full.best_validation_mape
        assert [t.config for t in rep_resumed.trials] == [
            t.config for t in rep_full.trials
        ]
        # The journal now holds the complete run.
        _, trials_final = TrialJournal.load(crash_path)
        assert len(trials_final) == 6
        # The resumed predictor is a real trained model, not the fallback.
        assert not rep_resumed.degraded
        assert isinstance(predictor.model, LSTMRegressor)

    def test_resume_with_complete_journal_retrains_best_only(
        self, sine_series, tiny_space, tmp_path
    ):
        """Resuming a journal that already holds max_iters trials must not
        run any new trials — just reconstruct the best model."""
        path = tmp_path / "done.jsonl"
        settings = FrameworkSettings.tiny(max_iters=3)
        _, rep_a = LoadDynamics(space=tiny_space, settings=settings).fit(
            sine_series, journal=path
        )
        _, rep_b = LoadDynamics(space=tiny_space, settings=settings).fit(
            sine_series, journal=path, resume=True
        )
        assert rep_b.n_resumed == 3
        assert rep_b.n_trials == 3
        assert rep_b.best_validation_mape == rep_a.best_validation_mape
        assert rep_b.best_hyperparameters == rep_a.best_hyperparameters


# ----------------------------------------------------------------------
# atomic model serialization
# ----------------------------------------------------------------------
class TestAtomicSerialization:
    def test_no_tmp_file_left_behind(self, tmp_path):
        m = LSTMRegressor(hidden_size=3, seed=0)
        path = save_regressor(m, tmp_path / "m.npz")
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_garbage_file_raises_corrupt_error(self, tmp_path):
        path = tmp_path / "m.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CorruptModelError):
            load_regressor(path)

    def test_truncated_file_raises_corrupt_error(self, tmp_path):
        m = LSTMRegressor(hidden_size=4, num_layers=2, seed=1)
        path = save_regressor(m, tmp_path / "m.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CorruptModelError):
            load_regressor(path)

    def test_missing_file_stays_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_regressor(tmp_path / "absent.npz")

    def test_corrupt_error_is_a_valueerror(self):
        assert issubclass(CorruptModelError, ValueError)
