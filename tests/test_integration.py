"""End-to-end integration tests: trace → framework → predictor → simulator.

These exercise the same seams the experiment runners use, at unit-test
budgets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autoscale import CloudSimulator, VMSpec, provisioning_schedule
from repro.baselines import CloudInsight, make_baseline, walk_forward
from repro.core import FrameworkSettings, LoadDynamics, LoadDynamicsPredictor, search_space_for
from repro.metrics import mape
from repro.traces import get_configuration, train_val_test_split


@pytest.fixture(scope="module")
def fb_series():
    return get_configuration("fb-10m").load()


@pytest.fixture(scope="module")
def fb_predictor(fb_series):
    ld = LoadDynamics(
        space=search_space_for("fb", "tiny"),
        settings=FrameworkSettings.tiny(max_iters=4, epochs=10),
    )
    predictor, report = ld.fit(fb_series)
    return predictor, report


class TestFullPipeline:
    def test_trace_to_predictor(self, fb_series, fb_predictor):
        predictor, report = fb_predictor
        assert report.n_trials == 4
        start = int(0.8 * len(fb_series))
        preds = predictor.predict_series(fb_series, start)
        assert preds.shape == (len(fb_series) - start,)
        assert np.all(preds >= 0)
        assert np.isfinite(mape(preds, fb_series[start:]))

    def test_predictor_through_walk_forward(self, fb_series, fb_predictor):
        """A LoadDynamics predictor is a Predictor: the generic
        walk-forward path must agree with the batched path."""
        predictor, _ = fb_predictor
        start = len(fb_series) - 12
        wf = walk_forward(predictor, fb_series, start, refit_every=10**9)
        batched = predictor.predict_series(fb_series, start)
        np.testing.assert_allclose(wf, batched, atol=1e-9)

    def test_predictor_to_autoscaler(self, fb_series, fb_predictor):
        predictor, _ = fb_predictor
        start = len(fb_series) - 20
        schedule = np.ceil(np.maximum(predictor.predict_series(fb_series, start), 0))
        sim = CloudSimulator(spec=VMSpec(job_jitter_frac=0.0), seed=0)
        res = sim.run(fb_series[start:], schedule)
        assert res.n_intervals == 20
        # Accounting identity: shortfall + surplus == |P - J| per interval.
        np.testing.assert_allclose(
            res.under_provisioned + res.over_provisioned,
            np.abs(res.provisioned - res.arrivals),
        )

    def test_save_load_deploy_cycle(self, fb_series, fb_predictor, tmp_path):
        predictor, _ = fb_predictor
        predictor.save(tmp_path / "deploy")
        loaded = LoadDynamicsPredictor.load(tmp_path / "deploy")
        start = len(fb_series) - 10
        np.testing.assert_allclose(
            loaded.predict_series(fb_series, start),
            predictor.predict_series(fb_series, start),
            atol=1e-12,
        )

    def test_split_and_framework_agree(self, fb_series):
        """The framework's internal split matches train_val_test_split."""
        tr, va, te = train_val_test_split(fb_series)
        assert len(tr) + len(va) + len(te) == len(fb_series)
        i_test = int(round(0.8 * len(fb_series)))
        np.testing.assert_array_equal(te, fb_series[i_test:])


class TestCouncilIntegration:
    def test_council_close_to_best_member_on_seasonal(self, sine_series):
        """On a clean seasonal series the council must track within 2x of
        its best member (it can only pick from the pool)."""
        members = [make_baseline(n) for n in ("ema", "holt-des", "ar", "knn")]
        start = 210
        member_mapes = {}
        for m in members:
            preds = walk_forward(m, sine_series, start, refit_every=5)
            member_mapes[m.name] = mape(preds, sine_series[start:])
        council = CloudInsight(
            pool=[make_baseline(n) for n in ("ema", "holt-des", "ar", "knn")],
            rebuild_every=1,
        )
        preds = walk_forward(council, sine_series, start, refit_every=1)
        council_mape = mape(preds, sine_series[start:])
        assert council_mape <= 2.0 * min(member_mapes.values()) + 1.0

    def test_schedule_from_named_baselines(self, sine_series):
        for name in ("wood", "cloudscale"):
            sched = provisioning_schedule(
                make_baseline(name), sine_series, len(sine_series) - 10,
                refit_every=5,
            )
            assert sched.shape == (10,)
            assert np.all(sched >= 0)


class TestCrossBudgetConsistency:
    def test_paper_and_reduced_spaces_share_structure(self):
        for trace in ("gl", "fb", "wiki"):
            paper = search_space_for(trace, "paper")
            reduced = search_space_for(trace, "reduced")
            assert paper.names == reduced.names == [
                "history_len", "cell_size", "num_layers", "batch_size",
            ]

    def test_reduced_configs_valid_in_paper_space(self, rng):
        """Any reduced-budget config is inside the paper's Table III box."""
        paper = search_space_for("gl", "paper")
        reduced = search_space_for("gl", "reduced")
        for cfg in reduced.sample(rng, 25):
            paper.validate(cfg)
