"""Tests for CART trees and the tree ensembles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml import (
    DecisionTreeRegressor,
    ExtraTreesRegressor,
    GradientBoostingRegressor,
    RandomForestRegressor,
)


@pytest.fixture
def step_data():
    """Piecewise-constant target a stump can split perfectly."""
    X = np.linspace(0, 1, 40)[:, None]
    y = np.where(X[:, 0] < 0.5, 1.0, 5.0)
    return X, y


class TestDecisionTree:
    def test_perfect_split_on_step(self, step_data):
        X, y = step_data
        t = DecisionTreeRegressor(max_depth=1).fit(X, y)
        np.testing.assert_allclose(t.predict(X), y)
        assert t.n_nodes == 3  # root + two leaves

    def test_depth_limit_respected(self, rng):
        X = rng.uniform(0, 1, (200, 3))
        y = rng.uniform(0, 1, 200)
        t = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert t.depth_ <= 3

    def test_min_samples_leaf_respected(self, rng):
        X = rng.uniform(0, 1, (50, 1))
        y = rng.uniform(0, 1, 50)
        t = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        # Every leaf prediction must be the mean of >= 10 samples: check by
        # counting distinct leaf values vs dataset size upper bound.
        leaves = {round(v, 12) for v in t.predict(X)}
        assert len(leaves) <= 5  # 50 samples / 10 per leaf

    def test_constant_target_single_leaf(self):
        X = np.arange(20.0)[:, None]
        t = DecisionTreeRegressor().fit(X, np.full(20, 7.0))
        assert t.n_nodes == 1
        np.testing.assert_allclose(t.predict(X), 7.0)

    def test_deep_tree_fits_training_data(self, rng):
        X = rng.uniform(0, 1, (100, 2))
        y = rng.uniform(0, 1, 100)
        t = DecisionTreeRegressor(max_depth=None, min_samples_leaf=1).fit(X, y)
        np.testing.assert_allclose(t.predict(X), y, atol=1e-10)

    def test_random_splitter_works(self, step_data):
        X, y = step_data
        t = DecisionTreeRegressor(splitter="random", max_depth=4, seed=3).fit(X, y)
        assert np.mean((t.predict(X) - y) ** 2) < np.var(y)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(splitter="hybrid")
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))

    @given(
        arrays(np.float64, (30, 2), elements=st.floats(-10, 10, width=32)),
        arrays(np.float64, 30, elements=st.floats(-10, 10, width=32)),
    )
    @settings(max_examples=25, deadline=None)
    def test_predictions_within_target_range(self, X, y):
        """Tree predictions are means of training targets → inside range."""
        t = DecisionTreeRegressor(max_depth=4).fit(X, y)
        p = t.predict(X)
        assert p.min() >= y.min() - 1e-9
        assert p.max() <= y.max() + 1e-9

    def test_deterministic(self, rng):
        X = rng.uniform(0, 1, (60, 3))
        y = rng.uniform(0, 1, 60)
        a = DecisionTreeRegressor(max_depth=5, seed=1).fit(X, y).predict(X)
        b = DecisionTreeRegressor(max_depth=5, seed=1).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)


class TestEnsembles:
    @pytest.fixture
    def nonlinear(self, rng):
        X = rng.uniform(-2, 2, (150, 2))
        y = np.sin(2 * X[:, 0]) + 0.5 * X[:, 1] ** 2
        return X, y

    def test_forest_beats_single_stump(self, nonlinear):
        X, y = nonlinear
        stump = DecisionTreeRegressor(max_depth=1).fit(X, y)
        forest = RandomForestRegressor(n_estimators=20, max_depth=6, seed=0).fit(X, y)
        mse_stump = np.mean((stump.predict(X) - y) ** 2)
        mse_forest = np.mean((forest.predict(X) - y) ** 2)
        assert mse_forest < mse_stump

    def test_extra_trees_fit_predict(self, nonlinear):
        X, y = nonlinear
        m = ExtraTreesRegressor(n_estimators=15, max_depth=8, seed=0).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < np.var(y) * 0.5

    def test_boosting_improves_with_stages(self, nonlinear):
        X, y = nonlinear
        m = GradientBoostingRegressor(n_estimators=40, max_depth=2, seed=0).fit(X, y)
        errs = [np.mean((p - y) ** 2) for p in m.staged_predict(X)]
        assert errs[-1] < errs[0]
        assert errs[-1] < np.var(y) * 0.2

    def test_boosting_first_stage_near_mean(self, nonlinear):
        X, y = nonlinear
        m = GradientBoostingRegressor(n_estimators=1, learning_rate=0.1, seed=0).fit(X, y)
        # One small step from the mean: prediction close to global mean.
        assert np.abs(m.predict(X).mean() - y.mean()) < 0.5

    def test_subsample_stochastic_boosting(self, nonlinear):
        X, y = nonlinear
        m = GradientBoostingRegressor(
            n_estimators=20, subsample=0.5, seed=0
        ).fit(X, y)
        assert np.mean((m.predict(X) - y) ** 2) < np.var(y)

    def test_ensemble_determinism(self, nonlinear):
        X, y = nonlinear
        a = RandomForestRegressor(n_estimators=5, seed=42).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=42).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.zeros((1, 1)))
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.zeros((1, 1)))
