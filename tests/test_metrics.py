"""Unit and property tests for repro.metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import (
    absolute_percentage_errors,
    mae,
    mape,
    mse,
    overprovision_rate,
    rmse,
    smape,
    underprovision_rate,
)


class TestMape:
    def test_exact_prediction_is_zero(self):
        a = np.array([10.0, 20.0, 30.0])
        assert mape(a, a) == 0.0

    def test_known_value(self):
        # errors: 10%, 50% → mean 30%
        assert mape([110.0, 50.0], [100.0, 100.0]) == pytest.approx(30.0)

    def test_skips_zero_actuals(self):
        # the zero-actual interval contributes nothing
        assert mape([110.0, 5.0], [100.0, 0.0]) == pytest.approx(10.0)

    def test_all_zero_actuals_raises(self):
        with pytest.raises(ValueError, match="all actual values are zero"):
            mape([1.0, 2.0], [0.0, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mape([], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="same length"):
            mape([1.0], [1.0, 2.0])

    def test_symmetric_in_sign_of_error(self):
        up = mape([110.0], [100.0])
        down = mape([90.0], [100.0])
        assert up == pytest.approx(down)

    @given(
        actual=arrays(
            np.float64,
            st.integers(1, 30),
            elements=st.floats(1.0, 1e6),
        ),
        rel=st.floats(-0.5, 0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_uniform_relative_error_recovered(self, actual, rel):
        """MAPE of predictions off by a uniform factor equals |factor|."""
        pred = actual * (1.0 + rel)
        assert mape(pred, actual) == pytest.approx(100.0 * abs(rel), rel=1e-9)

    @given(
        pred=arrays(np.float64, 10, elements=st.floats(0.0, 1e6)),
        actual=arrays(np.float64, 10, elements=st.floats(1.0, 1e6)),
    )
    @settings(max_examples=50, deadline=None)
    def test_nonnegative(self, pred, actual):
        assert mape(pred, actual) >= 0.0


class TestOtherErrors:
    def test_mae_rmse_mse_consistency(self, rng):
        p = rng.normal(size=50)
        a = rng.normal(size=50)
        assert rmse(p, a) == pytest.approx(np.sqrt(mse(p, a)))
        assert mae(p, a) <= rmse(p, a) + 1e-12  # Jensen

    def test_smape_bounded(self):
        assert smape([1000.0], [1.0]) <= 200.0
        assert smape([0.0], [0.0]) == 0.0

    def test_ape_nan_on_zero(self):
        errs = absolute_percentage_errors([1.0, 2.0], [0.0, 1.0])
        assert np.isnan(errs[0]) and errs[1] == pytest.approx(100.0)


class TestProvisioningRates:
    def test_perfect_provisioning(self):
        req = np.array([5.0, 10.0, 3.0])
        assert underprovision_rate(req, req) == 0.0
        assert overprovision_rate(req, req) == 0.0

    def test_under_only_counts_shortfall(self):
        # provisioned 5 vs required 10 → 50% shortfall
        assert underprovision_rate([5.0], [10.0]) == pytest.approx(50.0)
        assert overprovision_rate([5.0], [10.0]) == 0.0

    def test_over_only_counts_surplus(self):
        assert overprovision_rate([15.0], [10.0]) == pytest.approx(50.0)
        assert underprovision_rate([15.0], [10.0]) == 0.0

    def test_zero_required_intervals(self):
        # no arrivals: no shortfall; surplus measured against 1 VM
        assert underprovision_rate([3.0], [0.0]) == 0.0
        assert overprovision_rate([3.0], [0.0]) == pytest.approx(300.0)

    @given(
        prov=arrays(np.float64, 8, elements=st.floats(0.0, 100.0)),
        req=arrays(np.float64, 8, elements=st.floats(0.0, 100.0)),
    )
    @settings(max_examples=50, deadline=None)
    def test_rates_nonnegative(self, prov, req):
        assert underprovision_rate(prov, req) >= 0.0
        assert overprovision_rate(prov, req) >= 0.0

    @given(req=arrays(np.float64, 8, elements=st.floats(1.0, 100.0)))
    @settings(max_examples=50, deadline=None)
    def test_under_bounded_by_100(self, req):
        assert underprovision_rate(np.zeros(8), req) == pytest.approx(100.0)
