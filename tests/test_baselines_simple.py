"""Tests for the naive / regression / time-series baseline predictors and
the walk-forward evaluator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import (
    ARIMAPredictor,
    ARMAPredictor,
    ARPredictor,
    BrownDESPredictor,
    EMAPredictor,
    HoltDESPredictor,
    KNNPredictor,
    MeanPredictor,
    PolynomialTrendPredictor,
    WMAPredictor,
    walk_forward,
)
from repro.metrics import mape


class TestWalkForward:
    def test_no_lookahead(self):
        """A predictor that peeks would see the future value; the contract
        is history[:i] only.  Record what each call receives."""
        seen = []

        class Spy(MeanPredictor):
            def predict_next(self, history):
                seen.append(len(history))
                return super().predict_next(history)

        series = np.arange(1.0, 21.0)
        walk_forward(Spy(), series, start=15)
        assert seen == [15, 16, 17, 18, 19]

    def test_output_alignment(self):
        series = np.arange(1.0, 11.0)

        class LastValue(MeanPredictor):
            def predict_next(self, history):
                return float(history[-1])

        preds = walk_forward(LastValue(), series, start=5)
        np.testing.assert_array_equal(preds, series[4:-1])

    def test_nonfinite_prediction_replaced(self):
        class Broken(MeanPredictor):
            def predict_next(self, history):
                return float("nan")

        preds = walk_forward(Broken(), np.arange(1.0, 8.0), start=4)
        assert np.all(np.isfinite(preds))

    def test_negative_clipped(self):
        class Negative(MeanPredictor):
            def predict_next(self, history):
                return -5.0

        preds = walk_forward(Negative(), np.ones(6), start=3)
        np.testing.assert_array_equal(preds, 0.0)

    def test_refit_cadence(self):
        fits = []

        class CountFits(MeanPredictor):
            def fit(self, history):
                fits.append(len(history))
                return self

        walk_forward(CountFits(), np.ones(20), start=10, refit_every=5)
        assert fits == [10, 15]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            walk_forward(MeanPredictor(), np.ones(5), start=0)
        with pytest.raises(ValueError):
            walk_forward(MeanPredictor(), np.ones(5), start=3, refit_every=0)


class TestNaive:
    def test_mean_window(self):
        p = MeanPredictor(window=3)
        assert p.predict_next(np.array([1.0, 2.0, 3.0, 4.0, 5.0])) == pytest.approx(4.0)

    def test_mean_all_history(self):
        p = MeanPredictor(window=None)
        assert p.predict_next(np.array([2.0, 4.0])) == pytest.approx(3.0)

    def test_mean_empty(self):
        assert MeanPredictor().predict_next(np.array([])) == 0.0

    def test_knn_learns_repeating_pattern(self):
        pattern = np.array([1.0, 2.0, 3.0, 4.0] * 25)
        p = KNNPredictor(k=3, window=4)
        p.fit(pattern)
        # after [1,2,3,4] the next value is always 1
        assert p.predict_next(pattern) == pytest.approx(1.0, abs=1e-6)

    def test_knn_short_history_fallback(self):
        p = KNNPredictor(k=3, window=10)
        assert p.predict_next(np.array([5.0, 6.0])) == 6.0


class TestPolynomialTrend:
    def test_linear_trend_extrapolation(self):
        series = 2.0 * np.arange(30.0) + 5.0
        p = PolynomialTrendPredictor(degree=1, scope="local", window=10)
        assert p.predict_next(series) == pytest.approx(2.0 * 30 + 5, rel=1e-6)

    def test_quadratic_fits_parabola(self):
        t = np.arange(40.0)
        series = 0.5 * t**2
        p = PolynomialTrendPredictor(degree=2, scope="global")
        assert p.predict_next(series) == pytest.approx(0.5 * 40**2, rel=1e-3)

    def test_all_six_variants_run(self, sine_series):
        for deg in (1, 2, 3):
            for scope in ("local", "global"):
                p = PolynomialTrendPredictor(deg, scope)
                assert np.isfinite(p.predict_next(sine_series))

    def test_short_history_fallback(self):
        p = PolynomialTrendPredictor(degree=3)
        assert p.predict_next(np.array([7.0])) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PolynomialTrendPredictor(degree=4)
        with pytest.raises(ValueError):
            PolynomialTrendPredictor(scope="windowed")


class TestSmoothers:
    def test_wma_weights_recent_more(self):
        rising = np.array([1.0, 2.0, 3.0])
        assert WMAPredictor(window=3).predict_next(rising) > np.mean(rising)

    def test_ema_constant_series_fixpoint(self):
        series = np.full(50, 7.0)
        assert EMAPredictor(alpha=0.3).predict_next(series) == pytest.approx(7.0)

    def test_holt_tracks_linear_trend(self):
        series = 3.0 * np.arange(60.0)
        pred = HoltDESPredictor(alpha=0.8, beta=0.5).predict_next(series)
        assert pred == pytest.approx(3.0 * 60, rel=0.05)

    def test_brown_tracks_linear_trend(self):
        series = 2.0 * np.arange(80.0) + 10
        pred = BrownDESPredictor(alpha=0.5).predict_next(series)
        assert pred == pytest.approx(2.0 * 80 + 10, rel=0.05)

    @given(arrays(np.float64, st.integers(2, 40), elements=st.floats(0.0, 1e5)))
    @settings(max_examples=40, deadline=None)
    def test_smoothers_stay_in_convex_hull_ish(self, series):
        """EMA/WMA are convex combinations → within [min, max] of history."""
        for p in (WMAPredictor(window=10), EMAPredictor(alpha=0.4)):
            v = p.predict_next(series)
            assert series.min() - 1e-6 <= v <= series.max() + 1e-6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            EMAPredictor(alpha=0.0)
        with pytest.raises(ValueError):
            HoltDESPredictor(alpha=1.5)
        with pytest.raises(ValueError):
            BrownDESPredictor(alpha=1.0)
        with pytest.raises(ValueError):
            WMAPredictor(window=0)


class TestAutoregressive:
    def test_ar_recovers_ar1_process(self, rng):
        # y_t = 0.8 y_{t-1} + e
        n = 500
        y = np.zeros(n)
        for i in range(1, n):
            y[i] = 0.8 * y[i - 1] + rng.normal(0, 0.1)
        p = ARPredictor(p=1)
        p.fit(y)
        assert p._beta[1] == pytest.approx(0.8, abs=0.05)

    def test_ar_forecast_accuracy_on_sine(self, sine_series):
        preds = walk_forward(ARPredictor(p=8), sine_series, 200, refit_every=5)
        assert mape(preds, sine_series[200:]) < 8.0

    def test_arma_runs_and_beats_mean_on_sine(self, sine_series):
        preds_arma = walk_forward(ARMAPredictor(p=4, q=2), sine_series, 200, refit_every=5)
        preds_mean = walk_forward(MeanPredictor(window=10), sine_series, 200)
        assert mape(preds_arma, sine_series[200:]) < mape(preds_mean, sine_series[200:])

    def test_arima_handles_trend(self):
        rng = np.random.default_rng(3)
        series = np.cumsum(rng.normal(1.0, 0.1, 300)) + 100  # drifting upward
        preds = walk_forward(ARIMAPredictor(p=2, d=1, q=1), series, 250, refit_every=10)
        # Differencing should track the drift: low relative error.
        assert mape(preds, series[250:]) < 2.0

    def test_arima_d0_equals_arma(self, sine_series):
        a = ARIMAPredictor(p=2, d=0, q=1)
        b = ARMAPredictor(p=2, q=1)
        a.fit(sine_series)
        b.fit(sine_series)
        assert a.predict_next(sine_series) == pytest.approx(
            b.predict_next(sine_series)
        )

    def test_short_history_fallbacks(self):
        short = np.array([3.0, 4.0])
        for p in (ARPredictor(5), ARMAPredictor(2, 1), ARIMAPredictor(2, 1, 1)):
            assert np.isfinite(p.predict_next(short))

    def test_validation(self):
        with pytest.raises(ValueError):
            ARPredictor(p=0)
        with pytest.raises(ValueError):
            ARMAPredictor(p=0, q=1)
        with pytest.raises(ValueError):
            ARIMAPredictor(p=1, d=-1, q=1)
