"""Property and unit tests for the hybrid autoscaling controller.

The safety rails are only rails if they hold under *arbitrary* forecast
and arrival streams — including NaN outages and adversarial spikes — so
the invariants are hypothesis properties over random streams:

* every decision within ``[min_vms, max_vms]``;
* rate limits and the scale-down cooldown never violated;
* anti-windup bounds the error integral;
* burst latches and clears deterministically;
* zero-gain passthrough reproduces ``PredictivePolicy`` bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autoscale import (
    ControllerConfig,
    HybridController,
    HybridPolicy,
    PredictivePolicy,
)
from repro.baselines.naive import LastValuePredictor, SeasonalNaivePredictor
from repro.obs.monitor import PageHinkleyDetector
from repro.resilience import faults

# Streams mixing normal values, spikes, and NaN outages — the adversarial
# envelope every rail must hold under.
stream_values = st.one_of(
    st.floats(0.0, 200.0),
    st.floats(1e4, 1e6),
    st.just(float("nan")),
)


def _walk(controller, forecasts, arrivals):
    """Drive one decision per interval, returning the Decision list."""
    decisions = []
    for i, f in enumerate(forecasts):
        decisions.append(controller.step(f, np.asarray(arrivals[: i + 1])))
    return decisions


class TestRails:
    @given(
        forecasts=arrays(np.float64, 40, elements=stream_values),
        arrivals=arrays(np.float64, 40, elements=stream_values),
        min_vms=st.integers(0, 5),
        span=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_always_hold(self, forecasts, arrivals, min_vms, span):
        cfg = ControllerConfig(min_vms=min_vms, max_vms=min_vms + span)
        decisions = _walk(HybridController(cfg), forecasts, arrivals)
        for d in decisions:
            assert min_vms <= d.vms <= min_vms + span

    @given(
        forecasts=arrays(np.float64, 40, elements=stream_values),
        arrivals=arrays(np.float64, 40, elements=stream_values),
        up=st.integers(0, 10),
        down=st.integers(0, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_rate_limits_never_violated(self, forecasts, arrivals, up, down):
        cfg = ControllerConfig(max_step_up=up, max_step_down=down)
        decisions = _walk(HybridController(cfg), forecasts, arrivals)
        for prev, cur in zip(decisions, decisions[1:], strict=False):
            assert cur.vms - prev.vms <= up
            assert prev.vms - cur.vms <= down

    @given(
        forecasts=arrays(np.float64, 40, elements=stream_values),
        arrivals=arrays(np.float64, 40, elements=stream_values),
        cooldown=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_cooldown_blocks_scale_down(self, forecasts, arrivals, cooldown):
        """No scale-down within ``cooldown`` decisions of a scale-up."""
        cfg = ControllerConfig(scale_down_cooldown=cooldown)
        decisions = _walk(HybridController(cfg), forecasts, arrivals)
        vms = [d.vms for d in decisions]
        # A scale-down at step i implies no scale-up in the preceding
        # `cooldown` steps.
        for i in range(1, len(vms)):
            if vms[i] < vms[i - 1]:
                for k in range(max(i - cooldown, 1), i):
                    assert vms[k] <= vms[k - 1], (
                        f"scale-down at {i} inside the cooldown of the "
                        f"scale-up at {k}: {vms}"
                    )

    @given(
        forecasts=arrays(np.float64, 60, elements=stream_values),
        arrivals=arrays(np.float64, 60, elements=stream_values),
        limit=st.floats(0.0, 500.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_antiwindup_bounds_integral(self, forecasts, arrivals, limit):
        cfg = ControllerConfig(integral_limit=limit)
        controller = HybridController(cfg)
        for i, f in enumerate(forecasts):
            controller.step(f, np.asarray(arrivals[: i + 1]))
            assert abs(controller.integral) <= limit + 1e-9

    def test_rail_provenance_recorded(self):
        cfg = ControllerConfig(max_vms=5, max_step_up=2, kp=0.0, ki=0.0, kd=0.0,
                               headroom_quantile=None, burst_streak=None)
        controller = HybridController(cfg)
        d1 = controller.step(100.0, np.array([1.0]))
        assert d1.vms == 5 and "max_vms" in d1.rails
        d2 = controller.step(0.0, np.array([1.0, 1.0]))
        assert d2.vms == 0 and d2.rails == ()
        d3 = controller.step(100.0, np.array([1.0, 1.0, 1.0]))
        assert d3.vms == 2 and "rate_up" in d3.rails
        assert controller.rail_hits == {"max_vms": 1, "rate_up": 1}


class TestDegradationTiers:
    def test_nan_forecast_goes_reactive(self):
        controller = HybridController(ControllerConfig())
        d = controller.step(float("nan"), np.array([4.0, 7.0, 5.0]))
        assert d.decided_by == "reactive"
        assert d.vms >= 7  # max of the last-3 window

    def test_open_breaker_goes_reactive(self):
        class FakeBreaker:
            state = "open"

        controller = HybridController(ControllerConfig(), breaker=FakeBreaker())
        d = controller.step(50.0, np.array([4.0, 7.0, 5.0]))
        assert d.decided_by == "reactive"

    def test_dead_reactive_signal_holds_last_decision(self):
        controller = HybridController(ControllerConfig(reactive_window=2))
        d1 = controller.step(10.0, np.array([8.0]))
        d2 = controller.step(float("nan"), np.array([8.0, np.nan, np.nan]))
        assert d2.decided_by == "hold"
        assert d2.vms == d1.vms

    def test_no_history_no_signal_provisions_min(self):
        controller = HybridController(ControllerConfig(min_vms=3))
        d = controller.step(float("nan"), np.array([]))
        assert d.decided_by == "hold" and d.vms == 3

    def test_provenance_counts_sum_to_decisions(self):
        rng = np.random.default_rng(0)
        arrivals = rng.uniform(0, 50, 30)
        controller = HybridController(ControllerConfig())
        _walk(controller, rng.uniform(0, 50, 30), arrivals)
        assert sum(controller.decided_by.values()) == 30
        assert len(controller.decisions) == 30


class TestBurst:
    def test_underprovision_streak_latches_and_clears(self):
        cfg = ControllerConfig(
            kp=0.0, ki=0.0, kd=0.0, headroom_quantile=None,
            burst_streak=3, burst_clear=4, burst_quantile=1.0,
        )
        controller = HybridController(cfg)
        arrivals: list[float] = []
        # Forecast 10 while 20 arrives: underprovisioned every interval.
        # Decision 0 is unscored (nothing to compare against), so the
        # 3-streak completes — and latches — on decision 3.
        for i in range(4):
            arrivals.append(20.0)
            d = controller.step(10.0, np.asarray(arrivals))
        assert d.burst and controller.burst_reason == "underprovision_streak"
        assert d.decided_by == "burst"
        # Burst provisions forecast + Q1(positive errors) = 10 + 10 = 20.
        assert d.vms == 20
        # Once the forecast catches up, provisioning stays adequate, the
        # clean streak builds, and the latch clears after `burst_clear`.
        cleared_at = None
        for i in range(4, 14):
            arrivals.append(20.0)
            d = controller.step(20.0, np.asarray(arrivals))
            if not d.burst and cleared_at is None:
                cleared_at = i
        assert cleared_at == 7  # clean streak 4 completes on decision 7
        assert not controller.burst and controller.burst_reason is None
        assert controller.burst_episodes == 1

    def test_burst_streak_none_disables_streak_trigger(self):
        cfg = ControllerConfig(kp=0.0, ki=0.0, kd=0.0, headroom_quantile=None,
                               burst_streak=None)
        controller = HybridController(cfg)
        arrivals: list[float] = []
        for _ in range(20):
            arrivals.append(20.0)
            d = controller.step(10.0, np.asarray(arrivals))
            assert not d.burst

    def test_drift_latch_triggers_burst_and_clear_resets_detector(self):
        detector = PageHinkleyDetector()
        controller = HybridController(
            ControllerConfig(burst_streak=None, burst_clear=5),
            drift_detector=detector,
        )
        arrivals = np.full(100, 100.0)
        saw_burst = False
        for i in range(1, arrivals.size):
            forecast = 100.0 * (0.4 if 20 <= i < 50 else 1.0)
            d = controller.step(forecast, arrivals[:i])
            saw_burst |= d.burst
        assert saw_burst
        assert controller.burst_episodes == 1
        assert not controller.burst
        assert not detector.drifted, "clearing burst must reset the latch"

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_burst_deterministic_replay(self, data):
        """The same stream produces the same burst trajectory, always."""
        n = 30
        forecasts = data.draw(arrays(np.float64, n, elements=st.floats(0, 100)))
        arrivals = data.draw(arrays(np.float64, n, elements=st.floats(0, 100)))
        cfg = ControllerConfig(burst_streak=2, burst_clear=3)
        run1 = [d.burst for d in _walk(HybridController(cfg), forecasts, arrivals)]
        run2 = [d.burst for d in _walk(HybridController(cfg), forecasts, arrivals)]
        assert run1 == run2


class TestZeroOverhead:
    @given(arrivals=arrays(np.float64, 60, elements=st.floats(0, 1000)))
    @settings(max_examples=30, deadline=None)
    def test_passthrough_matches_predictive_bit_for_bit(self, arrivals):
        predictive = PredictivePolicy(LastValuePredictor()).schedule(arrivals, 30)
        hybrid = HybridPolicy(
            LastValuePredictor(), config=ControllerConfig.passthrough()
        ).schedule(arrivals, 30)
        np.testing.assert_array_equal(predictive, hybrid)

    def test_passthrough_matches_seasonal_predictor(self):
        rng = np.random.default_rng(1)
        arrivals = rng.poisson(80, 300).astype(np.float64)
        predictive = PredictivePolicy(SeasonalNaivePredictor(48)).schedule(
            arrivals, 150
        )
        hybrid = HybridPolicy(
            SeasonalNaivePredictor(48), config=ControllerConfig.passthrough()
        ).schedule(arrivals, 150)
        np.testing.assert_array_equal(predictive, hybrid)

    def test_passthrough_decisions_are_proactive(self):
        rng = np.random.default_rng(2)
        arrivals = rng.uniform(0, 50, 40)
        policy = HybridPolicy(
            LastValuePredictor(), config=ControllerConfig.passthrough()
        )
        policy.schedule(arrivals, 20)
        assert set(policy.controller.decided_by) == {"proactive"}


class TestHybridPolicy:
    def test_schedule_survives_nan_stream(self):
        arrivals = np.array([10.0] * 20 + [np.nan] * 5 + [12.0] * 15)
        policy = HybridPolicy(LastValuePredictor())
        schedule = policy.schedule(arrivals, 10)
        assert np.all(np.isfinite(schedule)) and np.all(schedule >= 0)

    def test_breaker_autodetected_from_guarded(self):
        from repro.serving import GuardedPredictor

        guarded = GuardedPredictor(LastValuePredictor())
        policy = HybridPolicy(guarded)
        assert policy.controller.breaker is guarded.breaker

    def test_forecast_outage_shifts_provenance(self):
        from repro.serving import OPEN, GuardedPredictor

        guarded = GuardedPredictor(LastValuePredictor())
        policy = HybridPolicy(guarded)
        arrivals = np.full(60, 30.0)
        with faults.injected("boom@serve.predict:*"):
            schedule = policy.schedule(arrivals, 20)
        assert np.all(np.isfinite(schedule))
        assert guarded.breaker.state == OPEN
        assert policy.controller.decided_by.get("reactive", 0) > 0

    def test_fresh_loop_per_schedule_call(self):
        rng = np.random.default_rng(4)
        arrivals = rng.uniform(10, 60, 50)
        policy = HybridPolicy(LastValuePredictor())
        s1 = policy.schedule(arrivals, 25)
        s2 = policy.schedule(arrivals, 25)
        np.testing.assert_array_equal(s1, s2)
        assert len(policy.controller.decisions) == 25

    def test_controller_and_config_exclusive(self):
        with pytest.raises(ValueError):
            HybridPolicy(
                LastValuePredictor(),
                controller=HybridController(),
                config=ControllerConfig(),
            )

    def test_start_validation(self):
        with pytest.raises(ValueError):
            HybridPolicy(LastValuePredictor()).schedule(np.ones(5), 0)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"integral_limit": -1.0},
            {"headroom_quantile": 1.5},
            {"error_window": 1},
            {"reactive_window": 0},
            {"reactive_headroom": 0.0},
            {"min_vms": -1},
            {"min_vms": 5, "max_vms": 4},
            {"max_step_up": -1},
            {"max_step_down": -2},
            {"scale_down_cooldown": -1},
            {"burst_streak": 0},
            {"burst_clear": 0},
            {"burst_quantile": 2.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ControllerConfig(**kwargs)

    def test_snapshot_shape(self):
        controller = HybridController()
        controller.step(5.0, np.array([4.0]))
        snap = controller.snapshot()
        assert snap["n_decisions"] == 1
        assert set(snap) >= {
            "decided_by", "rail_hits", "burst", "burst_reason",
            "burst_episodes", "integral",
        }
        assert math.isfinite(snap["integral"])


class TestScenarios:
    def test_default_scenarios_deterministic(self):
        from repro.autoscale import default_scenarios
        from repro.autoscale.scenarios import SCENARIO_NAMES

        a = default_scenarios(days=4, serve_days=2, seed=9)
        b = default_scenarios(days=4, serve_days=2, seed=9)
        assert [s.name for s in a] == list(SCENARIO_NAMES)
        for sa, sb in zip(a, b, strict=True):
            np.testing.assert_array_equal(sa.actual, sb.actual)
            np.testing.assert_array_equal(sa.observed, sb.observed)

    def test_actual_always_finite_observed_may_not_be(self):
        from repro.autoscale import default_scenarios

        for s in default_scenarios(days=4, serve_days=2):
            assert np.all(np.isfinite(s.actual)), s.name
            if s.name == "corruption":
                assert np.isnan(s.observed).any()

    def test_run_matrix_quick_cell(self):
        from repro.autoscale import default_scenarios, run_matrix

        scenarios = [default_scenarios(days=4, serve_days=2)[0]]
        matrix = run_matrix(scenarios, policies=("reactive", "hybrid"))
        cell = matrix["scenarios"]["steady"]["policies"]
        assert set(cell) == {"reactive", "hybrid"}
        assert "controller" in cell["hybrid"]
        for row in cell.values():
            assert math.isfinite(row["total_cost"])
            assert "sla_violation_rate_pct" in row