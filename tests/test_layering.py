"""The import-layering lint: clean on the real tree, loud on violations."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

from check_layering import check_layering, main  # noqa: E402


def _seed_tree(root: Path, package: str, body: str) -> None:
    pkg = root / "src" / "repro" / package
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "module.py").write_text(body)


class TestCheckLayering:
    def test_real_tree_is_clean(self):
        assert check_layering(REPO_ROOT) == []
        assert main([str(REPO_ROOT)]) == 0

    def test_substrate_importing_core_is_flagged(self, tmp_path):
        _seed_tree(tmp_path, "nn", "from repro.core import LoadDynamics\n")
        violations = check_layering(tmp_path)
        assert len(violations) == 1
        assert "nn layer must not import repro.core" in violations[0]
        assert main([str(tmp_path)]) == 1

    def test_lazy_function_level_import_is_flagged(self, tmp_path):
        # The DAG must hold at call time too, so imports hidden inside
        # function bodies are violations all the same.
        _seed_tree(
            tmp_path,
            "ml",
            "def f():\n    import repro.models.registry\n",
        )
        violations = check_layering(tmp_path)
        assert len(violations) == 1
        assert "ml layer must not import repro.models" in violations[0]

    def test_models_importing_cli_is_flagged(self, tmp_path):
        _seed_tree(tmp_path, "models", "from repro.cli import main\n")
        violations = check_layering(tmp_path)
        assert len(violations) == 1
        assert "models layer must not import repro.cli" in violations[0]

    def test_models_may_import_core_and_substrate(self, tmp_path):
        _seed_tree(
            tmp_path,
            "models",
            "from repro.core.config import LSTMHyperparameters\n"
            "from repro.nn.network import LSTMRegressor\n",
        )
        assert check_layering(tmp_path) == []

    def test_relative_imports_within_layer_are_fine(self, tmp_path):
        _seed_tree(tmp_path, "nn", "from . import module2\nfrom .kernels import k\n")
        assert check_layering(tmp_path) == []
