"""Shared fixtures for the test suite.

Everything is seeded: tests must be bit-for-bit reproducible run to run.
Series fixtures are deliberately short — unit tests exercise code paths,
not paper-scale accuracy (that is what ``benchmarks/`` is for).
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def sine_series() -> np.ndarray:
    """A clean learnable series: sinusoid + small noise, length 240."""
    t = np.arange(240)
    rng = np.random.default_rng(7)
    return 100.0 + 40.0 * np.sin(2 * np.pi * t / 24.0) + rng.normal(0, 2.0, 240)


@pytest.fixture
def bursty_series() -> np.ndarray:
    """A rough series with spikes (non-negative)."""
    rng = np.random.default_rng(8)
    base = 50.0 + 10.0 * rng.standard_normal(200).cumsum() * 0.1
    series = np.maximum(base, 5.0)
    series[::23] *= 3.0
    return series


@pytest.fixture
def tiny_settings():
    from repro.core import FrameworkSettings

    return FrameworkSettings.tiny()
