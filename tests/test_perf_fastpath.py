"""Perf-layer guarantees: fast-path parity, parallel determinism, caches.

The inference fast path, the batched search drivers, and the
cross-trial caches are all pure optimizations — every test here pins
the contract that they change *nothing* about the numbers:

* ``forward_inference`` is bitwise-identical to the cached ``forward``
  (LSTM and GRU, single and stacked, univariate and multivariate);
* ``suggest_batch(1)`` reduces exactly to ``suggest``;
* random/grid search produce identical trial records serial vs
  parallel, and so does a whole ``LoadDynamics.fit``;
* the stride-tricks windowing equals the naive Python-loop reference;
* the window cache and trial memo return exactly what direct
  construction / evaluation would.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesopt import (
    BayesianOptimizer,
    FloatParam,
    GridSearch,
    IntParam,
    RandomSearch,
    SearchSpace,
)
from repro.core import (
    FrameworkSettings,
    LoadDynamics,
    TrialMemo,
    WindowCache,
    make_windows,
    search_space_for,
    windows_for_range,
)
from repro.nn import LSTMRegressor
from repro.nn.gru import GRULayer
from repro.nn.lstm import LSTMLayer


# ----------------------------------------------------------------------
# kernel fast-path parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("layer_cls", [LSTMLayer, GRULayer])
@pytest.mark.parametrize(
    "B,T,D,H",
    [
        (1, 14, 1, 9),
        (150, 14, 1, 9),
        (8, 5, 3, 4),
        (64, 48, 1, 32),
        (32, 20, 4, 12),
        (1, 30, 5, 8),
    ],
)
def test_forward_inference_bitwise_parity(layer_cls, B, T, D, H):
    rng = np.random.default_rng(0)
    layer = layer_cls(D, H, rng)
    x = rng.standard_normal((B, T, D))
    cached, _ = layer.forward(x)
    fast = layer.forward_inference(x)
    assert np.array_equal(cached, fast)  # bitwise, not approx


@pytest.mark.parametrize("layer_cls", [LSTMLayer, GRULayer])
def test_forward_inference_scratch_reuse(layer_cls):
    """Second call reuses the same buffers and stays bitwise-correct."""
    rng = np.random.default_rng(1)
    layer = layer_cls(1, 6, rng)
    x1 = rng.standard_normal((10, 7, 1))
    x2 = rng.standard_normal((10, 7, 1))
    out1 = layer.forward_inference(x1)
    scratch = layer._scratch
    out2 = layer.forward_inference(x2)
    assert layer._scratch is scratch  # no reallocation
    assert out2 is scratch.out  # output lives in the scratch slab
    assert np.array_equal(layer.forward(x2)[0], out2)
    # out1 was a view of scratch: overwritten by design
    del out1


@pytest.mark.parametrize("layer_cls", [LSTMLayer, GRULayer])
def test_forward_inference_h0_parity(layer_cls):
    rng = np.random.default_rng(2)
    layer = layer_cls(2, 5, rng)
    x = rng.standard_normal((4, 6, 2))
    h0 = rng.standard_normal((4, 5))
    assert np.array_equal(layer.forward(x, h0)[0], layer.forward_inference(x, h0))


@pytest.mark.parametrize("cell", ["lstm", "gru"])
@pytest.mark.parametrize("input_size", [1, 3])
def test_predict_matches_cached_forward(cell, input_size):
    """LSTMRegressor.predict (fast path) == the cached training forward."""
    rng = np.random.default_rng(3)
    model = LSTMRegressor(
        hidden_size=7, num_layers=3, seed=5, cell=cell, input_size=input_size
    )
    x = rng.standard_normal((33, 12, input_size))
    fast = model.predict(x)
    cached, _ = model._forward(model._coerce_input(x))
    assert np.array_equal(fast, cached)


@pytest.mark.parametrize("layer_cls", [LSTMLayer, GRULayer])
def test_forward_inference_scratch_reuse_multivariate(layer_cls):
    """Scratch-slab reuse holds for D>1 inputs too (xw_tm slab width D*G)."""
    rng = np.random.default_rng(13)
    layer = layer_cls(3, 6, rng)
    x1 = rng.standard_normal((12, 9, 3))
    x2 = rng.standard_normal((12, 9, 3))
    layer.forward_inference(x1)
    scratch = layer._scratch
    out2 = layer.forward_inference(x2)
    assert layer._scratch is scratch
    assert np.array_equal(layer.forward(x2)[0], out2)


def test_predict_chunked_matches_single():
    """Chunked prediction (batch_size < N) equals the one-shot result."""
    rng = np.random.default_rng(4)
    model = LSTMRegressor(hidden_size=5, num_layers=1, seed=0)
    x = rng.standard_normal((50, 9, 1))
    assert np.array_equal(model.predict(x), model.predict(x, batch_size=16))


def test_predict_after_weight_update():
    """The fast path must see in-place weight updates (no stale copies)."""
    rng = np.random.default_rng(5)
    model = LSTMRegressor(hidden_size=4, num_layers=1, seed=0)
    x = rng.standard_normal((6, 8, 1))
    model.predict(x)  # allocate + warm the scratch
    for p in model.params:
        p += 0.01
    cached, _ = model._forward(model._coerce_input(x))
    assert np.array_equal(model.predict(x), cached)


def test_pickle_drops_scratch_and_preserves_outputs():
    import pickle

    rng = np.random.default_rng(6)
    model = LSTMRegressor(hidden_size=4, num_layers=2, seed=0)
    x = rng.standard_normal((5, 7, 1))
    before = model.predict(x).copy()
    clone = pickle.loads(pickle.dumps(model))
    assert all(layer._scratch is None for layer in clone.lstm_layers)
    assert np.array_equal(clone.predict(x), before)


# ----------------------------------------------------------------------
# batched suggestions and parallel search determinism
# ----------------------------------------------------------------------
def _space():
    return SearchSpace([IntParam("a", 1, 10), FloatParam("b", 0.0, 1.0)])


def _objective(config):
    return (config["a"] - 3) ** 2 + (config["b"] - 0.4) ** 2


@pytest.mark.parametrize(
    "make",
    [
        lambda: BayesianOptimizer(_space(), seed=7),
        lambda: RandomSearch(_space(), seed=7),
        lambda: GridSearch(_space(), points_per_dim=3),
    ],
)
def test_suggest_batch_q1_reduces_to_suggest(make):
    o1, o2 = make(), make()
    assert o1.suggest() == o2.suggest_batch(1)[0]
    if hasattr(o1, "_rng"):
        assert (
            o1._rng.bit_generator.state == o2._rng.bit_generator.state
        )
    if hasattr(o1, "_cursor"):
        assert o1._cursor == o2._cursor


def test_suggest_batch_rejects_bad_q():
    for opt in (
        BayesianOptimizer(_space()),
        RandomSearch(_space()),
        GridSearch(_space()),
    ):
        with pytest.raises(ValueError):
            opt.suggest_batch(0)


def test_random_search_parallel_records_identical_to_serial():
    serial = RandomSearch(_space(), seed=3)
    parallel = RandomSearch(_space(), seed=3)
    serial.run(_objective, 8)
    parallel.run(_objective, 8, n_workers=4)
    assert [(r.iteration, r.config, r.value) for r in serial.history] == [
        (r.iteration, r.config, r.value) for r in parallel.history
    ]


def test_grid_search_parallel_records_identical_to_serial():
    serial = GridSearch(_space(), points_per_dim=3)
    parallel = GridSearch(_space(), points_per_dim=3)
    serial.run(_objective)
    parallel.run(_objective, n_workers=4)
    assert serial.exhausted and parallel.exhausted
    assert [(r.iteration, r.config, r.value) for r in serial.history] == [
        (r.iteration, r.config, r.value) for r in parallel.history
    ]


def test_bo_suggest_batch_constant_liar():
    """Batched GP suggestions are deduplicated and leave no lies behind."""
    bo = BayesianOptimizer(_space(), seed=1, n_initial=2)
    for _ in range(3):  # enough history for the GP to take over
        c = bo.suggest()
        bo.tell(c, _objective(c))
    n_obs = len(bo._y)
    batch = bo.suggest_batch(3)
    assert len(batch) == 3
    assert len({TrialMemo.key(c) for c in batch}) == 3  # all distinct
    assert len(bo._y) == n_obs  # lies popped
    for c in batch:
        bo.tell(c, _objective(c))
    assert not bo._pending_batch


def test_grid_suggest_batch_partial_on_exhaustion():
    g = GridSearch(_space(), points_per_dim=2)  # 4 points
    batch = g.suggest_batch(3)
    assert len(batch) == 3
    batch2 = g.suggest_batch(3)
    assert len(batch2) == 1  # partial final batch
    with pytest.raises(StopIteration):
        g.suggest_batch(2)


# ----------------------------------------------------------------------
# windowing: stride tricks vs the loop reference
# ----------------------------------------------------------------------
def _make_windows_loop(series, n):
    s = np.asarray(series, dtype=np.float64).ravel()
    X = np.empty((s.size - n, n))
    y = np.empty(s.size - n)
    for j in range(s.size - n):
        X[j] = s[j : j + n]
        y[j] = s[j + n]
    return X, y


def _windows_for_range_loop(series, n, start, end):
    s = np.asarray(series, dtype=np.float64).ravel()
    first = max(start, n)
    X = np.empty((max(end - first, 0), n))
    y = np.empty(max(end - first, 0))
    for j, i in enumerate(range(first, end)):
        X[j] = s[i - n : i]
        y[j] = s[i]
    return X, y


def test_make_windows_equals_loop_reference():
    rng = np.random.default_rng(8)
    s = rng.standard_normal(200)
    for n in (1, 5, 24):
        X, y = make_windows(s, n)
        X_ref, y_ref = _make_windows_loop(s, n)
        assert np.array_equal(X, X_ref) and np.array_equal(y, y_ref)
        assert X.flags["C_CONTIGUOUS"]


def test_windows_for_range_equals_loop_reference():
    rng = np.random.default_rng(9)
    s = rng.standard_normal(120)
    for n, start, end in [(5, 60, 100), (24, 10, 50), (7, 0, 120), (30, 100, 120)]:
        X, y = windows_for_range(s, n, start, end)
        X_ref, y_ref = _windows_for_range_loop(s, n, start, end)
        assert np.array_equal(X, X_ref) and np.array_equal(y, y_ref)


def test_predict_series_fallback_equals_loop_reference():
    """The vectorized short-window persistence fallback == the old loop."""
    from repro.core.config import LSTMHyperparameters
    from repro.core.predictor import LoadDynamicsPredictor
    from repro.core.scaling import MinMaxScaler

    rng = np.random.default_rng(10)
    s = np.abs(rng.standard_normal(60)) + 1.0
    n = 20
    model = LSTMRegressor(hidden_size=3, num_layers=1, seed=0)
    predictor = LoadDynamicsPredictor(
        model=model,
        scaler=MinMaxScaler().fit(s[:40]),
        hyperparameters=LSTMHyperparameters(
            history_len=n, cell_size=3, num_layers=1, batch_size=8
        ),
    )
    # start < n so several early targets lack a full window
    preds = predictor.predict_series(s, 5, 40)
    expected_fallback = [s[i - 1] if i > 0 else 0.0 for i in range(5, n)]
    assert np.array_equal(preds[: n - 5], expected_fallback)
    # and one that includes target index 0
    preds0 = predictor.predict_series(s, 0, 30)
    assert preds0[0] == 0.0
    assert np.array_equal(preds0[1:n], s[: n - 1])


# ----------------------------------------------------------------------
# cross-trial caches
# ----------------------------------------------------------------------
def test_window_cache_matches_direct_construction():
    rng = np.random.default_rng(11)
    scaled = rng.uniform(size=300)
    cache = WindowCache(scaled, 180, 240, max_train_windows=100)
    for n in (5, 24, 5):  # 5 requested twice → one build
        X_tr, y_tr, X_val, y_val = cache.get(n)
        X_ref, y_ref = make_windows(scaled[:180], n)
        X_ref, y_ref = X_ref[-100:], y_ref[-100:]
        Xv_ref, yv_ref = windows_for_range(scaled, n, 180, 240)
        assert np.array_equal(X_tr, X_ref) and np.array_equal(y_tr, y_ref)
        assert np.array_equal(X_val, Xv_ref) and np.array_equal(y_val, yv_ref)
    assert len(cache) == 2
    # repeated gets hand back the same arrays, not copies
    assert cache.get(5)[0] is cache.get(5)[0]


def test_trial_memo_roundtrip():
    memo = TrialMemo()
    config = {"a": 3, "b": 0.5}
    assert memo.get(config) is None
    memo.put(config, 1.25, {"epochs_run": 7})
    assert {"b": 0.5, "a": 3} in memo  # key order-insensitive
    value, meta = memo.get({"b": 0.5, "a": 3})
    assert value == 1.25 and meta == {"epochs_run": 7}
    # returned meta is a copy — mutating it must not poison the memo
    meta["epochs_run"] = 0
    assert memo.get(config)[1] == {"epochs_run": 7}


# ----------------------------------------------------------------------
# end-to-end: parallel fit determinism
# ----------------------------------------------------------------------
def _small_series():
    rng = np.random.default_rng(12)
    t = np.arange(260)
    return 50 + 10 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.0, t.size)


def _make_ld():
    return LoadDynamics(
        space=search_space_for("gl", "tiny"),
        settings=FrameworkSettings.reduced(max_iters=4, epochs=4),
        optimizer_cls=RandomSearch,
    )


def test_fit_parallel_records_identical_to_serial():
    """Same configs, same objective values, serial vs n_workers=2.

    Training is deterministic per (config, seed, data), and random
    search draws identical configs in both modes, so the whole trial
    history must match.
    """
    series = _small_series()
    _, serial = _make_ld().fit(series)
    _, parallel = _make_ld().fit(series, n_workers=2)
    assert [(r.config, r.value) for r in serial.trials] == [
        (r.config, r.value) for r in parallel.trials
    ]
    assert serial.best_validation_mape == parallel.best_validation_mape
    assert serial.n_infeasible == parallel.n_infeasible
