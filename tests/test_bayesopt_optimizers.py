"""Tests for BayesianOptimizer, RandomSearch and GridSearch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesopt import (
    BayesianOptimizer,
    FloatParam,
    GridSearch,
    IntParam,
    RandomSearch,
    SearchSpace,
)


@pytest.fixture
def space():
    return SearchSpace(
        [FloatParam("x", -3.0, 3.0), FloatParam("y", -3.0, 3.0), IntParam("k", 1, 6)]
    )


def bowl(cfg):
    """Minimum 0 at (1, -1, k=2)."""
    return (cfg["x"] - 1.0) ** 2 + (cfg["y"] + 1.0) ** 2 + 0.25 * (cfg["k"] - 2) ** 2


class TestBayesianOptimizer:
    def test_finds_good_minimum(self, space):
        bo = BayesianOptimizer(space, n_initial=5, seed=0)
        rec = bo.run(bowl, 30)
        assert rec.value < 0.5

    def test_beats_random_on_average_budget(self, space):
        bo = BayesianOptimizer(space, n_initial=5, seed=2).run(bowl, 25)
        rs = RandomSearch(space, seed=2).run(bowl, 25)
        # BO should be at least competitive; allow slack for stochasticity.
        assert bo.value <= rs.value * 1.5 + 0.2

    def test_ask_tell_interface(self, space):
        bo = BayesianOptimizer(space, n_initial=2, seed=1)
        for _ in range(6):
            cfg = bo.suggest()
            space.validate(cfg)
            bo.tell(cfg, bowl(cfg))
        assert bo.n_trials == 6
        assert bo.best_value == min(t.value for t in bo.history)

    def test_infinite_objective_penalized(self, space):
        bo = BayesianOptimizer(space, n_initial=2, seed=1)
        cfg = bo.suggest()
        rec = bo.tell(cfg, float("nan"))
        assert rec.value == pytest.approx(1e6)
        # Must keep working after poisoned trials.
        bo.run(bowl, 5)

    def test_history_records_iterations(self, space):
        bo = BayesianOptimizer(space, n_initial=2, seed=0)
        bo.run(bowl, 5)
        assert [t.iteration for t in bo.history] == list(range(5))

    def test_no_duplicate_configs_with_gp(self, space):
        bo = BayesianOptimizer(space, n_initial=3, seed=0)
        bo.run(bowl, 15)
        seen = [tuple(sorted(t.config.items())) for t in bo.history]
        assert len(set(seen)) == len(seen)

    def test_best_before_any_trial_raises(self, space):
        with pytest.raises(RuntimeError):
            BayesianOptimizer(space).best_config

    def test_invalid_acquisition(self, space):
        with pytest.raises(ValueError):
            BayesianOptimizer(space, acquisition="thompson")

    def test_all_acquisitions_run(self, space):
        for acq in ("ei", "pi", "lcb"):
            bo = BayesianOptimizer(space, n_initial=2, acquisition=acq, seed=0)
            bo.run(bowl, 6)
            assert bo.n_trials == 6

    def test_deterministic_given_seed(self, space):
        def run():
            return BayesianOptimizer(space, n_initial=3, seed=9).run(bowl, 10).value

        assert run() == run()


class TestRandomSearch:
    def test_runs_and_tracks_best(self, space):
        rs = RandomSearch(space, seed=0)
        rec = rs.run(bowl, 20)
        assert rec.value == min(t.value for t in rs.history)

    def test_avoids_duplicates(self, space):
        rs = RandomSearch(space, seed=0)
        rs.run(bowl, 20)
        seen = [tuple(sorted(t.config.items())) for t in rs.history]
        assert len(set(seen)) == len(seen)

    def test_invalid_budget(self, space):
        with pytest.raises(ValueError):
            RandomSearch(space).run(bowl, 0)


class TestGridSearch:
    def test_exhausts_grid(self, space):
        gs = GridSearch(space, points_per_dim=2)
        gs.run(bowl)
        assert gs.exhausted
        assert gs.n_trials == gs.grid_size

    def test_suggest_after_exhaustion_raises(self, space):
        gs = GridSearch(space, points_per_dim=2)
        gs.run(bowl)
        with pytest.raises(StopIteration):
            gs.suggest()

    def test_budget_truncates(self, space):
        gs = GridSearch(space, points_per_dim=3)
        gs.run(bowl, n_iters=5)
        assert gs.n_trials == 5
        assert not gs.exhausted

    def test_shuffle_changes_order_not_set(self, space):
        a = GridSearch(space, points_per_dim=2, shuffle=False)._grid
        b = GridSearch(space, points_per_dim=2, shuffle=True, seed=5)._grid
        key = lambda g: tuple(sorted((k, round(float(v), 9)) for k, v in g.items()))
        assert sorted(map(key, a)) == sorted(map(key, b))
        assert list(map(key, a)) != list(map(key, b))

    def test_grid_optimum_close_to_true(self, space):
        gs = GridSearch(space, points_per_dim=5)
        rec = gs.run(bowl)
        assert rec.value < 1.0
