"""Tests for the trace substrate: generators, aggregation, splits, registry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    ALL_CONFIGURATIONS,
    TRACE_NAMES,
    WorkloadConfig,
    WorkloadTrace,
    aggregate,
    azure_trace,
    facebook_trace,
    get_configuration,
    get_trace,
    google_trace,
    lcg_trace,
    list_configurations,
    train_val_test_split,
    wikipedia_trace,
)

GENERATORS = {
    "wiki": wikipedia_trace,
    "gl": google_trace,
    "fb": facebook_trace,
    "az": azure_trace,
    "lcg": lcg_trace,
}


class TestAggregate:
    def test_sums_buckets(self):
        base = np.arange(12.0)
        out = aggregate(base, 4)
        np.testing.assert_array_equal(out, [6.0, 22.0, 38.0])

    def test_drops_trailing_partial(self):
        out = aggregate(np.ones(10), 4)
        assert out.shape == (2,)

    def test_identity_at_one_minute(self):
        base = np.arange(5.0)
        np.testing.assert_array_equal(aggregate(base, 1), base)

    def test_conservation_of_mass(self, rng):
        base = rng.poisson(10, size=600).astype(float)
        out = aggregate(base, 30)
        assert out.sum() == pytest.approx(base[: 20 * 30].sum())

    def test_too_short_raises(self):
        with pytest.raises(ValueError, match="too short"):
            aggregate(np.ones(5), 10)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            aggregate(np.ones(5), 0)

    @given(
        interval=st.sampled_from([5, 10, 30, 60]),
        n=st.integers(60, 300),
    )
    @settings(max_examples=30, deadline=None)
    def test_length_formula(self, interval, n):
        out = aggregate(np.ones(n), interval)
        assert out.shape == (n // interval,)


class TestSplit:
    def test_60_20_20_lengths(self):
        s = np.arange(100.0)
        tr, va, te = train_val_test_split(s)
        assert (len(tr), len(va), len(te)) == (60, 20, 20)

    def test_chronological_order_preserved(self):
        s = np.arange(50.0)
        tr, va, te = train_val_test_split(s)
        np.testing.assert_array_equal(np.concatenate([tr, va, te]), s)

    def test_custom_fractions(self):
        tr, va, te = train_val_test_split(np.arange(100.0), 0.5, 0.25)
        assert (len(tr), len(va), len(te)) == (50, 25, 25)

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            train_val_test_split(np.arange(10.0), 0.8, 0.3)
        with pytest.raises(ValueError):
            train_val_test_split(np.arange(10.0), 0.0, 0.2)

    def test_too_short(self):
        with pytest.raises(ValueError, match="too short"):
            train_val_test_split(np.arange(2.0))


class TestGenerators:
    @pytest.mark.parametrize("name,gen", GENERATORS.items())
    def test_nonnegative_and_deterministic(self, name, gen):
        a = gen(seed=5)
        b = gen(seed=5)
        assert np.all(a.counts >= 0)
        np.testing.assert_array_equal(a.counts, b.counts)
        assert a.name == name

    @pytest.mark.parametrize("gen", GENERATORS.values())
    def test_different_seeds_differ(self, gen):
        assert not np.array_equal(gen(seed=1).counts, gen(seed=2).counts)

    def test_wikipedia_magnitude_and_seasonality(self):
        t = wikipedia_trace()
        jars = t.at_interval(30)
        assert 3e6 < jars.mean() < 8e6  # paper: ~5.4M per 30-min interval
        # Strong daily autocorrelation at lag 48 (= 24h of 30-min intervals).
        x = jars - jars.mean()
        ac48 = float(np.dot(x[:-48], x[48:]) / np.dot(x, x))
        assert ac48 > 0.5

    def test_google_magnitude_and_spiky_first_half(self):
        t = google_trace()
        jars = t.at_interval(30)
        assert 3e5 < jars.mean() < 3e6
        half = len(t.counts) // 2
        # Spikes live in the first half → heavier right tail there.
        p99_first = np.percentile(t.counts[:half], 99.5)
        p99_second = np.percentile(t.counts[half:], 99.5)
        med_first = np.median(t.counts[:half])
        med_second = np.median(t.counts[half:])
        assert p99_first / med_first > p99_second / med_second

    def test_facebook_is_one_day_and_bursty(self):
        t = facebook_trace()
        assert t.minutes == 1440
        jars = t.at_interval(5)
        assert jars.std() / jars.mean() > 0.5  # high fluctuation

    def test_azure_regime_change(self):
        t = azure_trace()
        jars = t.at_interval(60)
        n = len(jars)
        early = jars[: int(0.4 * n)].mean()
        late = jars[int(0.75 * n) :].mean()
        assert late > 1.25 * early  # the regime ramp

    def test_lcg_bursts_present(self):
        t = lcg_trace()
        jars = t.at_interval(30)
        assert jars.max() > 2.5 * np.median(jars)

    @pytest.mark.parametrize("gen", GENERATORS.values())
    def test_days_validation(self, gen):
        with pytest.raises(ValueError):
            gen(days=0)


class TestWorkloadTrace:
    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            WorkloadTrace("x", np.array([1.0, -2.0]), "Web")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WorkloadTrace("x", np.array([]), "Web")


class TestRegistry:
    def test_exactly_14_configurations(self):
        assert len(ALL_CONFIGURATIONS) == 14
        assert len(list_configurations()) == 14

    def test_table1_intervals(self):
        expected = {
            "wiki": {5, 10, 30},
            "lcg": {5, 10, 30},
            "az": {10, 30, 60},
            "gl": {5, 10, 30},
            "fb": {5, 10},
        }
        for trace in TRACE_NAMES:
            got = {
                c.interval_minutes
                for c in ALL_CONFIGURATIONS
                if c.trace_name == trace
            }
            assert got == expected[trace], trace

    def test_get_configuration_roundtrip(self):
        cfg = get_configuration("gl-30m")
        assert cfg == WorkloadConfig("gl", 30)
        series = cfg.load()
        assert len(series) > 100

    def test_unknown_keys(self):
        with pytest.raises(ValueError):
            get_configuration("gl-7m")
        with pytest.raises(ValueError):
            get_trace("alibaba")

    def test_trace_caching(self):
        a = get_trace("wiki")
        b = get_trace("wiki")
        assert a is b


class TestInjectors:
    def test_flash_crowd_is_local_and_decays(self):
        from repro.traces import inject_flash_crowd

        base = np.full(100, 10.0)
        out = inject_flash_crowd(base, 40, magnitude=3.0, width=12, ramp=2)
        np.testing.assert_array_equal(out[:40], base[:40])  # untouched before
        assert out[42] == pytest.approx(30.0)  # peak after the ramp
        assert out[42] > out[48] > out[60]  # exponential decay
        np.testing.assert_allclose(out[80:], 10.0, rtol=1e-3)  # spike over
        np.testing.assert_array_equal(base, 10.0)  # input not mutated

    def test_flash_crowd_jitter_deterministic(self):
        from repro.traces import inject_flash_crowd

        base = np.full(60, 10.0)
        a = inject_flash_crowd(base, 20, jitter=0.1, seed=4)
        b = inject_flash_crowd(base, 20, jitter=0.1, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, inject_flash_crowd(base, 20, jitter=0.1, seed=5))

    def test_regime_shift_is_permanent(self):
        from repro.traces import inject_regime_shift

        base = np.full(50, 10.0)
        out = inject_regime_shift(base, 30, factor=2.0)
        np.testing.assert_array_equal(out[:30], 10.0)
        np.testing.assert_array_equal(out[30:], 20.0)

    def test_regime_shift_ramp(self):
        from repro.traces import inject_regime_shift

        out = inject_regime_shift(np.full(50, 10.0), 20, factor=3.0, ramp=10)
        assert out[19] == 10.0
        assert 10.0 < out[24] < 30.0  # mid-ramp
        np.testing.assert_allclose(out[30:], 30.0)

    def test_injector_validation(self):
        from repro.traces import inject_flash_crowd, inject_regime_shift

        with pytest.raises(ValueError):
            inject_flash_crowd(np.ones(10), 20)  # spike outside the series
        with pytest.raises(ValueError):
            inject_flash_crowd(np.ones(10), 5, magnitude=0.5)
        with pytest.raises(ValueError):
            inject_regime_shift(np.ones(10), 5, factor=0.0)

    def test_spike_fault_at_trace_load(self):
        from repro.resilience import faults

        cfg = get_configuration("fb-10m")
        clean = cfg.load()
        with faults.injected("spike@trace.load:*=4.0"):
            spiked = cfg.load()
        assert spiked.size == clean.size
        at = int(0.75 * clean.size)  # where the loader plants the crowd
        assert np.all(spiked >= clean) and np.any(spiked > clean)
        np.testing.assert_array_equal(spiked[:at], clean[:at])
        np.testing.assert_array_equal(cfg.load(), clean)  # no lingering fault
