"""Command-line interface: ``python -m repro.cli <command> [options]``.

Commands map 1:1 to the experiment runners and the core workflow:

* ``list`` — show the 14 workload configurations and all baselines;
* ``families`` — show the registered model families (``--family``);
* ``fit`` — run LoadDynamics on a configuration, optionally save the
  predictor;
* ``predict`` — load a saved predictor and forecast the next interval;
* ``simulate`` — serve a predictor online through the auto-scaling case
  study, optionally ``--guarded`` (sanitization, fallbacks, breaker)
  and/or ``--monitor`` (rolling accuracy, drift detection, SLO health;
  ``--metrics-out`` dumps the metrics registry to JSON);
* ``stream`` — serve a chunked feed through the crash-safe streaming
  runtime (per-chunk sanitation, stall watchdog, backpressure) with
  ``--checkpoint-dir``/``--resume`` giving bit-for-bit resume after a
  kill;
* ``autoscale`` — run the adversarial scenario matrix (flash crowds,
  regime shifts, trace corruption, injected serving faults) comparing
  predictive vs reactive vs hybrid provisioning policies;
* ``metrics`` — render a ``--metrics-out`` snapshot as Prometheus text
  or stable JSON;
* ``fig2`` / ``fig5`` / ``fig9`` / ``table4`` / ``fig10`` / ``ablation``
  — regenerate the paper artifacts at a chosen budget.

Every command prints an aligned text table (the same rows the benchmark
harness asserts on).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.obs.logging import get_logger

__all__ = ["main", "build_parser"]

logger = get_logger("cli")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="LoadDynamics reproduction (IPDPS 2020) command-line interface",
    )
    p.add_argument(
        "--log-level", default="INFO",
        help="diagnostics verbosity on stderr (DEBUG/INFO/WARNING/ERROR)",
    )
    p.add_argument(
        "--log-json", action="store_true",
        help="emit diagnostics as JSON lines instead of text",
    )
    p.add_argument(
        "--trace-out", metavar="PATH.jsonl", default=None,
        help="write structured telemetry (spans, BO trials, training "
             "epochs, autoscale steps) to this JSONL file",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workload configurations and baselines")
    sub.add_parser("families", help="list the registered model families")

    fit = sub.add_parser("fit", help="run the LoadDynamics workflow on a configuration")
    fit.add_argument("config", help="workload configuration key, e.g. gl-30m "
                                    "(or mv-<interval>m for the multivariate trace)")
    fit.add_argument("--channels", default=None, metavar="NAMES",
                     help="comma-separated channel names for the mv trace "
                          "(e.g. requests,cpu,memory)")
    fit.add_argument("--target-channel", type=int, default=0, metavar="D",
                     help="which channel of a multivariate trace to forecast "
                          "(default 0)")
    fit.add_argument("--budget", default="reduced", choices=("paper", "reduced", "tiny"))
    fit.add_argument("--family", default="lstm", metavar="NAME",
                     help="model family the trials train (see `repro families`; "
                          "default: lstm)")
    fit.add_argument("--max-iters", type=int, default=12, help="BO iterations (paper: 100)")
    fit.add_argument("--epochs", type=int, default=30)
    fit.add_argument("--extended", action="store_true",
                     help="also tune loss/optimizer (paper §V)")
    fit.add_argument("--save", metavar="DIR", help="save the predictor here")
    fit.add_argument("--journal", metavar="PATH.jsonl", default=None,
                     help="crash-safe trial journal: every completed trial is "
                          "fsynced here before the next starts")
    fit.add_argument("--resume", action="store_true",
                     help="replay completed trials from --journal and continue "
                          "the interrupted run deterministically")
    fit.add_argument("--trial-timeout", type=float, default=None, metavar="SECONDS",
                     help="per-trial wall-clock deadline; slower trials are "
                          "recorded infeasible instead of stalling the run")
    fit.add_argument("--n-workers", type=int, default=None, metavar="N",
                     help="train up to N candidate models concurrently in "
                          "worker processes (default: serial; capped by "
                          "REPRO_MAX_WORKERS)")

    pred = sub.add_parser("predict", help="forecast with a saved predictor")
    pred.add_argument("model_dir", help="directory written by `repro fit --save`")
    pred.add_argument("config", help="workload configuration key for the history")

    sim = sub.add_parser(
        "simulate",
        help="serve a predictor online through the autoscaler case study",
    )
    sim.add_argument("config", help="workload configuration key, e.g. gl-30m "
                                    "(or mv-<interval>m for the multivariate trace)")
    sim.add_argument("--channels", default=None, metavar="NAMES",
                     help="comma-separated channel names for the mv trace")
    sim.add_argument("--target-channel", type=int, default=0, metavar="D",
                     help="which channel of a multivariate trace to forecast "
                          "(default 0)")
    sim.add_argument("--guarded", action="store_true",
                     help="wrap the predictor in repro.serving.GuardedPredictor "
                          "(output validation, fallback chain, circuit breaker)")
    sim.add_argument("--model-dir", metavar="DIR", default=None,
                     help="serve a predictor saved by `repro fit --save` "
                          "(default: fit a fresh one on the training prefix)")
    sim.add_argument("--adaptive", action="store_true",
                     help="serve the self-healing AdaptiveLoadDynamics loop "
                          "(drift-triggered refits) instead of a frozen model")
    sim.add_argument("--refit-on-drift", action="store_true",
                     help="implies --adaptive; refit only when a CUSUM drift "
                          "detector fires on the served errors, instead of "
                          "the fixed refit-every-k cadence")
    sim.add_argument("--repair", default=None,
                     choices=("interpolate", "clip", "ffill"),
                     help="sanitize the trace with this repair policy before "
                          "serving (default: serve the raw trace)")
    sim.add_argument("--budget", default="tiny", choices=("paper", "reduced", "tiny"))
    sim.add_argument("--max-iters", type=int, default=3, help="BO iterations for the fit")
    sim.add_argument("--epochs", type=int, default=8)
    sim.add_argument("--start-frac", type=float, default=0.8,
                     help="serve the last (1 - START_FRAC) of the trace (default 0.8)")
    sim.add_argument("--refit-every", type=int, default=1)
    sim.add_argument("--monitor", action="store_true",
                     help="attach online forecast-quality monitoring (rolling "
                          "accuracy, CUSUM + Page-Hinkley drift detection) and "
                          "print the quality/drift/health report")
    sim.add_argument("--slo-latency-ms", type=float, default=None, metavar="MS",
                     help="per-prediction latency objective in milliseconds "
                          "(implies --monitor; tracked with an error budget)")
    sim.add_argument("--slo-mape", type=float, default=None, metavar="PCT",
                     help="per-interval accuracy objective: absolute percentage "
                          "error must stay below PCT (implies --monitor)")
    sim.add_argument("--metrics-out", metavar="PATH.json", default=None,
                     help="write the full metrics-registry snapshot to this "
                          "JSON file after the run (implies --monitor)")

    strm = sub.add_parser(
        "stream",
        help="serve a chunked feed with checkpoints and crash-safe resume",
    )
    strm.add_argument("config", help="workload configuration key, e.g. gl-30m")
    strm.add_argument("--model-dir", metavar="DIR", default=None,
                      help="serve a predictor saved by `repro fit --save` "
                           "(default: serve from the fallback chain alone)")
    strm.add_argument("--start-frac", type=float, default=0.8,
                      help="stream the last (1 - START_FRAC) of the trace "
                           "(default 0.8)")
    strm.add_argument("--chunk-size", type=int, default=64,
                      help="nominal intervals per feed chunk (default 64)")
    strm.add_argument("--size-jitter", type=int, default=0,
                      help="uniform +/- jitter on each chunk's size (default 0)")
    strm.add_argument("--checkpoint-every", type=int, default=100, metavar="K",
                      help="checkpoint every K processed chunks (default 100; "
                           "0 = final checkpoint only)")
    strm.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                      help="where checkpoint.json and the .f64 sidecars live "
                           "(default: no checkpointing)")
    strm.add_argument("--resume", action="store_true",
                      help="restore from --checkpoint-dir and continue the "
                           "interrupted stream bit-for-bit")
    strm.add_argument("--deadline-s", type=float, default=None, metavar="S",
                      help="stall watchdog: an inter-chunk gap beyond S "
                           "seconds degrades that chunk to hold-last")
    strm.add_argument("--queue-capacity", type=int, default=None, metavar="N",
                      help="backpressure bound in backlog intervals; chunks "
                           "arriving over it are load-shed")
    strm.add_argument("--service-time", type=float, default=0.0, metavar="S",
                      help="logical seconds the server needs per interval "
                           "(0 disables the backpressure model)")
    strm.add_argument("--repair", default="interpolate",
                      choices=("interpolate", "clip", "ffill", "reject"),
                      help="per-chunk sanitizer policy; chunks it cannot "
                           "repair are quarantined (default: interpolate)")
    strm.add_argument("--refit-every", type=int, default=None, metavar="K",
                      help="refit the predictor every K served intervals "
                           "(default: never — streamed models are frozen)")
    strm.add_argument("--seed", type=int, default=0,
                      help="chunking-jitter seed (default 0)")
    strm.add_argument("--monitor", action="store_true",
                      help="attach online forecast-quality monitoring "
                           "(scored in logical time)")
    strm.add_argument("--slo-mape", type=float, default=None, metavar="PCT",
                      help="per-interval accuracy objective (implies --monitor)")
    strm.add_argument("--report-out", metavar="PATH.json", default=None,
                      help="write the canonical ServingReport JSON (schedule "
                           "hex + all sections) for bit-for-bit comparison")

    auto = sub.add_parser(
        "autoscale",
        help="adversarial autoscaling matrix: predictive vs reactive vs hybrid",
    )
    auto.add_argument("--scenarios", nargs="*", default=None, metavar="NAME",
                      help="subset of scenarios (default: all; see "
                           "repro.autoscale.scenarios.SCENARIO_NAMES)")
    auto.add_argument("--policies", nargs="*", default=None, metavar="NAME",
                      help="subset of policies (default: predictive reactive hybrid)")
    auto.add_argument("--quick", action="store_true",
                      help="shorter traces (6 days, serve 3) for CI-speed runs")
    auto.add_argument("--seed", type=int, default=7,
                      help="scenario-generation seed (default 7)")
    auto.add_argument("--json-out", metavar="PATH.json", default=None,
                      help="also write the full scenario x policy matrix as JSON")

    met = sub.add_parser(
        "metrics",
        help="render a metrics snapshot written by --metrics-out",
    )
    met.add_argument("snapshot", help="JSON file written by `repro simulate --metrics-out`")
    met.add_argument("--format", default="prometheus", choices=("prometheus", "json"),
                     help="output format (default: prometheus text exposition)")
    met.add_argument("--prefix", default=None, metavar="NS",
                     help="restrict to one dotted registry namespace, "
                          "e.g. monitor. (matched before name sanitization)")

    for name, help_text in (
        ("fig2", "prior-predictor motivation (Fig. 2)"),
        ("fig5", "hyperparameter sensitivity (Fig. 5)"),
        ("fig9", "headline accuracy comparison (Fig. 9)"),
        ("fig10", "auto-scaling case study (Fig. 10)"),
        ("ablation", "BO vs random vs grid (§III-A)"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--max-eval", type=int, default=150)
        if name == "fig5":
            cmd.add_argument("--models", type=int, default=30)
        if name == "ablation":
            cmd.add_argument("--families", nargs="*", default=None, metavar="NAME",
                             help="compare model families instead of search "
                                  "strategies (e.g. --families lstm gbr svr)")
        if name == "fig9":
            cmd.add_argument("--configs", nargs="*", default=None,
                             help="subset of configuration keys (default: all 14)")
            cmd.add_argument("--max-iters", type=int, default=12)
            cmd.add_argument("--no-brute-force", action="store_true")
            cmd.add_argument("--table4", action="store_true",
                             help="also print Table IV from the same runs")
    return p


def _cmd_list() -> int:
    from repro.baselines import list_baselines
    from repro.traces import ALL_CONFIGURATIONS

    print("Workload configurations (Table I):")
    for cfg in ALL_CONFIGURATIONS:
        print(f"  {cfg.key:10s} ({cfg.trace_name}, {cfg.interval_minutes}-minute intervals)")
    print("\nBaseline predictors:")
    for name in list_baselines():
        print(f"  {name}")
    return 0


def _cmd_families() -> int:
    from repro.models import get_family, list_families

    print("Registered model families (`repro fit --family NAME`):")
    for name in list_families():
        family = get_family(name)
        dims = ", ".join(p.name for p in family.search_space(budget="paper").params)
        print(f"  {name:8s} [{family.kind}] tunes: {dims}")
    return 0


def _resolve_configuration(key: str):
    """A Table I key, or ``mv-<interval>m`` for the multivariate trace.

    The ``mv`` trace is deliberately outside the paper's 14
    configurations, so it resolves here instead of the registry tuple.
    """
    from repro.traces import get_configuration
    from repro.traces.loader import WorkloadConfig

    trace, sep, rest = key.partition("-")
    if trace == "mv" and sep and rest.endswith("m") and rest[:-1].isdigit():
        return WorkloadConfig("mv", int(rest[:-1]))
    return get_configuration(key)


def _load_series(args):
    """Materialize the (possibly multivariate) series an args.config names."""
    cfg = _resolve_configuration(args.config)
    channels = getattr(args, "channels", None)
    kwargs = {}
    if channels:
        kwargs["channels"] = tuple(
            s.strip() for s in channels.split(",") if s.strip()
        )
    return cfg, cfg.load(**kwargs)


def _cmd_fit(args) -> int:
    from repro.core import FrameworkSettings, LoadDynamics, search_space_for

    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    _cfg, series = _load_series(args)
    trace = args.config.split("-")[0]
    ld = LoadDynamics(
        space=search_space_for(
            trace, args.budget, extended=args.extended, family=args.family
        ),
        settings=FrameworkSettings.reduced(
            max_iters=args.max_iters,
            epochs=args.epochs,
            trial_timeout_s=args.trial_timeout,
        ),
        family=args.family,
    )
    predictor, report = ld.fit(
        series, journal=args.journal, resume=args.resume,
        n_workers=args.n_workers, target_channel=args.target_channel,
    )
    hp = report.best_hyperparameters
    tel = report.telemetry
    logger.debug(
        "telemetry: %d epochs across %d trials, %.1fs training / %.1fs total",
        tel.get("epochs_total", 0), report.n_trials,
        tel.get("train_seconds_total", 0.0), report.total_seconds,
    )
    print(f"workload          : {args.config} ({len(series)} intervals)")
    if series.ndim == 2:
        print(f"channels          : {series.shape[1]} "
              f"(forecasting channel {args.target_channel})")
    print(f"family            : {ld.family.name}")
    print(f"trials            : {report.n_trials} ({report.n_infeasible} infeasible)")
    if report.n_resumed:
        print(f"resumed trials    : {report.n_resumed} (from {args.journal})")
    if report.degraded:
        print(f"DEGRADED          : {report.degraded_reason} "
              f"(naive last-value fallback)")
    selected = " ".join(f"{k}={v}" for k, v in hp.as_dict().items())
    print(f"selected          : {selected}")
    print(f"validation MAPE   : {report.best_validation_mape:.2f}%")
    print(f"test MAPE         : {ld.evaluate(predictor, series):.2f}%")
    print(f"fit wall time     : {report.total_seconds:.1f}s")
    if args.save:
        path = predictor.save(args.save)
        note = " (degraded naive fallback)" if report.degraded else ""
        print(f"saved predictor   : {path}{note}")
    return 0


def _cmd_predict(args) -> int:
    from repro.core import LoadDynamicsPredictor

    predictor = LoadDynamicsPredictor.load(args.model_dir)
    series = _resolve_configuration(args.config).load()
    value = predictor.predict_next(series)
    last = (
        series[-1, predictor.target_channel] if series.ndim == 2 else series[-1]
    )
    print(f"last observed JAR : {last:,.0f}")
    print(f"predicted next JAR: {value:,.0f}")
    return 0


def _cmd_simulate(args) -> int:
    from repro.core import (
        AdaptiveLoadDynamics,
        FrameworkSettings,
        LoadDynamics,
        LoadDynamicsPredictor,
        search_space_for,
    )
    from repro.serving import (
        GuardedPredictor,
        TraceSanitizer,
        daily_period,
        default_fallbacks,
        serve_and_simulate,
    )

    if not 0.0 < args.start_frac < 1.0:
        print("error: --start-frac must be in (0, 1)", file=sys.stderr)
        return 2
    if args.refit_on_drift:
        args.adaptive = True
    if args.adaptive and args.model_dir:
        print("error: --adaptive and --model-dir are mutually exclusive",
              file=sys.stderr)
        return 2

    want_monitor = (
        args.monitor
        or args.slo_latency_ms is not None
        or args.slo_mape is not None
        or args.metrics_out is not None
    )
    monitor = None
    if want_monitor:
        from repro.obs.monitor import ForecastMonitor, SLOTracker

        slo = None
        if args.slo_latency_ms is not None or args.slo_mape is not None:
            slo = SLOTracker(
                latency_slo_ms=args.slo_latency_ms,
                accuracy_slo_mape=args.slo_mape,
            )
        monitor = ForecastMonitor(slo=slo)

    cfg, series = _load_series(args)
    if args.repair:
        series, report = TraceSanitizer(policy=args.repair).sanitize(series)
        print(f"sanitizer         : {report.summary()}")
    start = int(len(series) * args.start_frac)
    trace = args.config.split("-")[0]
    if args.budget == "tiny":
        settings = FrameworkSettings.tiny(max_iters=args.max_iters, epochs=args.epochs)
    else:
        settings = FrameworkSettings.reduced(
            max_iters=args.max_iters, epochs=args.epochs
        )
    space = search_space_for(trace, args.budget)
    fallbacks = default_fallbacks(daily_period(cfg.interval_minutes))

    if args.adaptive:
        # Share the monitor's first detector (CUSUM) with the adaptive
        # loop so serving-side drift — including injected
        # ``drift@serve.predict`` faults, which only shift the *served*
        # forecast — triggers refits, not just the internal error rule.
        refit_on_drift = monitor.detectors[0] if monitor is not None else None
        if args.refit_on_drift and refit_on_drift is None:
            # --refit-on-drift without a monitor: wire in a CUSUM
            # detector of its own so refits are drift-gated rather than
            # rolling-window-threshold gated.
            from repro.obs.monitor.drift import CusumDetector

            refit_on_drift = CusumDetector()
        predictor = AdaptiveLoadDynamics(
            space=space, settings=settings, refit_on_drift=refit_on_drift,
            target_channel=args.target_channel,
        )
        if args.refit_on_drift:
            print(f"refit trigger     : {getattr(refit_on_drift, 'name', 'cusum')} "
                  "drift detector (replaces fixed refit cadence)")
    elif args.model_dir:
        if args.guarded:
            # The guarded load shields against a corrupted directory by
            # degrading to the fallback chain instead of dying.
            predictor = GuardedPredictor.load(
                args.model_dir, on_corrupt="fallback", fallbacks=fallbacks
            )
        else:
            predictor = LoadDynamicsPredictor.load(args.model_dir)
    else:
        predictor, fit_report = LoadDynamics(space=space, settings=settings).fit(
            series[:start], target_channel=args.target_channel
        )
        if fit_report.degraded:
            print(f"fit DEGRADED      : {fit_report.degraded_reason}")
    if args.guarded and not isinstance(predictor, GuardedPredictor):
        predictor = GuardedPredictor(predictor, fallbacks=fallbacks)

    report = serve_and_simulate(
        predictor, series, start, refit_every=args.refit_every, monitor=monitor
    )
    res = report.result
    print(f"workload          : {args.config} "
          f"(serving {res.n_intervals} of {len(series)} intervals)")
    print(f"predictor         : {predictor.name}")
    print(f"mean turnaround   : {res.mean_turnaround:.1f}s")
    print(f"under-provisioned : {res.underprovision_rate:.1f}%")
    print(f"over-provisioned  : {res.overprovision_rate:.1f}%")
    print(f"VM time paid      : {res.vm_seconds / 3600.0:.1f} VM-hours")
    if report.served_by:
        stages = " ".join(f"{k}={v}" for k, v in sorted(report.served_by.items()))
        print(f"served by         : {stages}")
    if report.serving_counters:
        print("serving counters  :")
        for name, value in sorted(report.serving_counters.items()):
            print(f"  {name:32s} {value:g}")
    for frm, to, reason in report.breaker_transitions:
        print(f"breaker           : {frm} -> {to} ({reason})")
    if monitor is not None:
        window = (report.quality or {}).get("window", {})
        if window.get("mape") is not None:
            print(f"rolling MAPE      : {window['mape']:.2f}% "
                  f"(bias {window['bias']:+.1f}, window {window['size']})")
        for d in report.drift or []:
            state = "FIRED" if d["drifted"] else "quiet"
            at = f" at interval {d['fired_at']}" if d.get("fired_at") else ""
            print(f"drift [{d['name']:13s}]: {state}{at} "
                  f"(statistic {d['statistic']:.2f})")
        inner = predictor.primary if isinstance(predictor, GuardedPredictor) else predictor
        drift_refits = getattr(inner, "drift_refits", None)
        if drift_refits is not None:
            print(f"drift-triggered refits: {drift_refits}")
        if report.slo is not None:
            for key, obj in sorted(report.slo.get("objectives", {}).items()):
                print(f"SLO [{key:9s}]    : {obj['violations']}/{obj['n']} "
                      f"violations, budget consumed {obj['budget_consumed']:.2f}, "
                      f"burn rate {obj['burn_rate']:.2f}")
        health = report.health or {}
        reasons = "; ".join(health.get("reasons", [])) or "all objectives met"
        print(f"health            : {health.get('status', 'unknown')} ({reasons})")
    if args.metrics_out:
        from repro.obs.monitor import write_snapshot

        path = write_snapshot(args.metrics_out)
        print(f"metrics snapshot  : {path}")
    return 0


def _cmd_stream(args) -> int:
    from repro.serving import (
        GuardedPredictor,
        StreamConfig,
        TraceSanitizer,
        daily_period,
        default_fallbacks,
        serve_and_simulate,
    )

    if not 0.0 < args.start_frac < 1.0:
        print("error: --start-frac must be in (0, 1)", file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    want_monitor = args.monitor or args.slo_mape is not None
    monitor = None
    if want_monitor:
        from repro.obs.monitor import ForecastMonitor, SLOTracker

        slo = (
            SLOTracker(accuracy_slo_mape=args.slo_mape)
            if args.slo_mape is not None else None
        )
        monitor = ForecastMonitor(slo=slo)

    cfg, series = _load_series(args)
    if series.ndim != 1:
        print("error: streaming serving is univariate; pick a 1-D trace",
              file=sys.stderr)
        return 2
    start = int(len(series) * args.start_frac)
    fallbacks = default_fallbacks(daily_period(cfg.interval_minutes))
    if args.model_dir:
        predictor = GuardedPredictor.load(
            args.model_dir, on_corrupt="fallback", fallbacks=fallbacks
        )
    else:
        # No model: serve from the fallback chain alone — fast,
        # deterministic, and exactly what a corrupt-model degradation
        # serves, so it is the canonical parity-check predictor too.
        predictor = GuardedPredictor(None, fallbacks=fallbacks)

    try:
        stream_cfg = StreamConfig(
            chunk_size=args.chunk_size,
            size_jitter=args.size_jitter,
            seed=args.seed,
            deadline_s=args.deadline_s,
            queue_capacity=args.queue_capacity,
            service_time_per_interval=args.service_time,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = serve_and_simulate(
        predictor, series, start,
        refit_every=args.refit_every,
        monitor=monitor,
        stream=stream_cfg,
        sanitizer=TraceSanitizer(policy=args.repair),
    )
    res = report.result
    strm = report.stream or {}
    print(f"workload          : {args.config} "
          f"(streamed {res.n_intervals} of {len(series)} intervals)")
    print(f"predictor         : {predictor.name}")
    print(f"chunks            : {strm.get('chunks', 0)} "
          f"(checkpoints {strm.get('checkpoints_written', 0)})")
    print(f"served intervals  : {strm.get('served_intervals', 0)} normal, "
          f"{strm.get('held_intervals', 0)} held, "
          f"{strm.get('quarantined_intervals', 0)} quarantined")
    if strm.get("gap_intervals") or strm.get("shed_chunks"):
        print(f"degraded feed     : {strm.get('gap_intervals', 0)} gap "
              f"intervals, {strm.get('shed_chunks', 0)} chunks shed "
              f"({strm.get('shed_intervals', 0)} intervals)")
    for s in strm.get("stalls", []):
        print(f"stall             : chunk {s['chunk_index']} arrived "
              f"{s['gap_s']:.1f}s late (deadline {s['deadline_s']:.1f}s), "
              f"{s['intervals_held']} intervals held")
    for q in strm.get("quarantine", []):
        print(f"quarantined       : chunk {q['chunk']} "
              f"({q['intervals']} intervals): {q['reason']}")
    print(f"mean turnaround   : {res.mean_turnaround:.1f}s")
    print(f"under-provisioned : {res.underprovision_rate:.1f}%")
    print(f"over-provisioned  : {res.overprovision_rate:.1f}%")
    print(f"VM time paid      : {res.vm_seconds / 3600.0:.1f} VM-hours")
    if report.served_by:
        stages = " ".join(f"{k}={v}" for k, v in sorted(report.served_by.items()))
        print(f"served by         : {stages}")
    if monitor is not None:
        window = (report.quality or {}).get("window", {})
        if window.get("mape") is not None:
            print(f"rolling MAPE      : {window['mape']:.2f}% "
                  f"(bias {window['bias']:+.1f}, window {window['size']})")
        health = report.health or {}
        reasons = "; ".join(health.get("reasons", [])) or "all objectives met"
        print(f"health            : {health.get('status', 'unknown')} ({reasons})")
    if args.report_out:
        import json

        doc = {
            "schema": 1,
            "schedule_hex": report.schedule.tobytes().hex(),
            "result": {
                "n_intervals": res.n_intervals,
                "mean_turnaround": res.mean_turnaround,
                "underprovision_rate": res.underprovision_rate,
                "overprovision_rate": res.overprovision_rate,
                "vm_seconds": res.vm_seconds,
            },
            "serving_counters": report.serving_counters,
            "served_by": report.served_by,
            "breaker_state": report.breaker_state,
            "breaker_transitions": report.breaker_transitions,
            "quality": report.quality,
            "drift": report.drift,
            "slo": report.slo,
            "health": report.health,
            "controller": report.controller,
            "stream": report.stream,
        }
        with open(args.report_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(f"report written to : {args.report_out}")
    return 0


def _cmd_autoscale(args) -> int:
    from repro.autoscale.scenarios import (
        POLICY_NAMES,
        SCENARIO_NAMES,
        default_scenarios,
        run_matrix,
    )
    from repro.experiments import format_table

    for name in args.scenarios or ():
        if name not in SCENARIO_NAMES:
            print(f"error: unknown scenario {name!r}; choose from "
                  f"{' '.join(SCENARIO_NAMES)}", file=sys.stderr)
            return 2
    for name in args.policies or ():
        if name not in POLICY_NAMES:
            print(f"error: unknown policy {name!r}; choose from "
                  f"{' '.join(POLICY_NAMES)}", file=sys.stderr)
            return 2

    if args.quick:
        scenarios = default_scenarios(days=6, serve_days=3, seed=args.seed)
    else:
        scenarios = default_scenarios(seed=args.seed)
    if args.scenarios:
        scenarios = [s for s in scenarios if s.name in args.scenarios]
    policies = tuple(args.policies) if args.policies else POLICY_NAMES

    matrix = run_matrix(scenarios, policies)
    rows = []
    for scenario_name, cell in matrix["scenarios"].items():
        for policy_name, row in cell["policies"].items():
            ctl = row.get("controller") or {}
            decided = ctl.get("decided_by", {})
            rows.append({
                "scenario": scenario_name,
                "policy": policy_name,
                "turnaround_s": row["mean_turnaround_seconds"],
                "under_pct": row["underprovision_rate_pct"],
                "over_pct": row["overprovision_rate_pct"],
                "sla_viol_pct": row["sla_violation_rate_pct"],
                "cost_usd": row["total_cost"],
                "decided_by": " ".join(
                    f"{k}={v}" for k, v in sorted(decided.items())
                ) or "-",
            })
    print(format_table(rows))
    if args.json_out:
        import json

        with open(args.json_out, "w") as fh:
            json.dump({"schema": 1, **matrix}, fh, indent=2, sort_keys=True)
        print(f"\nmatrix written to : {args.json_out}")
    return 0


def _cmd_metrics(args) -> int:
    import json

    from repro.obs.monitor import load_snapshot, render_prometheus

    try:
        metrics = load_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read metrics snapshot: {exc}", file=sys.stderr)
        return 2
    if args.prefix:
        metrics = {k: v for k, v in metrics.items() if k.startswith(args.prefix)}
    if args.format == "json":
        print(json.dumps({"schema": 1, "metrics": metrics}, indent=2, sort_keys=True))
    else:
        print(render_prometheus(metrics), end="")
    return 0


def _cmd_figures(args) -> int:
    from repro.experiments import (
        format_table,
        run_family_ablation,
        run_fig2,
        run_fig5,
        run_fig9,
        run_fig10,
        run_search_ablation,
        run_table4,
    )

    if args.command == "fig2":
        print(format_table(run_fig2(max_eval=args.max_eval)))
    elif args.command == "fig5":
        out = run_fig5(n_models=args.models)
        print(f"{out['n_feasible']} models on {out['workload']}: "
              f"min={out['min']:.2f}% median={out['median']:.2f}% "
              f"max={out['max']:.2f}% spread={out['spread_ratio']:.1f}x")
    elif args.command == "fig9":
        from repro.core import FrameworkSettings

        result = run_fig9(
            configurations=args.configs,
            settings=FrameworkSettings.reduced(max_iters=args.max_iters),
            include_brute_force=not args.no_brute_force,
            max_eval=args.max_eval,
            verbose=True,
        )
        print(format_table(result.rows + [result.average_row()]))
        if args.table4:
            print("\nTable IV:")
            print(format_table(run_table4(result)))
    elif args.command == "fig10":
        rows = run_fig10(max_eval=args.max_eval)
        print(format_table(rows))
    elif args.command == "ablation":
        if args.families is not None:
            families = tuple(args.families) or ("lstm", "gru", "gbr", "svr")
            print(format_table(
                run_family_ablation(families=families, max_eval=args.max_eval)
            ))
        else:
            print(format_table(run_search_ablation(max_eval=args.max_eval)))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    np.set_printoptions(precision=3, suppress=True)

    from repro import obs

    try:
        obs.configure_logging(args.log_level, json_mode=args.log_json)
    except ValueError as exc:
        parser.error(str(exc))
    trace_sink = None
    if args.trace_out:
        try:
            trace_sink = obs.add_sink(obs.JsonlSink(args.trace_out))
        except OSError as exc:
            parser.error(f"cannot open --trace-out file: {exc}")
        logger.info("writing telemetry trace to %s", args.trace_out)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "families":
            return _cmd_families()
        if args.command == "fit":
            return _cmd_fit(args)
        if args.command == "predict":
            return _cmd_predict(args)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "stream":
            return _cmd_stream(args)
        if args.command == "autoscale":
            return _cmd_autoscale(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        return _cmd_figures(args)
    finally:
        if trace_sink is not None:
            obs.remove_sink(trace_sink, close=True)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
