"""Trial-evaluation stage: Fig. 6 steps 1–2 for any model family.

One trial = build a candidate model for a suggested config, train it on
the windowed training split, and score it on the cross-validation split
(MAPE in raw JAR units).  The evaluator is family-agnostic: everything
model-specific is behind the :class:`~repro.models.base.ModelFamily`
hooks (``build``/``train``), while the resilience semantics live here,
identically for every family —

* feasibility guards (enough training windows, non-empty validation);
* retry-with-reseed and epoch/patience backoff on divergence
  (:class:`~repro.resilience.retry.RetryPolicy`);
* per-trial deadlines (``trial_timeout`` infeasibility, not a stall);
* infeasibility metadata the quarantine and telemetry consume.

For the default ``lstm`` family this stage is operation-for-operation
identical to the pre-refactor ``LoadDynamics._train_and_validate``, so
seeded fits stay bit-for-bit reproducible (see
``tests/test_equivalence.py``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.cache import WindowCache
from repro.core.constants import INFEASIBLE_PENALTY
from repro.core.scaling import MinMaxScaler
from repro.metrics import mape
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger
from repro.resilience.retry import (
    DeadlineCallback,
    EpochCounter,
    RetryPolicy,
    TrialTimeout,
)

logger = get_logger("core.evaluation")

__all__ = ["TrialEvaluator"]


class TrialEvaluator:
    """Family-agnostic train+validate objective for one search.

    Instances are picklable (family objects and settings are plain
    data), so the parallel search driver can ship the evaluator to
    worker processes.
    """

    def __init__(self, family, settings):
        self.family = family
        self.settings = settings

    # ------------------------------------------------------------------
    def evaluate(
        self,
        scaled: np.ndarray,
        raw: np.ndarray,
        scaler: MinMaxScaler,
        config: dict,
        i_train_end: int,
        i_val_end: int,
        window_cache: WindowCache | None = None,
        target_channel: int = 0,
    ) -> tuple[float, object | None, dict]:
        """Evaluate one hyperparameter set.

        Returns ``(validation_mape, model, metadata)``; the metadata
        dict records training wall-clock, epochs run, and the
        early-stop flag (or the infeasibility reason) and ends up on
        the trial's :class:`~repro.bayesopt.optimizer.TrialRecord`.
        ``model`` is ``None`` for infeasible trials.

        A 2-D ``(N, D)`` scaled series trains on (N, n, D) window
        tensors predicting ``target_channel``; validation MAPE is then
        computed in the target channel's raw units.
        """
        cfg = self.settings
        n = int(config["history_len"])
        n_channels = int(scaled.shape[1]) if scaled.ndim == 2 else 1

        def infeasible(reason: str, **extra) -> tuple[float, None, dict]:
            meta = {"infeasible": True, "reason": reason}
            meta.update(extra)
            return INFEASIBLE_PENALTY, None, meta

        # Feasibility: the training split must yield enough windows.
        if i_train_end - n < cfg.min_train_windows:
            return infeasible("too_few_train_windows")
        if window_cache is None:
            window_cache = WindowCache(
                scaled, i_train_end, i_val_end, cfg.max_train_windows,
                target_channel=target_channel,
            )
        X_train, y_train, X_val, y_val_scaled = window_cache.get(n)
        if X_val.shape[0] < 1:
            return infeasible("empty_validation_window")

        # A diverged training is retried with a fresh weight seed and
        # backed-off epochs/patience (bounded); a timed-out one is not —
        # retrying a slow config would just burn the budget twice.
        policy = RetryPolicy(max_retries=cfg.max_retries, backoff=cfg.retry_backoff)
        last_failure: dict = {}
        t_train = time.perf_counter()
        for attempt in range(policy.attempts):
            # Univariate fits keep the original three-argument call, so
            # pre-multivariate custom families stay drop-in compatible.
            if n_channels == 1:
                model = self.family.build(
                    config, cfg, policy.seed_for(cfg.seed, attempt)
                )
            else:
                model = self.family.build(
                    config, cfg, policy.seed_for(cfg.seed, attempt),
                    n_channels=n_channels, target_channel=target_channel,
                )
            epoch_counter = EpochCounter()
            callbacks: list = [epoch_counter]
            if cfg.trial_timeout_s is not None:
                callbacks.append(DeadlineCallback(cfg.trial_timeout_s))
            try:
                history = self.family.train(
                    model,
                    X_train,
                    y_train,
                    X_val,
                    y_val_scaled,
                    config,
                    cfg,
                    epochs=policy.epochs_for(cfg.epochs, attempt),
                    patience=policy.patience_for(cfg.patience, attempt),
                    callbacks=callbacks,
                )
            except TrialTimeout as exc:
                return infeasible(
                    "trial_timeout",
                    failing_epoch=exc.epoch,
                    elapsed_s=exc.elapsed_s,
                    attempts=attempt + 1,
                )
            except (FloatingPointError, OverflowError, np.linalg.LinAlgError) as exc:
                last_failure = {
                    "failing_epoch": epoch_counter.completed,
                    "error": type(exc).__name__,
                }
                self._note_retry(config, attempt, policy, last_failure)
                continue
            if history is not None:
                bad_epochs = np.flatnonzero(~np.isfinite(history.train_loss))
                if bad_epochs.size:
                    last_failure = {
                        "failing_epoch": int(bad_epochs[0]),
                        "error": "nonfinite_train_loss",
                    }
                    self._note_retry(config, attempt, policy, last_failure)
                    continue
            break  # trained cleanly
        else:
            return infeasible(
                "training_diverged", attempts=policy.attempts, **last_failure
            )
        meta = {
            "train_seconds": time.perf_counter() - t_train,
            "epochs_run": history.epochs_run if history is not None else 0,
            "stopped_early": history.stopped_early if history is not None else False,
            "best_epoch": history.best_epoch if history is not None else -1,
            "n_train_windows": int(len(y_train)),
            "attempts": attempt + 1,
        }

        # Validation error in *raw* JAR units (MAPE is scale-sensitive).
        # Per-channel scalers invert through the target channel's scalar
        # map; a scalar scaler is its own channel-0 view (bit-identical).
        out_scaler = (
            scaler if scaler.n_channels_ is None
            else scaler.channel(target_channel)
        )
        pred_scaled = model.predict(X_val)
        pred = np.maximum(out_scaler.inverse_transform(pred_scaled), 0.0)
        actual = out_scaler.inverse_transform(y_val_scaled)
        try:
            value = mape(pred, actual)
        except ValueError:
            return infeasible("validation_mape_undefined")
        if not np.isfinite(value):
            return infeasible("validation_mape_nonfinite")
        return value, model, meta

    # ------------------------------------------------------------------
    def _note_retry(
        self, config: dict, attempt: int, policy: RetryPolicy, failure: dict
    ) -> None:
        """Telemetry for one failed training attempt (before any retry)."""
        will_retry = attempt < policy.max_retries
        logger.log(
            20 if will_retry else 10,  # INFO while retrying, DEBUG when giving up
            "training attempt %d/%d failed (%s at epoch %s) for %s%s",
            attempt + 1,
            policy.attempts,
            failure.get("error"),
            failure.get("failing_epoch"),
            config,
            "; retrying with reseed" if will_retry else "",
        )
        if will_retry:
            _metrics.counter("trial.retries").inc()
            if _events.enabled():
                _events.emit(
                    "trial.retry", attempt=attempt + 1, config=dict(config), **failure
                )
