"""The LoadDynamics workflow (paper Fig. 6), composed from stages.

Phases, mapped to the figure's numbered steps and to the module that
now owns each stage:

1. **Train** — build a candidate model for the suggested hyperparameter
   set and fit it on the training split (first 60% of JARs, min-max
   scaled).  Stage: :class:`~repro.core.evaluation.TrialEvaluator`,
   over the data prepared by :func:`~repro.core.data.prepare_data`.
2. **Validate** — predict every cross-validation JAR (next 20%) and
   compute the MAPE.  Stage: also :class:`TrialEvaluator` (one trial =
   train + validate).
3. **Optimize** — feed (hyperparameters, error) to Bayesian
   Optimization, which proposes the next set from the family's search
   space.  Stage: :class:`~repro.core.driver.SearchDriver`, which also
   owns journaling, quarantine, and resume.
4. **Select** — after ``maxIters`` iterations keep the lowest-error
   model as the workload's predictor ``f``.  Stage: this module's
   :meth:`LoadDynamics.fit` (the best-trial bookkeeping and the
   graceful-degradation fallback).
5. **Predict** — the returned :class:`LoadDynamicsPredictor` serves
   future JARs.

What a trial trains is pluggable: ``family`` selects a
:class:`~repro.models.base.ModelFamily` from the :mod:`repro.models`
registry (``"lstm"`` — the paper default — ``"gru"``, ``"gbr"``,
``"svr"``, ...).  The alternative optimizers discussed in Section III-A
(random and grid search) can likewise be swapped in via
``optimizer_cls`` for the ablation bench — everything else in the
workflow is shared.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bayesopt.optimizer import BayesianOptimizer, TrialRecord
from repro.bayesopt.space import SearchSpace
from repro.core.cache import TrialMemo
from repro.core.config import FrameworkSettings
from repro.core.data import prepare_data
from repro.core.driver import SearchDriver
from repro.core.evaluation import TrialEvaluator
from repro.core.predictor import LoadDynamicsPredictor, NaiveLastValueModel
from repro.core.scaling import MinMaxScaler
from repro.metrics import mape
from repro.models import get_family
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger
from repro.obs.tracing import span
from repro.resilience import faults as _faults
from repro.resilience.journal import TrialJournal
from repro.resilience.retry import Quarantine

logger = get_logger("core.framework")

__all__ = ["LoadDynamics", "FitReport"]


def _evaluate_trial(
    evaluator: TrialEvaluator,
    scaled: np.ndarray,
    raw: np.ndarray,
    scaler: MinMaxScaler,
    i_train_end: int,
    i_val_end: int,
    target_channel: int,
    config: dict,
):
    """Picklable trial evaluator for the parallel search driver.

    Module-level (and with ``config`` last) so ``functools.partial``
    over the fixed arguments produces the single-argument callable
    :func:`repro.parallel.parallel_map` expects.  Runs in a worker
    process: no shared window cache (each worker builds its own
    windows), and the returned model travels back via pickle with its
    inference scratch dropped.

    ``scaled`` / ``raw`` may arrive as :class:`repro.parallel.SharedArray`
    handles — zero-copy views of the parent's shared-memory pages —
    instead of pickled copies; :func:`repro.parallel.as_ndarray`
    normalizes both cases.
    """
    from repro.parallel import as_ndarray

    return evaluator.evaluate(
        as_ndarray(scaled), as_ndarray(raw), scaler, config, i_train_end, i_val_end,
        target_channel=target_channel,
    )


@dataclass
class FitReport:
    """Everything the fit produced besides the predictor itself."""

    #: Hyperparameter object of the winning trial —
    #: :class:`~repro.core.config.LSTMHyperparameters` for the recurrent
    #: families, :class:`~repro.core.config.GenericHyperparameters`
    #: otherwise.
    best_hyperparameters: object
    best_validation_mape: float
    trials: list[TrialRecord] = field(default_factory=list)
    total_seconds: float = 0.0
    n_infeasible: int = 0
    #: True when the fit could not produce a trained model and fell back
    #: to the naive last-value predictor (``degraded_reason`` says why).
    degraded: bool = False
    degraded_reason: str | None = None
    #: Trials replayed from a journal rather than trained in this run.
    n_resumed: int = 0
    #: Configs banned by the quarantine during this run.
    n_quarantined: int = 0
    #: Aggregate telemetry of the whole search (wall-clock breakdown,
    #: epoch counts, early-stop counts); see :meth:`build_telemetry`.
    telemetry: dict = field(default_factory=dict)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def trial_values(self) -> np.ndarray:
        """Validation MAPE per BO iteration (for convergence plots)."""
        return np.array([t.value for t in self.trials])

    def build_telemetry(self) -> dict:
        """Aggregate the per-trial metadata into one summary dict.

        Every trial carries its training wall-clock, epochs run, and
        early-stop flag (plus surrogate/acquisition timings for GP
        iterations), so outliers in :meth:`trial_values` can be
        explained — e.g. a high-MAPE trial that also stopped after three
        epochs simply never converged.
        """
        feasible = [t for t in self.trials if not t.metadata.get("infeasible", False)]
        out = {
            "n_trials": self.n_trials,
            "n_infeasible": self.n_infeasible,
            "total_seconds": self.total_seconds,
            "train_seconds_total": sum(
                t.metadata.get("train_seconds", 0.0) for t in self.trials
            ),
            "epochs_total": int(
                sum(t.metadata.get("epochs_run", 0) for t in self.trials)
            ),
            "n_early_stopped": sum(
                1 for t in self.trials if t.metadata.get("stopped_early", False)
            ),
            "surrogate_fit_seconds_total": sum(
                t.metadata.get("surrogate_fit_s", 0.0) for t in self.trials
            ),
            "acq_opt_seconds_total": sum(
                t.metadata.get("acq_opt_s", 0.0) for t in self.trials
            ),
            "n_retries": int(
                sum(max(0, t.metadata.get("attempts", 1) - 1) for t in self.trials)
            ),
            "n_degraded_suggests": sum(
                1 for t in self.trials if t.metadata.get("degraded_suggest", False)
            ),
            "n_resumed": self.n_resumed,
            "n_quarantined": self.n_quarantined,
            "degraded": self.degraded,
        }
        if feasible:
            out["mean_trial_train_seconds"] = out["train_seconds_total"] / len(feasible)
        return out


class LoadDynamics:
    """Self-optimized workload predictor factory.

    Parameters
    ----------
    space:
        Hyperparameter search space; defaults to the selected family's
        space for ``trace_name`` under the given ``budget`` (Table III
        for the recurrent families).
    settings:
        Workflow knobs (``maxIters``, split fractions, training loop).
    trace_name / budget:
        Convenience route to the family's
        :meth:`~repro.models.base.ModelFamily.search_space`.
    optimizer_cls:
        ``BayesianOptimizer`` (paper) or a drop-in like ``RandomSearch``/
        ``GridSearch`` for the Section III-A comparison.
    family:
        Registered :mod:`repro.models` family name (or instance) whose
        models the trials train; defaults to the paper's ``"lstm"``.
    """

    def __init__(
        self,
        space: SearchSpace | None = None,
        settings: FrameworkSettings | None = None,
        trace_name: str = "default",
        budget: str = "paper",
        optimizer_cls=BayesianOptimizer,
        optimizer_kwargs: dict | None = None,
        family: str = "lstm",
    ):
        self.family = get_family(family)
        self.space = (
            space
            if space is not None
            else self.family.search_space(trace_name, budget)
        )
        self.settings = settings if settings is not None else FrameworkSettings()
        self.optimizer_cls = optimizer_cls
        self.optimizer_kwargs = dict(optimizer_kwargs or {})

    # ------------------------------------------------------------------
    def fit(
        self,
        series: np.ndarray,
        *,
        journal: str | Path | TrialJournal | None = None,
        resume: bool = False,
        n_workers: int | None = None,
        target_channel: int = 0,
    ) -> tuple[LoadDynamicsPredictor, FitReport]:
        """Run the full Fig. 6 workflow on a JAR series.

        Returns the selected predictor and a :class:`FitReport` with the
        per-iteration trial history.

        Parameters
        ----------
        journal:
            Path (or :class:`~repro.resilience.TrialJournal`) of a
            crash-safe JSONL trial journal.  Every completed trial is
            fsynced to it before the next starts, so a crash loses at
            most the in-flight trial.
        resume:
            Replay the journal's completed trials into the optimizer
            (via ``tell``), restore its search state, and continue the
            run from where it stopped.  The resumed run is bit-for-bit
            identical to an uninterrupted one with the same seed.
        n_workers:
            ``None`` or 1 keeps the classic serial loop (bit-for-bit
            reproducible for a fixed seed).  Larger values evaluate
            candidate batches (``suggest_batch``) concurrently in
            worker processes — journaling, quarantine and resume still
            apply per completed trial, but the trial *ordering* within
            a batch follows suggestion order rather than completion
            order.  Capped by the ``REPRO_MAX_WORKERS`` environment
            variable.

        When every trial is infeasible (or the journal's best config can
        no longer be retrained), the fit *degrades* instead of raising:
        it returns a naive last-value predictor and a report flagged
        ``degraded=True``.

        A 2-D ``(N, D)`` series runs the identical workflow per-channel
        scaled, training on (N, n, D) window tensors that predict
        ``target_channel`` (ignored for 1-D input).
        """
        t_start = time.perf_counter()
        cfg = self.settings
        data = prepare_data(series, cfg, target_channel=target_channel)
        s, scaled, scaler = data.raw, data.scaled, data.scaler
        i_train_end, i_val_end = data.i_train_end, data.i_val_end
        target_channel = data.target_channel  # normalized (0 for 1-D input)

        best: dict = {"mape": np.inf, "model": None, "config": None}
        n_infeasible = 0
        # Cross-trial caches (Section "perf layer"): windowed data sets
        # shared across trials with the same history length, and
        # duplicate-config memoization of recorded objectives.
        wcache = data.window_cache
        memo = TrialMemo(family=self.family.name)
        evaluator = TrialEvaluator(self.family, cfg)

        def settle(config: dict, value, model, meta: dict) -> tuple[float, dict]:
            """Fold one evaluated trial into the fit-level bookkeeping."""
            nonlocal n_infeasible
            if meta.get("cache_hit"):
                if meta.get("infeasible"):
                    n_infeasible += 1
                return value, meta
            memo.put(config, value, meta)
            if model is None:
                n_infeasible += 1
            elif value < best["mape"]:
                best.update(mape=value, model=model, config=config)
            return value, meta

        def objective(config: dict) -> tuple[float, dict]:
            injector = _faults.active()
            if injector is not None:
                injector.maybe_fire("objective")
            hit = memo.get(config)
            if hit is not None:
                value, meta = hit
                return settle(config, value, None, {**meta, "cache_hit": True})
            value, model, meta = evaluator.evaluate(
                scaled, s, scaler, config, i_train_end, i_val_end,
                window_cache=wcache, target_channel=target_channel,
            )
            return settle(config, value, model, meta)

        journal_obj = TrialJournal(journal) if isinstance(journal, (str, Path)) else journal
        if resume and journal_obj is None:
            raise ValueError("resume=True requires a journal path")
        header = {
            "optimizer": self.optimizer_cls.__name__,
            "seed": cfg.seed,
            "max_iters": cfg.max_iters,
            "family": self.family.name,
            "space": [repr(p) for p in self.space.params],
        }

        with span(
            "loaddynamics.fit", n_intervals=data.n_intervals, max_iters=cfg.max_iters
        ) as root:
            optimizer = self._make_optimizer()
            quarantine = (
                Quarantine(cfg.quarantine_after) if cfg.quarantine_after else None
            )
            if quarantine is not None and hasattr(optimizer, "set_excluded"):
                optimizer.set_excluded(quarantine.is_quarantined)
            driver = SearchDriver(optimizer, journal_obj, quarantine)

            n_replayed = 0
            if resume:
                n_replayed, n_replayed_infeasible = driver.replay(header, best, memo)
                n_infeasible += n_replayed_infeasible
            try:
                if journal_obj is not None:
                    if resume:
                        journal_obj.reopen()
                    else:
                        journal_obj.start(header)
                from repro.parallel import effective_workers

                workers = 1 if n_workers is None else effective_workers(n_workers)
                if n_workers is not None:
                    # Record the clamp even when it forces the serial branch
                    # below, where parallel_map (which normally sets these)
                    # is never reached.
                    _metrics.gauge("parallel.workers_requested").set(
                        float(n_workers)
                    )
                    _metrics.gauge("parallel.workers_effective").set(
                        float(workers)
                    )
                if workers <= 1:
                    driver.run(objective, cfg.max_iters - n_replayed)
                else:
                    from repro.parallel import share_arrays

                    # The scaled and raw traces are identical for every
                    # trial: publish them once in shared memory so each
                    # batch task pickles a page handle, not the data.
                    with share_arrays(scaled, s) as (scaled_h, s_h):
                        raw_eval = functools.partial(
                            _evaluate_trial,
                            evaluator,
                            scaled_h,
                            s_h,
                            scaler,
                            i_train_end,
                            i_val_end,
                            target_channel,
                        )
                        driver.run_parallel(
                            raw_eval,
                            settle,
                            memo,
                            cfg.max_iters - n_replayed,
                            workers,
                        )
            finally:
                if journal_obj is not None:
                    journal_obj.close()
            root.set("n_trials", len(optimizer.history))
            root.set("n_infeasible", n_infeasible)
            if best["model"] is not None:
                root.set("best_validation_mape", float(best["mape"]))

        degraded_reason = None
        if best["model"] is None and best["config"] is not None:
            # The best trial is known only from the replayed journal; one
            # deterministic retraining (same config, same seed, same data)
            # reconstructs its model.
            logger.info("retraining journal-best config %s", best["config"])
            _value, model, _meta = evaluator.evaluate(
                scaled, s, scaler, best["config"], i_train_end, i_val_end,
                window_cache=wcache, target_channel=target_channel,
            )
            if model is not None:
                best["model"] = model
            else:
                degraded_reason = "best_retrain_failed"

        n_quarantined = len(quarantine) if quarantine is not None else 0
        if best["model"] is None:
            degraded_reason = degraded_reason or "no_feasible_trials"
            return self._degraded_result(
                s,
                scaler,
                optimizer,
                n_infeasible,
                n_replayed,
                n_quarantined,
                degraded_reason,
                t_start,
                root,
                i_train_end,
                i_val_end,
                target_channel,
            )

        hp = self.family.hyperparameters(best["config"])
        # Univariate fits keep the original four-argument call, so
        # custom families that override ``wrap_predictor`` with the
        # pre-multivariate signature keep working.
        if data.n_channels > 1:
            predictor = self.family.wrap_predictor(
                best["model"], scaler, best["config"], best["mape"],
                target_channel=target_channel,
            )
        else:
            predictor = self.family.wrap_predictor(
                best["model"], scaler, best["config"], best["mape"]
            )
        report = FitReport(
            best_hyperparameters=hp,
            best_validation_mape=best["mape"],
            trials=list(optimizer.history),
            total_seconds=time.perf_counter() - t_start,
            n_infeasible=n_infeasible,
            n_resumed=n_replayed,
            n_quarantined=n_quarantined,
        )
        report.telemetry = report.build_telemetry()
        report.telemetry["fit_span_seconds"] = root.duration_s
        logger.info(
            "fit done: %d trials (%d infeasible), best MAPE %.2f%% in %.1fs",
            report.n_trials, n_infeasible, best["mape"], report.total_seconds,
        )
        return predictor, report

    # ------------------------------------------------------------------
    def _degraded_result(
        self,
        s: np.ndarray,
        scaler: MinMaxScaler,
        optimizer,
        n_infeasible: int,
        n_replayed: int,
        n_quarantined: int,
        reason: str,
        t_start: float,
        root,
        i_train_end: int,
        i_val_end: int,
        target_channel: int = 0,
    ) -> tuple[LoadDynamicsPredictor, FitReport]:
        """Graceful degradation: hand back a naive last-value predictor.

        The paper's workflow assumes step 4 always has a best model to
        select; on a production cluster "every trial failed" must still
        yield *some* predictor, so the degraded fit returns persistence
        (last value) with the degradation flagged on the report.  The
        predictor is tagged with the ``naive`` family, which makes it
        persistable like any other (its save format is a marker file).
        """
        tgt = s[:, target_channel] if s.ndim == 2 else s
        val_pred = tgt[i_train_end - 1 : i_val_end - 1]
        val_actual = tgt[i_train_end:i_val_end]
        try:
            naive_mape = float(mape(val_pred, val_actual))
        except ValueError:
            naive_mape = float("inf")
        naive = get_family("naive")
        hp = naive.hyperparameters({})
        predictor = LoadDynamicsPredictor(
            model=NaiveLastValueModel(target_channel=target_channel),
            scaler=scaler,
            hyperparameters=hp,
            validation_mape=naive_mape,
            family=naive.name,
            target_channel=target_channel,
        )
        report = FitReport(
            best_hyperparameters=hp,
            best_validation_mape=naive_mape,
            trials=list(optimizer.history),
            total_seconds=time.perf_counter() - t_start,
            n_infeasible=n_infeasible,
            degraded=True,
            degraded_reason=reason,
            n_resumed=n_replayed,
            n_quarantined=n_quarantined,
        )
        report.telemetry = report.build_telemetry()
        report.telemetry["fit_span_seconds"] = root.duration_s
        _metrics.counter("fit.degraded").inc()
        logger.warning(
            "fit degraded (%s) after %d trials (%d infeasible); returning "
            "naive last-value predictor (validation MAPE %.2f%%)",
            reason, report.n_trials, n_infeasible, naive_mape,
        )
        if _events.enabled():
            _events.emit(
                "fit.degraded",
                reason=reason,
                n_trials=report.n_trials,
                n_infeasible=n_infeasible,
            )
        return predictor, report

    # ------------------------------------------------------------------
    def _make_optimizer(self):
        kwargs = dict(self.optimizer_kwargs)
        if self.optimizer_cls is BayesianOptimizer:
            kwargs.setdefault("n_initial", self.settings.n_initial)
            kwargs.setdefault("acquisition", self.settings.acquisition)
            kwargs.setdefault("seed", self.settings.seed)
            kwargs.setdefault("incremental", self.settings.incremental_surrogate)
            kwargs.setdefault("reopt_every", self.settings.surrogate_reopt_every)
        elif "seed" not in kwargs and hasattr(self.optimizer_cls, "__init__"):
            # Random search takes a seed; grid search takes none of ours.
            try:
                return self.optimizer_cls(self.space, seed=self.settings.seed, **kwargs)
            except TypeError:
                return self.optimizer_cls(self.space, **kwargs)
        return self.optimizer_cls(self.space, **kwargs)

    # ------------------------------------------------------------------
    def evaluate(
        self, predictor: LoadDynamicsPredictor, series: np.ndarray
    ) -> float:
        """Test MAPE on the last ``1 - train - val`` fraction of ``series``
        (the paper's accuracy number, Section IV-B).  Multivariate
        predictors are scored on their target channel."""
        s = np.asarray(series, dtype=np.float64)
        cfg = self.settings
        if s.ndim == 2 and getattr(predictor, "n_channels", 1) > 1:
            i_test = int(round((cfg.train_frac + cfg.val_frac) * s.shape[0]))
            preds = predictor.predict_series(s, i_test)
            return mape(preds, s[i_test:, predictor.target_channel])
        s = s.ravel()
        i_test = int(round((cfg.train_frac + cfg.val_frac) * s.size))
        preds = predictor.predict_series(s, i_test)
        return mape(preds, s[i_test:])
