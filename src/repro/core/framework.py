"""The LoadDynamics workflow (paper Fig. 6).

Phases, mapped to the figure's numbered steps:

1. **Train** — configure an LSTM with the current hyperparameter set and
   train it on the training split (first 60% of JARs, min-max scaled).
2. **Validate** — predict every cross-validation JAR (next 20%) and
   compute the MAPE.
3. **Optimize** — feed (hyperparameters, error) to Bayesian Optimization,
   which proposes the next set from the Table III space.
4. **Select** — after ``maxIters`` iterations keep the lowest-error model
   as the workload's predictor ``f``.
5. **Predict** — the returned :class:`LoadDynamicsPredictor` serves
   future JARs.

The alternative optimizers discussed in Section III-A (random and grid
search) can be swapped in via ``optimizer_cls`` for the ablation bench —
everything else in the workflow is shared.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bayesopt.optimizer import BayesianOptimizer, TrialRecord
from repro.bayesopt.space import SearchSpace
from repro.core.config import FrameworkSettings, LSTMHyperparameters, search_space_for
from repro.core.predictor import LoadDynamicsPredictor
from repro.core.scaling import MinMaxScaler
from repro.core.windowing import make_windows, windows_for_range
from repro.metrics import mape
from repro.nn.network import LSTMRegressor
from repro.obs.logging import get_logger
from repro.obs.tracing import span

logger = get_logger("core.framework")

__all__ = ["LoadDynamics", "FitReport"]

#: Objective value for hyperparameter sets that cannot be trained
#: (history longer than the training split, degenerate windows, ...).
_INFEASIBLE_PENALTY = 1e6


@dataclass
class FitReport:
    """Everything the fit produced besides the predictor itself."""

    best_hyperparameters: LSTMHyperparameters
    best_validation_mape: float
    trials: list[TrialRecord] = field(default_factory=list)
    total_seconds: float = 0.0
    n_infeasible: int = 0
    #: Aggregate telemetry of the whole search (wall-clock breakdown,
    #: epoch counts, early-stop counts); see :meth:`build_telemetry`.
    telemetry: dict = field(default_factory=dict)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def trial_values(self) -> np.ndarray:
        """Validation MAPE per BO iteration (for convergence plots)."""
        return np.array([t.value for t in self.trials])

    def build_telemetry(self) -> dict:
        """Aggregate the per-trial metadata into one summary dict.

        Every trial carries its training wall-clock, epochs run, and
        early-stop flag (plus surrogate/acquisition timings for GP
        iterations), so outliers in :meth:`trial_values` can be
        explained — e.g. a high-MAPE trial that also stopped after three
        epochs simply never converged.
        """
        feasible = [t for t in self.trials if not t.metadata.get("infeasible", False)]
        out = {
            "n_trials": self.n_trials,
            "n_infeasible": self.n_infeasible,
            "total_seconds": self.total_seconds,
            "train_seconds_total": sum(
                t.metadata.get("train_seconds", 0.0) for t in self.trials
            ),
            "epochs_total": int(
                sum(t.metadata.get("epochs_run", 0) for t in self.trials)
            ),
            "n_early_stopped": sum(
                1 for t in self.trials if t.metadata.get("stopped_early", False)
            ),
            "surrogate_fit_seconds_total": sum(
                t.metadata.get("surrogate_fit_s", 0.0) for t in self.trials
            ),
            "acq_opt_seconds_total": sum(
                t.metadata.get("acq_opt_s", 0.0) for t in self.trials
            ),
        }
        if feasible:
            out["mean_trial_train_seconds"] = out["train_seconds_total"] / len(feasible)
        return out


class LoadDynamics:
    """Self-optimized LSTM workload predictor factory.

    Parameters
    ----------
    space:
        Hyperparameter search space; defaults to the Table III space for
        ``trace_name`` under the given ``budget``.
    settings:
        Workflow knobs (``maxIters``, split fractions, training loop).
    trace_name / budget:
        Convenience route to :func:`repro.core.config.search_space_for`.
    optimizer_cls:
        ``BayesianOptimizer`` (paper) or a drop-in like ``RandomSearch``/
        ``GridSearch`` for the Section III-A comparison.
    """

    def __init__(
        self,
        space: SearchSpace | None = None,
        settings: FrameworkSettings | None = None,
        trace_name: str = "default",
        budget: str = "paper",
        optimizer_cls=BayesianOptimizer,
        optimizer_kwargs: dict | None = None,
    ):
        self.space = space if space is not None else search_space_for(trace_name, budget)
        self.settings = settings if settings is not None else FrameworkSettings()
        self.optimizer_cls = optimizer_cls
        self.optimizer_kwargs = dict(optimizer_kwargs or {})

    # ------------------------------------------------------------------
    def fit(self, series: np.ndarray) -> tuple[LoadDynamicsPredictor, FitReport]:
        """Run the full Fig. 6 workflow on a JAR series.

        Returns the selected predictor and a :class:`FitReport` with the
        per-iteration trial history.
        """
        t_start = time.perf_counter()
        s = np.asarray(series, dtype=np.float64).ravel()
        cfg = self.settings
        n_total = s.size
        i_train_end = int(round(cfg.train_frac * n_total))
        i_val_end = int(round((cfg.train_frac + cfg.val_frac) * n_total))
        if i_train_end < 4 or i_val_end - i_train_end < 2:
            raise ValueError(
                f"series of length {n_total} too short for the "
                f"{cfg.train_frac:.0%}/{cfg.val_frac:.0%} split"
            )

        # Scaler fit on the training split ONLY (leakage guard).
        scaler = MinMaxScaler().fit(s[:i_train_end])
        scaled = scaler.transform(s)

        best: dict = {"mape": np.inf, "model": None, "config": None}
        n_infeasible = 0

        def objective(config: dict) -> tuple[float, dict]:
            nonlocal n_infeasible
            value, model, meta = self._train_and_validate(
                scaled, s, scaler, config, i_train_end, i_val_end
            )
            if model is None:
                n_infeasible += 1
            elif value < best["mape"]:
                best.update(mape=value, model=model, config=config)
            return value, meta

        with span(
            "loaddynamics.fit", n_intervals=int(n_total), max_iters=cfg.max_iters
        ) as root:
            optimizer = self._make_optimizer()
            optimizer.run(objective, cfg.max_iters)
            root.set("n_trials", len(optimizer.history))
            root.set("n_infeasible", n_infeasible)
            if best["model"] is not None:
                root.set("best_validation_mape", float(best["mape"]))

        if best["model"] is None:
            raise RuntimeError(
                "no feasible hyperparameter set found; widen the search space "
                "or provide a longer series"
            )
        hp = LSTMHyperparameters.from_dict(best["config"])
        predictor = LoadDynamicsPredictor(
            model=best["model"],
            scaler=scaler,
            hyperparameters=hp,
            validation_mape=best["mape"],
        )
        report = FitReport(
            best_hyperparameters=hp,
            best_validation_mape=best["mape"],
            trials=list(optimizer.history),
            total_seconds=time.perf_counter() - t_start,
            n_infeasible=n_infeasible,
        )
        report.telemetry = report.build_telemetry()
        report.telemetry["fit_span_seconds"] = root.duration_s
        logger.info(
            "fit done: %d trials (%d infeasible), best MAPE %.2f%% in %.1fs",
            report.n_trials, n_infeasible, best["mape"], report.total_seconds,
        )
        return predictor, report

    # ------------------------------------------------------------------
    def _make_optimizer(self):
        kwargs = dict(self.optimizer_kwargs)
        if self.optimizer_cls is BayesianOptimizer:
            kwargs.setdefault("n_initial", self.settings.n_initial)
            kwargs.setdefault("acquisition", self.settings.acquisition)
            kwargs.setdefault("seed", self.settings.seed)
        elif "seed" not in kwargs and hasattr(self.optimizer_cls, "__init__"):
            # Random search takes a seed; grid search takes none of ours.
            try:
                return self.optimizer_cls(self.space, seed=self.settings.seed, **kwargs)
            except TypeError:
                return self.optimizer_cls(self.space, **kwargs)
        return self.optimizer_cls(self.space, **kwargs)

    def _train_and_validate(
        self,
        scaled: np.ndarray,
        raw: np.ndarray,
        scaler: MinMaxScaler,
        config: dict,
        i_train_end: int,
        i_val_end: int,
    ) -> tuple[float, LSTMRegressor | None, dict]:
        """Fig. 6 steps 1–2 for one hyperparameter set.

        Returns ``(validation_mape, model, metadata)``; the metadata
        dict records training wall-clock, epochs run, and the early-stop
        flag (or the infeasibility reason) and ends up on the trial's
        :class:`~repro.bayesopt.optimizer.TrialRecord`.
        """
        cfg = self.settings
        n = int(config["history_len"])

        def infeasible(reason: str) -> tuple[float, None, dict]:
            return _INFEASIBLE_PENALTY, None, {"infeasible": True, "reason": reason}

        # Feasibility: the training split must yield enough windows.
        if i_train_end - n < cfg.min_train_windows:
            return infeasible("too_few_train_windows")
        X_train, y_train = make_windows(scaled[:i_train_end], n)
        if cfg.max_train_windows is not None and len(y_train) > cfg.max_train_windows:
            X_train = X_train[-cfg.max_train_windows :]
            y_train = y_train[-cfg.max_train_windows :]
        X_val, y_val_scaled = windows_for_range(scaled, n, i_train_end, i_val_end)
        if X_val.shape[0] < 1:
            return infeasible("empty_validation_window")

        model = LSTMRegressor(
            hidden_size=int(config["cell_size"]),
            num_layers=int(config["num_layers"]),
            seed=cfg.seed,
        )
        t_train = time.perf_counter()
        try:
            history = model.fit(
                X_train,
                y_train,
                epochs=cfg.epochs,
                batch_size=int(config["batch_size"]),
                lr=cfg.lr,
                # Extended spaces (Section V) tune these; plain Table III
                # spaces fall back to the fixed settings.
                optimizer=str(config.get("optimizer", cfg.optimizer)),
                loss=str(config.get("loss", cfg.loss)),
                clip_norm=cfg.clip_norm,
                validation=(X_val, y_val_scaled),
                patience=cfg.patience,
            )
        except (FloatingPointError, np.linalg.LinAlgError):
            return infeasible("training_diverged")
        meta = {
            "train_seconds": time.perf_counter() - t_train,
            "epochs_run": history.epochs_run,
            "stopped_early": history.stopped_early,
            "best_epoch": history.best_epoch,
            "n_train_windows": int(len(y_train)),
        }

        # Validation error in *raw* JAR units (MAPE is scale-sensitive).
        pred_scaled = model.predict(X_val)
        pred = np.maximum(scaler.inverse_transform(pred_scaled), 0.0)
        actual = scaler.inverse_transform(y_val_scaled)
        try:
            value = mape(pred, actual)
        except ValueError:
            return infeasible("validation_mape_undefined")
        if not np.isfinite(value):
            return infeasible("validation_mape_nonfinite")
        return value, model, meta

    # ------------------------------------------------------------------
    def evaluate(
        self, predictor: LoadDynamicsPredictor, series: np.ndarray
    ) -> float:
        """Test MAPE on the last ``1 - train - val`` fraction of ``series``
        (the paper's accuracy number, Section IV-B)."""
        s = np.asarray(series, dtype=np.float64).ravel()
        cfg = self.settings
        i_test = int(round((cfg.train_frac + cfg.val_frac) * s.size))
        preds = predictor.predict_series(s, i_test)
        return mape(preds, s[i_test:])
