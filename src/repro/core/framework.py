"""The LoadDynamics workflow (paper Fig. 6).

Phases, mapped to the figure's numbered steps:

1. **Train** — configure an LSTM with the current hyperparameter set and
   train it on the training split (first 60% of JARs, min-max scaled).
2. **Validate** — predict every cross-validation JAR (next 20%) and
   compute the MAPE.
3. **Optimize** — feed (hyperparameters, error) to Bayesian Optimization,
   which proposes the next set from the Table III space.
4. **Select** — after ``maxIters`` iterations keep the lowest-error model
   as the workload's predictor ``f``.
5. **Predict** — the returned :class:`LoadDynamicsPredictor` serves
   future JARs.

The alternative optimizers discussed in Section III-A (random and grid
search) can be swapped in via ``optimizer_cls`` for the ablation bench —
everything else in the workflow is shared.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bayesopt.optimizer import BayesianOptimizer, TrialRecord, unpack_objective
from repro.bayesopt.space import SearchSpace
from repro.core.cache import TrialMemo, WindowCache
from repro.core.config import FrameworkSettings, LSTMHyperparameters, search_space_for
from repro.core.predictor import LoadDynamicsPredictor, NaiveLastValueModel
from repro.core.scaling import MinMaxScaler
from repro.metrics import mape
from repro.nn.network import LSTMRegressor
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger
from repro.obs.tracing import span
from repro.resilience import faults as _faults
from repro.resilience.journal import TrialJournal
from repro.resilience.retry import (
    DeadlineCallback,
    EpochCounter,
    Quarantine,
    RetryPolicy,
    TrialTimeout,
)

logger = get_logger("core.framework")

__all__ = ["LoadDynamics", "FitReport"]

#: Objective value for hyperparameter sets that cannot be trained
#: (history longer than the training split, degenerate windows, ...).
_INFEASIBLE_PENALTY = 1e6

#: Infeasibility reasons that count as *failures* for the quarantine —
#: transient/training pathologies, as opposed to deterministic
#: infeasibility (too few windows) the optimizers already steer around.
_FAILURE_REASONS = frozenset({"training_diverged", "trial_timeout"})


def _evaluate_trial(
    framework: "LoadDynamics",
    scaled: np.ndarray,
    raw: np.ndarray,
    scaler: MinMaxScaler,
    i_train_end: int,
    i_val_end: int,
    config: dict,
):
    """Picklable trial evaluator for the parallel search driver.

    Module-level (and with ``config`` last) so ``functools.partial``
    over the fixed arguments produces the single-argument callable
    :func:`repro.parallel.parallel_map` expects.  Runs in a worker
    process: no shared window cache (each worker builds its own
    windows), and the returned model travels back via pickle with its
    inference scratch dropped.
    """
    return framework._train_and_validate(
        scaled, raw, scaler, config, i_train_end, i_val_end
    )


@dataclass
class FitReport:
    """Everything the fit produced besides the predictor itself."""

    best_hyperparameters: LSTMHyperparameters
    best_validation_mape: float
    trials: list[TrialRecord] = field(default_factory=list)
    total_seconds: float = 0.0
    n_infeasible: int = 0
    #: True when the fit could not produce a trained LSTM and fell back
    #: to the naive last-value predictor (``degraded_reason`` says why).
    degraded: bool = False
    degraded_reason: str | None = None
    #: Trials replayed from a journal rather than trained in this run.
    n_resumed: int = 0
    #: Configs banned by the quarantine during this run.
    n_quarantined: int = 0
    #: Aggregate telemetry of the whole search (wall-clock breakdown,
    #: epoch counts, early-stop counts); see :meth:`build_telemetry`.
    telemetry: dict = field(default_factory=dict)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def trial_values(self) -> np.ndarray:
        """Validation MAPE per BO iteration (for convergence plots)."""
        return np.array([t.value for t in self.trials])

    def build_telemetry(self) -> dict:
        """Aggregate the per-trial metadata into one summary dict.

        Every trial carries its training wall-clock, epochs run, and
        early-stop flag (plus surrogate/acquisition timings for GP
        iterations), so outliers in :meth:`trial_values` can be
        explained — e.g. a high-MAPE trial that also stopped after three
        epochs simply never converged.
        """
        feasible = [t for t in self.trials if not t.metadata.get("infeasible", False)]
        out = {
            "n_trials": self.n_trials,
            "n_infeasible": self.n_infeasible,
            "total_seconds": self.total_seconds,
            "train_seconds_total": sum(
                t.metadata.get("train_seconds", 0.0) for t in self.trials
            ),
            "epochs_total": int(
                sum(t.metadata.get("epochs_run", 0) for t in self.trials)
            ),
            "n_early_stopped": sum(
                1 for t in self.trials if t.metadata.get("stopped_early", False)
            ),
            "surrogate_fit_seconds_total": sum(
                t.metadata.get("surrogate_fit_s", 0.0) for t in self.trials
            ),
            "acq_opt_seconds_total": sum(
                t.metadata.get("acq_opt_s", 0.0) for t in self.trials
            ),
            "n_retries": int(
                sum(max(0, t.metadata.get("attempts", 1) - 1) for t in self.trials)
            ),
            "n_degraded_suggests": sum(
                1 for t in self.trials if t.metadata.get("degraded_suggest", False)
            ),
            "n_resumed": self.n_resumed,
            "n_quarantined": self.n_quarantined,
            "degraded": self.degraded,
        }
        if feasible:
            out["mean_trial_train_seconds"] = out["train_seconds_total"] / len(feasible)
        return out


class LoadDynamics:
    """Self-optimized LSTM workload predictor factory.

    Parameters
    ----------
    space:
        Hyperparameter search space; defaults to the Table III space for
        ``trace_name`` under the given ``budget``.
    settings:
        Workflow knobs (``maxIters``, split fractions, training loop).
    trace_name / budget:
        Convenience route to :func:`repro.core.config.search_space_for`.
    optimizer_cls:
        ``BayesianOptimizer`` (paper) or a drop-in like ``RandomSearch``/
        ``GridSearch`` for the Section III-A comparison.
    """

    def __init__(
        self,
        space: SearchSpace | None = None,
        settings: FrameworkSettings | None = None,
        trace_name: str = "default",
        budget: str = "paper",
        optimizer_cls=BayesianOptimizer,
        optimizer_kwargs: dict | None = None,
    ):
        self.space = space if space is not None else search_space_for(trace_name, budget)
        self.settings = settings if settings is not None else FrameworkSettings()
        self.optimizer_cls = optimizer_cls
        self.optimizer_kwargs = dict(optimizer_kwargs or {})

    # ------------------------------------------------------------------
    def fit(
        self,
        series: np.ndarray,
        *,
        journal: str | Path | TrialJournal | None = None,
        resume: bool = False,
        n_workers: int | None = None,
    ) -> tuple[LoadDynamicsPredictor, FitReport]:
        """Run the full Fig. 6 workflow on a JAR series.

        Returns the selected predictor and a :class:`FitReport` with the
        per-iteration trial history.

        Parameters
        ----------
        journal:
            Path (or :class:`~repro.resilience.TrialJournal`) of a
            crash-safe JSONL trial journal.  Every completed trial is
            fsynced to it before the next starts, so a crash loses at
            most the in-flight trial.
        resume:
            Replay the journal's completed trials into the optimizer
            (via ``tell``), restore its search state, and continue the
            run from where it stopped.  The resumed run is bit-for-bit
            identical to an uninterrupted one with the same seed.
        n_workers:
            ``None`` or 1 keeps the classic serial loop (bit-for-bit
            reproducible for a fixed seed).  Larger values evaluate
            candidate batches (``suggest_batch``) concurrently in
            worker processes — journaling, quarantine and resume still
            apply per completed trial, but the trial *ordering* within
            a batch follows suggestion order rather than completion
            order.  Capped by the ``REPRO_MAX_WORKERS`` environment
            variable.

        When every trial is infeasible (or the journal's best config can
        no longer be retrained), the fit *degrades* instead of raising:
        it returns a naive last-value predictor and a report flagged
        ``degraded=True``.
        """
        t_start = time.perf_counter()
        s = np.asarray(series, dtype=np.float64).ravel()
        cfg = self.settings
        n_total = s.size
        i_train_end = int(round(cfg.train_frac * n_total))
        i_val_end = int(round((cfg.train_frac + cfg.val_frac) * n_total))
        if i_train_end < 4 or i_val_end - i_train_end < 2:
            raise ValueError(
                f"series of length {n_total} too short for the "
                f"{cfg.train_frac:.0%}/{cfg.val_frac:.0%} split"
            )

        # Scaler fit on the training split ONLY (leakage guard).
        scaler = MinMaxScaler().fit(s[:i_train_end])
        scaled = scaler.transform(s)

        best: dict = {"mape": np.inf, "model": None, "config": None}
        n_infeasible = 0
        # Cross-trial caches (Section "perf layer"): windowed data sets
        # shared across trials with the same history length, and
        # duplicate-config memoization of recorded objectives.
        wcache = WindowCache(scaled, i_train_end, i_val_end, cfg.max_train_windows)
        memo = TrialMemo()

        def settle(config: dict, value, model, meta: dict) -> tuple[float, dict]:
            """Fold one evaluated trial into the fit-level bookkeeping."""
            nonlocal n_infeasible
            if meta.get("cache_hit"):
                if meta.get("infeasible"):
                    n_infeasible += 1
                return value, meta
            memo.put(config, value, meta)
            if model is None:
                n_infeasible += 1
            elif value < best["mape"]:
                best.update(mape=value, model=model, config=config)
            return value, meta

        def objective(config: dict) -> tuple[float, dict]:
            injector = _faults.active()
            if injector is not None:
                injector.maybe_fire("objective")
            hit = memo.get(config)
            if hit is not None:
                value, meta = hit
                return settle(config, value, None, {**meta, "cache_hit": True})
            value, model, meta = self._train_and_validate(
                scaled, s, scaler, config, i_train_end, i_val_end, window_cache=wcache
            )
            return settle(config, value, model, meta)

        journal_obj = TrialJournal(journal) if isinstance(journal, (str, Path)) else journal
        if resume and journal_obj is None:
            raise ValueError("resume=True requires a journal path")
        header = {
            "optimizer": self.optimizer_cls.__name__,
            "seed": cfg.seed,
            "max_iters": cfg.max_iters,
            "space": [repr(p) for p in self.space.params],
        }

        with span(
            "loaddynamics.fit", n_intervals=int(n_total), max_iters=cfg.max_iters
        ) as root:
            optimizer = self._make_optimizer()
            quarantine = (
                Quarantine(cfg.quarantine_after) if cfg.quarantine_after else None
            )
            if quarantine is not None and hasattr(optimizer, "set_excluded"):
                optimizer.set_excluded(quarantine.is_quarantined)

            n_replayed = 0
            if resume:
                n_replayed, n_replayed_infeasible = self._replay_journal(
                    journal_obj, header, optimizer, quarantine, best, memo
                )
                n_infeasible += n_replayed_infeasible
            try:
                if journal_obj is not None:
                    if resume:
                        journal_obj.reopen()
                    else:
                        journal_obj.start(header)
                from repro.parallel import effective_workers

                workers = 1 if n_workers is None else effective_workers(n_workers)
                if workers <= 1:
                    self._drive(
                        optimizer,
                        objective,
                        cfg.max_iters - n_replayed,
                        journal_obj,
                        quarantine,
                    )
                else:
                    raw_eval = functools.partial(
                        _evaluate_trial,
                        self,
                        scaled,
                        s,
                        scaler,
                        i_train_end,
                        i_val_end,
                    )
                    self._drive_parallel(
                        optimizer,
                        raw_eval,
                        settle,
                        memo,
                        cfg.max_iters - n_replayed,
                        journal_obj,
                        quarantine,
                        workers,
                    )
            finally:
                if journal_obj is not None:
                    journal_obj.close()
            root.set("n_trials", len(optimizer.history))
            root.set("n_infeasible", n_infeasible)
            if best["model"] is not None:
                root.set("best_validation_mape", float(best["mape"]))

        degraded_reason = None
        if best["model"] is None and best["config"] is not None:
            # The best trial is known only from the replayed journal; one
            # deterministic retraining (same config, same seed, same data)
            # reconstructs its model.
            logger.info("retraining journal-best config %s", best["config"])
            _value, model, _meta = self._train_and_validate(
                scaled, s, scaler, best["config"], i_train_end, i_val_end,
                window_cache=wcache,
            )
            if model is not None:
                best["model"] = model
            else:
                degraded_reason = "best_retrain_failed"

        n_quarantined = len(quarantine) if quarantine is not None else 0
        if best["model"] is None:
            degraded_reason = degraded_reason or "no_feasible_trials"
            return self._degraded_result(
                s,
                scaler,
                optimizer,
                n_infeasible,
                n_replayed,
                n_quarantined,
                degraded_reason,
                t_start,
                root,
                i_train_end,
                i_val_end,
            )

        hp = LSTMHyperparameters.from_dict(best["config"])
        predictor = LoadDynamicsPredictor(
            model=best["model"],
            scaler=scaler,
            hyperparameters=hp,
            validation_mape=best["mape"],
        )
        report = FitReport(
            best_hyperparameters=hp,
            best_validation_mape=best["mape"],
            trials=list(optimizer.history),
            total_seconds=time.perf_counter() - t_start,
            n_infeasible=n_infeasible,
            n_resumed=n_replayed,
            n_quarantined=n_quarantined,
        )
        report.telemetry = report.build_telemetry()
        report.telemetry["fit_span_seconds"] = root.duration_s
        logger.info(
            "fit done: %d trials (%d infeasible), best MAPE %.2f%% in %.1fs",
            report.n_trials, n_infeasible, best["mape"], report.total_seconds,
        )
        return predictor, report

    # ------------------------------------------------------------------
    # the resilient search driver
    # ------------------------------------------------------------------
    def _drive(self, optimizer, objective, n_iters, journal, quarantine) -> None:
        """Suggest/evaluate/tell loop with journaling and quarantine.

        Replaces ``optimizer.run``: each completed trial is fsynced to
        the journal (config, value, metadata, search state) before the
        next one starts, and repeat offenders are quarantined.
        """
        for _ in range(max(0, n_iters)):
            try:
                config = optimizer.suggest()
            except StopIteration:  # grid exhausted
                break
            value, meta = unpack_objective(objective(config))
            record = optimizer.tell(config, value, **meta)
            self._after_trial(optimizer, record, config, journal, quarantine)

    def _drive_parallel(
        self,
        optimizer,
        raw_eval,
        settle,
        memo: TrialMemo,
        n_iters: int,
        journal,
        quarantine,
        workers: int,
    ) -> None:
        """Batched variant of :meth:`_drive` for ``fit(n_workers > 1)``.

        Each round asks the optimizer for up to ``workers`` candidates
        (constant-liar batch for the GP, plain draws otherwise),
        short-circuits memoized configs, trains the rest concurrently
        through :func:`repro.parallel.parallel_map`, and tells/journals
        the results in suggestion order — so the trial history layout
        matches the serial driver's.
        """
        from repro.parallel import parallel_map

        remaining = max(0, n_iters)
        while remaining > 0:
            try:
                configs = optimizer.suggest_batch(min(workers, remaining))
            except StopIteration:  # grid exhausted
                break
            if not configs:
                break
            injector = _faults.active()
            if injector is not None:
                # Fault injection stays in the parent so injected
                # failures hit the run deterministically, not whichever
                # worker happens to import the injector.
                for _ in configs:
                    injector.maybe_fire("objective")
            results: list = [None] * len(configs)
            todo: list[int] = []
            for i, config in enumerate(configs):
                hit = memo.get(config)
                if hit is not None:
                    value, meta = hit
                    results[i] = (value, None, {**meta, "cache_hit": True})
                else:
                    todo.append(i)
            if len(todo) == 1:
                results[todo[0]] = raw_eval(configs[todo[0]])
            elif todo:
                outs = parallel_map(
                    raw_eval,
                    [configs[i] for i in todo],
                    n_workers=workers,
                    chunks_per_worker=1,
                )
                for i, out in zip(todo, outs, strict=True):
                    results[i] = out
            for config, (value, model, meta) in zip(configs, results, strict=True):
                value, meta = settle(config, value, model, meta)
                record = optimizer.tell(config, value, **meta)
                self._after_trial(optimizer, record, config, journal, quarantine)
            remaining -= len(configs)

    def _after_trial(self, optimizer, record, config, journal, quarantine) -> None:
        """Post-``tell`` bookkeeping shared by both drivers: quarantine
        repeat offenders and fsync the trial to the journal."""
        if (
            quarantine is not None
            and record.metadata.get("reason") in _FAILURE_REASONS
        ):
            failures = quarantine.record_failure(config)
            if quarantine.is_quarantined(config):
                _metrics.counter("trial.quarantined").inc()
                logger.warning(
                    "config %s quarantined after %d failures", config, failures
                )
                if _events.enabled():
                    _events.emit(
                        "trial.quarantined", config=dict(config), failures=failures
                    )
        if journal is not None:
            state = (
                optimizer.search_state()
                if hasattr(optimizer, "search_state")
                else None
            )
            journal.append_trial(
                record.iteration,
                record.config,
                record.value,
                record.metadata,
                state=state,
            )

    def _replay_journal(
        self,
        journal: TrialJournal,
        header: dict,
        optimizer,
        quarantine,
        best: dict,
        memo: TrialMemo | None = None,
    ) -> tuple[int, int]:
        """Feed a journal's completed trials back into a fresh optimizer.

        Returns ``(n_replayed, n_infeasible)``.  Each trial is ``tell``-ed
        with its recorded value (no retraining), the quarantine ledger is
        rebuilt from the recorded failure reasons, and the optimizer's
        search state (RNG/cursor) is restored from the last trial — after
        which the continued run is deterministic.
        """
        stored_header, trials = TrialJournal.load(journal.path)
        TrialJournal.check_header(stored_header, header)
        n_infeasible = 0
        last_state = None
        for trial in trials:
            meta = dict(trial.get("metadata") or {})
            if memo is not None:
                # Seed the duplicate-config memo so the continued run
                # never retrains a journaled config.
                memo.put(trial["config"], trial["value"], meta)
            meta["replayed"] = True
            record = optimizer.tell(trial["config"], trial["value"], **meta)
            if meta.get("infeasible"):
                n_infeasible += 1
                if quarantine is not None and meta.get("reason") in _FAILURE_REASONS:
                    quarantine.record_failure(record.config)
            elif record.value < best["mape"]:
                best.update(mape=record.value, config=record.config, model=None)
            if trial.get("state") is not None:
                last_state = trial["state"]
        if last_state is not None and hasattr(optimizer, "restore_search_state"):
            optimizer.restore_search_state(last_state)
        logger.info(
            "resumed from %s: replayed %d trials (%d infeasible)",
            journal.path, len(trials), n_infeasible,
        )
        return len(trials), n_infeasible

    def _degraded_result(
        self,
        s: np.ndarray,
        scaler: MinMaxScaler,
        optimizer,
        n_infeasible: int,
        n_replayed: int,
        n_quarantined: int,
        reason: str,
        t_start: float,
        root,
        i_train_end: int,
        i_val_end: int,
    ) -> tuple[LoadDynamicsPredictor, FitReport]:
        """Graceful degradation: hand back a naive last-value predictor.

        The paper's workflow assumes step 4 always has a best model to
        select; on a production cluster "every trial failed" must still
        yield *some* predictor, so the degraded fit returns persistence
        (last value) with the degradation flagged on the report.
        """
        val_pred = s[i_train_end - 1 : i_val_end - 1]
        val_actual = s[i_train_end:i_val_end]
        try:
            naive_mape = float(mape(val_pred, val_actual))
        except ValueError:
            naive_mape = float("inf")
        hp = LSTMHyperparameters(
            history_len=1, cell_size=1, num_layers=1, batch_size=1
        )
        predictor = LoadDynamicsPredictor(
            model=NaiveLastValueModel(),
            scaler=scaler,
            hyperparameters=hp,
            validation_mape=naive_mape,
        )
        report = FitReport(
            best_hyperparameters=hp,
            best_validation_mape=naive_mape,
            trials=list(optimizer.history),
            total_seconds=time.perf_counter() - t_start,
            n_infeasible=n_infeasible,
            degraded=True,
            degraded_reason=reason,
            n_resumed=n_replayed,
            n_quarantined=n_quarantined,
        )
        report.telemetry = report.build_telemetry()
        report.telemetry["fit_span_seconds"] = root.duration_s
        _metrics.counter("fit.degraded").inc()
        logger.warning(
            "fit degraded (%s) after %d trials (%d infeasible); returning "
            "naive last-value predictor (validation MAPE %.2f%%)",
            reason, report.n_trials, n_infeasible, naive_mape,
        )
        if _events.enabled():
            _events.emit(
                "fit.degraded",
                reason=reason,
                n_trials=report.n_trials,
                n_infeasible=n_infeasible,
            )
        return predictor, report

    # ------------------------------------------------------------------
    def _make_optimizer(self):
        kwargs = dict(self.optimizer_kwargs)
        if self.optimizer_cls is BayesianOptimizer:
            kwargs.setdefault("n_initial", self.settings.n_initial)
            kwargs.setdefault("acquisition", self.settings.acquisition)
            kwargs.setdefault("seed", self.settings.seed)
        elif "seed" not in kwargs and hasattr(self.optimizer_cls, "__init__"):
            # Random search takes a seed; grid search takes none of ours.
            try:
                return self.optimizer_cls(self.space, seed=self.settings.seed, **kwargs)
            except TypeError:
                return self.optimizer_cls(self.space, **kwargs)
        return self.optimizer_cls(self.space, **kwargs)

    def _train_and_validate(
        self,
        scaled: np.ndarray,
        raw: np.ndarray,
        scaler: MinMaxScaler,
        config: dict,
        i_train_end: int,
        i_val_end: int,
        window_cache: WindowCache | None = None,
    ) -> tuple[float, LSTMRegressor | None, dict]:
        """Fig. 6 steps 1–2 for one hyperparameter set.

        Returns ``(validation_mape, model, metadata)``; the metadata
        dict records training wall-clock, epochs run, and the early-stop
        flag (or the infeasibility reason) and ends up on the trial's
        :class:`~repro.bayesopt.optimizer.TrialRecord`.
        """
        cfg = self.settings
        n = int(config["history_len"])

        def infeasible(reason: str, **extra) -> tuple[float, None, dict]:
            meta = {"infeasible": True, "reason": reason}
            meta.update(extra)
            return _INFEASIBLE_PENALTY, None, meta

        # Feasibility: the training split must yield enough windows.
        if i_train_end - n < cfg.min_train_windows:
            return infeasible("too_few_train_windows")
        if window_cache is None:
            window_cache = WindowCache(
                scaled, i_train_end, i_val_end, cfg.max_train_windows
            )
        X_train, y_train, X_val, y_val_scaled = window_cache.get(n)
        if X_val.shape[0] < 1:
            return infeasible("empty_validation_window")

        # A diverged training is retried with a fresh weight seed and
        # backed-off epochs/patience (bounded); a timed-out one is not —
        # retrying a slow config would just burn the budget twice.
        policy = RetryPolicy(max_retries=cfg.max_retries, backoff=cfg.retry_backoff)
        last_failure: dict = {}
        t_train = time.perf_counter()
        for attempt in range(policy.attempts):
            model = LSTMRegressor(
                hidden_size=int(config["cell_size"]),
                num_layers=int(config["num_layers"]),
                seed=policy.seed_for(cfg.seed, attempt),
            )
            epoch_counter = EpochCounter()
            callbacks: list = [epoch_counter]
            if cfg.trial_timeout_s is not None:
                callbacks.append(DeadlineCallback(cfg.trial_timeout_s))
            try:
                history = model.fit(
                    X_train,
                    y_train,
                    epochs=policy.epochs_for(cfg.epochs, attempt),
                    batch_size=int(config["batch_size"]),
                    lr=cfg.lr,
                    # Extended spaces (Section V) tune these; plain Table III
                    # spaces fall back to the fixed settings.
                    optimizer=str(config.get("optimizer", cfg.optimizer)),
                    loss=str(config.get("loss", cfg.loss)),
                    clip_norm=cfg.clip_norm,
                    validation=(X_val, y_val_scaled),
                    patience=policy.patience_for(cfg.patience, attempt),
                    callbacks=callbacks,
                )
            except TrialTimeout as exc:
                return infeasible(
                    "trial_timeout",
                    failing_epoch=exc.epoch,
                    elapsed_s=exc.elapsed_s,
                    attempts=attempt + 1,
                )
            except (FloatingPointError, OverflowError, np.linalg.LinAlgError) as exc:
                last_failure = {
                    "failing_epoch": epoch_counter.completed,
                    "error": type(exc).__name__,
                }
                self._note_retry(config, attempt, policy, last_failure)
                continue
            bad_epochs = np.flatnonzero(~np.isfinite(history.train_loss))
            if bad_epochs.size:
                last_failure = {
                    "failing_epoch": int(bad_epochs[0]),
                    "error": "nonfinite_train_loss",
                }
                self._note_retry(config, attempt, policy, last_failure)
                continue
            break  # trained cleanly
        else:
            return infeasible(
                "training_diverged", attempts=policy.attempts, **last_failure
            )
        meta = {
            "train_seconds": time.perf_counter() - t_train,
            "epochs_run": history.epochs_run,
            "stopped_early": history.stopped_early,
            "best_epoch": history.best_epoch,
            "n_train_windows": int(len(y_train)),
            "attempts": attempt + 1,
        }

        # Validation error in *raw* JAR units (MAPE is scale-sensitive).
        pred_scaled = model.predict(X_val)
        pred = np.maximum(scaler.inverse_transform(pred_scaled), 0.0)
        actual = scaler.inverse_transform(y_val_scaled)
        try:
            value = mape(pred, actual)
        except ValueError:
            return infeasible("validation_mape_undefined")
        if not np.isfinite(value):
            return infeasible("validation_mape_nonfinite")
        return value, model, meta

    def _note_retry(
        self, config: dict, attempt: int, policy: RetryPolicy, failure: dict
    ) -> None:
        """Telemetry for one failed training attempt (before any retry)."""
        will_retry = attempt < policy.max_retries
        logger.log(
            20 if will_retry else 10,  # INFO while retrying, DEBUG when giving up
            "training attempt %d/%d failed (%s at epoch %s) for %s%s",
            attempt + 1,
            policy.attempts,
            failure.get("error"),
            failure.get("failing_epoch"),
            config,
            "; retrying with reseed" if will_retry else "",
        )
        if will_retry:
            _metrics.counter("trial.retries").inc()
            if _events.enabled():
                _events.emit(
                    "trial.retry", attempt=attempt + 1, config=dict(config), **failure
                )

    # ------------------------------------------------------------------
    def evaluate(
        self, predictor: LoadDynamicsPredictor, series: np.ndarray
    ) -> float:
        """Test MAPE on the last ``1 - train - val`` fraction of ``series``
        (the paper's accuracy number, Section IV-B)."""
        s = np.asarray(series, dtype=np.float64).ravel()
        cfg = self.settings
        i_test = int(round((cfg.train_frac + cfg.val_frac) * s.size))
        preds = predictor.predict_series(s, i_test)
        return mape(preds, s[i_test:])
