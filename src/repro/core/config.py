"""Hyperparameters, Table III search spaces, and framework settings.

The paper tunes exactly four hyperparameters per workload
(Section III-A): history length ``n``, cell-memory size ``s``, LSTM
layer count, and training batch size.  Table III defines the box ranges:

==========  ============  ========  ========  ===========
Workload    Hist Len (n)  C size    Layers #  Batch #
==========  ============  ========  ========  ===========
Wiki/LCG/
Azure/
Google      [1–512]       [1–100]   [1–5]     [16–1024]
Facebook    [1–100]       [1–50]    [1–5]     [8–128]
==========  ============  ========  ========  ===========

``budget="paper"`` reproduces those ranges.  ``budget="reduced"``
shrinks them proportionally for CI-scale runs (the paper's budget —
maxIters=100 BO iterations, weeks of brute force — is not reproducible
in minutes; see DESIGN.md §6).  The code paths are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bayesopt.space import CategoricalParam, IntParam, SearchSpace

__all__ = [
    "LSTMHyperparameters",
    "GenericHyperparameters",
    "FrameworkSettings",
    "search_space_for",
    "history_range",
    "BUDGETS",
]

BUDGETS = ("paper", "reduced", "tiny")

#: Table III box ranges, keyed by (budget, is_facebook):
#: (history_len, cell_size, num_layers, batch_size).
_TABLE3_RANGES = {
    ("paper", False): ((1, 512), (1, 100), (1, 5), (16, 1024)),
    ("paper", True): ((1, 100), (1, 50), (1, 5), (8, 128)),
    ("reduced", False): ((1, 64), (1, 32), (1, 2), (16, 128)),
    ("reduced", True): ((1, 32), (1, 24), (1, 2), (8, 64)),
    ("tiny", False): ((1, 8), (1, 8), (1, 2), (4, 16)),
    ("tiny", True): ((1, 8), (1, 8), (1, 2), (4, 16)),
}


def _is_facebook(trace_name: str) -> bool:
    return trace_name.lower() in ("fb", "facebook")


def history_range(trace_name: str = "default", budget: str = "paper") -> tuple[int, int]:
    """Table III ``history_len`` box for a trace/budget.

    The history length is the one hyperparameter *every* model family
    tunes (Eq. 1 windowing is universal); non-NN families reuse this
    range so their windows stay comparable to the recurrent families'.
    """
    if budget not in BUDGETS:
        raise ValueError(f"budget must be one of {BUDGETS}")
    return _TABLE3_RANGES[(budget, _is_facebook(trace_name))][0]


@dataclass(frozen=True)
class LSTMHyperparameters:
    """One point in the Table III space."""

    history_len: int
    cell_size: int
    num_layers: int
    batch_size: int

    def __post_init__(self):
        if self.history_len < 1:
            raise ValueError("history_len must be >= 1")
        if self.cell_size < 1:
            raise ValueError("cell_size must be >= 1")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")

    def as_dict(self) -> dict:
        return {
            "history_len": self.history_len,
            "cell_size": self.cell_size,
            "num_layers": self.num_layers,
            "batch_size": self.batch_size,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "LSTMHyperparameters":
        return cls(
            history_len=int(d["history_len"]),
            cell_size=int(d["cell_size"]),
            num_layers=int(d["num_layers"]),
            batch_size=int(d["batch_size"]),
        )


@dataclass(frozen=True)
class GenericHyperparameters:
    """Hyperparameters of a non-NN model family.

    Every family tunes ``history_len`` (Eq. 1 windowing is universal);
    the remaining dimensions vary per family and are carried as sorted
    ``(name, value)`` pairs, keeping the dataclass hashable and
    order-independent.
    """

    history_len: int
    extras: tuple = ()

    def __post_init__(self):
        if self.history_len < 1:
            raise ValueError("history_len must be >= 1")

    def as_dict(self) -> dict:
        out = {"history_len": self.history_len}
        out.update(dict(self.extras))
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "GenericHyperparameters":
        return cls(
            history_len=int(d["history_len"]),
            extras=tuple(sorted((k, v) for k, v in d.items() if k != "history_len")),
        )


def search_space_for(
    trace_name: str = "default",
    budget: str = "paper",
    extended: bool = False,
    family: str = "lstm",
) -> SearchSpace:
    """Search space for a trace/budget, per model family.

    For the default recurrent families this is the Table III space
    (Facebook gets the small ranges).  ``budget="reduced"`` caps
    history/cell/layers/batch so a full BO run finishes in
    seconds-to-minutes on a laptop; ``"tiny"`` is for unit tests.
    History length and batch size use log-scaled encodings — their
    paper ranges span 2–3 orders of magnitude.

    ``extended=True`` adds the Section V "other hyperparameters" — the
    training loss and the optimization algorithm — as categorical
    dimensions.  The paper observed no accuracy gain from these on its
    workloads but notes they "may affect the accuracy ... applied to
    other workloads"; the optimization process handles them unchanged.

    ``family`` other than ``"lstm"``/``"gru"`` delegates to that
    family's own :meth:`~repro.models.base.ModelFamily.search_space`
    from the :mod:`repro.models` registry.
    """
    if family not in ("lstm", "gru"):
        # Delegate to the family's own space.  Imported lazily: config is
        # a leaf module the model families themselves depend on.
        from repro.models import get_family

        return get_family(family).search_space(trace_name, budget, extended=extended)
    if budget not in BUDGETS:
        raise ValueError(f"budget must be one of {BUDGETS}")
    hist, cell, layers, batch = _TABLE3_RANGES[(budget, _is_facebook(trace_name))]
    params: list = [
        IntParam("history_len", *hist, log=True),
        IntParam("cell_size", *cell),
        IntParam("num_layers", *layers),
        IntParam("batch_size", *batch, log=True),
    ]
    if extended:
        params.append(CategoricalParam("loss", ("mse", "mae", "huber")))
        params.append(CategoricalParam("optimizer", ("adam", "rmsprop", "sgd")))
    return SearchSpace(params)


@dataclass
class FrameworkSettings:
    """Knobs of the Fig. 6 workflow outside the tuned hyperparameters.

    Paper values: ``max_iters=100`` BO iterations, 60/20/20 split, MSE
    loss, Adam.  Training-loop settings (epochs, lr, patience) are the
    fixed "other hyperparameters" of Section V — the paper found tuning
    them did not help its workloads, so they are constants here too.
    """

    max_iters: int = 100
    n_initial: int = 5
    train_frac: float = 0.6
    val_frac: float = 0.2
    epochs: int = 60
    lr: float = 1e-3
    patience: int = 8
    clip_norm: float = 5.0
    optimizer: str = "adam"
    loss: str = "mse"
    acquisition: str = "ei"
    seed: int = 0
    #: Training pairs needed for a config to be considered viable; BO
    #: receives a large penalty for configs whose history length leaves
    #: fewer windows than this.
    min_train_windows: int = 8
    #: Optional cap on training windows per trial (most recent kept) to
    #: bound trial cost on very long 5-minute traces.
    max_train_windows: int | None = 4000
    #: Per-trial wall-clock deadline in seconds (``None`` = unlimited).
    #: A trial past the deadline is recorded infeasible with reason
    #: ``trial_timeout`` instead of stalling the whole run.
    trial_timeout_s: float | None = None
    #: Extra training attempts (with a fresh weight seed and backed-off
    #: epochs/patience) when a trial diverges; 0 disables retries.
    max_retries: int = 1
    #: Epochs/patience multiplier per retry attempt.
    retry_backoff: float = 0.5
    #: Failures (divergence/timeout) after which a config is quarantined
    #: and never suggested again; ``0`` disables the quarantine.
    quarantine_after: int = 3
    #: Keep one BO surrogate alive across iterations, folding each
    #: result in with a rank-1 Cholesky append (O(n^2) per tell) instead
    #: of refitting from scratch every suggestion.  Off by default: the
    #: incremental schedule is internally deterministic but is a
    #: different search path than the paper-default per-suggest refit.
    incremental_surrogate: bool = False
    #: With ``incremental_surrogate``, re-optimize the GP kernel
    #: hyperparameters (full refit) every this many tells.
    surrogate_reopt_every: int = 8

    def __post_init__(self):
        if self.max_iters < 1:
            raise ValueError("max_iters must be >= 1")
        if not 0.0 < self.train_frac < 1.0 or not 0.0 < self.val_frac < 1.0:
            raise ValueError("fractions must be in (0, 1)")
        if self.train_frac + self.val_frac >= 1.0:
            raise ValueError("train+val fractions must leave a test split")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise ValueError("trial_timeout_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 < self.retry_backoff <= 1.0:
            raise ValueError("retry_backoff must be in (0, 1]")
        if self.quarantine_after < 0:
            raise ValueError("quarantine_after must be >= 0")
        if self.surrogate_reopt_every < 1:
            raise ValueError("surrogate_reopt_every must be >= 1")

    @classmethod
    def reduced(cls, **overrides) -> "FrameworkSettings":
        """CI-scale settings: fewer BO iterations and epochs (DESIGN.md §6).

        ``max_train_windows`` is capped harder than the paper-scale
        default so the 5-minute configurations (6k intervals) stay
        trainable on a single CPU core.
        """
        defaults = dict(
            max_iters=12, n_initial=4, epochs=25, patience=5,
            max_train_windows=1500,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def tiny(cls, **overrides) -> "FrameworkSettings":
        """Unit-test settings: smallest run that still exercises every path."""
        defaults = dict(
            max_iters=3, n_initial=2, epochs=4, patience=2, min_train_windows=4
        )
        defaults.update(overrides)
        return cls(**defaults)
