"""Parallel brute-force LSTM search (the Fig. 9 "LSTMBruteForce" baseline).

The paper's exhaustive search took "1-day to 6-weeks" per workload on a
16-core Xeon — embarrassingly parallel over hyperparameter combinations.
This module evaluates a grid of configurations with
:func:`repro.parallel.parallel_map`: each worker process trains and
validates one LSTM independently (everything it needs travels in a
picklable payload), and results come back in deterministic input order,
so serial and parallel runs select the same winner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bayesopt.space import SearchSpace
from repro.core.config import FrameworkSettings, LSTMHyperparameters
from repro.core.data import prepare_data
from repro.core.predictor import LoadDynamicsPredictor
from repro.core.scaling import MinMaxScaler
from repro.parallel import parallel_map

__all__ = ["brute_force_search", "BruteForceResult"]


@dataclass
class BruteForceResult:
    """Outcome of an exhaustive (possibly truncated) grid sweep."""

    best_hyperparameters: LSTMHyperparameters
    best_validation_mape: float
    evaluations: list[tuple[dict, float]] = field(default_factory=list)
    n_infeasible: int = 0

    @property
    def n_evaluated(self) -> int:
        return len(self.evaluations)


def _evaluate_payload(payload: tuple) -> tuple[dict, float]:
    """Train+validate one configuration (runs in a worker process)."""
    (scaled, raw, scaler_state, config, i_train_end, i_val_end, settings_kwargs) = payload
    # Reconstruct the light objects locally; arrays arrived by pickling.
    from repro.core.evaluation import TrialEvaluator
    from repro.models import get_family

    settings = FrameworkSettings(**settings_kwargs)
    evaluator = TrialEvaluator(get_family("lstm"), settings)
    scaler = MinMaxScaler.from_state(scaler_state)
    value, _model, _meta = evaluator.evaluate(
        scaled, raw, scaler, config, i_train_end, i_val_end
    )
    return config, float(value)


def brute_force_search(
    series: np.ndarray,
    space: SearchSpace,
    settings: FrameworkSettings | None = None,
    points_per_dim: int = 3,
    max_trials: int | None = None,
    n_workers: int | None = None,
    shuffle_seed: int = 0,
) -> BruteForceResult:
    """Exhaustively evaluate a hyperparameter grid, in parallel.

    ``max_trials`` truncates the (shuffled) grid — the honest way to run
    the paper's weeks-long search inside a time budget.  Returns every
    evaluation so callers can study the error landscape (Fig. 5 style).

    The final predictor is *not* retrained here; call
    :func:`fit_best` to turn the winning configuration into a deployable
    :class:`LoadDynamicsPredictor`.
    """
    cfg = settings if settings is not None else FrameworkSettings.reduced()
    # Workers rebuild their own windows, so skip the shared cache.
    data = prepare_data(series, cfg, window_cache=False)
    s, scaled, scaler = data.raw, data.scaled, data.scaler
    i_train_end, i_val_end = data.i_train_end, data.i_val_end

    grid = space.grid(points_per_dim)
    rng = np.random.default_rng(shuffle_seed)
    rng.shuffle(grid)
    if max_trials is not None:
        grid = grid[:max_trials]
    if not grid:
        raise ValueError("empty grid")

    settings_kwargs = {
        k: getattr(cfg, k)
        for k in (
            "max_iters", "n_initial", "train_frac", "val_frac", "epochs", "lr",
            "patience", "clip_norm", "optimizer", "loss", "acquisition", "seed",
            "min_train_windows", "max_train_windows",
        )
    }
    payloads = [
        (scaled, s, scaler.state(), config, i_train_end, i_val_end, settings_kwargs)
        for config in grid
    ]
    results = parallel_map(_evaluate_payload, payloads, n_workers=n_workers)

    evaluations = [(c, v) for c, v in results]
    feasible = [(c, v) for c, v in evaluations if v < 1e5]
    n_infeasible = len(evaluations) - len(feasible)
    if not feasible:
        raise RuntimeError("no feasible configuration in the grid")
    best_config, best_value = min(feasible, key=lambda cv: cv[1])
    return BruteForceResult(
        best_hyperparameters=LSTMHyperparameters.from_dict(best_config),
        best_validation_mape=best_value,
        evaluations=evaluations,
        n_infeasible=n_infeasible,
    )


def fit_best(
    series: np.ndarray,
    result: BruteForceResult,
    settings: FrameworkSettings | None = None,
) -> LoadDynamicsPredictor:
    """Retrain the sweep winner into a deployable predictor."""
    from repro.core.evaluation import TrialEvaluator
    from repro.models import get_family

    cfg = settings if settings is not None else FrameworkSettings.reduced()
    data = prepare_data(series, cfg, window_cache=False)
    family = get_family("lstm")
    evaluator = TrialEvaluator(family, cfg)
    value, model, _meta = evaluator.evaluate(
        data.scaled, data.raw, data.scaler,
        result.best_hyperparameters.as_dict(),
        data.i_train_end, data.i_val_end,
    )
    if model is None:
        raise RuntimeError("winning configuration became infeasible on refit")
    return family.wrap_predictor(
        model, data.scaler, result.best_hyperparameters.as_dict(), value
    )
