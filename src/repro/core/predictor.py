"""The deployable predictor ``f`` produced by the LoadDynamics workflow.

Bundles the best model found by the self-optimization loop with its
min-max scaler, hyperparameters, and model-family tag.  Implements the
same one-step-ahead protocol as the baselines
(:class:`repro.baselines.base.Predictor`), so the experiment harness and
the auto-scaler treat LoadDynamics and the comparators uniformly.

Persistence is family-dispatched: the predictor directory's
``predictor.json`` records which :mod:`repro.models` family wrote the
model, and that family's ``save_model``/``load_model`` own the weight
format (npz for the recurrent families, pickle for the classical ones,
a marker file for the naive fallback).  Directories written before the
family tag existed load as ``lstm`` — the only family that existed.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.baselines.base import Predictor
from repro.core.scaling import MinMaxScaler
from repro.core.windowing import windows_for_range

__all__ = ["LoadDynamicsPredictor", "NaiveLastValueModel"]


class NaiveLastValueModel:
    """Persistence model used when the whole optimization degrades.

    Drop-in for :class:`~repro.nn.network.LSTMRegressor` in the
    predictor plumbing: ``predict`` returns the last value of each
    window, which — with ``history_len=1`` hyperparameters — makes the
    predictor a plain last-value forecaster.  Returned by
    :meth:`repro.core.framework.LoadDynamics.fit` when every trial was
    infeasible, so callers always receive *some* usable predictor
    (flagged via ``FitReport.degraded``).
    """

    hidden_size = 1
    num_layers = 1
    input_size = 1
    degraded = True

    def __init__(self, target_channel: int = 0):
        # Multivariate windows carry all channels; persistence predicts
        # the last value of the *target* channel (0 for 1-D windows).
        self.target_channel = int(target_channel)

    def predict(self, x: np.ndarray, batch_size: int = 4096) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 3:
            x = x[:, :, self.target_channel]
        if x.ndim != 2:
            raise ValueError(f"expected (N, n) or (N, n, D) windows, got {x.shape}")
        return x[:, -1].copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NaiveLastValueModel()"


class LoadDynamicsPredictor(Predictor):
    """Trained model + scaler + hyperparameters (workflow step 5)."""

    name = "loaddynamics"

    def __init__(
        self,
        model,
        scaler: MinMaxScaler,
        hyperparameters,
        validation_mape: float = float("nan"),
        family: str = "lstm",
        target_channel: int = 0,
    ):
        # Shape-consistency guard where both sides carry NN shape info
        # (the recurrent families); classical models have no cell/layer
        # notion, so there is nothing to cross-check.
        model_width = getattr(model, "hidden_size", None)
        hp_width = getattr(hyperparameters, "cell_size", None)
        if model_width is not None and hp_width is not None:
            if model_width != hp_width:
                raise ValueError("model hidden size disagrees with hyperparameters")
            if getattr(model, "num_layers", None) != getattr(
                hyperparameters, "num_layers", None
            ):
                raise ValueError("model layer count disagrees with hyperparameters")
        self.model = model
        self.scaler = scaler
        self.hyperparameters = hyperparameters
        self.validation_mape = float(validation_mape)
        self.family = str(family)
        self.min_history = hyperparameters.history_len
        # Channel plumbing: the (per-channel) scaler carries D; the
        # target channel is which column the predictor forecasts.
        self.n_channels = int(scaler.n_channels_ or 1)
        self.target_channel = int(target_channel)
        if not 0 <= self.target_channel < self.n_channels:
            raise ValueError(
                f"target_channel {target_channel} out of range for "
                f"{self.n_channels}-channel predictor"
            )
        self._target_scaler = (
            scaler if scaler.n_channels_ is None
            else scaler.channel(self.target_channel)
        )

    # ------------------------------------------------------------------
    # Predictor protocol
    # ------------------------------------------------------------------
    def predict_next(self, history: np.ndarray) -> float:
        """One-step-ahead prediction from the raw (unscaled) history.

        A multivariate predictor takes a 2-D ``(steps, D)`` history and
        forecasts its target channel; the univariate path is unchanged.
        """
        h = np.asarray(history, dtype=np.float64)
        n = self.hyperparameters.history_len
        if self.n_channels > 1:
            if h.ndim != 2 or h.shape[1] != self.n_channels:
                raise ValueError(
                    f"{self.n_channels}-channel predictor needs a "
                    f"(steps, {self.n_channels}) history, got shape {h.shape}"
                )
            if h.shape[0] < n:
                return self._fallback(h[:, self.target_channel])
            window = self.scaler.transform(h[-n:])[None, :, :]
            pred = float(self.model.predict(window)[0])
            return float(
                max(self._target_scaler.inverse_transform(np.array([pred]))[0], 0.0)
            )
        h = h.ravel()
        if h.size < n:
            return self._fallback(h)
        window = self.scaler.transform(h[-n:])[None, :]
        pred = float(self.model.predict(window)[0])
        return float(max(self.scaler.inverse_transform(np.array([pred]))[0], 0.0))

    def predict_series(
        self, series: np.ndarray, start: int, end: int | None = None
    ) -> np.ndarray:
        """Batch one-step-ahead predictions for targets in [start, end).

        Equivalent to calling :meth:`predict_next` per interval but runs
        as one batched forward pass — this is the inference path whose
        latency the paper reports (<4.78 ms per prediction).
        """
        n = self.hyperparameters.history_len
        if self.n_channels > 1:
            s = np.asarray(series, dtype=np.float64)
            if s.ndim != 2 or s.shape[1] != self.n_channels:
                raise ValueError(
                    f"{self.n_channels}-channel predictor needs a "
                    f"(steps, {self.n_channels}) series, got shape {s.shape}"
                )
            end = s.shape[0] if end is None else end
            X, _ = windows_for_range(
                s, n, start, end, copy=False, target=self.target_channel
            )
            n_missing = (end - start) - X.shape[0]
            preds = np.empty(end - start)
            if X.shape[0]:
                scaled = self.scaler.transform(X)
                raw = self.model.predict(scaled)
                np.maximum(
                    self._target_scaler.inverse_transform(raw),
                    0.0,
                    out=preds[n_missing:],
                )
            if n_missing:
                idx = start + np.arange(n_missing)
                tgt = s[:, self.target_channel]
                preds[:n_missing] = np.where(idx > 0, tgt[idx - 1], 0.0)
            return preds
        s = np.asarray(series, dtype=np.float64).ravel()
        end = s.size if end is None else end
        # copy=False: the scaler transform below materializes a fresh
        # array anyway, so the contiguous window copy would be pure waste.
        X, _ = windows_for_range(s, n, start, end, copy=False)
        n_missing = (end - start) - X.shape[0]  # targets with short windows
        preds = np.empty(end - start)
        if X.shape[0]:
            scaled = self.scaler.transform(X)
            raw = self.model.predict(scaled)
            np.maximum(
                self.scaler.inverse_transform(raw), 0.0, out=preds[n_missing:]
            )
        if n_missing:
            # Degenerate early targets fall back to persistence
            # (vectorized: target i gets s[i-1], target 0 gets 0).
            idx = start + np.arange(n_missing)
            preds[:n_missing] = np.where(idx > 0, s[idx - 1], 0.0)
        return preds

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> Path:
        """Persist model + scaler + hyperparameters to a directory.

        The model's weight format is owned by its family's
        ``save_model``; ``predictor.json`` records the family so
        :meth:`load` can dispatch back.  Degraded (naive-fallback)
        predictors persist too — their family writes a marker file.
        """
        from repro.models import get_family

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        get_family(self.family).save_model(self.model, directory)
        meta = {
            "family": self.family,
            "hyperparameters": self.hyperparameters.as_dict(),
            "scaler": self.scaler.state(),
            "validation_mape": self.validation_mape,
            "n_channels": self.n_channels,
            "target_channel": self.target_channel,
        }
        (directory / "predictor.json").write_text(json.dumps(meta, indent=2))
        return directory

    @classmethod
    def load(cls, directory: str | Path) -> "LoadDynamicsPredictor":
        """Reload a saved predictor directory.

        Corruption surfaces as ordinary exceptions (JSON/zip/OS/KeyError);
        serving code that must survive a bad model on disk loads through
        :meth:`repro.serving.guard.GuardedPredictor.load`, which maps
        them all to a typed ``CorruptModelError``.  The ``model.load``
        fault site makes disk corruption injectable for chaos tests.
        """
        from repro.models import get_family
        from repro.resilience import faults as _faults

        inj = _faults.active()
        if inj is not None:
            inj.maybe_fire("model.load")
        directory = Path(directory)
        meta = json.loads((directory / "predictor.json").read_text())
        if not isinstance(meta, dict) or "scaler" not in meta or "hyperparameters" not in meta:
            raise ValueError(
                f"predictor.json in {directory} is not a predictor manifest "
                "(missing scaler/hyperparameters)"
            )
        # Pre-family directories carry no tag; they were all LSTM.
        family = get_family(meta.get("family", "lstm"))
        model = family.load_model(directory)
        return cls(
            model=model,
            scaler=MinMaxScaler.from_state(meta["scaler"]),
            hyperparameters=family.hyperparameters(meta["hyperparameters"]),
            validation_mape=meta.get("validation_mape", float("nan")),
            family=family.name,
            # Pre-multivariate directories carry no channel keys; they
            # were all univariate (scaler state is scalar, D=1).
            target_channel=int(meta.get("target_channel", 0)),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        hp = self.hyperparameters.as_dict()
        extras = ", ".join(f"{k}={v}" for k, v in hp.items() if k != "history_len")
        return (
            f"LoadDynamicsPredictor(family={self.family}, "
            f"n={hp['history_len']}{', ' + extras if extras else ''}, "
            f"val_mape={self.validation_mape:.2f}%)"
        )
