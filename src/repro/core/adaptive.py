"""Online adaptive LoadDynamics (paper Section V, "Online Adaptive Modeling").

The paper notes that LoadDynamics "may experience high prediction errors
if the workload completely changes to a new pattern that is not
represented by any of the training data", and proposes — as future work —
detecting such drift and adaptively re-running the optimization.  This
module implements that variant:

* the wrapped predictor serves one-step-ahead forecasts like any other
  :class:`~repro.baselines.base.Predictor`;
* each revealed interval scores the previous forecast; a rolling window
  of absolute percentage errors is compared against the predictor's own
  cross-validation MAPE;
* when the rolling error exceeds ``drift_factor`` x the reference error
  for a full window (and a cool-down has elapsed), the complete Fig. 6
  workflow re-runs on the recent history and the new predictor replaces
  the old one.

The re-optimization is synchronous and uses the same budget as the
initial fit, so pick reduced/tiny settings for online use.

Drift-detector integration: pass ``refit_on_drift=`` a
:class:`~repro.obs.monitor.drift.DriftDetector` (CUSUM, Page-Hinkley)
and the detector *replaces* the built-in threshold rule — each scored
interval's percentage error feeds the detector, and a latched
``drifted`` flag (whether raised by this predictor's own errors or by
an external :class:`~repro.obs.monitor.monitor.ForecastMonitor` sharing
the instance) triggers the refit.  The refit resets the detector so it
recalibrates on post-refit errors.  With ``refit_on_drift=None`` (the
default) the original rolling-window rule runs unchanged.

Serving hardening: a refit is an expensive, failure-prone training run
executed *inside* the serving loop, so it must never take serving down.
Each refit runs through a :class:`~repro.resilience.retry.RetryPolicy`
(fresh seed per attempt) under an optional wall-clock deadline; if every
attempt fails — or a successful one lands past the deadline while an
incumbent exists — the incumbent predictor keeps serving, the refit
cool-down applies (so a poisoned history does not retrain every
interval), and an ``adaptive.refit_failed`` event plus counter record
the degradation.  The ``adaptive.refit`` fault site makes this path
chaos-testable.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import replace

import numpy as np

from repro.baselines.base import Predictor
from repro.bayesopt.space import SearchSpace
from repro.core.config import FrameworkSettings, search_space_for
from repro.core.framework import LoadDynamics
from repro.core.predictor import LoadDynamicsPredictor
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger
from repro.resilience import faults as _faults
from repro.resilience.retry import RetryPolicy

__all__ = ["AdaptiveLoadDynamics"]

logger = get_logger("core.adaptive")


class AdaptiveLoadDynamics(Predictor):
    """Self-retraining LoadDynamics wrapper.

    Parameters
    ----------
    space / settings / trace_name / budget:
        Passed through to :class:`LoadDynamics` for every (re)fit.
    drift_window:
        Number of recent intervals whose mean error triggers detection.
    drift_factor:
        Retrain when rolling MAPE > factor x max(validation MAPE, error_floor).
    error_floor:
        Lower bound on the reference error so a near-perfect validation
        fit does not make the detector hair-triggered (in percent).
    min_refit_gap:
        Cool-down (intervals) between retrainings.
    max_history:
        Cap on the history used for retraining (most recent kept); the
        point of retraining is adapting to the *new* pattern.
    refit_retries:
        Extra refit attempts (fresh framework seed each) when the
        synchronous retrain raises; the incumbent predictor keeps
        serving throughout.
    refit_deadline_s:
        Wall-clock budget for one drift refit (all attempts); a refit
        finishing past it is discarded in favour of the incumbent.
        ``None`` disables the deadline.
    refit_on_drift:
        A drift detector (anything matching
        :class:`repro.obs.monitor.drift.DriftDetector`) that replaces
        the rolling-window rule: scored errors feed it, its latched
        ``drifted`` flag triggers the refit, and the refit resets it.
    target_channel:
        Which column of a 2-D ``(steps, D)`` history is forecast (and
        scored for drift); must stay 0 for univariate histories.
    """

    name = "adaptive-loaddynamics"

    def __init__(
        self,
        space: SearchSpace | None = None,
        settings: FrameworkSettings | None = None,
        trace_name: str = "default",
        budget: str = "reduced",
        drift_window: int = 10,
        drift_factor: float = 2.0,
        error_floor: float = 5.0,
        min_refit_gap: int = 20,
        max_history: int | None = 600,
        refit_retries: int = 1,
        refit_deadline_s: float | None = None,
        refit_on_drift=None,
        target_channel: int = 0,
    ):
        if drift_window < 2:
            raise ValueError("drift_window must be >= 2")
        if drift_factor <= 1.0:
            raise ValueError("drift_factor must be > 1")
        if min_refit_gap < 1:
            raise ValueError("min_refit_gap must be >= 1")
        if refit_deadline_s is not None and refit_deadline_s <= 0:
            raise ValueError("refit_deadline_s must be positive (or None)")
        self._space = space if space is not None else search_space_for(trace_name, budget)
        self._settings = settings if settings is not None else FrameworkSettings.reduced()
        self.drift_window = int(drift_window)
        self.drift_factor = float(drift_factor)
        self.error_floor = float(error_floor)
        self.min_refit_gap = int(min_refit_gap)
        self.max_history = max_history
        self.refit_policy = RetryPolicy(max_retries=int(refit_retries))
        self.refit_deadline_s = refit_deadline_s
        self.refit_on_drift = refit_on_drift
        if target_channel < 0:
            raise ValueError("target_channel must be non-negative")
        self.target_channel = int(target_channel)

        self.predictor: LoadDynamicsPredictor | None = None
        self.refit_history: list[int] = []  # history lengths at each (re)fit
        self.failed_refits = 0  # refits that kept the incumbent predictor
        self.drift_refits = 0  # refit attempts triggered by drift detection
        self._recent_errors: deque[float] = deque(maxlen=self.drift_window)
        self._last_pred: float | None = None
        self._last_len = -1
        self._since_refit = 0
        self._best_val_mape = np.inf  # best validation MAPE over all fits

    # ------------------------------------------------------------------
    @property
    def n_refits(self) -> int:
        """Total (re)fits performed, including the initial one."""
        return len(self.refit_history)

    @property
    def drift_latch(self):
        """The shared drift detector, or ``None`` without one.

        Hand this to ``HybridController(drift_detector=...)`` and one
        latched detector drives both halves of the recovery story: this
        wrapper refits the model while the controller's burst mode
        provisions defensively until forecasts are healthy again.  Both
        consumers reset the detector when their recovery completes
        (refit installed here; burst cleared there) — the
        :class:`~repro.obs.monitor.drift.DriftDetectorBase` reset
        contract makes that safe from either side.
        """
        return self.refit_on_drift

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def state_dict(self, *, model_dir=None) -> dict:
        """JSON-serializable refit bookkeeping for crash-safe resume.

        Covers the refit history/counters, the rolling error window, the
        cached last forecast, the cool-down cursor, the best validation
        MAPE anchor, and (when the shared drift detector supports it) the
        detector state.  The fitted incumbent predictor itself is a model
        artifact, not bookkeeping: pass ``model_dir`` to persist it
        alongside via :meth:`~repro.core.predictor.LoadDynamicsPredictor.save`
        and the state records the directory for :meth:`load_state_dict`
        to reload from.  Without ``model_dir`` the state only records
        *whether* an incumbent existed, and loading restores bookkeeping
        around whatever predictor the instance currently holds.
        """
        out: dict = {
            "refit_history": list(self.refit_history),
            "failed_refits": self.failed_refits,
            "drift_refits": self.drift_refits,
            "recent_errors": list(self._recent_errors),
            "last_pred": self._last_pred,
            "last_len": self._last_len,
            "since_refit": self._since_refit,
            "best_val_mape": float(self._best_val_mape),
            "has_model": self.predictor is not None,
            "model_dir": None,
        }
        if self.refit_on_drift is not None and hasattr(
            self.refit_on_drift, "state_dict"
        ):
            out["drift_detector"] = self.refit_on_drift.state_dict()
        if model_dir is not None and self.predictor is not None:
            out["model_dir"] = str(self.predictor.save(model_dir))
        return out

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a same-config instance."""
        errors = [float(e) for e in state["recent_errors"]]
        if len(errors) > self.drift_window:
            raise ValueError(
                f"{len(errors)} saved errors exceed drift_window "
                f"{self.drift_window}"
            )
        self.refit_history = [int(n) for n in state["refit_history"]]
        self.failed_refits = int(state["failed_refits"])
        self.drift_refits = int(state["drift_refits"])
        self._recent_errors = deque(errors, maxlen=self.drift_window)
        last_pred = state["last_pred"]
        self._last_pred = float(last_pred) if last_pred is not None else None
        self._last_len = int(state["last_len"])
        self._since_refit = int(state["since_refit"])
        self._best_val_mape = float(state["best_val_mape"])
        if "drift_detector" in state and self.refit_on_drift is not None and hasattr(
            self.refit_on_drift, "load_state_dict"
        ):
            self.refit_on_drift.load_state_dict(state["drift_detector"])
        if state.get("model_dir"):
            self.predictor = LoadDynamicsPredictor.load(state["model_dir"])
        elif state["has_model"] and self.predictor is None:
            logger.warning(
                "restored adaptive bookkeeping records a fitted incumbent, "
                "but no model_dir was saved and none is loaded — the next "
                "fit() call will train a fresh predictor"
            )

    def _min_series_length(self) -> int:
        cfg = self._settings
        # Enough for a 60/20/20 split with some training windows.
        return max(int(np.ceil(4.0 / min(cfg.train_frac, cfg.val_frac))), 30)

    def _reference_error(self) -> float:
        """Healthy-error baseline for drift detection.

        Uses the *best* validation MAPE achieved by any (re)fit so far,
        not the current predictor's: right after a drift the retrain
        window still contains mostly-stale data, so the fresh model may
        validate terribly — if that inflated the reference, detection
        would freeze and the predictor would never recover.  Anchoring
        to the best-ever error keeps retraining until a fit becomes
        healthy again.
        """
        val = self._best_val_mape
        if not np.isfinite(val):
            val = self.error_floor
        return max(val, self.error_floor)

    def drift_detected(self) -> bool:
        """True when the error stream signals a pattern change.

        With a ``refit_on_drift`` detector installed, its latched flag
        is the signal; otherwise the original rolling-window threshold
        rule applies.
        """
        if self.refit_on_drift is not None:
            return bool(self.refit_on_drift.drifted)
        if len(self._recent_errors) < self.drift_window:
            return False
        return float(np.mean(self._recent_errors)) > self.drift_factor * self._reference_error()

    # ------------------------------------------------------------------
    def _refit(self, history: np.ndarray) -> bool:
        """Retrain through the retry policy; never raises (except crashes).

        Returns ``True`` when a fresh predictor was installed.  On
        failure or a blown deadline the incumbent keeps serving and the
        cool-down applies, so the serving loop survives a poisoned
        retrain window.
        """
        h = history
        if self.max_history is not None and len(h) > self.max_history:
            h = h[-self.max_history :]
        t0 = time.perf_counter()
        base_seed = self._settings.seed
        last_error: str | None = None
        for attempt in range(self.refit_policy.attempts):
            settings = self._settings
            if attempt:
                settings = replace(
                    settings, seed=self.refit_policy.seed_for(base_seed, attempt)
                )
            inj = _faults.active()
            try:
                if inj is not None:
                    inj.maybe_fire("adaptive.refit")
                ld = LoadDynamics(space=self._space, settings=settings)
                predictor, _report = ld.fit(h, target_channel=self.target_channel)
            except _faults.SimulatedCrash:
                raise
            except Exception as exc:
                last_error = f"{type(exc).__name__}: {exc}"
                logger.warning(
                    "adaptive refit attempt %d/%d failed: %s",
                    attempt + 1, self.refit_policy.attempts, last_error,
                )
                elapsed = time.perf_counter() - t0
                if self.refit_deadline_s is not None and elapsed > self.refit_deadline_s:
                    self._refit_failed("deadline_after_error", elapsed)
                    return False
                continue
            elapsed = time.perf_counter() - t0
            if (
                self.refit_deadline_s is not None
                and elapsed > self.refit_deadline_s
                and self.predictor is not None
            ):
                # The retrain beat nothing: it finished after the serving
                # budget while an incumbent was available the whole time.
                self._refit_failed("deadline", elapsed)
                return False
            self.predictor = predictor
            self.refit_history.append(len(history))
            if np.isfinite(self.predictor.validation_mape):
                self._best_val_mape = min(
                    self._best_val_mape, self.predictor.validation_mape
                )
            self._recent_errors.clear()
            self._since_refit = 0
            if self.refit_on_drift is not None:
                self.refit_on_drift.reset()
            return True
        self._refit_failed(last_error or "unknown", time.perf_counter() - t0)
        return False

    def _refit_failed(self, reason: str, elapsed_s: float) -> None:
        """Record a degraded refit: incumbent keeps serving, cool-down applies."""
        self.failed_refits += 1
        self._recent_errors.clear()
        self._since_refit = 0
        if self.refit_on_drift is not None:
            self.refit_on_drift.reset()
        _metrics.counter("adaptive.refit_failed").inc()
        logger.error(
            "adaptive refit failed after %.2fs (%s); serving %s",
            elapsed_s, reason,
            "incumbent predictor" if self.predictor is not None
            else "last-value fallback",
        )
        if _events.enabled():
            _events.emit(
                "adaptive.refit_failed",
                reason=reason,
                elapsed_s=elapsed_s,
                has_incumbent=self.predictor is not None,
                n_failed=self.failed_refits,
            )

    def fit(self, history: np.ndarray) -> "AdaptiveLoadDynamics":
        h = np.asarray(history, dtype=np.float64)
        if h.ndim != 2:
            h = h.ravel()
        n = int(h.shape[0])
        if n < self._last_len:
            # New series: start over.
            self.predictor = None
            self.refit_history.clear()
            self.failed_refits = 0
            self.drift_refits = 0
            self._recent_errors.clear()
            self._last_pred = None
            self._last_len = -1
            self._since_refit = 0
            self._best_val_mape = np.inf
            if self.refit_on_drift is not None:
                self.refit_on_drift.reset()

        # Score the cached forecast against every newly revealed value
        # (the target channel's value, for a multivariate history).
        if self.predictor is not None and self._last_pred is not None and n > self._last_len >= 0:
            actual = float(
                h[self._last_len, self.target_channel] if h.ndim == 2
                else h[self._last_len]
            )
            denom = max(abs(actual), 1e-9)
            err = 100.0 * abs(self._last_pred - actual) / denom
            self._recent_errors.append(err)
            if self.refit_on_drift is not None:
                self.refit_on_drift.update(err)
        self._since_refit += max(n - max(self._last_len, 0), 0)
        self._last_len = n

        if self.predictor is None:
            # After a *failed* initial fit the cool-down applies here too —
            # otherwise a poisoned history would retrain every interval.
            if n >= self._min_series_length() and (
                self.failed_refits == 0 or self._since_refit >= self.min_refit_gap
            ):
                self._refit(h)
        elif self.drift_detected() and self._since_refit >= self.min_refit_gap:
            self.drift_refits += 1
            _metrics.counter("adaptive.drift_refit").inc()
            if _events.enabled():
                _events.emit(
                    "adaptive.drift_refit",
                    history_len=n,
                    detector=(
                        getattr(self.refit_on_drift, "name", None)
                        if self.refit_on_drift is not None else "window_rule"
                    ),
                )
            self._refit(h)

        self._last_pred = (
            self.predictor.predict_next(h) if self.predictor is not None else None
        )
        return self

    def predict_next(self, history: np.ndarray) -> float:
        h = np.asarray(history, dtype=np.float64)
        if h.ndim != 2:
            h = h.ravel()
        if self.predictor is None or self._last_len != int(h.shape[0]) or self._last_pred is None:
            self.fit(h)
        if self._last_pred is None:
            return self._fallback(h[:, self.target_channel] if h.ndim == 2 else h)
        return float(self._last_pred)
