"""Data-preparation stage of the LoadDynamics workflow (split/scale/window).

First stage of the Fig. 6 pipeline, shared by every model family and by
the brute-force baseline: split the JAR series 60/20/20, fit the min-max
scaler on the *training split only* (leakage guard), and attach a
:class:`~repro.core.cache.WindowCache` so every trial that shares a
history length reuses the same window matrices.

A 2-D ``(N, D)`` series flows through the same three steps: the split
indices count time steps (rows), the scaler fits per-channel on the
training rows only (same leakage guard), and the window cache hands out
``(n_windows, n, D)`` tensors targeting ``target_channel``.  The 1-D
path is byte-identical to the pre-multivariate implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import WindowCache
from repro.core.config import FrameworkSettings
from repro.core.scaling import MinMaxScaler

__all__ = ["PreparedData", "prepare_data"]


@dataclass
class PreparedData:
    """Split, scaled, and window-cached view of one JAR series."""

    raw: np.ndarray
    scaled: np.ndarray
    scaler: MinMaxScaler
    i_train_end: int
    i_val_end: int
    window_cache: WindowCache | None = None
    n_channels: int = 1
    target_channel: int = 0

    @property
    def n_intervals(self) -> int:
        return int(self.raw.shape[0]) if self.raw.ndim == 2 else int(self.raw.size)

    @property
    def target_scaler(self) -> MinMaxScaler:
        """Scalar scaler for the target channel (the whole scaler if 1-D)."""
        if self.scaler.n_channels_ is None:
            return self.scaler
        return self.scaler.channel(self.target_channel)


def prepare_data(
    series: np.ndarray,
    settings: FrameworkSettings,
    *,
    window_cache: bool = True,
    target_channel: int = 0,
) -> PreparedData:
    """Split + scale + window a series per the framework settings.

    Raises ``ValueError`` when the series is too short for the
    configured train/val fractions.  ``window_cache=False`` skips
    building the cross-trial cache (single-evaluation callers).
    ``target_channel`` selects the predicted channel of a 2-D series
    (ignored for 1-D input).
    """
    s = np.asarray(series, dtype=np.float64)
    multivariate = s.ndim == 2
    if multivariate:
        n_channels = int(s.shape[1])
        if not 0 <= target_channel < n_channels:
            raise ValueError(
                f"target_channel {target_channel} out of range for "
                f"{n_channels}-channel series"
            )
        n_total = int(s.shape[0])
    else:
        s = s.ravel()
        n_channels = 1
        target_channel = 0
        n_total = s.size
    cfg = settings
    i_train_end = int(round(cfg.train_frac * n_total))
    i_val_end = int(round((cfg.train_frac + cfg.val_frac) * n_total))
    if i_train_end < 4 or i_val_end - i_train_end < 2:
        raise ValueError(
            f"series of length {n_total} too short for the "
            f"{cfg.train_frac:.0%}/{cfg.val_frac:.0%} split"
        )

    # Scaler fit on the training split ONLY (leakage guard); per-channel
    # for a 2-D series.
    scaler = MinMaxScaler().fit(s[:i_train_end])
    scaled = scaler.transform(s)
    cache = (
        WindowCache(
            scaled, i_train_end, i_val_end, cfg.max_train_windows,
            target_channel=target_channel,
        )
        if window_cache
        else None
    )
    return PreparedData(
        raw=s,
        scaled=scaled,
        scaler=scaler,
        i_train_end=i_train_end,
        i_val_end=i_val_end,
        window_cache=cache,
        n_channels=n_channels,
        target_channel=target_channel,
    )
