"""Data-preparation stage of the LoadDynamics workflow (split/scale/window).

First stage of the Fig. 6 pipeline, shared by every model family and by
the brute-force baseline: split the JAR series 60/20/20, fit the min-max
scaler on the *training split only* (leakage guard), and attach a
:class:`~repro.core.cache.WindowCache` so every trial that shares a
history length reuses the same window matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import WindowCache
from repro.core.config import FrameworkSettings
from repro.core.scaling import MinMaxScaler

__all__ = ["PreparedData", "prepare_data"]


@dataclass
class PreparedData:
    """Split, scaled, and window-cached view of one JAR series."""

    raw: np.ndarray
    scaled: np.ndarray
    scaler: MinMaxScaler
    i_train_end: int
    i_val_end: int
    window_cache: WindowCache | None = None

    @property
    def n_intervals(self) -> int:
        return int(self.raw.size)


def prepare_data(
    series: np.ndarray,
    settings: FrameworkSettings,
    *,
    window_cache: bool = True,
) -> PreparedData:
    """Split + scale + window a series per the framework settings.

    Raises ``ValueError`` when the series is too short for the
    configured train/val fractions.  ``window_cache=False`` skips
    building the cross-trial cache (single-evaluation callers).
    """
    s = np.asarray(series, dtype=np.float64).ravel()
    cfg = settings
    n_total = s.size
    i_train_end = int(round(cfg.train_frac * n_total))
    i_val_end = int(round((cfg.train_frac + cfg.val_frac) * n_total))
    if i_train_end < 4 or i_val_end - i_train_end < 2:
        raise ValueError(
            f"series of length {n_total} too short for the "
            f"{cfg.train_frac:.0%}/{cfg.val_frac:.0%} split"
        )

    # Scaler fit on the training split ONLY (leakage guard).
    scaler = MinMaxScaler().fit(s[:i_train_end])
    scaled = scaler.transform(s)
    cache = (
        WindowCache(scaled, i_train_end, i_val_end, cfg.max_train_windows)
        if window_cache
        else None
    )
    return PreparedData(
        raw=s,
        scaled=scaled,
        scaler=scaler,
        i_train_end=i_train_end,
        i_val_end=i_val_end,
        window_cache=cache,
    )
