"""Supervised windowing of JAR series (paper Eq. 1).

``P_i = f(J_{i-1}, …, J_{i-n})``: every training sample is a length-n
sliding window paired with the value that followed it.  Windows are
built with stride tricks (zero-copy views) and only materialized where
the training loop needs contiguous batches.

A 2-D ``(N, D)`` series produces ``(n_windows, n, D)`` window tensors —
each window carries all D channels — while the paired target ``y`` is
the next value of the *target channel* only.  Windowing a multivariate
series is exactly per-channel 1-D windowing stacked on the last axis
(property-tested), and the 1-D code path is byte-identical to the
pre-multivariate implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_windows", "windows_for_range"]


def _as_series(series: np.ndarray) -> np.ndarray:
    """Coerce to float64, keeping a channels axis only when 2-D."""
    s = np.asarray(series, dtype=np.float64)
    if s.ndim == 2:
        return s
    return s.ravel()


def make_windows(
    series: np.ndarray, n: int, *, target: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """All (window → next value) pairs within ``series``.

    For a 1-D series returns ``X`` of shape (N, n) and ``y`` of shape
    (N,) where ``X[j] = series[j : j+n]`` and ``y[j] = series[j+n]``.
    For a 2-D ``(len, D)`` series ``X`` has shape (N, n, D) and
    ``y[j] = series[j+n, target]``.
    """
    s = _as_series(series)
    if n < 1:
        raise ValueError("history length n must be >= 1")
    if s.ndim == 2:
        n_steps = s.shape[0]
        if n_steps <= n:
            raise ValueError(
                f"series of length {n_steps} yields no windows of history length {n}"
            )
        # sliding_window_view over axis 0 appends the window axis last:
        # (N, D, n) → transpose to (N, n, D).
        X = np.lib.stride_tricks.sliding_window_view(
            s[:-1], n, axis=0
        ).transpose(0, 2, 1)
        y = s[n:, target]
        return np.ascontiguousarray(X), y.copy()
    if s.size <= n:
        raise ValueError(
            f"series of length {s.size} yields no windows of history length {n}"
        )
    X = np.lib.stride_tricks.sliding_window_view(s[:-1], n)
    y = s[n:]
    return np.ascontiguousarray(X), y.copy()


def windows_for_range(
    series: np.ndarray, n: int, start: int, end: int | None = None,
    *, copy: bool = True, target: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Windows whose *targets* fall in ``series[start:end]``.

    This is how the cross-validation and test sets are evaluated in the
    paper's workflow: the targets come from the held-out range, but each
    window may reach back into earlier data (the series is continuous in
    time — Fig. 7).  Targets whose window would start before index 0 are
    dropped.

    With ``copy=False`` the returned arrays are read-only-by-convention
    views aliasing ``series`` (values identical): callers that feed the
    windows straight into a value-producing transform — the inference
    path, whose scaler copies anyway — skip one materialization.

    A 2-D ``(len, D)`` series yields (n_windows, n, D) windows with
    targets drawn from channel ``target``.
    """
    s = _as_series(series)
    if n < 1:
        raise ValueError("history length n must be >= 1")
    if s.ndim == 2:
        n_steps = s.shape[0]
        end = n_steps if end is None else end
        if not 0 <= start < end <= n_steps:
            raise ValueError(
                f"invalid target range [{start}, {end}) for length {n_steps}"
            )
        first = max(start, n)  # earliest target with a full window
        if first >= end:
            return np.empty((0, n, s.shape[1])), np.empty(0)
        X = np.lib.stride_tricks.sliding_window_view(s, n, axis=0)[
            first - n : end - n
        ].transpose(0, 2, 1)
        y = s[first:end, target]
        if not copy:
            return X, y
        return np.ascontiguousarray(X), y.copy()
    end = s.size if end is None else end
    if not 0 <= start < end <= s.size:
        raise ValueError(f"invalid target range [{start}, {end}) for length {s.size}")
    first = max(start, n)  # earliest target with a full window
    if first >= end:
        return np.empty((0, n)), np.empty(0)
    # The targets form a contiguous range, so a plain slice of the
    # sliding view (one strided copy) beats a fancy-index gather.
    X = np.lib.stride_tricks.sliding_window_view(s, n)[first - n : end - n]
    y = s[first:end]
    if not copy:
        return X, y
    return np.ascontiguousarray(X), y.copy()
