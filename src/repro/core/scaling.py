"""Min-max normalization fit on the training split only.

LSTM gates saturate far from [0, 1]-scale inputs, so JARs (which span
1–10^7 across the paper's traces) are normalized before training.  The
scaler must be fit on the *training* split only — fitting on the full
series would leak the test range into training, inflating accuracy; the
leakage guard is part of the tested contract.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxScaler"]


class MinMaxScaler:
    """Affine map of [data_min, data_max] onto [lo, hi] (default [0, 1]).

    Values outside the fitted range (the test split routinely exceeds the
    training maximum for growing workloads) are transformed by the same
    affine map — *not* clipped — so inverse_transform is always exact.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        lo, hi = feature_range
        if not lo < hi:
            raise ValueError("feature_range must be increasing")
        self.lo = float(lo)
        self.hi = float(hi)
        self.data_min_: float | None = None
        self.data_max_: float | None = None

    @property
    def is_fitted(self) -> bool:
        return self.data_min_ is not None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        v = np.asarray(values, dtype=np.float64)
        if v.size == 0:
            raise ValueError("cannot fit scaler on empty data")
        self.data_min_ = float(np.min(v))
        self.data_max_ = float(np.max(v))
        return self

    def _scale(self) -> float:
        span = self.data_max_ - self.data_min_
        # Constant series: map everything to the midpoint, stay invertible
        # by treating the span as 1 (transform then shifts only).
        return (self.hi - self.lo) / (span if span > 1e-12 else 1.0)

    def transform(self, values: np.ndarray) -> np.ndarray:
        # lo + (v - min) * scale, with two bitwise-neutral shortcuts for
        # the inference hot path: the multiply runs in place on the
        # subtraction's output (in-place ufuncs round identically), and
        # the `lo +` pass is skipped when lo == 0.0 — (v - min) * scale
        # is never -0.0 (scale > 0; exact-equal operands subtract to
        # +0.0), so adding zero could not change a single bit.
        if not self.is_fitted:
            raise RuntimeError("call fit() first")
        v = np.asarray(values, dtype=np.float64)
        out = np.subtract(v, self.data_min_)
        out *= self._scale()
        if self.lo != 0.0:
            out += self.lo
        return out

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        # data_min + (v - lo) / scale with the same shortcuts as
        # :meth:`transform` (x - 0.0 == x for every float, and IEEE
        # addition commutes bitwise, so folding data_min in last is
        # exact).
        if not self.is_fitted:
            raise RuntimeError("call fit() first")
        v = np.asarray(values, dtype=np.float64)
        if self.lo != 0.0:
            out = np.subtract(v, self.lo)
            out /= self._scale()
        else:
            out = np.divide(v, self._scale())
        out += self.data_min_
        return out

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def state(self) -> dict:
        """Serializable state (used by predictor save/load)."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "data_min": self.data_min_,
            "data_max": self.data_max_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "MinMaxScaler":
        s = cls(feature_range=(state["lo"], state["hi"]))
        s.data_min_ = state["data_min"]
        s.data_max_ = state["data_max"]
        return s
