"""Min-max normalization fit on the training split only.

LSTM gates saturate far from [0, 1]-scale inputs, so JARs (which span
1–10^7 across the paper's traces) are normalized before training.  The
scaler must be fit on the *training* split only — fitting on the full
series would leak the test range into training, inflating accuracy; the
leakage guard is part of the tested contract.

Fitting on a 2-D ``(N, D)`` series makes the scaler *per-channel*: each
channel gets its own min/max, and transforms broadcast over the last
axis (so both ``(N, D)`` series and ``(batch, n, D)`` window tensors
scale channel-wise).  A 1-D fit keeps the original scalar state — and
the original serialized form — bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxScaler"]


class MinMaxScaler:
    """Affine map of [data_min, data_max] onto [lo, hi] (default [0, 1]).

    Values outside the fitted range (the test split routinely exceeds the
    training maximum for growing workloads) are transformed by the same
    affine map — *not* clipped — so inverse_transform is always exact.
    """

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        lo, hi = feature_range
        if not lo < hi:
            raise ValueError("feature_range must be increasing")
        self.lo = float(lo)
        self.hi = float(hi)
        self.data_min_: float | np.ndarray | None = None
        self.data_max_: float | np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.data_min_ is not None

    @property
    def n_channels_(self) -> int | None:
        """Channel count of a per-channel fit; ``None`` for a scalar fit."""
        if isinstance(self.data_min_, np.ndarray):
            return int(self.data_min_.size)
        return None

    def fit(self, values: np.ndarray) -> "MinMaxScaler":
        v = np.asarray(values, dtype=np.float64)
        if v.size == 0:
            raise ValueError("cannot fit scaler on empty data")
        if v.ndim >= 2:
            # Per-channel fit: channels are the last axis.
            axes = tuple(range(v.ndim - 1))
            self.data_min_ = np.min(v, axis=axes).astype(np.float64)
            self.data_max_ = np.max(v, axis=axes).astype(np.float64)
        else:
            self.data_min_ = float(np.min(v))
            self.data_max_ = float(np.max(v))
        return self

    def channel(self, c: int) -> "MinMaxScaler":
        """Scalar scaler for channel ``c`` of a per-channel fit.

        A scalar-fitted scaler returns itself for channel 0 (there is
        only one channel), keeping callers channel-agnostic.
        """
        if not self.is_fitted:
            raise RuntimeError("call fit() first")
        if self.n_channels_ is None:
            if c != 0:
                raise IndexError(f"scalar scaler has no channel {c}")
            return self
        sub = MinMaxScaler(feature_range=(self.lo, self.hi))
        sub.data_min_ = float(self.data_min_[c])
        sub.data_max_ = float(self.data_max_[c])
        return sub

    def _scale(self) -> float | np.ndarray:
        span = self.data_max_ - self.data_min_
        # Constant series: map everything to the midpoint, stay invertible
        # by treating the span as 1 (transform then shifts only).
        if isinstance(span, np.ndarray):
            return (self.hi - self.lo) / np.where(span > 1e-12, span, 1.0)
        return (self.hi - self.lo) / (span if span > 1e-12 else 1.0)

    def transform(self, values: np.ndarray) -> np.ndarray:
        # lo + (v - min) * scale, with two bitwise-neutral shortcuts for
        # the inference hot path: the multiply runs in place on the
        # subtraction's output (in-place ufuncs round identically), and
        # the `lo +` pass is skipped when lo == 0.0 — (v - min) * scale
        # is never -0.0 (scale > 0; exact-equal operands subtract to
        # +0.0), so adding zero could not change a single bit.
        if not self.is_fitted:
            raise RuntimeError("call fit() first")
        v = np.asarray(values, dtype=np.float64)
        out = np.subtract(v, self.data_min_)
        out *= self._scale()
        if self.lo != 0.0:
            out += self.lo
        return out

    def inverse_transform(self, values: np.ndarray) -> np.ndarray:
        # data_min + (v - lo) / scale with the same shortcuts as
        # :meth:`transform` (x - 0.0 == x for every float, and IEEE
        # addition commutes bitwise, so folding data_min in last is
        # exact).
        if not self.is_fitted:
            raise RuntimeError("call fit() first")
        v = np.asarray(values, dtype=np.float64)
        if self.lo != 0.0:
            out = np.subtract(v, self.lo)
            out /= self._scale()
        else:
            out = np.divide(v, self._scale())
        out += self.data_min_
        return out

    def fit_transform(self, values: np.ndarray) -> np.ndarray:
        return self.fit(values).transform(values)

    def state(self) -> dict:
        """Serializable state (used by predictor save/load).

        Scalar fits keep the original float-valued form; per-channel
        fits store ``data_min``/``data_max`` as lists.  ``from_state``
        accepts both, so pre-multivariate predictor directories load
        unchanged.
        """
        if isinstance(self.data_min_, np.ndarray):
            return {
                "lo": self.lo,
                "hi": self.hi,
                "data_min": self.data_min_.tolist(),
                "data_max": self.data_max_.tolist(),
            }
        return {
            "lo": self.lo,
            "hi": self.hi,
            "data_min": self.data_min_,
            "data_max": self.data_max_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "MinMaxScaler":
        s = cls(feature_range=(state["lo"], state["hi"]))
        dmin, dmax = state["data_min"], state["data_max"]
        if isinstance(dmin, (list, tuple)):
            s.data_min_ = np.asarray(dmin, dtype=np.float64)
            s.data_max_ = np.asarray(dmax, dtype=np.float64)
        else:
            s.data_min_ = dmin
            s.data_max_ = dmax
        return s
