"""Cross-trial caches for the LoadDynamics search (perf layer).

Two observations make the Fig. 6 loop cheaper without changing any
result:

* every trial with the same history length ``n`` rebuilds identical
  training/validation window matrices from the same scaled series —
  :class:`WindowCache` builds them once per distinct ``n`` and hands
  out the shared (read-only by convention) arrays;
* optimizers occasionally re-suggest an already-validated config
  (integer rounding collapses nearby GP proposals onto an explored
  point) — :class:`TrialMemo` returns the recorded objective instead
  of retraining, which is exact because training is deterministic for
  a fixed seed/config/data.

Both caches are scoped to one :meth:`repro.core.LoadDynamics.fit` call;
hit/miss counts land on the ``cache.windows.*`` / ``cache.trials.*``
observability counters.
"""

from __future__ import annotations

import numpy as np

from repro.core.windowing import make_windows, windows_for_range
from repro.obs import metrics as _metrics

__all__ = ["WindowCache", "TrialMemo"]


class WindowCache:
    """Per-fit cache of supervised window matrices, keyed by ``n``.

    The split indices, scaled series, and ``max_train_windows``
    truncation are fixed for the whole search, so the windowed data set
    for a given history length is too — it is built on first use and
    reused by every later trial that shares the ``n``.
    """

    def __init__(
        self,
        scaled: np.ndarray,
        i_train_end: int,
        i_val_end: int,
        max_train_windows: int | None = None,
        target_channel: int = 0,
    ):
        s = np.asarray(scaled, dtype=np.float64)
        # A 2-D (N, D) series keeps its channels axis; anything else is
        # the original univariate path, raveled exactly as before.
        self._scaled = s if s.ndim == 2 else s.ravel()
        self._i_train_end = int(i_train_end)
        self._i_val_end = int(i_val_end)
        self._max_train_windows = max_train_windows
        self._target_channel = int(target_channel)
        self._store: dict[int, tuple] = {}

    @property
    def n_channels(self) -> int:
        return self._scaled.shape[1] if self._scaled.ndim == 2 else 1

    @property
    def target_channel(self) -> int:
        return self._target_channel

    def get(self, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(X_train, y_train, X_val, y_val)`` for history length ``n``.

        Arrays are shared across callers — treat them as read-only.
        """
        n = int(n)
        entry = self._store.get(n)
        if entry is not None:
            _metrics.counter("cache.windows.hits").inc()
            self._publish_hit_rate()
            return entry
        _metrics.counter("cache.windows.misses").inc()
        self._publish_hit_rate()
        X_train, y_train = make_windows(
            self._scaled[: self._i_train_end], n, target=self._target_channel
        )
        if (
            self._max_train_windows is not None
            and len(y_train) > self._max_train_windows
        ):
            X_train = X_train[-self._max_train_windows :]
            y_train = y_train[-self._max_train_windows :]
        X_val, y_val = windows_for_range(
            self._scaled, n, self._i_train_end, self._i_val_end,
            target=self._target_channel,
        )
        entry = (X_train, y_train, X_val, y_val)
        self._store[n] = entry
        return entry

    @staticmethod
    def _publish_hit_rate() -> None:
        """Keep ``cache.windows.hit_rate`` current after every lookup.

        The process-lifetime ratio of the hit/miss counters: a low value
        on a long search means the space's integer rounding is spreading
        trials across many distinct history lengths and the windowing
        cost is being paid repeatedly.
        """
        hits = _metrics.counter("cache.windows.hits").value
        misses = _metrics.counter("cache.windows.misses").value
        total = hits + misses
        if total > 0:
            _metrics.gauge("cache.windows.hit_rate").set(hits / total)

    def __len__(self) -> int:
        return len(self._store)


class TrialMemo:
    """Duplicate-config memoization of ``(objective value, metadata)``.

    Keyed by the sorted config items; models are *not* stored (the best
    model is tracked by the fit loop itself), so a memo hit returns the
    recorded value and metadata with no retraining.

    ``family`` salts the keys so distinct model families never collide
    on a shared config shape (e.g. two families that both tune only
    ``history_len``); a memo is scoped to one fit, but salting keeps
    the invariant even if one is ever reused across searches.
    """

    def __init__(self, family: str | None = None):
        self._store: dict[tuple, tuple[float, dict]] = {}
        self._family = family

    @staticmethod
    def key(config: dict) -> tuple:
        return tuple(sorted(config.items()))

    def _key(self, config: dict) -> tuple:
        base = self.key(config)
        return base if self._family is None else (self._family,) + base

    def get(self, config: dict) -> tuple[float, dict] | None:
        hit = self._store.get(self._key(config))
        if hit is None:
            _metrics.counter("cache.trials.misses").inc()
            return None
        _metrics.counter("cache.trials.hits").inc()
        value, meta = hit
        return value, dict(meta)

    def put(self, config: dict, value: float, meta: dict | None = None) -> None:
        self._store[self._key(config)] = (float(value), dict(meta or {}))

    def __contains__(self, config: dict) -> bool:
        return self._key(config) in self._store

    def __len__(self) -> int:
        return len(self._store)
