"""Search-driver stage: Fig. 6 step 3 with the resilience semantics.

The driver owns the suggest → evaluate → tell loop around any
:mod:`repro.bayesopt` optimizer, replacing ``optimizer.run`` with the
crash-safe variant the framework has always used:

* every completed trial is fsynced to the :class:`TrialJournal`
  (config, value, metadata, optimizer search state) before the next
  one starts, so a crash loses at most the in-flight trial;
* repeat offenders (divergence/timeout failures) are quarantined and
  never suggested again;
* a journal written by an interrupted run can be *replayed* into a
  fresh optimizer — each trial is ``tell``-ed with its recorded value,
  no retraining — after which the continued run is deterministic.

The driver is model-family-agnostic: it sees only configs, objective
values, and metadata dicts.  What a trial *does* lives in the
evaluation stage (:class:`~repro.core.evaluation.TrialEvaluator`).
"""

from __future__ import annotations

from repro.core.cache import TrialMemo
from repro.core.constants import FAILURE_REASONS
from repro.bayesopt.optimizer import unpack_objective
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger
from repro.resilience import faults as _faults
from repro.resilience.journal import TrialJournal

logger = get_logger("core.driver")

__all__ = ["SearchDriver", "normalize_journal_header"]


def normalize_journal_header(stored_header: dict) -> dict:
    """Upgrade a pre-family journal header in place (and return it).

    Journals written before the model-family refactor have no
    ``family`` key; every one of them was an LSTM search, so the tag
    defaults to ``"lstm"`` and old journals keep resuming bit-for-bit.
    """
    stored_header.setdefault("family", "lstm")
    return stored_header


class SearchDriver:
    """Resilient suggest/evaluate/tell loop over one optimizer.

    Parameters
    ----------
    optimizer:
        Any :mod:`repro.bayesopt` optimizer (``suggest``/``tell``; the
        parallel loop additionally uses ``suggest_batch``).
    journal:
        Optional open :class:`~repro.resilience.TrialJournal`; completed
        trials are appended (fsynced) as they finish.
    quarantine:
        Optional :class:`~repro.resilience.retry.Quarantine` ledger.
    """

    def __init__(self, optimizer, journal: TrialJournal | None = None,
                 quarantine=None):
        self.optimizer = optimizer
        self.journal = journal
        self.quarantine = quarantine

    # ------------------------------------------------------------------
    def run(self, objective, n_iters: int) -> None:
        """Serial loop: one suggest → objective → tell per iteration."""
        for _ in range(max(0, n_iters)):
            try:
                config = self.optimizer.suggest()
            except StopIteration:  # grid exhausted
                break
            value, meta = unpack_objective(objective(config))
            record = self.optimizer.tell(config, value, **meta)
            self._after_trial(record, config)

    def run_parallel(
        self,
        raw_eval,
        settle,
        memo: TrialMemo,
        n_iters: int,
        workers: int,
    ) -> None:
        """Batched variant of :meth:`run` for ``fit(n_workers > 1)``.

        Each round asks the optimizer for up to ``workers`` candidates
        (constant-liar batch for the GP, plain draws otherwise),
        short-circuits memoized configs, trains the rest concurrently
        through :func:`repro.parallel.parallel_map`, and tells/journals
        the results in suggestion order — so the trial history layout
        matches the serial driver's.
        """
        from repro.parallel import parallel_map

        remaining = max(0, n_iters)
        while remaining > 0:
            try:
                configs = self.optimizer.suggest_batch(min(workers, remaining))
            except StopIteration:  # grid exhausted
                break
            if not configs:
                break
            injector = _faults.active()
            if injector is not None:
                # Fault injection stays in the parent so injected
                # failures hit the run deterministically, not whichever
                # worker happens to import the injector.
                for _ in configs:
                    injector.maybe_fire("objective")
            results: list = [None] * len(configs)
            todo: list[int] = []
            for i, config in enumerate(configs):
                hit = memo.get(config)
                if hit is not None:
                    value, meta = hit
                    results[i] = (value, None, {**meta, "cache_hit": True})
                else:
                    todo.append(i)
            if len(todo) == 1:
                results[todo[0]] = raw_eval(configs[todo[0]])
            elif todo:
                outs = parallel_map(
                    raw_eval,
                    [configs[i] for i in todo],
                    n_workers=workers,
                    chunks_per_worker=1,
                )
                for i, out in zip(todo, outs, strict=True):
                    results[i] = out
            for config, (value, model, meta) in zip(configs, results, strict=True):
                value, meta = settle(config, value, model, meta)
                record = self.optimizer.tell(config, value, **meta)
                self._after_trial(record, config)
            remaining -= len(configs)

    # ------------------------------------------------------------------
    def _after_trial(self, record, config) -> None:
        """Post-``tell`` bookkeeping shared by both loops: quarantine
        repeat offenders and fsync the trial to the journal."""
        if (
            self.quarantine is not None
            and record.metadata.get("reason") in FAILURE_REASONS
        ):
            failures = self.quarantine.record_failure(config)
            if self.quarantine.is_quarantined(config):
                _metrics.counter("trial.quarantined").inc()
                logger.warning(
                    "config %s quarantined after %d failures", config, failures
                )
                if _events.enabled():
                    _events.emit(
                        "trial.quarantined", config=dict(config), failures=failures
                    )
        if self.journal is not None:
            state = (
                self.optimizer.search_state()
                if hasattr(self.optimizer, "search_state")
                else None
            )
            self.journal.append_trial(
                record.iteration,
                record.config,
                record.value,
                record.metadata,
                state=state,
            )

    # ------------------------------------------------------------------
    def replay(
        self, header: dict, best: dict, memo: TrialMemo | None = None
    ) -> tuple[int, int]:
        """Feed the journal's completed trials back into the optimizer.

        Returns ``(n_replayed, n_infeasible)``.  Each trial is
        ``tell``-ed with its recorded value (no retraining), the
        quarantine ledger is rebuilt from the recorded failure reasons,
        and the optimizer's search state (RNG/cursor) is restored from
        the last trial — after which the continued run is deterministic.
        """
        stored_header, trials = TrialJournal.load(self.journal.path)
        TrialJournal.check_header(normalize_journal_header(stored_header), header)
        n_infeasible = 0
        last_state = None
        for trial in trials:
            meta = dict(trial.get("metadata") or {})
            if memo is not None:
                # Seed the duplicate-config memo so the continued run
                # never retrains a journaled config.
                memo.put(trial["config"], trial["value"], meta)
            meta["replayed"] = True
            record = self.optimizer.tell(trial["config"], trial["value"], **meta)
            if meta.get("infeasible"):
                n_infeasible += 1
                if (
                    self.quarantine is not None
                    and meta.get("reason") in FAILURE_REASONS
                ):
                    self.quarantine.record_failure(record.config)
            elif record.value < best["mape"]:
                best.update(mape=record.value, config=record.config, model=None)
            if trial.get("state") is not None:
                last_state = trial["state"]
        if last_state is not None and hasattr(self.optimizer, "restore_search_state"):
            self.optimizer.restore_search_state(last_state)
        logger.info(
            "resumed from %s: replayed %d trials (%d infeasible)",
            self.journal.path, len(trials), n_infeasible,
        )
        return len(trials), n_infeasible
