"""Constants shared by the trial-evaluation and search-driver stages.

Hoisted out of the old ``core/framework.py`` monolith so every model
family's evaluation stage and the resilient search driver agree on the
same values — a family that invented its own penalty would silently
skew the optimizer's view of the landscape.
"""

from __future__ import annotations

__all__ = ["INFEASIBLE_PENALTY", "FAILURE_REASONS"]

#: Objective value for hyperparameter sets that cannot be trained
#: (history longer than the training split, degenerate windows, ...).
INFEASIBLE_PENALTY = 1e6

#: Infeasibility reasons that count as *failures* for the quarantine —
#: transient/training pathologies, as opposed to deterministic
#: infeasibility (too few windows) the optimizers already steer around.
FAILURE_REASONS = frozenset({"training_diverged", "trial_timeout"})
