"""LoadDynamics — the paper's primary contribution.

The self-optimized generic workload prediction framework (paper
Section III): stacked LSTM predictors whose four hyperparameters
(history length ``n``, cell-memory size, layer count, batch size) are
tuned per workload by Bayesian Optimization over the Table III search
space, following the Fig. 6 workflow.

Public entry points:

* :class:`~repro.core.framework.LoadDynamics` — fit on a JAR series,
  get back a :class:`~repro.core.predictor.LoadDynamicsPredictor`;
  ``family=`` selects the :mod:`repro.models` family a trial trains;
* :func:`~repro.core.config.search_space_for` — Table III spaces;
* the pipeline stages — :func:`~repro.core.data.prepare_data`,
  :class:`~repro.core.evaluation.TrialEvaluator`,
  :class:`~repro.core.driver.SearchDriver` — composable directly
  (the brute-force baseline and Fig. 5 bench do);
* :mod:`~repro.core.windowing` / :mod:`~repro.core.scaling` — the data
  plumbing (Eq. 1 windows, leak-free min-max normalization).
"""

from repro.core.adaptive import AdaptiveLoadDynamics
from repro.core.cache import TrialMemo, WindowCache
from repro.core.config import (
    FrameworkSettings,
    GenericHyperparameters,
    LSTMHyperparameters,
    history_range,
    search_space_for,
)
from repro.core.constants import FAILURE_REASONS, INFEASIBLE_PENALTY
from repro.core.data import PreparedData, prepare_data
from repro.core.driver import SearchDriver
from repro.core.evaluation import TrialEvaluator
from repro.core.framework import FitReport, LoadDynamics
from repro.core.predictor import LoadDynamicsPredictor
from repro.core.scaling import MinMaxScaler
from repro.core.windowing import make_windows, windows_for_range

__all__ = [
    "AdaptiveLoadDynamics",
    "LoadDynamics",
    "LoadDynamicsPredictor",
    "FitReport",
    "LSTMHyperparameters",
    "GenericHyperparameters",
    "FrameworkSettings",
    "search_space_for",
    "history_range",
    "MinMaxScaler",
    "TrialMemo",
    "WindowCache",
    "PreparedData",
    "prepare_data",
    "TrialEvaluator",
    "SearchDriver",
    "INFEASIBLE_PENALTY",
    "FAILURE_REASONS",
    "make_windows",
    "windows_for_range",
]
