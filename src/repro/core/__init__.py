"""LoadDynamics — the paper's primary contribution.

The self-optimized generic workload prediction framework (paper
Section III): stacked LSTM predictors whose four hyperparameters
(history length ``n``, cell-memory size, layer count, batch size) are
tuned per workload by Bayesian Optimization over the Table III search
space, following the Fig. 6 workflow.

Public entry points:

* :class:`~repro.core.framework.LoadDynamics` — fit on a JAR series,
  get back a :class:`~repro.core.predictor.LoadDynamicsPredictor`;
* :func:`~repro.core.config.search_space_for` — Table III spaces;
* :mod:`~repro.core.windowing` / :mod:`~repro.core.scaling` — the data
  plumbing (Eq. 1 windows, leak-free min-max normalization).
"""

from repro.core.adaptive import AdaptiveLoadDynamics
from repro.core.cache import TrialMemo, WindowCache
from repro.core.config import (
    FrameworkSettings,
    LSTMHyperparameters,
    search_space_for,
)
from repro.core.framework import FitReport, LoadDynamics
from repro.core.predictor import LoadDynamicsPredictor
from repro.core.scaling import MinMaxScaler
from repro.core.windowing import make_windows, windows_for_range

__all__ = [
    "AdaptiveLoadDynamics",
    "LoadDynamics",
    "LoadDynamicsPredictor",
    "FitReport",
    "LSTMHyperparameters",
    "FrameworkSettings",
    "search_space_for",
    "MinMaxScaler",
    "TrialMemo",
    "WindowCache",
    "make_windows",
    "windows_for_range",
]
