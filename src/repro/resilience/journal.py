"""Crash-safe trial journal: append-only JSONL checkpointing for the BO loop.

The Fig. 6 workflow runs ``maxIters`` expensive LSTM trainings
back-to-back; a crash at trial 37/50 must not throw away the 36
completed trials.  Every finished trial is appended — config, objective
value, metadata, and the optimizer's search state (RNG state or grid
cursor) — to a JSONL journal, each line flushed and fsynced before the
next trial starts.  Resuming replays the journal into a fresh optimizer
via ``tell()`` and restores the recorded search state, after which the
continued run is bit-for-bit identical to an uninterrupted one.

File layout::

    {"kind": "header", "version": 1, "optimizer": ..., "seed": ..., ...}
    {"kind": "trial", "iteration": 0, "config": {...}, "value": ..., "metadata": {...}, "state": {...}}
    ...

A crash mid-append leaves at most one truncated final line; the reader
drops it (and anything after a corrupt line) with a warning instead of
failing, so a journal is always resumable up to its last durable trial.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.obs.logging import get_logger

__all__ = ["TrialJournal", "JournalError", "JOURNAL_VERSION"]

logger = get_logger("resilience.journal")

JOURNAL_VERSION = 1


class JournalError(ValueError):
    """Unusable journal: missing/invalid header or incompatible run."""


def _json_default(obj: Any):
    item = getattr(obj, "item", None)
    if callable(item):  # numpy scalars
        return item()
    if isinstance(obj, (set, tuple)):
        return list(obj)
    return str(obj)


class TrialJournal:
    """Append-only JSONL journal of one optimization run.

    Writing: :meth:`start` (fresh run, truncates) or :meth:`reopen`
    (resumed run, appends), then :meth:`append_trial` once per completed
    trial, then :meth:`close`.  Every append is flushed and fsynced so a
    SIGKILL loses at most the in-flight trial.

    Reading: :meth:`load` is a classmethod and never needs an instance.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def start(self, header: dict) -> None:
        """Begin a fresh journal (truncating any previous file)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w", encoding="utf-8")
        record = {"kind": "header", "version": JOURNAL_VERSION, "time": time.time()}
        record.update(header)
        self._write(record)

    def reopen(self) -> None:
        """Open an existing journal for appending (resume path)."""
        if not self.path.exists():
            raise JournalError(f"cannot resume: journal {self.path} does not exist")
        self._fh = open(self.path, "a", encoding="utf-8")

    def append_trial(
        self,
        iteration: int,
        config: dict,
        value: float,
        metadata: dict | None = None,
        state: dict | None = None,
    ) -> None:
        record = {
            "kind": "trial",
            "iteration": int(iteration),
            "config": dict(config),
            "value": float(value),
            "metadata": dict(metadata or {}),
        }
        if state is not None:
            record["state"] = state
        self._write(record)

    def _write(self, record: dict) -> None:
        if self._fh is None:
            raise RuntimeError("journal not open; call start() or reopen() first")
        self._fh.write(json.dumps(record, default=_json_default) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TrialJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str | Path) -> tuple[dict, list[dict]]:
        """Read ``(header, trials)`` from a journal file.

        Tolerates a truncated/corrupt tail (the signature of a crash
        mid-append): parsing stops at the first bad line with a warning.
        A missing or malformed *header* line raises :class:`JournalError`
        — that file was never a journal.
        """
        path = Path(path)
        records: list[dict] = []
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                if not line.strip():
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "journal %s: dropping corrupt tail from line %d "
                        "(crash mid-append?)",
                        path,
                        lineno,
                    )
                    break
                records.append(rec)
        if not records or records[0].get("kind") != "header":
            raise JournalError(f"{path} has no journal header line")
        header = records[0]
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{path}: unsupported journal version {header.get('version')!r}"
            )
        trials = [r for r in records[1:] if r.get("kind") == "trial"]
        return header, trials

    @staticmethod
    def check_header(header: dict, expected: dict) -> None:
        """Raise :class:`JournalError` when a resumed run's identity keys
        (optimizer, seed, search space, ...) disagree with the journal."""
        for key, want in expected.items():
            got = header.get(key)
            if got != want:
                raise JournalError(
                    f"journal was written by a different run: "
                    f"{key}={got!r} but this run has {key}={want!r}"
                )
