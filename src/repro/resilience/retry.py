"""Trial-level failure isolation: deadlines, bounded retries, quarantine.

One bad hyperparameter set must cost at most one bounded trial, never
the run:

* :class:`DeadlineCallback` — enforces a per-trial wall-clock budget
  from inside the training loop (checked at epoch boundaries, raising
  :class:`TrialTimeout`);
* :class:`RetryPolicy` — a diverged training is retried with a fresh
  weight seed and exponentially backed-off epochs/patience, so a config
  that only diverges under one unlucky init still gets scored while a
  truly unstable one fails fast;
* :class:`Quarantine` — a config that fails ``threshold`` times is
  banned from ever being suggested again (threaded into the optimizers
  via ``set_excluded``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs.callbacks import TrainingCallback

__all__ = [
    "TrialTimeout",
    "DeadlineCallback",
    "RetryPolicy",
    "Quarantine",
    "config_key",
]


class TrialTimeout(Exception):
    """A trial exceeded its wall-clock deadline (recorded, not fatal)."""

    def __init__(self, elapsed_s: float, epoch: int):
        super().__init__(
            f"trial exceeded its deadline after {elapsed_s:.3f}s (epoch {epoch})"
        )
        self.elapsed_s = float(elapsed_s)
        self.epoch = int(epoch)


class DeadlineCallback(TrainingCallback):
    """Raises :class:`TrialTimeout` once training runs past ``timeout_s``.

    The clock starts at construction (immediately before ``fit``), so
    time spent in injected slowdowns or data preparation inside the
    trial counts against the budget.  The check runs at epoch
    boundaries — the finest granularity that leaves the model in a
    consistent state.
    """

    def __init__(self, timeout_s: float):
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = float(timeout_s)
        self._t0 = time.perf_counter()

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        elapsed = time.perf_counter() - self._t0
        if elapsed > self.timeout_s:
            raise TrialTimeout(elapsed, epoch)


class EpochCounter(TrainingCallback):
    """Counts completed epochs so an exception mid-training can be
    attributed to the epoch it interrupted."""

    def __init__(self):
        self.completed = 0

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        self.completed = epoch + 1


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-reseed for ``training_diverged`` trials.

    Attempt ``k`` (0-based) trains with seed ``base_seed + k *
    reseed_stride`` and ``epochs/patience`` scaled by ``backoff**k`` —
    each retry is cheaper than the last, bounding the worst-case cost of
    a config that diverges on every attempt.
    """

    max_retries: int = 1
    backoff: float = 0.5
    reseed_stride: int = 7919  # a prime, so reseeds never collide across trials

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 < self.backoff <= 1.0:
            raise ValueError("backoff must be in (0, 1]")

    @property
    def attempts(self) -> int:
        return self.max_retries + 1

    def seed_for(self, base_seed: int, attempt: int) -> int:
        return int(base_seed) + int(attempt) * self.reseed_stride

    def epochs_for(self, base_epochs: int, attempt: int) -> int:
        return max(1, int(round(base_epochs * self.backoff**attempt)))

    def patience_for(self, base_patience: int, attempt: int) -> int:
        return max(1, int(round(base_patience * self.backoff**attempt)))


def config_key(config: dict) -> tuple:
    """Canonical hashable identity of a config dict."""
    return tuple(sorted(config.items()))


class Quarantine:
    """Failure ledger: configs that failed ``threshold`` times are banned.

    ``is_quarantined`` is the predicate handed to the optimizers'
    ``set_excluded`` so a poisoned config is never re-suggested —
    without it, the GP's penalty steering is the only (soft) defense
    and random/grid search have none at all.
    """

    def __init__(self, threshold: int = 3):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = int(threshold)
        self._failures: dict[tuple, int] = {}
        self._configs: dict[tuple, dict] = {}

    def record_failure(self, config: dict) -> int:
        """Count one failure; returns the config's total failure count."""
        key = config_key(config)
        self._failures[key] = self._failures.get(key, 0) + 1
        self._configs.setdefault(key, dict(config))
        return self._failures[key]

    def failures(self, config: dict) -> int:
        return self._failures.get(config_key(config), 0)

    def is_quarantined(self, config: dict) -> bool:
        return self._failures.get(config_key(config), 0) >= self.threshold

    def quarantined_configs(self) -> list[dict]:
        return [
            dict(self._configs[k])
            for k, n in self._failures.items()
            if n >= self.threshold
        ]

    def __len__(self) -> int:
        return sum(1 for n in self._failures.values() if n >= self.threshold)
