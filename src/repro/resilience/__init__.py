"""``repro.resilience`` — fault tolerance for the self-optimization loop.

The paper's Fig. 6 workflow is a long chain of expensive, failure-prone
LSTM trainings; this package makes the chain survivable:

=========================  ===========================================
``repro.resilience.journal``  crash-safe JSONL trial journal + resume
``repro.resilience.retry``    deadlines, retry-with-reseed, quarantine
``repro.resilience.faults``   deterministic fault injection for tests
=========================  ===========================================

Quick use::

    from repro.core import LoadDynamics, FrameworkSettings

    ld = LoadDynamics(settings=FrameworkSettings.reduced())
    # Crash-safe: every trial lands in the journal before the next starts.
    predictor, report = ld.fit(series, journal="run.jsonl")
    # After a crash, replay the journal and continue where it stopped:
    predictor, report = ld.fit(series, journal="run.jsonl", resume=True)

See README "Resilience & recovery" for the journal format and the
``REPRO_FAULTS`` fault-injection grammar.
"""

from repro.resilience.faults import (
    FAULTS_ENV,
    FaultInjector,
    FaultSpec,
    SimulatedCrash,
    clear_injector,
    injected,
    set_injector,
)
from repro.resilience.journal import JOURNAL_VERSION, JournalError, TrialJournal
from repro.resilience.retry import (
    DeadlineCallback,
    Quarantine,
    RetryPolicy,
    TrialTimeout,
    config_key,
)

__all__ = [
    "FAULTS_ENV",
    "FaultInjector",
    "FaultSpec",
    "SimulatedCrash",
    "clear_injector",
    "injected",
    "set_injector",
    "JOURNAL_VERSION",
    "JournalError",
    "TrialJournal",
    "DeadlineCallback",
    "Quarantine",
    "RetryPolicy",
    "TrialTimeout",
    "config_key",
]
