"""Deterministic fault injection for exercising recovery paths.

On real clusters BO trials die in predictable ways — a diverging LSTM
training, a singular GP kernel matrix, a trial that blows its time
budget, the whole process SIGKILLed between trials.  None of those can
be provoked reliably by feeding adversarial data, so the recovery code
in :mod:`repro.core.framework` and :mod:`repro.bayesopt` would otherwise
ship untested.  The :class:`FaultInjector` plants each failure class at
a deterministic *site invocation count*, which makes the CI smoke stage
(``scripts/fault_smoke.py``) and ``tests/test_resilience.py`` exactly
reproducible.

Fault kinds
-----------

``nan_loss``
    Corrupt the training loss of one epoch to NaN inside
    :meth:`repro.nn.network.LSTMRegressor.fit` (spec arg = epoch index,
    default 0) — exercises the non-finite-loss divergence guard.
``linalg``
    Raise :class:`numpy.linalg.LinAlgError` at the site — exercises the
    surrogate-failure fallback when planted at ``gp.fit``.
``slow``
    Sleep ``arg`` seconds (default 0.05) at the site — exercises the
    per-trial wall-clock deadline.
``kill``
    Raise :class:`SimulatedCrash`, a ``BaseException`` that no recovery
    path is allowed to swallow — emulates a SIGKILL for
    checkpoint/resume tests.
``nan``
    Non-raising, returned to the caller, which corrupts the value it
    owns to NaN — planted at ``serve.predict`` it turns a model's
    forecast non-finite, exercising the
    :class:`~repro.serving.guard.GuardedPredictor` fallback chain.
``boom``
    Raise ``RuntimeError`` at the site — a generic serving-time crash
    (a predict blowing up at ``serve.predict``, a drift refit dying at
    ``adaptive.refit``).
``corrupt``
    Raise ``OSError`` at the site — emulates unreadable/corrupted model
    files when planted at ``model.load``.
``drift``
    Non-raising, returned to the caller, which applies a deterministic
    level shift to the value it owns — planted at ``serve.predict`` the
    :class:`~repro.serving.guard.GuardedPredictor` scales every primary
    forecast by ``arg`` (default 2.0) from the firing invocation
    *onward* (a drift, once it happens, persists), emulating the served
    trace jumping to a regime the model has not learned.  This is how
    the drift detectors in :mod:`repro.obs.monitor` are exercised under
    ``REPRO_FAULTS``.
``spike``
    Non-raising, returned to the caller, which owns the loaded trace —
    planted at ``trace.load`` the loader injects a deterministic flash
    crowd (:func:`repro.traces.inject_flash_crowd`) scaled by ``arg``
    (default 3.0) into the loaded counts, emulating a demand surge the
    recorded trace never saw.
``stall``
    Non-raising, returned to the caller, which owns the arrival clock —
    planted at ``stream.chunk`` the chunk source delays that chunk's
    arrival by ``arg`` seconds (default 30.0), emulating a stalled
    metrics feed; the :class:`~repro.serving.stream.StreamingServer`
    stall watchdog must degrade to hold-last provisioning and recover
    when the feed resumes.
``drop``
    Non-raising, returned to the caller, which owns the chunk stream —
    planted at ``stream.chunk`` the source silently loses that chunk (a
    scraper restart eating a scrape window); the server detects the
    offset gap and serves the missing intervals in degraded mode.

Spec grammar (``REPRO_FAULTS`` env var or :meth:`FaultInjector.parse`)::

    kind@site:at[=arg][,kind@site:at[=arg]...]

where ``site`` is one of ``nn.fit``, ``gp.fit``, ``objective``,
``serve.predict``, ``adaptive.refit``, ``model.load``, ``trace.load``,
``stream.chunk`` and ``at`` is the 1-based invocation index at that
site (``*`` = every invocation).
Example: ``kill@objective:4,linalg@gp.fit:*``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from repro.obs.logging import get_logger

__all__ = [
    "FAULTS_ENV",
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultSpec",
    "FaultInjector",
    "SimulatedCrash",
    "active",
    "set_injector",
    "clear_injector",
    "injected",
]

logger = get_logger("resilience.faults")

#: Environment variable holding a fault spec list (see module docstring).
FAULTS_ENV = "REPRO_FAULTS"

FAULT_KINDS = (
    "nan_loss", "linalg", "slow", "kill", "nan", "boom", "corrupt", "drift",
    "spike", "stall", "drop",
)

#: Known injection sites (informational; unknown sites simply never fire).
#: The serving-time sites arrived with repro.serving; ``trace.load``
#: with the autoscale scenario harness; ``stream.chunk`` with the
#: streaming serving runtime.
FAULT_SITES = (
    "nn.fit",
    "gp.fit",
    "objective",
    "serve.predict",
    "adaptive.refit",
    "model.load",
    "trace.load",
    "stream.chunk",
)


class SimulatedCrash(BaseException):
    """Stand-in for a process kill (SIGKILL) between or inside trials.

    Derives from ``BaseException`` so that no ``except Exception``
    recovery path can accidentally absorb it — exactly like the real
    thing, the only defense is the on-disk trial journal.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planted fault: ``kind`` fires at invocation ``at`` of ``site``."""

    kind: str
    site: str
    at: int | None  # 1-based invocation index; None = every invocation
    arg: float | None = None

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        spec = text.strip()
        arg: float | None = None
        if "=" in spec:
            spec, arg_text = spec.rsplit("=", 1)
            try:
                arg = float(arg_text)
            except ValueError as exc:
                raise ValueError(f"bad fault arg in {text!r}") from exc
        if "@" not in spec or ":" not in spec:
            raise ValueError(
                f"bad fault spec {text!r}; expected kind@site:at[=arg]"
            )
        kind, rest = spec.split("@", 1)
        site, at_text = rest.rsplit(":", 1)
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}")
        if at_text == "*":
            at: int | None = None
        else:
            try:
                at = int(at_text)
            except ValueError as exc:
                raise ValueError(f"bad invocation index in {text!r}") from exc
            if at < 1:
                raise ValueError(f"invocation index must be >= 1 in {text!r}")
        return cls(kind=kind, site=site, at=at, arg=arg)

    def fires_at(self, count: int) -> bool:
        return self.at is None or self.at == count


class FaultInjector:
    """Fires planted :class:`FaultSpec` faults at instrumented call sites.

    Each instrumented function calls :meth:`maybe_fire` once per
    invocation; the injector counts invocations per site and applies the
    matching specs.  ``slow`` sleeps, ``linalg``/``kill`` raise;
    ``nan_loss`` is returned to the caller, which owns the loss value to
    corrupt.
    """

    def __init__(self, specs: list[FaultSpec] | tuple[FaultSpec, ...] = ()):
        self.specs = tuple(specs)
        self._counts: dict[str, int] = {}
        self.fired_log: list[tuple[str, int, str]] = []

    @classmethod
    def parse(cls, text: str) -> "FaultInjector":
        specs = [FaultSpec.parse(part) for part in text.split(",") if part.strip()]
        return cls(specs)

    @classmethod
    def from_env(cls) -> "FaultInjector | None":
        text = os.environ.get(FAULTS_ENV, "").strip()
        return cls.parse(text) if text else None

    def reset(self) -> None:
        """Zero the per-site invocation counters (not the fired log)."""
        self._counts.clear()

    def count(self, site: str) -> int:
        return self._counts.get(site, 0)

    def maybe_fire(self, site: str) -> dict[str, FaultSpec]:
        """Record one invocation of ``site`` and apply any due faults.

        Returns the fired specs keyed by kind so callers can implement
        non-raising kinds (``nan_loss``); raising kinds never return.
        """
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        fired = {s.kind: s for s in self.specs if s.site == site and s.fires_at(count)}
        if not fired:
            return fired
        for kind in fired:
            self.fired_log.append((site, count, kind))
            logger.warning("injecting fault %s at %s invocation %d", kind, site, count)
        if "slow" in fired:
            time.sleep(fired["slow"].arg if fired["slow"].arg is not None else 0.05)
        if "linalg" in fired:
            raise np.linalg.LinAlgError(
                f"injected LinAlgError at {site} invocation {count}"
            )
        if "boom" in fired:
            raise RuntimeError(
                f"injected serving crash at {site} invocation {count}"
            )
        if "corrupt" in fired:
            raise OSError(
                f"injected model-file corruption at {site} invocation {count}"
            )
        if "kill" in fired:
            raise SimulatedCrash(f"injected crash at {site} invocation {count}")
        return fired


# ----------------------------------------------------------------------
# the process-wide active injector
# ----------------------------------------------------------------------
_active: FaultInjector | None = None
#: Caches the injector built from the env var, keyed by the spec string,
#: so invocation counters persist across call sites within one process.
_env_cache: tuple[str, FaultInjector] | None = None


def set_injector(injector: FaultInjector | None) -> None:
    """Install ``injector`` as the process-wide active injector."""
    global _active
    _active = injector


def clear_injector() -> None:
    global _active, _env_cache
    _active = None
    _env_cache = None


def active() -> FaultInjector | None:
    """The active injector: explicitly installed, else built from the env.

    Returns ``None`` (the common case) when no faults are planted;
    instrumented sites must guard with ``if inj is not None``.
    """
    global _env_cache
    if _active is not None:
        return _active
    text = os.environ.get(FAULTS_ENV, "").strip()
    if not text:
        _env_cache = None
        return None
    if _env_cache is None or _env_cache[0] != text:
        _env_cache = (text, FaultInjector.parse(text))
    return _env_cache[1]


@contextmanager
def injected(spec_text: str):
    """Context manager installing a parsed injector for the block."""
    injector = FaultInjector.parse(spec_text)
    prev = _active
    set_injector(injector)
    try:
        yield injector
    finally:
        set_injector(prev)
