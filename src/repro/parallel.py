"""Deterministic parallel-map utilities.

The paper ran LoadDynamics on a 16-core Xeon; the brute-force baseline and
the 21-predictor CloudInsight council are embarrassingly parallel.  This
module provides a tiny, dependency-free process-pool map with:

* deterministic output ordering (results returned in input order),
* chunking so tiny tasks don't drown in IPC overhead,
* a serial fallback (``n_workers<=1`` or inside an active pool / pytest-
  sensitive paths) so callers never need two code paths,
* graceful degradation when the platform disallows forking.

Everything submitted must be picklable (top-level functions + plain data),
per the usual multiprocessing contract — the same constraint mpi4py-style
buffer programs live with.  Large float arrays shared by every task
(training matrices, scaled traces) should ride in POSIX shared memory via
:class:`SharedArray` / :func:`share_arrays` instead of being re-pickled
into each worker: the handle pickles as a name+shape tuple and workers
map the same pages read-only-by-convention, so fan-out cost stops scaling
with the data size.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any, TypeVar

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger

logger = get_logger("parallel")

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "parallel_map",
    "effective_workers",
    "chunk_indices",
    "SharedArray",
    "share_arrays",
    "as_ndarray",
]

#: Environment variable users can set to cap worker processes globally.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def effective_workers(n_workers: int | None = None) -> int:
    """Resolve the worker count.

    ``None`` means "use all cores", honouring :data:`MAX_WORKERS_ENV`.
    Values below 1 are clamped to 1 (serial); a malformed or sub-serial
    env cap is clamped with a ``repro.parallel`` warning rather than
    silently forcing a surprise serial run.
    """
    cap_text = os.environ.get(MAX_WORKERS_ENV)
    cpu = os.cpu_count() or 1
    if n_workers is None:
        n_workers = cpu
    if cap_text is not None:
        try:
            cap = int(cap_text)
        except ValueError:
            logger.warning(
                "ignoring non-integer %s=%r", MAX_WORKERS_ENV, cap_text
            )
        else:
            if cap < 1:
                logger.warning(
                    "%s=%d is below 1; clamping to 1 (serial execution)",
                    MAX_WORKERS_ENV,
                    cap,
                )
                cap = 1
            n_workers = min(n_workers, cap)
    return max(1, min(n_workers, cpu))


def chunk_indices(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous spans.

    Spans are balanced to within one item, mirroring the classic block
    decomposition used for MPI rank work assignment.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_chunks < 1:
        raise ValueError("n_chunks must be positive")
    n_chunks = min(n_chunks, max(n_items, 1))
    base, extra = divmod(n_items, n_chunks)
    spans: list[tuple[int, int]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size))
        start += size
    return [s for s in spans if s[1] > s[0]] or ([(0, 0)] if n_items == 0 else [])


def _attach_shared(name: str, shape: tuple, dtype_str: str) -> "SharedArray":
    """Re-attach to an existing segment inside a worker process.

    Attaching re-registers the segment with the resource tracker
    (bpo-38119).  That is harmless here — pool workers inherit the
    owner's tracker daemon (fork shares the fd; spawn passes it), so the
    duplicate registration collapses into the daemon's per-name set and
    worker exit never unlinks the pages.  Deliberately do *not*
    ``resource_tracker.unregister`` the attachment: with a shared daemon
    that would delete the owner's only registration, forfeiting
    crash-leak cleanup and raising KeyError noise when the owner
    unlinks.  (The classic unregister workaround is for *unrelated*
    processes attaching by name, each with its own tracker — a topology
    this module never creates.)
    """
    shm = shared_memory.SharedMemory(name=name)
    obj = SharedArray.__new__(SharedArray)
    obj._shm = shm
    obj._shape = tuple(shape)
    obj._dtype = np.dtype(dtype_str)
    obj._owner = False
    return obj


class SharedArray:
    """A numpy array backed by POSIX shared memory, cheap to send to workers.

    Pickles as ``(segment name, shape, dtype)`` — a few dozen bytes —
    instead of the array contents, so a multi-megabyte training matrix
    crosses the process boundary once (at creation) rather than once per
    task.  Workers attach to the same pages; treat them as read-only
    (there is no cross-process locking).

    The creating process owns the segment and must :meth:`close` and
    :meth:`unlink` it (or use :func:`share_arrays`, which guarantees
    cleanup).  Worker-side attachments are closed by process exit.
    """

    __slots__ = ("_shm", "_shape", "_dtype", "_owner")

    def __init__(self, array: np.ndarray):
        arr = np.ascontiguousarray(array)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, arr.nbytes)
        )
        self._shape = arr.shape
        self._dtype = arr.dtype
        self._owner = True
        if arr.nbytes:
            np.ndarray(arr.shape, arr.dtype, buffer=self._shm.buf)[...] = arr

    def __reduce__(self):
        return (_attach_shared, (self._shm.name, self._shape, self._dtype.str))

    @property
    def shape(self) -> tuple:
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def array(self) -> np.ndarray:
        """A zero-copy ndarray view over the shared pages."""
        return np.ndarray(self._shape, self._dtype, buffer=self._shm.buf)

    def close(self) -> None:
        """Unmap this process's view (safe to call repeatedly)."""
        try:
            self._shm.close()
        except BufferError:  # a live ndarray view pins the mapping
            logger.debug(
                "shared segment %s still has exported views; deferring "
                "unmap to GC",
                self._shm.name,
            )

    def unlink(self) -> None:
        """Remove the segment name (owner only; no-op for attachments)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass


def as_ndarray(x) -> np.ndarray:
    """Materialize a task input: SharedArray view or plain array, uniformly."""
    return x.array if isinstance(x, SharedArray) else np.asarray(x)


@contextmanager
def share_arrays(*arrays: np.ndarray, fallback: bool = True):
    """Share arrays for the duration of a parallel region.

    Yields one handle per input: a :class:`SharedArray` normally, or the
    original ndarray when the platform refuses shared memory (no
    ``/dev/shm``, sandbox seccomp) and ``fallback`` is true — in which
    case tasks transparently pay the pickling cost instead of failing.
    Owner-side cleanup (close + unlink) is guaranteed on exit.
    """
    shared: list[SharedArray] = []
    out: list[Any] = []
    try:
        for a in arrays:
            try:
                sa = SharedArray(a)
            except (OSError, ValueError) as exc:
                if not fallback:
                    raise
                logger.warning(
                    "shared memory unavailable (%s); falling back to "
                    "pickled array copies",
                    exc,
                )
                out.append(np.asarray(a))
            else:
                shared.append(sa)
                out.append(sa)
        yield tuple(out)
    finally:
        for sa in shared:
            sa.close()
            sa.unlink()


def _run_chunk(payload: tuple[Callable[..., Any], Sequence[Any]]) -> list[Any]:
    fn, items = payload
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_workers: int | None = None,
    chunks_per_worker: int = 4,
) -> list[R]:
    """Map ``fn`` over ``items`` with a process pool, preserving order.

    Falls back to a plain serial loop when only one worker is requested,
    when there are fewer than two items, or when process creation fails
    (e.g. sandboxed environments).  The serial and parallel paths produce
    identical results for deterministic ``fn``.

    Requested vs delivered parallelism is exposed as the gauges
    ``parallel.workers_requested`` / ``parallel.workers_effective`` so a
    run on a core-starved box (where the cpu clamp or a fork failure
    silently serializes the map) is visible in telemetry instead of
    masquerading as a slow parallel run.
    """
    data = list(items)
    workers = effective_workers(n_workers)
    _metrics.gauge("parallel.workers_requested").set(
        float(n_workers if n_workers is not None else (os.cpu_count() or 1))
    )
    if workers <= 1 or len(data) < 2:
        _metrics.gauge("parallel.workers_effective").set(1.0)
        return [fn(item) for item in data]

    spans = chunk_indices(len(data), workers * max(1, chunks_per_worker))
    payloads = [(fn, data[a:b]) for a, b in spans]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunked = list(pool.map(_run_chunk, payloads))
    except (OSError, PermissionError, RuntimeError):
        # Sandboxes and some CI environments forbid fork/spawn; degrade
        # quietly to serial execution, which is always correct.
        _metrics.gauge("parallel.workers_effective").set(1.0)
        return [fn(item) for item in data]
    _metrics.gauge("parallel.workers_effective").set(float(workers))
    out: list[R] = []
    for chunk in chunked:
        out.extend(chunk)
    return out
