"""Deterministic parallel-map utilities.

The paper ran LoadDynamics on a 16-core Xeon; the brute-force baseline and
the 21-predictor CloudInsight council are embarrassingly parallel.  This
module provides a tiny, dependency-free process-pool map with:

* deterministic output ordering (results returned in input order),
* chunking so tiny tasks don't drown in IPC overhead,
* a serial fallback (``n_workers<=1`` or inside an active pool / pytest-
  sensitive paths) so callers never need two code paths,
* graceful degradation when the platform disallows forking.

Everything submitted must be picklable (top-level functions + plain data),
per the usual multiprocessing contract — the same constraint mpi4py-style
buffer programs live with.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

from repro.obs.logging import get_logger

logger = get_logger("parallel")

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "effective_workers", "chunk_indices"]

#: Environment variable users can set to cap worker processes globally.
MAX_WORKERS_ENV = "REPRO_MAX_WORKERS"


def effective_workers(n_workers: int | None = None) -> int:
    """Resolve the worker count.

    ``None`` means "use all cores", honouring :data:`MAX_WORKERS_ENV`.
    Values below 1 are clamped to 1 (serial); a malformed or sub-serial
    env cap is clamped with a ``repro.parallel`` warning rather than
    silently forcing a surprise serial run.
    """
    cap_text = os.environ.get(MAX_WORKERS_ENV)
    cpu = os.cpu_count() or 1
    if n_workers is None:
        n_workers = cpu
    if cap_text is not None:
        try:
            cap = int(cap_text)
        except ValueError:
            logger.warning(
                "ignoring non-integer %s=%r", MAX_WORKERS_ENV, cap_text
            )
        else:
            if cap < 1:
                logger.warning(
                    "%s=%d is below 1; clamping to 1 (serial execution)",
                    MAX_WORKERS_ENV,
                    cap,
                )
                cap = 1
            n_workers = min(n_workers, cap)
    return max(1, min(n_workers, cpu))


def chunk_indices(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n_items)`` into at most ``n_chunks`` contiguous spans.

    Spans are balanced to within one item, mirroring the classic block
    decomposition used for MPI rank work assignment.
    """
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    if n_chunks < 1:
        raise ValueError("n_chunks must be positive")
    n_chunks = min(n_chunks, max(n_items, 1))
    base, extra = divmod(n_items, n_chunks)
    spans: list[tuple[int, int]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        spans.append((start, start + size))
        start += size
    return [s for s in spans if s[1] > s[0]] or ([(0, 0)] if n_items == 0 else [])


def _run_chunk(payload: tuple[Callable[..., Any], Sequence[Any]]) -> list[Any]:
    fn, items = payload
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_workers: int | None = None,
    chunks_per_worker: int = 4,
) -> list[R]:
    """Map ``fn`` over ``items`` with a process pool, preserving order.

    Falls back to a plain serial loop when only one worker is requested,
    when there are fewer than two items, or when process creation fails
    (e.g. sandboxed environments).  The serial and parallel paths produce
    identical results for deterministic ``fn``.
    """
    data = list(items)
    workers = effective_workers(n_workers)
    if workers <= 1 or len(data) < 2:
        return [fn(item) for item in data]

    spans = chunk_indices(len(data), workers * max(1, chunks_per_worker))
    payloads = [(fn, data[a:b]) for a, b in spans]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            chunked = list(pool.map(_run_chunk, payloads))
    except (OSError, PermissionError, RuntimeError):
        # Sandboxes and some CI environments forbid fork/spawn; degrade
        # quietly to serial execution, which is always correct.
        return [fn(item) for item in data]
    out: list[R] = []
    for chunk in chunked:
        out.extend(chunk)
    return out
