"""Trace containers, interval aggregation, and the 60/20/20 split.

The paper partitions a job/request stream into fixed intervals and
counts arrivals per interval (Section II-A); generators in
:mod:`repro.traces.synthetic` emit 1-minute base counts which
:func:`aggregate` folds into the evaluation interval lengths (5, 10, 30,
60 minutes — Table I).  :func:`train_val_test_split` implements the
Fig. 7 partitioning: first 60% training, next 20% cross-validation,
last 20% test.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "TraceValidationError",
    "WorkloadTrace",
    "WorkloadConfig",
    "aggregate",
    "load",
    "train_val_test_split",
]


class TraceValidationError(ValueError):
    """A trace failed ingestion validation (non-finite or negative counts).

    Subclasses :class:`ValueError` so callers that predate the typed
    error keep working.  ``report`` carries the
    :class:`repro.serving.sanitize.DataQualityReport` when the failure
    came out of a sanitizer pass, ``None`` for the inline checks.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class WorkloadTrace:
    """A JAR stream at 1-minute base resolution.

    Attributes
    ----------
    name:
        Trace identifier (``wiki``/``lcg``/``az``/``gl``/``fb``/``mv``).
    counts:
        Non-negative arrivals per base minute — 1-D for the paper's
        univariate traces, or ``(minutes, D)`` for a multivariate trace
        whose columns are correlated channels.
    category:
        The paper's application category (Web, HPC, Public Cloud, Data
        Center) — used only for reporting.
    channel_names:
        Optional per-channel labels of a multivariate trace (e.g.
        ``("requests", "cpu", "memory")``); ``None`` for 1-D traces.
    target_channel:
        Which channel the framework forecasts (the paper's JAR series);
        always 0 for 1-D traces.
    """

    name: str
    counts: np.ndarray
    category: str
    channel_names: tuple | None = None
    target_channel: int = 0

    def __post_init__(self):
        c = np.asarray(self.counts, dtype=np.float64)
        if c.ndim == 2:
            if c.size == 0:
                raise ValueError("counts must be non-empty")
            names = self.channel_names
            if names is not None:
                names = tuple(str(x) for x in names)
                if len(names) != c.shape[1]:
                    raise ValueError(
                        f"{len(names)} channel names for {c.shape[1]} channels"
                    )
                object.__setattr__(self, "channel_names", names)
            if not 0 <= self.target_channel < c.shape[1]:
                raise ValueError(
                    f"target_channel {self.target_channel} out of range for "
                    f"{c.shape[1]}-channel trace"
                )
            for d in range(c.shape[1]):
                label = names[d] if names else str(d)
                col = c[:, d]
                if not np.all(np.isfinite(col)):
                    bad = int(col.size - np.count_nonzero(np.isfinite(col)))
                    raise TraceValidationError(
                        f"channel {label!r}: counts must be finite "
                        f"({bad} NaN/inf values); repair with "
                        "traces.load(..., repair=...) first"
                    )
                if np.any(col < 0):
                    raise TraceValidationError(
                        f"channel {label!r}: counts must be non-negative"
                    )
        else:
            if c.ndim != 1 or c.size == 0:
                raise ValueError("counts must be a non-empty 1-D array")
            if self.channel_names is not None:
                raise ValueError("channel_names requires 2-D counts")
            if self.target_channel != 0:
                raise ValueError("target_channel must be 0 for a 1-D trace")
            if not np.all(np.isfinite(c)):
                bad = int(np.size(c) - np.count_nonzero(np.isfinite(c)))
                raise TraceValidationError(
                    f"counts must be finite ({bad} NaN/inf values); "
                    "repair with traces.load(..., repair=...) first"
                )
            if np.any(c < 0):
                raise TraceValidationError("counts must be non-negative")
        object.__setattr__(self, "counts", c)

    @property
    def minutes(self) -> int:
        return int(self.counts.shape[0])

    @property
    def n_channels(self) -> int:
        return int(self.counts.shape[1]) if self.counts.ndim == 2 else 1

    @property
    def target(self) -> np.ndarray:
        """The forecast channel's 1-D counts (the counts themselves if 1-D)."""
        if self.counts.ndim == 2:
            return self.counts[:, self.target_channel]
        return self.counts

    def channel(self, which: int | str) -> np.ndarray:
        """1-D counts of one channel, by index or by name."""
        if self.counts.ndim != 2:
            if which in (0, "0"):
                return self.counts
            raise IndexError(f"1-D trace has no channel {which!r}")
        if isinstance(which, str):
            if self.channel_names is None or which not in self.channel_names:
                raise KeyError(
                    f"unknown channel {which!r}; names: {self.channel_names}"
                )
            which = self.channel_names.index(which)
        return self.counts[:, int(which)]

    def at_interval(self, interval_minutes: int) -> np.ndarray:
        """JARs of this trace at the given interval length.

        2-D for a multivariate trace: each channel aggregates
        independently into ``(n_intervals, D)``.
        """
        return aggregate(self.counts, interval_minutes)


@dataclass(frozen=True)
class WorkloadConfig:
    """One of the paper's 14 (trace, interval) workload configurations."""

    trace_name: str
    interval_minutes: int

    @property
    def key(self) -> str:
        return f"{self.trace_name}-{self.interval_minutes}m"

    def load(self, **trace_kwargs) -> np.ndarray:
        """Materialize the JAR series for this configuration.

        Instrumented as the ``trace.load`` fault site: a planted
        ``spike@trace.load:at=factor`` fault overlays a deterministic
        flash crowd (:func:`repro.traces.inject_flash_crowd`, scaled by
        ``factor``, default 3.0) at ~75% through the loaded series —
        how CI subjects an autoscaling policy to a demand surge the
        recorded trace never saw.
        """
        from repro.resilience import faults as _faults
        from repro.traces.registry import get_trace

        trace = get_trace(self.trace_name, **trace_kwargs)
        series = trace.at_interval(self.interval_minutes)
        inj = _faults.active()
        if inj is not None:
            fired = inj.maybe_fire("trace.load")
            if "spike" in fired:
                from repro.traces.synthetic import inject_flash_crowd

                spec = fired["spike"]
                magnitude = spec.arg if spec.arg is not None else 3.0
                n_steps = int(series.shape[0])
                at = int(0.75 * n_steps)
                width = max(n_steps // 50, 6)
                series = inject_flash_crowd(
                    series, at, magnitude=magnitude, width=width
                )
        return series


def aggregate(base_counts: np.ndarray, interval_minutes: int) -> np.ndarray:
    """Sum 1-minute counts into ``interval_minutes`` buckets.

    A trailing partial bucket is dropped — the paper's interval counts
    are complete intervals only.  ``(minutes, D)`` input aggregates each
    channel independently into ``(n_intervals, D)``.
    """
    c = np.asarray(base_counts, dtype=np.float64)
    if c.ndim != 2:
        c = c.ravel()
    if interval_minutes < 1:
        raise ValueError("interval_minutes must be >= 1")
    n_minutes = int(c.shape[0])
    n_full = n_minutes // interval_minutes
    if n_full == 0:
        raise ValueError(
            f"trace of {n_minutes} minutes too short for {interval_minutes}-minute intervals"
        )
    if c.ndim == 2:
        return (
            c[: n_full * interval_minutes]
            .reshape(n_full, interval_minutes, c.shape[1])
            .sum(axis=1)
        )
    return c[: n_full * interval_minutes].reshape(n_full, interval_minutes).sum(axis=1)


def load(
    counts,
    *,
    name: str = "trace",
    category: str = "unknown",
    repair: str | None = None,
    sanitizer=None,
    channel_names=None,
    target_channel: int = 0,
) -> WorkloadTrace:
    """Validate raw per-minute arrival counts into a :class:`WorkloadTrace`.

    ``counts`` may be a 1-D array (the paper's univariate JAR stream), a
    ``(minutes, D)`` array of correlated channels, or a path to a CSV
    holding either shape (one row per minute, one column per channel).

    By default the ingestion is strict: any NaN/inf or negative count
    raises :class:`TraceValidationError` — real traces arrive with
    export glitches, and silently windowing them poisons every model
    downstream.  For multivariate input the error names the offending
    channel (by ``channel_names`` entry when given, else by index).
    Pass ``repair`` (``"interpolate"``, ``"clip"`` or ``"ffill"``) to
    route the series through
    :class:`repro.serving.sanitize.TraceSanitizer` — applied per channel
    for 2-D input — and ingest the repaired values instead, or hand in
    a pre-configured ``sanitizer`` (which wins over ``repair``).
    """
    if isinstance(counts, (str, Path)):
        counts = np.loadtxt(counts, delimiter=",", ndmin=1, dtype=np.float64)
    c = np.asarray(counts, dtype=np.float64)
    if c.ndim != 2:
        c = c.ravel()
    if c.size == 0:
        raise TraceValidationError("counts must be non-empty")
    if c.ndim == 2 and c.shape[1] == 1:
        # A single-column CSV is the univariate case, not a D=1 trace.
        c = c.ravel()
    if repair is not None or sanitizer is not None:
        # Lazy import: the sanitizer lives in the serving layer, which
        # itself imports this module for the error type.
        from repro.serving.sanitize import TraceSanitizer

        san = sanitizer if sanitizer is not None else TraceSanitizer(policy=repair)
        if c.ndim == 2:
            c, _report = san.sanitize(c, channel_names=channel_names)
        else:
            c, _report = san.sanitize(c)
    elif c.ndim == 2:
        names = (
            tuple(str(x) for x in channel_names) if channel_names is not None else None
        )
        for d in range(c.shape[1]):
            col = c[:, d]
            n_bad = int(col.size - np.count_nonzero(np.isfinite(col)))
            n_neg = int(np.count_nonzero(col < 0))
            if n_bad or n_neg:
                label = names[d] if names else str(d)
                raise TraceValidationError(
                    f"trace {name!r} channel {label!r} has {n_bad} non-finite "
                    f"and {n_neg} negative counts; pass "
                    "repair='interpolate'|'clip'|'ffill' to ingest a "
                    "repaired copy"
                )
    else:
        n_bad = int(c.size - np.count_nonzero(np.isfinite(c)))
        n_neg = int(np.count_nonzero(c < 0))
        if n_bad or n_neg:
            raise TraceValidationError(
                f"trace {name!r} has {n_bad} non-finite and {n_neg} negative "
                "counts; pass repair='interpolate'|'clip'|'ffill' to ingest "
                "a repaired copy"
            )
    if c.ndim == 2:
        return WorkloadTrace(
            name=name,
            counts=c,
            category=category,
            channel_names=channel_names,
            target_channel=target_channel,
        )
    return WorkloadTrace(name=name, counts=c, category=category)


def train_val_test_split(
    series: np.ndarray,
    train_frac: float = 0.6,
    val_frac: float = 0.2,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Chronological 60/20/20 split (paper Fig. 7 / Section IV-A).

    Returns (train, cross-validation, test) views — no copying, no
    shuffling: temporal order is the whole point of the split.  A 2-D
    ``(steps, D)`` series splits along its time axis (rows).
    """
    s = np.asarray(series, dtype=np.float64)
    if s.ndim != 2:
        s = s.ravel()
    if not 0.0 < train_frac < 1.0 or not 0.0 < val_frac < 1.0:
        raise ValueError("fractions must be in (0, 1)")
    if train_frac + val_frac >= 1.0:
        raise ValueError("train_frac + val_frac must leave room for a test split")
    n = int(s.shape[0])
    i1 = int(round(train_frac * n))
    i2 = int(round((train_frac + val_frac) * n))
    if i1 < 1 or i2 <= i1 or i2 >= n:
        raise ValueError(f"series of length {n} too short for a 60/20/20 split")
    return s[:i1], s[i1:i2], s[i2:]
