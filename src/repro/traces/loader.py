"""Trace containers, interval aggregation, and the 60/20/20 split.

The paper partitions a job/request stream into fixed intervals and
counts arrivals per interval (Section II-A); generators in
:mod:`repro.traces.synthetic` emit 1-minute base counts which
:func:`aggregate` folds into the evaluation interval lengths (5, 10, 30,
60 minutes — Table I).  :func:`train_val_test_split` implements the
Fig. 7 partitioning: first 60% training, next 20% cross-validation,
last 20% test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TraceValidationError",
    "WorkloadTrace",
    "WorkloadConfig",
    "aggregate",
    "load",
    "train_val_test_split",
]


class TraceValidationError(ValueError):
    """A trace failed ingestion validation (non-finite or negative counts).

    Subclasses :class:`ValueError` so callers that predate the typed
    error keep working.  ``report`` carries the
    :class:`repro.serving.sanitize.DataQualityReport` when the failure
    came out of a sanitizer pass, ``None`` for the inline checks.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class WorkloadTrace:
    """A JAR stream at 1-minute base resolution.

    Attributes
    ----------
    name:
        Trace identifier (``wiki``/``lcg``/``az``/``gl``/``fb``).
    counts:
        Non-negative arrivals per base minute.
    category:
        The paper's application category (Web, HPC, Public Cloud, Data
        Center) — used only for reporting.
    """

    name: str
    counts: np.ndarray
    category: str

    def __post_init__(self):
        c = np.asarray(self.counts, dtype=np.float64)
        if c.ndim != 1 or c.size == 0:
            raise ValueError("counts must be a non-empty 1-D array")
        if not np.all(np.isfinite(c)):
            bad = int(np.size(c) - np.count_nonzero(np.isfinite(c)))
            raise TraceValidationError(
                f"counts must be finite ({bad} NaN/inf values); "
                "repair with traces.load(..., repair=...) first"
            )
        if np.any(c < 0):
            raise TraceValidationError("counts must be non-negative")
        object.__setattr__(self, "counts", c)

    @property
    def minutes(self) -> int:
        return int(self.counts.size)

    def at_interval(self, interval_minutes: int) -> np.ndarray:
        """JARs of this trace at the given interval length."""
        return aggregate(self.counts, interval_minutes)


@dataclass(frozen=True)
class WorkloadConfig:
    """One of the paper's 14 (trace, interval) workload configurations."""

    trace_name: str
    interval_minutes: int

    @property
    def key(self) -> str:
        return f"{self.trace_name}-{self.interval_minutes}m"

    def load(self, **trace_kwargs) -> np.ndarray:
        """Materialize the JAR series for this configuration.

        Instrumented as the ``trace.load`` fault site: a planted
        ``spike@trace.load:at=factor`` fault overlays a deterministic
        flash crowd (:func:`repro.traces.inject_flash_crowd`, scaled by
        ``factor``, default 3.0) at ~75% through the loaded series —
        how CI subjects an autoscaling policy to a demand surge the
        recorded trace never saw.
        """
        from repro.resilience import faults as _faults
        from repro.traces.registry import get_trace

        trace = get_trace(self.trace_name, **trace_kwargs)
        series = trace.at_interval(self.interval_minutes)
        inj = _faults.active()
        if inj is not None:
            fired = inj.maybe_fire("trace.load")
            if "spike" in fired:
                from repro.traces.synthetic import inject_flash_crowd

                spec = fired["spike"]
                magnitude = spec.arg if spec.arg is not None else 3.0
                at = int(0.75 * series.size)
                width = max(series.size // 50, 6)
                series = inject_flash_crowd(
                    series, at, magnitude=magnitude, width=width
                )
        return series


def aggregate(base_counts: np.ndarray, interval_minutes: int) -> np.ndarray:
    """Sum 1-minute counts into ``interval_minutes`` buckets.

    A trailing partial bucket is dropped — the paper's interval counts
    are complete intervals only.
    """
    c = np.asarray(base_counts, dtype=np.float64).ravel()
    if interval_minutes < 1:
        raise ValueError("interval_minutes must be >= 1")
    n_full = c.size // interval_minutes
    if n_full == 0:
        raise ValueError(
            f"trace of {c.size} minutes too short for {interval_minutes}-minute intervals"
        )
    return c[: n_full * interval_minutes].reshape(n_full, interval_minutes).sum(axis=1)


def load(
    counts,
    *,
    name: str = "trace",
    category: str = "unknown",
    repair: str | None = None,
    sanitizer=None,
) -> WorkloadTrace:
    """Validate raw per-minute arrival counts into a :class:`WorkloadTrace`.

    By default the ingestion is strict: any NaN/inf or negative count
    raises :class:`TraceValidationError` — real traces arrive with
    export glitches, and silently windowing them poisons every model
    downstream.  Pass ``repair`` (``"interpolate"``, ``"clip"`` or
    ``"ffill"``) to route the series through
    :class:`repro.serving.sanitize.TraceSanitizer` and ingest the
    repaired values instead, or hand in a pre-configured ``sanitizer``
    (which wins over ``repair``).
    """
    c = np.asarray(counts, dtype=np.float64).ravel()
    if c.size == 0:
        raise TraceValidationError("counts must be a non-empty 1-D array")
    if repair is not None or sanitizer is not None:
        # Lazy import: the sanitizer lives in the serving layer, which
        # itself imports this module for the error type.
        from repro.serving.sanitize import TraceSanitizer

        san = sanitizer if sanitizer is not None else TraceSanitizer(policy=repair)
        c, _report = san.sanitize(c)
    else:
        n_bad = int(c.size - np.count_nonzero(np.isfinite(c)))
        n_neg = int(np.count_nonzero(c < 0))
        if n_bad or n_neg:
            raise TraceValidationError(
                f"trace {name!r} has {n_bad} non-finite and {n_neg} negative "
                "counts; pass repair='interpolate'|'clip'|'ffill' to ingest "
                "a repaired copy"
            )
    return WorkloadTrace(name=name, counts=c, category=category)


def train_val_test_split(
    series: np.ndarray,
    train_frac: float = 0.6,
    val_frac: float = 0.2,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Chronological 60/20/20 split (paper Fig. 7 / Section IV-A).

    Returns (train, cross-validation, test) views — no copying, no
    shuffling: temporal order is the whole point of the split.
    """
    s = np.asarray(series, dtype=np.float64).ravel()
    if not 0.0 < train_frac < 1.0 or not 0.0 < val_frac < 1.0:
        raise ValueError("fractions must be in (0, 1)")
    if train_frac + val_frac >= 1.0:
        raise ValueError("train_frac + val_frac must leave room for a test split")
    n = s.size
    i1 = int(round(train_frac * n))
    i2 = int(round((train_frac + val_frac) * n))
    if i1 < 1 or i2 <= i1 or i2 >= n:
        raise ValueError(f"series of length {n} too short for a 60/20/20 split")
    return s[:i1], s[i1:i2], s[i2:]
