"""Registry of the paper's 14 workload configurations (Table I).

==========  =============  ==================
Trace       Category       Intervals (mins)
==========  =============  ==================
Wikipedia   Web            5, 10, 30
LCG         HPC            5, 10, 30
Azure       Public Cloud   10, 30, 60
Google      Data Center    5, 10, 30
Facebook    Data Center    5, 10
==========  =============  ==================

Traces are cached per (name, days, seed) so the 14 configurations share
the three-per-trace aggregations instead of regenerating minutes.
"""

from __future__ import annotations

from functools import lru_cache

from repro.traces.loader import WorkloadConfig, WorkloadTrace
from repro.traces.multivariate import correlated_trace
from repro.traces.synthetic import (
    azure_trace,
    facebook_trace,
    google_trace,
    lcg_trace,
    wikipedia_trace,
)

__all__ = [
    "TRACE_NAMES",
    "ALL_CONFIGURATIONS",
    "get_trace",
    "get_configuration",
    "list_configurations",
]

_GENERATORS = {
    "wiki": wikipedia_trace,
    "lcg": lcg_trace,
    "az": azure_trace,
    "gl": google_trace,
    "fb": facebook_trace,
    # Beyond Table I: the correlated multivariate trace (``mv``) — it is
    # registered for fit/simulate but deliberately NOT a member of the
    # paper's 14 configurations.
    "mv": correlated_trace,
}

#: Canonical trace short names, in the paper's Table I order (``mv`` is
#: an extension and intentionally excluded).
TRACE_NAMES = ("wiki", "lcg", "az", "gl", "fb")

#: The 14 (trace, interval) configurations of Table I.
ALL_CONFIGURATIONS: tuple[WorkloadConfig, ...] = tuple(
    WorkloadConfig(trace, interval)
    for trace, intervals in (
        ("wiki", (5, 10, 30)),
        ("lcg", (5, 10, 30)),
        ("az", (10, 30, 60)),
        ("gl", (5, 10, 30)),
        ("fb", (5, 10)),
    )
    for interval in intervals
)
assert len(ALL_CONFIGURATIONS) == 14


@lru_cache(maxsize=32)
def _cached_trace(
    name: str,
    days: int | None,
    seed: int | None,
    channels: tuple | None = None,
) -> WorkloadTrace:
    gen = _GENERATORS[name]
    kwargs = {}
    if days is not None:
        kwargs["days"] = days
    if seed is not None:
        kwargs["seed"] = seed
    if channels is not None:
        kwargs["channels"] = channels
    return gen(**kwargs)


def get_trace(
    name: str,
    days: int | None = None,
    seed: int | None = None,
    channels=None,
) -> WorkloadTrace:
    """Build (or fetch the cached) synthetic trace by short name.

    ``channels`` (a tuple of channel names) is only meaningful for the
    multivariate ``mv`` trace and rejected elsewhere.
    """
    if name not in _GENERATORS:
        raise ValueError(
            f"unknown trace {name!r}; choose from {TRACE_NAMES + ('mv',)}"
        )
    if channels is not None:
        if name != "mv":
            raise ValueError(f"trace {name!r} is univariate; channels only apply to 'mv'")
        channels = tuple(str(c) for c in channels)
    return _cached_trace(name, days, seed, channels)


def get_configuration(key: str) -> WorkloadConfig:
    """Look up a configuration by its ``<trace>-<interval>m`` key."""
    for cfg in ALL_CONFIGURATIONS:
        if cfg.key == key:
            return cfg
    raise ValueError(
        f"unknown configuration {key!r}; choose from {[c.key for c in ALL_CONFIGURATIONS]}"
    )


def list_configurations() -> list[str]:
    """Keys of all 14 workload configurations, Table I order."""
    return [c.key for c in ALL_CONFIGURATIONS]
