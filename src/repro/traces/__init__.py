"""Workload-trace substrate (replaces the paper's public traces).

The paper evaluates on five public traces (Wikipedia, LCG, Azure,
Google, Facebook — Table I) which cannot be shipped offline.
:mod:`repro.traces.synthetic` generates seeded synthetic series that
reproduce each trace's *published characteristics* (Fig. 1, Fig. 8,
Section IV-A); :mod:`repro.traces.loader` aggregates them into the
paper's interval lengths and exposes the 14 workload configurations.

See DESIGN.md §4 for the substitution rationale per trace.
"""

from repro.traces.loader import (
    TraceValidationError,
    WorkloadConfig,
    WorkloadTrace,
    aggregate,
    load,
    train_val_test_split,
)
from repro.traces.registry import (
    ALL_CONFIGURATIONS,
    TRACE_NAMES,
    get_configuration,
    get_trace,
    list_configurations,
)
from repro.traces.multivariate import correlated_trace
from repro.traces.stats import characterize
from repro.traces.synthetic import (
    azure_trace,
    facebook_trace,
    google_trace,
    inject_flash_crowd,
    inject_regime_shift,
    lcg_trace,
    wikipedia_trace,
)

__all__ = [
    "TraceValidationError",
    "WorkloadTrace",
    "WorkloadConfig",
    "aggregate",
    "load",
    "train_val_test_split",
    "wikipedia_trace",
    "google_trace",
    "facebook_trace",
    "azure_trace",
    "lcg_trace",
    "correlated_trace",
    "inject_flash_crowd",
    "inject_regime_shift",
    "TRACE_NAMES",
    "ALL_CONFIGURATIONS",
    "get_trace",
    "get_configuration",
    "list_configurations",
    "characterize",
]
