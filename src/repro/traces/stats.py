"""Workload characterization statistics.

The paper motivates LoadDynamics with the *variety* of workload patterns
(cyclic, bursty, increasing — Section I).  This module quantifies those
properties so traces — synthetic or user-supplied — can be characterized
the same way the paper characterizes its five:

* :func:`autocorrelation` / :func:`seasonality_strength` — is there a
  daily/weekly cycle, and how strong;
* :func:`dominant_period` — the FFT period CloudScale would lock onto;
* :func:`burstiness` — Goh & Barabási's B = (sigma - mu)/(sigma + mu);
* :func:`coefficient_of_variation`, :func:`peak_to_median`;
* :func:`trend_slope` — normalized linear drift (increasing workloads);
* :func:`hurst_exponent` — long-range dependence via rescaled range,
  the property that motivates LSTM memory over short-window models;
* :func:`characterize` — everything at once, as a dict.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "autocorrelation",
    "seasonality_strength",
    "dominant_period",
    "burstiness",
    "coefficient_of_variation",
    "peak_to_median",
    "trend_slope",
    "hurst_exponent",
    "characterize",
]


def _series(x) -> np.ndarray:
    s = np.asarray(x, dtype=np.float64).ravel()
    if s.size < 3:
        raise ValueError("series too short to characterize")
    return s


def autocorrelation(series, lag: int) -> float:
    """Pearson autocorrelation at ``lag`` (0 when the lag doesn't fit)."""
    s = _series(series)
    if lag <= 0:
        raise ValueError("lag must be positive")
    if lag >= s.size - 1:
        return 0.0
    x = s - s.mean()
    denom = float(np.dot(x, x))
    if denom < 1e-12:
        return 0.0
    return float(np.dot(x[:-lag], x[lag:]) / denom)


def seasonality_strength(series, period: int) -> float:
    """Share of variance explained by the mean profile over ``period``.

    1 = perfectly periodic, 0 = no repeating structure at that period.
    """
    s = _series(series)
    if period < 2:
        raise ValueError("period must be >= 2")
    n = (s.size // period) * period
    if n < 2 * period:
        return 0.0
    folded = s[:n].reshape(-1, period)
    profile = folded.mean(axis=0)
    resid = folded - profile
    total = float(np.var(s[:n]))
    if total < 1e-12:
        return 0.0
    return float(max(0.0, 1.0 - np.var(resid) / total))


def dominant_period(series, max_period: int | None = None) -> int | None:
    """Period of the strongest non-DC FFT component, or None.

    The same computation CloudScale's signature detector performs.
    """
    s = _series(series)
    x = s - s.mean()
    spectrum = np.abs(np.fft.rfft(x)) ** 2
    spectrum[0] = 0.0
    if spectrum.sum() <= 0:
        return None
    k = int(np.argmax(spectrum))
    if k == 0:
        return None
    period = int(round(s.size / k))
    if period < 2 or period > s.size // 2:
        return None
    if max_period is not None and period > max_period:
        return None
    return period


def burstiness(series) -> float:
    """Goh–Barabási burstiness B = (sigma - mu) / (sigma + mu) in [-1, 1].

    -1 = perfectly regular, 0 = Poisson-like, → 1 = extremely bursty.
    Computed on the series values (a rate-level proxy for the classic
    inter-event-time definition, appropriate for interval counts).
    """
    s = _series(series)
    mu, sigma = float(s.mean()), float(s.std())
    if mu + sigma < 1e-12:
        return 0.0
    return float((sigma - mu) / (sigma + mu))


def coefficient_of_variation(series) -> float:
    """sigma / mu (0 for a constant series)."""
    s = _series(series)
    mu = float(s.mean())
    if abs(mu) < 1e-12:
        return 0.0
    return float(s.std() / mu)


def peak_to_median(series) -> float:
    """max / median — the spike amplitude measure used for Fig. 1a."""
    s = _series(series)
    med = float(np.median(s))
    if med < 1e-12:
        return float("inf") if s.max() > 0 else 1.0
    return float(s.max() / med)


def trend_slope(series) -> float:
    """OLS slope over normalized time, in units of series means.

    ~0 for stationary series; e.g. 0.5 means the linear fit rises by
    half the mean level over the whole span.
    """
    s = _series(series)
    mu = float(s.mean())
    if abs(mu) < 1e-12:
        return 0.0
    t = np.linspace(0.0, 1.0, s.size)
    slope = float(np.polyfit(t, s, 1)[0])
    return slope / mu


def hurst_exponent(series, min_chunk: int = 8) -> float:
    """Rescaled-range (R/S) Hurst exponent estimate.

    H ≈ 0.5 for memoryless series; H > 0.5 indicates the long-range
    dependence that motivates LSTM cell memory.  Clamped to [0, 1].
    """
    s = _series(series)
    n = s.size
    if n < 4 * min_chunk:
        return 0.5
    sizes = []
    size = n
    while size >= min_chunk:
        sizes.append(size)
        size //= 2
    log_sizes, log_rs = [], []
    for size in sizes:
        m = n // size
        chunks = s[: m * size].reshape(m, size)
        means = chunks.mean(axis=1, keepdims=True)
        dev = np.cumsum(chunks - means, axis=1)
        R = dev.max(axis=1) - dev.min(axis=1)
        S = chunks.std(axis=1)
        valid = S > 1e-12
        if not valid.any():
            continue
        rs = float(np.mean(R[valid] / S[valid]))
        if rs > 0:
            log_sizes.append(np.log(size))
            log_rs.append(np.log(rs))
    if len(log_sizes) < 2:
        return 0.5
    h = float(np.polyfit(log_sizes, log_rs, 1)[0])
    return float(min(max(h, 0.0), 1.0))


def characterize(series, daily_period: int | None = None) -> dict:
    """All statistics at once; ``daily_period`` adds seasonality fields."""
    s = _series(series)
    out = {
        "n": int(s.size),
        "mean": float(s.mean()),
        "cv": coefficient_of_variation(s),
        "burstiness": burstiness(s),
        "peak_to_median": peak_to_median(s),
        "trend_slope": trend_slope(s),
        "hurst": hurst_exponent(s),
        "dominant_period": dominant_period(s),
    }
    if daily_period is not None:
        out["daily_autocorr"] = autocorrelation(s, daily_period)
        out["daily_seasonality"] = seasonality_strength(s, daily_period)
    return out
