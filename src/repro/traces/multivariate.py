"""Correlated multi-channel synthetic workload (the ``mv`` trace).

The paper's five traces are univariate JAR streams; real cloud services
export several correlated signals at once — request arrivals plus the
cpu/memory work they induce.  :func:`correlated_trace` generates a
``(minutes, D)`` trace whose channels share one demand process:

* a **shared driver** — diurnal + weekly seasonality modulated by a
  slow AR(1) demand factor — sets the arrival rate of channel 0
  (``requests``), drawn as overdispersed Poisson counts;
* every **follower channel** tracks an EWMA-smoothed copy of the
  *realized* arrivals (so correlation flows through the sampled counts,
  with a per-channel lag), blended with its own AR(1) idiosyncratic
  noise via the ``coupling`` weight.

The result is genuinely multivariate: followers lag and co-move with
requests (cross-correlation grows with ``coupling``) but carry
information of their own, which is what a multivariate forecaster should
be able to exploit.  Deterministic in ``(days, seed, channels,
coupling)``.
"""

from __future__ import annotations

import numpy as np

from repro.traces.loader import WorkloadTrace
from repro.traces.synthetic import (
    _ar1,
    _diurnal,
    _MINUTES_PER_DAY,
    _poisson_counts,
    _weekly,
)

__all__ = ["correlated_trace"]


def _ewma(x: np.ndarray, alpha: float) -> np.ndarray:
    """Exponentially weighted moving average with smoothing ``alpha``."""
    out = np.empty(x.size)
    acc = float(x[0])
    for i in range(x.size):
        acc = (1.0 - alpha) * acc + alpha * float(x[i])
        out[i] = acc
    return out


def correlated_trace(
    days: int = 14,
    seed: int = 21,
    channels: tuple = ("requests", "cpu", "memory"),
    coupling: float = 0.6,
    target_channel: int = 0,
) -> WorkloadTrace:
    """Build the ``mv`` trace: D correlated channels at 1-minute base.

    ``channels`` names the columns; channel 0 is always the request
    driver, later channels are progressively more sluggish followers.
    ``coupling`` in [0, 1] sets how much of each follower is driven by
    the (smoothed) realized requests versus its own AR(1) noise.
    """
    if days < 2:
        raise ValueError("days must be >= 2")
    names = tuple(str(c) for c in channels)
    if len(names) < 1:
        raise ValueError("channels must name at least one channel")
    if not 0.0 <= coupling <= 1.0:
        raise ValueError("coupling must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n = days * _MINUTES_PER_DAY
    t = np.arange(n, dtype=np.float64)

    # Shared demand: seasonality the paper's Web traces exhibit, times a
    # slow mean-reverting wander so no two days are carbon copies.
    season = (0.55 + 0.9 * _diurnal(t, peak_hour=14.0)) * _weekly(t, weekend_dip=0.18)
    demand = np.exp(_ar1(rng, n, rho=0.999, sigma=0.004))
    lam0 = 600.0 * season * demand
    driver = _poisson_counts(rng, lam0, dispersion=1.5)
    cols = [driver]

    # Followers respond to *realized* arrivals (not the latent rate):
    # an EWMA with channel-specific lag plus idiosyncratic AR(1) noise.
    rel = driver / max(float(lam0.mean()), 1.0)
    for d in range(1, len(names)):
        smooth = _ewma(rel, alpha=1.0 / (4.0 * d + 4.0))
        idio = np.exp(_ar1(rng, n, rho=0.98, sigma=0.02))
        scale = 600.0 * (0.35 + 0.2 * d)
        lam_d = scale * (coupling * smooth + (1.0 - coupling)) * idio
        cols.append(_poisson_counts(rng, lam_d, dispersion=1.2))

    counts = np.stack(cols, axis=1)
    return WorkloadTrace(
        name="mv",
        counts=counts,
        category="Multivariate",
        channel_names=names,
        target_channel=target_channel,
    )
