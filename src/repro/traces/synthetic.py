"""Seeded synthetic generators for the paper's five workload traces.

Each generator builds a per-minute arrival-rate profile lambda(t)
matching the trace's published shape (paper Fig. 1, Fig. 8, Table I,
Section IV-A/B), then draws integer counts from a Poisson (optionally
overdispersed) process.  Substitution rationale is in DESIGN.md §4; in
brief, the evaluation only relies on the traces' *qualitative*
properties:

* **Wikipedia** — strong diurnal + weekly seasonality, millions of
  requests per interval (so relative noise is tiny → paper MAPE ~1%);
* **Google** — large JARs, no clear period, high spikes concentrated in
  the first half of the trace (pattern change *within* the workload);
* **Facebook** — a single day, heavy-tailed bursty MapReduce arrivals,
  small JARs at 5-minute intervals (→ paper's worst-case 43% MAPE);
* **Azure** — small per-minute rates with a mid-trace regime change and
  mild diurnality;
* **LCG** — HPC grid: ON/OFF burst episodes on a weekday-modulated base.

All generators are deterministic in (seed, days).
"""

from __future__ import annotations

import numpy as np

from repro.traces.loader import WorkloadTrace

__all__ = [
    "wikipedia_trace",
    "google_trace",
    "facebook_trace",
    "azure_trace",
    "lcg_trace",
    "inject_flash_crowd",
    "inject_regime_shift",
]

_MINUTES_PER_DAY = 1440


def _diurnal(t_min: np.ndarray, peak_hour: float = 14.0) -> np.ndarray:
    """Smooth daily profile in [0, 1] peaking at ``peak_hour`` local time."""
    hours = (t_min / 60.0) % 24.0
    return 0.5 * (1.0 + np.cos(2.0 * np.pi * (hours - peak_hour) / 24.0))


def _weekly(t_min: np.ndarray, weekend_dip: float = 0.15) -> np.ndarray:
    """Weekday factor: 1.0 on weekdays, (1 - dip) on days 5 and 6."""
    day = (t_min // _MINUTES_PER_DAY) % 7
    return np.where(day >= 5, 1.0 - weekend_dip, 1.0)


def _ar1(
    rng: np.random.Generator, n: int, rho: float, sigma: float
) -> np.ndarray:
    """Zero-mean AR(1) path with persistence ``rho`` and innovation ``sigma``."""
    e = rng.standard_normal(n) * sigma
    out = np.empty(n)
    acc = 0.0
    for i in range(n):
        acc = rho * acc + e[i]
        out[i] = acc
    return out


def _poisson_counts(
    rng: np.random.Generator, lam: np.ndarray, dispersion: float = 1.0
) -> np.ndarray:
    """Draw counts with mean ``lam``; ``dispersion > 1`` adds NB overdispersion.

    Overdispersion uses the Gamma-Poisson mixture: variance becomes
    lam * dispersion.  Large means (>1e6) switch to a Gaussian
    approximation to avoid int64 overflow concerns in the Poisson sampler.
    """
    lam = np.maximum(lam, 0.0)
    if dispersion > 1.0:
        shape = lam / (dispersion - 1.0)
        shape = np.maximum(shape, 1e-9)
        lam = rng.gamma(shape, dispersion - 1.0)
    big = lam > 1e6
    counts = np.empty(lam.shape)
    counts[~big] = rng.poisson(lam[~big])
    counts[big] = np.round(lam[big] + rng.standard_normal(int(big.sum())) * np.sqrt(lam[big]))
    return np.maximum(counts, 0.0)


def inject_flash_crowd(
    counts: np.ndarray,
    at: int,
    *,
    magnitude: float = 3.0,
    width: int = 12,
    ramp: int = 2,
    jitter: float = 0.0,
    seed: int = 0,
    target_channel: int = 0,
    bleed: float = 0.0,
) -> np.ndarray:
    """Overlay a flash crowd on ``counts`` — returns a new array.

    A flash crowd (thundering herd, viral link, retry storm) ramps the
    arrival rate up to ``magnitude`` x baseline over ``ramp`` intervals,
    holds briefly, then decays exponentially back over the remaining
    ``width``.  Nothing in the history before ``at`` anticipates it —
    the canonical disturbance a pure forecaster cannot see coming, used
    by the :mod:`repro.autoscale.scenarios` adversarial harness.

    Deterministic in ``(at, magnitude, width, ramp, jitter, seed)``;
    ``jitter`` adds seeded multiplicative noise (std as a fraction of
    the disturbance) so repeated spikes are not carbon copies.

    A 2-D ``(steps, D)`` series spikes in ``target_channel``; ``bleed``
    in ``[0, 1]`` couples a proportionally smaller surge (magnitude
    scaled toward 1 by ``bleed``) into every other channel — a request
    flood drags cpu/memory up with it, just less sharply.
    """
    c = np.asarray(counts, dtype=np.float64)
    if c.ndim == 2:
        if not 0 <= target_channel < c.shape[1]:
            raise ValueError(
                f"target_channel {target_channel} out of range for "
                f"{c.shape[1]}-channel series"
            )
        if not 0.0 <= bleed <= 1.0:
            raise ValueError("bleed must be in [0, 1]")
        out = c.copy()
        out[:, target_channel] = inject_flash_crowd(
            c[:, target_channel], at, magnitude=magnitude, width=width,
            ramp=ramp, jitter=jitter, seed=seed,
        )
        if bleed > 0.0:
            side = 1.0 + (magnitude - 1.0) * bleed
            for d in range(c.shape[1]):
                if d == target_channel:
                    continue
                out[:, d] = inject_flash_crowd(
                    c[:, d], at, magnitude=side, width=width,
                    ramp=ramp, jitter=jitter, seed=seed,
                )
        return out
    c = c.copy()
    if not 0 <= at < c.size:
        raise ValueError("at must be inside the series")
    if magnitude < 1.0:
        raise ValueError("magnitude must be >= 1.0 (a crowd, not a dip)")
    if width < 1:
        raise ValueError("width must be >= 1")
    if ramp < 1:
        raise ValueError("ramp must be >= 1")
    end = min(at + width, c.size)
    span = end - at
    t = np.arange(span, dtype=np.float64)
    rise = np.minimum(t / ramp, 1.0)
    decay = np.exp(-np.maximum(t - ramp, 0.0) / max((width - ramp) / 3.0, 1.0))
    gain = 1.0 + (magnitude - 1.0) * rise * decay
    if jitter > 0.0:
        rng = np.random.default_rng(seed)
        gain *= np.maximum(1.0 + rng.standard_normal(span) * jitter, 0.1)
        gain = np.maximum(gain, 1.0)
    c[at:end] *= gain
    return c


def inject_regime_shift(
    counts: np.ndarray,
    at: int,
    *,
    factor: float = 2.0,
    ramp: int = 0,
    jitter: float = 0.0,
    seed: int = 0,
    target_channel: int = 0,
    bleed: float = 0.0,
) -> np.ndarray:
    """Apply a persistent level shift to ``counts[at:]`` — returns a new array.

    A regime shift (tenant onboarding, product launch, upstream
    migration) multiplies demand by ``factor`` from ``at`` onward —
    permanently, unlike a flash crowd.  ``ramp > 0`` phases the shift in
    linearly over that many intervals; ``jitter`` adds seeded
    multiplicative noise to the shifted region.  Deterministic in
    ``(at, factor, ramp, jitter, seed)``.

    A 2-D ``(steps, D)`` series shifts in ``target_channel``; ``bleed``
    in ``[0, 1]`` applies a proportionally damped shift (factor scaled
    toward 1 by ``bleed``) to every other channel.
    """
    c = np.asarray(counts, dtype=np.float64)
    if c.ndim == 2:
        if not 0 <= target_channel < c.shape[1]:
            raise ValueError(
                f"target_channel {target_channel} out of range for "
                f"{c.shape[1]}-channel series"
            )
        if not 0.0 <= bleed <= 1.0:
            raise ValueError("bleed must be in [0, 1]")
        out = c.copy()
        out[:, target_channel] = inject_regime_shift(
            c[:, target_channel], at, factor=factor, ramp=ramp,
            jitter=jitter, seed=seed,
        )
        if bleed > 0.0:
            side = 1.0 + (factor - 1.0) * bleed
            for d in range(c.shape[1]):
                if d == target_channel:
                    continue
                out[:, d] = inject_regime_shift(
                    c[:, d], at, factor=side, ramp=ramp,
                    jitter=jitter, seed=seed,
                )
        return out
    c = c.copy()
    if not 0 <= at < c.size:
        raise ValueError("at must be inside the series")
    if factor <= 0.0:
        raise ValueError("factor must be positive")
    if ramp < 0:
        raise ValueError("ramp must be non-negative")
    span = c.size - at
    t = np.arange(span, dtype=np.float64)
    frac = np.minimum(t / ramp, 1.0) if ramp > 0 else np.ones(span)
    gain = 1.0 + (factor - 1.0) * frac
    if jitter > 0.0:
        rng = np.random.default_rng(seed)
        gain *= np.maximum(1.0 + rng.standard_normal(span) * jitter, 0.1)
    c[at:] *= gain
    return c


def wikipedia_trace(days: int = 21, seed: int = 11) -> WorkloadTrace:
    """Web workload: strong seasonality, ~5.4M requests / 30-min interval."""
    if days < 2:
        raise ValueError("days must be >= 2")
    rng = np.random.default_rng(seed)
    n = days * _MINUTES_PER_DAY
    t = np.arange(n, dtype=np.float64)
    base = 180_000.0  # requests per minute → ~5.4M per 30 minutes
    profile = 0.65 + 0.7 * _diurnal(t, peak_hour=15.0)
    profile *= _weekly(t, weekend_dip=0.12)
    trend = 1.0 + 0.002 * (t / _MINUTES_PER_DAY)  # slow organic growth
    wander = np.exp(_ar1(rng, n, rho=0.995, sigma=0.002))  # gentle day-to-day drift
    lam = base * profile * trend * wander
    counts = _poisson_counts(rng, lam)
    return WorkloadTrace(name="wiki", counts=counts, category="Web")


def google_trace(days: int = 21, seed: int = 12) -> WorkloadTrace:
    """Data-center workload: ~800k jobs / 30-min, spiky first half, no period."""
    if days < 2:
        raise ValueError("days must be >= 2")
    rng = np.random.default_rng(seed)
    n = days * _MINUTES_PER_DAY
    base = 27_000.0  # jobs per minute → ~810k per 30 minutes
    # Three-timescale stochastic level: a slowly meandering mean, an
    # hour-scale component a good predictor can track, and fast
    # submission churn — no seasonality, visibly rough (paper Fig. 1a).
    slow = np.exp(_ar1(rng, n, rho=0.9995, sigma=0.006))
    mid = np.exp(_ar1(rng, n, rho=0.997, sigma=0.025))
    fast = np.exp(_ar1(rng, n, rho=0.75, sigma=0.12))
    lam = base * slow * mid * fast
    # High spikes concentrated in the first half (paper Fig. 1a).
    n_spikes = max(10, 2 * days)
    spike_starts = rng.integers(0, n // 2 - 60, size=n_spikes)
    for s in spike_starts:
        width = int(rng.integers(30, 180))
        height = rng.uniform(2.0, 5.0)
        ramp = np.exp(-np.linspace(0.0, 4.0, width))
        lam[s : s + width] *= 1.0 + (height - 1.0) * ramp[: max(0, min(width, n - s))]
    counts = _poisson_counts(rng, lam, dispersion=3.0)
    return WorkloadTrace(name="gl", counts=counts, category="Data Center")


def facebook_trace(days: int = 1, seed: int = 13) -> WorkloadTrace:
    """Data-center MapReduce workload: one day, heavy fluctuation, small JARs."""
    if days < 1:
        raise ValueError("days must be >= 1")
    rng = np.random.default_rng(seed)
    n = days * _MINUTES_PER_DAY
    t = np.arange(n, dtype=np.float64)
    base = 6.0  # jobs per minute → ~30 per 5-minute interval
    profile = 0.6 + 0.8 * _diurnal(t, peak_hour=13.0)
    # Strong short-range fluctuation: fast AR(1) with large innovations.
    churn = np.exp(_ar1(rng, n, rho=0.9, sigma=0.25))
    lam = base * profile * churn
    # Occasional batch submission bursts (MapReduce job trains).
    n_bursts = 10 * days
    for s in rng.integers(0, n - 15, size=n_bursts):
        lam[s : s + int(rng.integers(3, 15))] *= rng.uniform(2.0, 6.0)
    counts = _poisson_counts(rng, lam, dispersion=2.0)
    return WorkloadTrace(name="fb", counts=counts, category="Data Center")


def azure_trace(days: int = 30, seed: int = 14) -> WorkloadTrace:
    """Public-cloud workload: small rates, mid-trace regime change."""
    if days < 2:
        raise ValueError("days must be >= 2")
    rng = np.random.default_rng(seed)
    n = days * _MINUTES_PER_DAY
    t = np.arange(n, dtype=np.float64)
    base = 1.6  # VM requests per minute — tiny JARs at 5-minute intervals
    profile = 0.75 + 0.5 * _diurnal(t, peak_hour=11.0)
    profile *= _weekly(t, weekend_dip=0.2)
    # Regime change: demand steps up ~60% around 55% through the trace
    # (public-cloud tenants onboarding — paper Fig. 8a shows the pattern
    # within the Azure trace changing over time).
    shift_at = int(0.55 * n)
    ramp_len = 3 * _MINUTES_PER_DAY
    ramp = np.clip((t - shift_at) / ramp_len, 0.0, 1.0)
    regime = 1.0 + 0.6 * ramp
    wander = np.exp(_ar1(rng, n, rho=0.998, sigma=0.003))
    # Hour-scale churn + multi-hour tenant deployment episodes: real
    # Azure VM-request streams are dominated by batchy per-tenant
    # deployments, not a clean diurnal curve (Cortez et al. 2017).  The
    # episodes decay over hours, so they are *trackable* dynamics at the
    # evaluated 10–60 minute intervals — structure a predictor can earn
    # accuracy on, unlike sub-interval noise.
    churn = np.exp(_ar1(rng, n, rho=0.995, sigma=0.025))
    lam = base * profile * regime * wander * churn
    n_bursts = days  # roughly one large deployment episode per day
    for s in rng.integers(0, n - 120, size=n_bursts):
        width = int(rng.integers(120, 600))
        height = rng.uniform(1.8, 3.5)
        decay = np.exp(-np.linspace(0.0, 3.0, width))
        end = min(s + width, n)
        lam[s:end] *= 1.0 + (height - 1.0) * decay[: end - s]
    counts = _poisson_counts(rng, lam, dispersion=1.5)
    return WorkloadTrace(name="az", counts=counts, category="Public Cloud")


def lcg_trace(days: int = 21, seed: int = 15) -> WorkloadTrace:
    """HPC grid workload (LCG): bursty ON/OFF episodes, weekday modulation."""
    if days < 2:
        raise ValueError("days must be >= 2")
    rng = np.random.default_rng(seed)
    n = days * _MINUTES_PER_DAY
    t = np.arange(n, dtype=np.float64)
    base = 35.0  # jobs per minute in steady state
    profile = 0.7 + 0.4 * _diurnal(t, peak_hour=10.0)
    profile *= _weekly(t, weekend_dip=0.35)  # grids quiet down on weekends
    # ON/OFF burst process: exponential-length ON episodes multiply the
    # rate (large coordinated submissions typical of grid pilots).
    gain = np.ones(n)
    pos = 0
    while pos < n:
        off_len = int(rng.exponential(240.0)) + 30
        pos += off_len
        if pos >= n:
            break
        on_len = int(rng.exponential(90.0)) + 10
        gain[pos : pos + on_len] = rng.uniform(2.0, 5.0)
        pos += on_len
    wander = np.exp(_ar1(rng, n, rho=0.997, sigma=0.004))
    lam = base * profile * gain * wander
    counts = _poisson_counts(rng, lam, dispersion=2.5)
    return WorkloadTrace(name="lcg", counts=counts, category="HPC")
