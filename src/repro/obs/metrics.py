"""In-process metrics: counters, gauges, timers, histograms.

A thread-safe :class:`MetricsRegistry` maps dotted names to metric
instances; the module-level registry (:func:`get_registry`) is what the
instrumented subsystems use, and :func:`summary` snapshots it into a
plain JSON-serializable dict for reports and benchmark artifacts.

Histograms keep a bounded reservoir of observations so percentile
queries stay O(n log n) over at most ``max_samples`` points while
count/sum/min/max remain exact over the full stream.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "reset_metrics",
    "summary",
]


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """Last-set scalar value."""

    kind = "gauge"

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self._value}


class Histogram:
    """Streaming distribution with exact count/sum/min/max and a
    bounded reservoir for percentile estimates."""

    kind = "histogram"

    def __init__(self, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError("max_samples must be >= 1")
        self.max_samples = int(max_samples)
        self._lock = threading.Lock()
        self._samples: list[float] = []
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            if len(self._samples) < self.max_samples:
                self._samples.append(v)
            else:
                # Deterministic decimation: overwrite round-robin so the
                # reservoir tracks the recent distribution without RNG.
                self._samples[self.count % self.max_samples] = v

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile ``p`` in [0, 100] of the reservoir."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("p must be in [0, 100]")
        with self._lock:
            data = sorted(self._samples)
        if not data:
            return math.nan
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def snapshot(self) -> dict:
        with self._lock:
            empty = self.count == 0
            base = {
                "kind": self.kind,
                "count": self.count,
                "sum": self.total,
                "min": None if empty else self.min,
                "max": None if empty else self.max,
                "mean": None if empty else self.total / self.count,
                # Percentile provenance: once round-robin decimation has
                # kicked in, the reservoir reflects a recent window of
                # the stream, not its full history — consumers (the
                # Prometheus exposition, benchmark artifacts) need to
                # know which one they are quoting.
                "reservoir_size": len(self._samples),
                "reservoir_wrapped": self.count > self.max_samples,
            }
        if not empty:
            base.update(
                p50=self.percentile(50.0),
                p90=self.percentile(90.0),
                p99=self.percentile(99.0),
            )
        return base


class Timer(Histogram):
    """A histogram of durations in seconds with a context-manager API."""

    kind = "timer"

    class _Timing:
        __slots__ = ("timer", "start", "seconds")

        def __init__(self, timer: "Timer"):
            self.timer = timer
            self.start = 0.0
            self.seconds = 0.0

        def __enter__(self):
            self.start = time.perf_counter()
            return self

        def __exit__(self, *exc):
            self.seconds = time.perf_counter() - self.start
            self.timer.observe(self.seconds)
            return False

    def time(self) -> "Timer._Timing":
        return Timer._Timing(self)


class MetricsRegistry:
    """Thread-safe name → metric map with get-or-create accessors."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = cls()
                self._metrics[name] = m
            elif not isinstance(m, cls) or type(m) is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as {type(m).__name__}"
                )
            return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self, prefix: str | None = None) -> dict:
        """Plain-dict snapshot of every metric, sorted by name.

        ``prefix`` restricts to one dotted namespace (e.g.
        ``"serving."``) — how subsystem reports pull their own counters
        out of the shared registry.
        """
        with self._lock:
            items = sorted(self._metrics.items())
        return {
            name: metric.snapshot()
            for name, metric in items
            if prefix is None or name.startswith(prefix)
        }

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry the instrumented subsystems use."""
    return _registry


def counter(name: str) -> Counter:
    """Get-or-create ``name`` as a counter in the global registry."""
    return _registry.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create ``name`` as a gauge in the global registry."""
    return _registry.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create ``name`` as a histogram in the global registry."""
    return _registry.histogram(name)


def timer(name: str) -> Timer:
    """Get-or-create ``name`` as a timer in the global registry."""
    return _registry.timer(name)


def reset_metrics() -> None:
    """Drop every metric in the global registry (tests, fresh runs)."""
    _registry.reset()


def summary(prefix: str | None = None) -> dict:
    """Machine-readable report of everything the registry has seen.

    The shape benchmarks dump to JSON: ``{"metrics": {name: snapshot}}``.
    ``prefix`` restricts to one dotted namespace (e.g. ``"serving."``).
    """
    return {"schema": 1, "metrics": _registry.snapshot(prefix)}
