"""Structured event records and sinks — the telemetry backbone.

Every instrumented subsystem (training loop, BO search, autoscaling
simulator, tracing spans) reports through :func:`emit`, which fans a
flat JSON-serializable record out to the registered sinks.  With no
sinks registered the hot paths pay a single ``if`` per potential event
— the guard callers should use is :func:`enabled`.

Sinks:

* :class:`MemorySink` — keeps events in a list (tests, summaries);
* :class:`JsonlSink` — appends one JSON object per line to a file, the
  machine-readable trace format the CLI exposes as ``--trace-out``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Event",
    "MemorySink",
    "JsonlSink",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    "enabled",
    "emit",
    "read_jsonl",
]

#: Bumped whenever the on-disk record layout changes.
SCHEMA_VERSION = 1

_lock = threading.Lock()
_sinks: tuple["Sink", ...] = ()


@dataclass
class Event:
    """One telemetry record: a name, a wall-clock timestamp, flat fields."""

    name: str
    time: float
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d = {"event": self.name, "time": self.time, "v": SCHEMA_VERSION}
        d.update(self.fields)
        return d


class Sink:
    """Receives event dicts; subclasses override :meth:`handle`."""

    def handle(self, record: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemorySink(Sink):
    """Collects events in memory; supports filtering by event name."""

    def __init__(self, max_events: int | None = None):
        self.records: list[dict] = []
        self.max_events = max_events
        self._lock = threading.Lock()

    def handle(self, record: dict) -> None:
        with self._lock:
            self.records.append(record)
            if self.max_events is not None and len(self.records) > self.max_events:
                del self.records[0]

    def by_name(self, name: str) -> list[dict]:
        with self._lock:
            return [r for r in self.records if r.get("event") == name]

    def __len__(self) -> int:
        return len(self.records)


class JsonlSink(Sink):
    """Appends one JSON object per line to ``path`` (created eagerly)."""

    def __init__(self, path: str, flush_every: int = 1):
        self.path = str(path)
        self.flush_every = max(1, int(flush_every))
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._since_flush = 0

    def handle(self, record: dict) -> None:
        line = json.dumps(record, default=_json_fallback)
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._since_flush += 1
            if self._since_flush >= self.flush_every:
                self._fh.flush()
                self._since_flush = 0

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()


class CallbackSink(Sink):
    """Adapts a plain callable ``record -> None`` into a sink."""

    def __init__(self, fn: Callable[[dict], None]):
        self.fn = fn

    def handle(self, record: dict) -> None:
        self.fn(record)


def _json_fallback(obj: Any):
    """Serialize numpy scalars/arrays without importing numpy here."""
    if hasattr(obj, "tolist"):
        return obj.tolist()
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)


# ----------------------------------------------------------------------
# global sink registry
# ----------------------------------------------------------------------
def add_sink(sink: Sink) -> Sink:
    """Register a sink to receive all subsequent events."""
    global _sinks
    with _lock:
        if sink not in _sinks:
            _sinks = _sinks + (sink,)
    return sink


def remove_sink(sink: Sink, close: bool = False) -> None:
    """Deregister a sink; optionally close it."""
    global _sinks
    with _lock:
        _sinks = tuple(s for s in _sinks if s is not sink)
    if close:
        sink.close()


def clear_sinks(close: bool = False) -> None:
    """Deregister every sink; optionally close them."""
    global _sinks
    with _lock:
        old, _sinks = _sinks, ()
    if close:
        for s in old:
            s.close()


def enabled() -> bool:
    """True when at least one sink is registered.

    Hot paths check this before building event payloads so that the
    disabled cost is one tuple truth-test.
    """
    return bool(_sinks)


def emit(name: str, /, **fields) -> None:
    """Build an event and hand it to every registered sink.

    No-op (and allocation-free) when no sinks are registered.
    """
    sinks = _sinks
    if not sinks:
        return
    record = Event(name=name, time=time.time(), fields=fields).to_dict()
    for sink in sinks:
        sink.handle(record)


def read_jsonl(path: str) -> Iterator[dict]:
    """Yield the records of a JSONL trace file (blank lines skipped)."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
