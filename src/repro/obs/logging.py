"""Namespaced ``repro.*`` loggers and one-call configuration.

All framework diagnostics flow through children of the ``repro`` logger
(``repro.bayesopt``, ``repro.experiments.fig9``, ...).  By default the
hierarchy is silent (a ``NullHandler`` on the root ``repro`` logger);
:func:`configure_logging` installs a stream handler with either a
human-readable or a JSON-lines formatter.  User-facing CLI output stays
on plain stdout — the logger is for diagnostics.
"""

from __future__ import annotations

import json
import logging
import sys

__all__ = ["get_logger", "configure_logging", "JsonFormatter"]

ROOT_NAME = "repro"

_root = logging.getLogger(ROOT_NAME)
_root.addHandler(logging.NullHandler())

#: Handler installed by :func:`configure_logging`, so reconfiguration
#: replaces rather than stacks handlers.
_installed_handler: logging.Handler | None = None


class JsonFormatter(logging.Formatter):
    """One JSON object per log record (machine-readable diagnostics)."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "logger": record.name,
            "level": record.levelname,
            "time": record.created,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("bayesopt")`` → ``repro.bayesopt``; an empty name (or a
    name already starting with ``repro``) returns the root framework
    logger / the name unchanged.
    """
    if not name:
        return _root
    if name == ROOT_NAME or name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def configure_logging(
    level: int | str = "INFO",
    json_mode: bool = False,
    stream=None,
) -> logging.Logger:
    """Install (or replace) the handler on the ``repro`` logger.

    Parameters
    ----------
    level:
        Numeric level or name (``"DEBUG"``, ``"info"``, ...).
    json_mode:
        Emit JSON-lines records instead of human-readable text.
    stream:
        Target stream; defaults to ``sys.stderr`` so diagnostics never
        mix into stdout tables.
    """
    global _installed_handler
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if json_mode:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
        )
    if _installed_handler is not None:
        _root.removeHandler(_installed_handler)
    _root.addHandler(handler)
    _root.setLevel(level)
    _installed_handler = handler
    return _root
