"""Callback protocol for the training loop and the BO search.

Two small protocols:

* :class:`TrainingCallback` — per-epoch hooks fired by
  :meth:`repro.nn.network.LSTMRegressor.fit` when a ``callbacks=`` list
  is passed;
* :class:`TrialCallback` — per-trial hook fired by the search
  optimizers' ``run`` loops.

Plain callables are accepted wherever a callback object is: a function
passed in a ``callbacks=`` list is treated as ``on_epoch_end``.
:class:`TelemetryCallback` is the stock bridge that forwards epochs into
the :mod:`repro.obs` event stream and metrics registry.
"""

from __future__ import annotations

from typing import Callable

from repro.obs import events as _events
from repro.obs import metrics as _metrics

__all__ = [
    "TrainingCallback",
    "TrialCallback",
    "TelemetryCallback",
    "CallbackList",
]


class TrainingCallback:
    """Base class / protocol for per-epoch training hooks."""

    def on_train_begin(self, model, n_epochs: int) -> None:
        pass

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        pass

    def on_train_end(self, history) -> None:
        pass


class TrialCallback:
    """Base class / protocol for per-trial search hooks."""

    def on_trial_end(self, record) -> None:
        pass


class _FnCallback(TrainingCallback):
    """Wraps a bare callable as an ``on_epoch_end`` hook."""

    def __init__(self, fn: Callable[[int, dict], None]):
        self._fn = fn

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        self._fn(epoch, logs)


class CallbackList:
    """Normalizes a mixed list of callbacks/callables and dispatches.

    Falsy when empty so hot loops can skip log-dict construction with a
    single truth test.
    """

    def __init__(self, callbacks=None):
        self._cbs: list[TrainingCallback] = []
        for cb in callbacks or ():
            if isinstance(cb, TrainingCallback):
                self._cbs.append(cb)
            elif callable(cb):
                self._cbs.append(_FnCallback(cb))
            else:
                raise TypeError(
                    f"callback must be a TrainingCallback or callable, got {type(cb)!r}"
                )

    def __bool__(self) -> bool:
        return bool(self._cbs)

    def __len__(self) -> int:
        return len(self._cbs)

    def on_train_begin(self, model, n_epochs: int) -> None:
        for cb in self._cbs:
            cb.on_train_begin(model, n_epochs)

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        for cb in self._cbs:
            cb.on_epoch_end(epoch, logs)

    def on_train_end(self, history) -> None:
        for cb in self._cbs:
            cb.on_train_end(history)


class TelemetryCallback(TrainingCallback):
    """Forwards every epoch into the event stream + metrics registry.

    ``prefix`` namespaces the metric/event names so concurrent trainings
    (e.g. different BO trials) can be told apart if needed.
    """

    def __init__(self, prefix: str = "train"):
        self.prefix = prefix

    def on_epoch_end(self, epoch: int, logs: dict) -> None:
        _metrics.histogram(f"{self.prefix}.epoch_loss").observe(logs["train_loss"])
        _metrics.timer(f"{self.prefix}.epoch_seconds").observe(logs["duration_s"])
        _metrics.counter(f"{self.prefix}.epochs").inc()
        if _events.enabled():
            _events.emit(f"{self.prefix}.epoch", epoch=epoch, **logs)
