"""Nested tracing spans with wall-clock and perf-counter timing.

:func:`span` is a context manager that tracks the active span per
thread/async-context (``contextvars``), so nested ``with span(...)``
blocks form a tree: each span records its parent, its depth, and a
monotonically increasing id.  On exit the span

* emits a ``"span"`` event through :mod:`repro.obs.events` (so traces
  land in ``--trace-out`` JSONL files), and
* records its duration in the metrics registry under
  ``span.<name>.seconds``.

Both are skipped when the corresponding subsystem is disabled, so a
span costs two clock reads plus a context-variable swap when telemetry
is off.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.obs import events as _events
from repro.obs import metrics as _metrics

__all__ = ["Span", "span", "current_span"]

_ids = itertools.count(1)
_current: ContextVar["Span | None"] = ContextVar("repro_obs_current_span", default=None)


@dataclass
class Span:
    """One timed region; ``attrs`` may be extended while the span is open."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    attrs: dict = field(default_factory=dict)
    start_time: float = 0.0          # wall clock (unix seconds)
    duration_s: float = 0.0          # perf-counter elapsed, filled on exit
    _start_perf: float = 0.0

    def set(self, key: str, value) -> None:
        """Attach an attribute to the span (appears in the emitted record)."""
        self.attrs[key] = value

    def to_record(self) -> dict:
        d = {
            "span": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_time": self.start_time,
            "duration_s": self.duration_s,
        }
        d.update(self.attrs)
        return d


def current_span() -> Span | None:
    """The innermost open span in this thread/context, if any."""
    return _current.get()


@contextmanager
def span(name: str, **attrs):
    """Open a nested, timed span named ``name``.

    Yields the :class:`Span` so callers can attach attributes::

        with span("loaddynamics.fit", n_intervals=len(series)) as sp:
            ...
            sp.set("n_trials", report.n_trials)
    """
    parent = _current.get()
    sp = Span(
        name=name,
        span_id=next(_ids),
        parent_id=parent.span_id if parent is not None else None,
        depth=parent.depth + 1 if parent is not None else 0,
        attrs=dict(attrs),
        start_time=time.time(),
    )
    token = _current.set(sp)
    sp._start_perf = time.perf_counter()
    try:
        yield sp
    finally:
        sp.duration_s = time.perf_counter() - sp._start_perf
        _current.reset(token)
        _metrics.timer(f"span.{name}.seconds").observe(sp.duration_s)
        if _events.enabled():
            _events.emit("span", **sp.to_record())
