"""Serving SLOs: objectives, error budgets, burn rates, health verdicts.

An objective is a per-interval pass/fail test (forecast latency under a
bound, per-interval accuracy under a MAPE bound) with a *target* success
fraction (e.g. 0.99 — "99% of intervals must meet it").  The slack,
``(1 - target) x intervals``, is the **error budget**; a healthy
deployment spends it slowly, an unhealthy one burns through it.  Two
derived rates drive the verdict:

* ``budget_consumed`` — lifetime violations over the lifetime budget;
  ``>= 1`` means the objective is *breached* for the run;
* ``burn_rate`` — the rolling-window violation fraction over the
  allowed fraction; ``> 1`` means the budget is currently being spent
  faster than it accrues (SRE-style burn-rate alerting), i.e. the
  serving path is *degraded* even if the lifetime budget still holds.

:meth:`SLOTracker.health` folds every objective into one typed
:class:`HealthReport` — ``healthy`` / ``degraded`` / ``breached`` with
one human-readable reason per failing objective — which is what
``repro simulate --monitor`` prints and ``ServingReport`` carries.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

__all__ = ["HEALTHY", "DEGRADED", "BREACHED", "HealthReport", "SLOTracker"]

HEALTHY = "healthy"
DEGRADED = "degraded"
BREACHED = "breached"

#: Verdict severity order for folding objectives into one status.
_SEVERITY = {HEALTHY: 0, DEGRADED: 1, BREACHED: 2}


@dataclass(frozen=True)
class HealthReport:
    """One serving-health verdict: the worst objective wins."""

    status: str
    reasons: tuple[str, ...] = ()

    def __post_init__(self):
        if self.status not in _SEVERITY:
            raise ValueError(f"unknown health status {self.status!r}")

    @property
    def healthy(self) -> bool:
        return self.status == HEALTHY

    def worse_of(self, other: "HealthReport") -> "HealthReport":
        """Merge two verdicts: max severity, concatenated reasons."""
        status = (
            self.status
            if _SEVERITY[self.status] >= _SEVERITY[other.status]
            else other.status
        )
        return HealthReport(status=status, reasons=self.reasons + other.reasons)

    def as_dict(self) -> dict:
        return {"status": self.status, "reasons": list(self.reasons)}


class _Objective:
    """Violation accounting for one SLO objective."""

    __slots__ = ("name", "bound", "target", "window", "n", "violations",
                 "_recent", "_recent_violations")

    def __init__(self, name: str, bound: float, target: float, window: int):
        self.name = name
        self.bound = float(bound)
        self.target = float(target)
        self.window = int(window)
        self.n = 0
        self.violations = 0
        self._recent: deque[int] = deque()
        self._recent_violations = 0

    def record(self, violated: bool) -> None:
        v = int(violated)
        self.n += 1
        self.violations += v
        self._recent.append(v)
        self._recent_violations += v
        if len(self._recent) > self.window:
            self._recent_violations -= self._recent.popleft()

    def state_dict(self) -> dict:
        return {
            "n": self.n,
            "violations": self.violations,
            "recent": list(self._recent),
            "recent_violations": self._recent_violations,
        }

    def load_state_dict(self, state: dict) -> None:
        recent = [int(v) for v in state["recent"]]
        if len(recent) > self.window:
            raise ValueError(
                f"{len(recent)} saved window records exceed window {self.window}"
            )
        self.n = int(state["n"])
        self.violations = int(state["violations"])
        self._recent = deque(recent)
        self._recent_violations = int(state["recent_violations"])

    @property
    def budget_consumed(self) -> float:
        """Lifetime violations / lifetime budget (>= 1 means breached)."""
        budget = (1.0 - self.target) * self.n
        if budget <= 0.0:
            return math.inf if self.violations else 0.0
        return self.violations / budget

    @property
    def burn_rate(self) -> float:
        """Rolling violation fraction over the allowed fraction."""
        n = len(self._recent)
        if n == 0:
            return 0.0
        frac = self._recent_violations / n
        allowed = 1.0 - self.target
        if allowed <= 0.0:
            return math.inf if frac else 0.0
        return frac / allowed

    def snapshot(self) -> dict:
        return {
            "bound": self.bound,
            "target": self.target,
            "n": self.n,
            "violations": self.violations,
            "violation_rate": (self.violations / self.n) if self.n else 0.0,
            "budget_consumed": self.budget_consumed,
            "burn_rate": self.burn_rate,
        }


class SLOTracker:
    """Latency + accuracy objectives with error-budget accounting.

    Parameters
    ----------
    latency_slo_ms:
        Per-interval forecast latency bound in milliseconds; ``None``
        disables the latency objective (e.g. replay runs with no timing).
    accuracy_slo_mape:
        Per-interval absolute-percentage-error bound; ``None`` disables
        the accuracy objective.
    target:
        Required fraction of compliant intervals per objective.
    window:
        Rolling window (intervals) behind the burn rate.
    min_intervals:
        Grace period: verdicts are ``healthy`` until this many intervals
        have been observed, so the first violation of a young run cannot
        instantly "breach" a budget of fractions of an interval.
    """

    def __init__(
        self,
        latency_slo_ms: float | None = None,
        accuracy_slo_mape: float | None = None,
        target: float = 0.99,
        window: int = 256,
        min_intervals: int = 30,
    ):
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if window < 1:
            raise ValueError("window must be >= 1")
        if min_intervals < 1:
            raise ValueError("min_intervals must be >= 1")
        if latency_slo_ms is not None and latency_slo_ms <= 0:
            raise ValueError("latency_slo_ms must be positive (or None)")
        if accuracy_slo_mape is not None and accuracy_slo_mape <= 0:
            raise ValueError("accuracy_slo_mape must be positive (or None)")
        self.target = float(target)
        self.window = int(window)
        self.min_intervals = int(min_intervals)
        self.objectives: dict[str, _Objective] = {}
        if latency_slo_ms is not None:
            self.objectives["latency"] = _Objective(
                "latency", latency_slo_ms, target, window
            )
        if accuracy_slo_mape is not None:
            self.objectives["accuracy"] = _Objective(
                "accuracy", accuracy_slo_mape, target, window
            )

    def update(self, *, latency_s: float | None = None, ape: float | None = None) -> None:
        """Record one interval's outcomes against the active objectives."""
        lat = self.objectives.get("latency")
        if lat is not None and latency_s is not None:
            lat.record(latency_s * 1e3 > lat.bound)
        acc = self.objectives.get("accuracy")
        if acc is not None and ape is not None:
            acc.record(ape > acc.bound)

    def state_dict(self) -> dict:
        """JSON-serializable per-objective ledgers for serving resume."""
        return {
            "objectives": {
                name: obj.state_dict() for name, obj in self.objectives.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a same-config instance."""
        saved = state["objectives"]
        if set(saved) != set(self.objectives):
            raise ValueError(
                f"saved objectives {sorted(saved)} do not match configured "
                f"objectives {sorted(self.objectives)}"
            )
        for name, obj_state in saved.items():
            self.objectives[name].load_state_dict(obj_state)

    def health(self) -> HealthReport:
        """Fold every objective into one verdict (worst wins)."""
        status = HEALTHY
        reasons: list[str] = []
        for name, obj in self.objectives.items():
            if obj.n < self.min_intervals:
                continue
            if obj.budget_consumed >= 1.0:
                status = BREACHED
                reasons.append(
                    f"{name}: error budget exhausted "
                    f"({obj.violations}/{obj.n} intervals over {obj.bound:g}, "
                    f"target {obj.target:.0%})"
                )
            elif obj.burn_rate > 1.0:
                if _SEVERITY[status] < _SEVERITY[DEGRADED]:
                    status = DEGRADED
                reasons.append(
                    f"{name}: burning error budget {obj.burn_rate:.1f}x "
                    f"faster than it accrues"
                )
        return HealthReport(status=status, reasons=tuple(reasons))

    def snapshot(self) -> dict:
        return {
            "target": self.target,
            "window": self.window,
            "objectives": {
                name: obj.snapshot() for name, obj in self.objectives.items()
            },
            "health": self.health().as_dict(),
        }
