"""Deterministic concept-drift detectors over a forecast-error stream.

The paper's framework picks a model once per workload; the ROADMAP's
concept-drift item asks for the production counterpart — *noticing when
that model goes stale* from the serving errors themselves, instead of
refitting on a fixed cadence.  Two classic sequential change detectors
are provided, both deterministic (no RNG, replay-stable) and O(1) per
update:

* :class:`CusumDetector` — two-sided error CUSUM.  The first ``warmup``
  errors calibrate a frozen mean/std baseline; afterwards the
  standardized deviation accumulates into ``g+``/``g-`` ledgers
  (decayed by ``slack`` per step) and the detector fires when either
  exceeds ``threshold``.  Freezing the baseline is deliberate: a
  running mean would chase the shift and detection would stall.
* :class:`PageHinkleyDetector` — the Page-Hinkley test: cumulative sum
  of deviations from the running mean minus ``delta`` per step, fired
  when the sum rises ``threshold`` above its historical minimum.
  Robust when no clean calibration window exists (the mean adapts, the
  min-anchored statistic still catches a sustained rise).

Both feed on *absolute percentage errors* by convention (what
:meth:`QualityTracker.update <repro.obs.monitor.quality.QualityTracker.update>`
returns), making thresholds workload-scale-free.  A fired detector
**latches**: ``drifted`` stays ``True`` (with ``fired_at`` and the
triggering ``statistic``) until :meth:`~DriftDetectorBase.reset`, which
also restarts calibration — the contract
:class:`~repro.core.adaptive.AdaptiveLoadDynamics` relies on for
drift-triggered refits.  Firing emits a ``monitor.drift`` event and
increments ``monitor.drift`` counters.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger

__all__ = [
    "DriftDetector",
    "DriftDetectorBase",
    "CusumDetector",
    "PageHinkleyDetector",
]

logger = get_logger("obs.monitor.drift")


@runtime_checkable
class DriftDetector(Protocol):
    """What the serving path needs from a drift detector.

    Anything with this shape plugs into
    :class:`~repro.obs.monitor.monitor.ForecastMonitor` and
    ``AdaptiveLoadDynamics(refit_on_drift=...)``.
    """

    name: str
    drifted: bool
    statistic: float

    def update(self, error: float) -> bool:
        """Consume one error observation; returns the latched flag."""
        ...

    def reset(self) -> None:
        """Clear the latch and restart calibration."""
        ...

    def snapshot(self) -> dict:
        """Plain-dict state for reports."""
        ...


class DriftDetectorBase:
    """Latching, counting, and fire telemetry shared by the detectors.

    Subclasses implement :meth:`_step` (return ``True`` to fire) and
    :meth:`_reset_state`; the base handles the latch, ``fired_at``, the
    ``monitor.drift`` counter/event, and the snapshot scaffold.
    """

    name = "detector"

    #: Attribute names of the subclass's mutable scalar state, serialized
    #: verbatim by :meth:`state_dict` (config knobs are not included).
    _STATE_SCALARS: tuple[str, ...] = ()

    def __init__(self):
        self.drifted = False
        self.statistic = 0.0
        self.threshold = math.inf
        self.n = 0
        self.fired_at: int | None = None

    # -- subclass surface ----------------------------------------------
    def _step(self, error: float) -> bool:
        raise NotImplementedError

    def _reset_state(self) -> None:
        raise NotImplementedError

    # -- persistence ---------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable mutable state (latch, counters, ledgers)."""
        out = {
            "name": self.name,
            "drifted": self.drifted,
            "statistic": self.statistic,
            "n": self.n,
            "fired_at": self.fired_at,
        }
        for field in self._STATE_SCALARS:
            out[field] = getattr(self, field)
        return out

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a same-config instance."""
        if state.get("name") != self.name:
            raise ValueError(
                f"state from detector {state.get('name')!r} cannot load "
                f"into {self.name!r}"
            )
        self.drifted = bool(state["drifted"])
        self.statistic = float(state["statistic"])
        self.n = int(state["n"])
        fired_at = state["fired_at"]
        self.fired_at = int(fired_at) if fired_at is not None else None
        for field in self._STATE_SCALARS:
            setattr(self, field, state[field])

    # ------------------------------------------------------------------
    def update(self, error: float) -> bool:
        self.n += 1
        if self._step(float(error)) and not self.drifted:
            self.drifted = True
            self.fired_at = self.n
            self._emit_fired()
        return self.drifted

    def _emit_fired(self) -> None:
        _metrics.counter("monitor.drift").inc()
        _metrics.counter(f"monitor.drift.{self.name}").inc()
        logger.warning(
            "drift detector %s fired at observation %d (statistic %.3f > %.3f)",
            self.name, self.n, self.statistic, self.threshold,
        )
        if _events.enabled():
            _events.emit(
                "monitor.drift",
                detector=self.name,
                n=self.n,
                statistic=self.statistic,
                threshold=self.threshold,
            )

    def reset(self) -> None:
        """Unlatch and recalibrate; the observation counter keeps running."""
        self.drifted = False
        self.statistic = 0.0
        self.fired_at = None
        self._reset_state()

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "drifted": self.drifted,
            "statistic": self.statistic,
            "threshold": self.threshold,
            "n": self.n,
            "fired_at": self.fired_at,
        }


class CusumDetector(DriftDetectorBase):
    """Two-sided standardized CUSUM over the error stream.

    Parameters
    ----------
    threshold:
        Fire when either one-sided ledger exceeds this (in calibrated
        standard deviations of accumulated drift).  The default trades
        a few intervals of detection delay for a false-positive rate
        that tolerates the sigma underestimate of a short calibration
        window.
    slack:
        Per-step allowance ``k`` subtracted from each standardized
        deviation — deviations below it never accumulate.
    warmup:
        Calibration length; the mean/std of the first ``warmup`` errors
        become the frozen healthy baseline.
    min_std:
        Floor on the calibrated std so a near-constant calibration
        window does not make the detector hair-triggered.
    """

    name = "cusum"
    _STATE_SCALARS = (
        "_cal_n", "_cal_mean", "_cal_m2", "_mu", "_sigma", "_g_pos", "_g_neg",
    )

    def __init__(
        self,
        threshold: float = 10.0,
        slack: float = 0.5,
        warmup: int = 30,
        min_std: float = 1e-3,
    ):
        super().__init__()
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if slack < 0:
            raise ValueError("slack must be non-negative")
        if warmup < 2:
            raise ValueError("warmup must be >= 2")
        if min_std <= 0:
            raise ValueError("min_std must be positive")
        self.threshold = float(threshold)
        self.slack = float(slack)
        self.warmup = int(warmup)
        self.min_std = float(min_std)
        self._reset_state()

    def _reset_state(self) -> None:
        self._cal_n = 0
        self._cal_mean = 0.0
        self._cal_m2 = 0.0
        self._mu = 0.0
        self._sigma = 1.0
        self._g_pos = 0.0
        self._g_neg = 0.0

    @property
    def calibrated(self) -> bool:
        """True once the healthy baseline is frozen."""
        return self._cal_n >= self.warmup

    def _step(self, error: float) -> bool:
        if self._cal_n < self.warmup:
            # Welford over the calibration window, then freeze.
            self._cal_n += 1
            delta = error - self._cal_mean
            self._cal_mean += delta / self._cal_n
            self._cal_m2 += delta * (error - self._cal_mean)
            if self._cal_n == self.warmup:
                self._mu = self._cal_mean
                self._sigma = max(
                    math.sqrt(self._cal_m2 / (self.warmup - 1)), self.min_std
                )
            return False
        z = (error - self._mu) / self._sigma
        self._g_pos = max(0.0, self._g_pos + z - self.slack)
        self._g_neg = max(0.0, self._g_neg - z - self.slack)
        self.statistic = max(self._g_pos, self._g_neg)
        return self.statistic > self.threshold

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap.update(
            calibrated=self.calibrated,
            baseline_mean=self._mu if self.calibrated else None,
            baseline_std=self._sigma if self.calibrated else None,
        )
        return snap


class PageHinkleyDetector(DriftDetectorBase):
    """Page-Hinkley test for a sustained *increase* in the error stream.

    Parameters
    ----------
    threshold:
        Fire when the cumulative deviation rises this far above its
        minimum (in error units x intervals; with percentage errors,
        ``50`` means "fifty percent-points of excess error accumulated").
    delta:
        Magnitude tolerance per step — error excursions below it never
        accumulate.
    min_samples:
        Observations before firing is allowed (the running mean needs a
        few samples to mean anything).
    """

    name = "page-hinkley"
    _STATE_SCALARS = ("_count", "_mean", "_cum", "_cum_min")

    def __init__(
        self,
        threshold: float = 50.0,
        delta: float = 2.0,
        min_samples: int = 10,
    ):
        super().__init__()
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if min_samples < 2:
            raise ValueError("min_samples must be >= 2")
        self.threshold = float(threshold)
        self.delta = float(delta)
        self.min_samples = int(min_samples)
        self._reset_state()

    def _reset_state(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cum = 0.0
        self._cum_min = 0.0

    def _step(self, error: float) -> bool:
        self._count += 1
        self._mean += (error - self._mean) / self._count
        self._cum += error - self._mean - self.delta
        self._cum_min = min(self._cum_min, self._cum)
        self.statistic = self._cum - self._cum_min
        return self._count >= self.min_samples and self.statistic > self.threshold
