"""``repro.obs.monitor`` — online forecast-quality monitoring.

PR 1's ``repro.obs`` gave the system *code-level* observability (what
ran, how long it took); this package adds *model-level* observability —
is the deployed forecaster still any good, and should the serving path
do something about it:

==============================  ========================================
``repro.obs.monitor.quality``    rolling + cumulative accuracy trackers
``repro.obs.monitor.drift``      CUSUM / Page-Hinkley concept-drift
``repro.obs.monitor.slo``        SLO objectives, error budgets, health
``repro.obs.monitor.exposition`` Prometheus text + stable JSON dumps
``repro.obs.monitor.monitor``    ForecastMonitor composing the above
==============================  ========================================

Quick use::

    from repro.obs.monitor import ForecastMonitor, SLOTracker
    from repro.serving import serve_and_simulate

    monitor = ForecastMonitor(slo=SLOTracker(latency_slo_ms=5.0,
                                             accuracy_slo_mape=50.0))
    report = serve_and_simulate(predictor, trace, start, monitor=monitor)
    report.health      # {"status": "healthy" | "degraded" | "breached", ...}

The package sits *below* ``repro.serving``/``repro.cli`` in the import
DAG (enforced by ``scripts/check_layering.py``): serving feeds it
observations, it never reaches back into serving.
"""

from repro.obs.monitor.drift import (
    CusumDetector,
    DriftDetector,
    DriftDetectorBase,
    PageHinkleyDetector,
)
from repro.obs.monitor.exposition import (
    flatten_snapshot,
    load_snapshot,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
    write_snapshot,
)
from repro.obs.monitor.monitor import ForecastMonitor, default_detectors
from repro.obs.monitor.quality import QualityTracker
from repro.obs.monitor.slo import (
    BREACHED,
    DEGRADED,
    HEALTHY,
    HealthReport,
    SLOTracker,
)

__all__ = [
    # quality
    "QualityTracker",
    # drift
    "DriftDetector",
    "DriftDetectorBase",
    "CusumDetector",
    "PageHinkleyDetector",
    # slo
    "HEALTHY",
    "DEGRADED",
    "BREACHED",
    "HealthReport",
    "SLOTracker",
    # exposition
    "sanitize_metric_name",
    "flatten_snapshot",
    "render_prometheus",
    "parse_prometheus",
    "write_snapshot",
    "load_snapshot",
    # monitor
    "ForecastMonitor",
    "default_detectors",
]
