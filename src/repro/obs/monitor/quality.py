"""Online forecast-accuracy tracking in O(1) per observation.

A deployed forecaster's accuracy can only be judged *one interval at a
time*: the forecast for interval ``i`` is scored the moment ``i``'s
actual arrivals are revealed.  :class:`QualityTracker` consumes that
(prediction, actual) stream and maintains two views of every headline
accuracy metric:

* a **rolling window** (the recent operating picture drift detection and
  SLO health care about), and
* **cumulative** totals (exact over the full stream, the number a
  post-mortem wants).

Tracked per view: MAE, MAPE, sMAPE, signed bias (mean of
``prediction - actual``; positive = systematic over-forecast), and the
over-/under-provision rates (fraction of intervals whose *provisioned*
VM count — ``ceil`` of the forecast, matching
:func:`repro.autoscale.policy.provisioning_schedule` — lands above or
below the required count).

Every update is O(1): the window is a deque with running sums,
decremented on eviction.  Because subtract-on-evict accumulates float
rounding over millions of intervals, the sums are recomputed from the
window contents on a fixed cadence — amortized O(1), bit-accurate in
the long run.
"""

from __future__ import annotations

import math
from collections import deque

__all__ = ["QualityTracker"]

#: Window sums are recomputed from scratch every this-many updates per
#: window slot, bounding subtract-on-evict float drift at amortized O(1).
_REFRESH_EVERY_WINDOWS = 64


class _Accumulator:
    """Running sums of one (err, ae, ape, sape, over, under) stream."""

    __slots__ = ("n", "err", "ae", "ape", "sape", "over", "under")

    def __init__(self):
        self.n = 0
        self.err = 0.0
        self.ae = 0.0
        self.ape = 0.0
        self.sape = 0.0
        self.over = 0
        self.under = 0

    def add(self, rec: tuple[float, float, float, float, int, int]) -> None:
        self.n += 1
        self.err += rec[0]
        self.ae += rec[1]
        self.ape += rec[2]
        self.sape += rec[3]
        self.over += rec[4]
        self.under += rec[5]

    def state_dict(self) -> dict:
        return {
            "n": self.n, "err": self.err, "ae": self.ae, "ape": self.ape,
            "sape": self.sape, "over": self.over, "under": self.under,
        }

    def load_state_dict(self, state: dict) -> None:
        self.n = int(state["n"])
        self.err = float(state["err"])
        self.ae = float(state["ae"])
        self.ape = float(state["ape"])
        self.sape = float(state["sape"])
        self.over = int(state["over"])
        self.under = int(state["under"])

    def snapshot(self) -> dict:
        n = self.n
        if n == 0:
            return {
                "n": 0, "mae": None, "mape": None, "smape": None,
                "bias": None, "over_rate": None, "under_rate": None,
            }
        return {
            "n": n,
            "mae": self.ae / n,
            "mape": self.ape / n,
            "smape": self.sape / n,
            "bias": self.err / n,
            "over_rate": 100.0 * self.over / n,
            "under_rate": 100.0 * self.under / n,
        }


class QualityTracker:
    """Rolling + cumulative online accuracy over a forecast stream.

    Parameters
    ----------
    window:
        Number of recent intervals in the rolling view.
    eps:
        Denominator floor for MAPE (same convention as
        :class:`~repro.core.adaptive.AdaptiveLoadDynamics`'s error
        scoring) so zero-arrival intervals do not divide by zero.
    """

    def __init__(self, window: int = 256, eps: float = 1e-9):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self.eps = float(eps)
        self._recent: deque[tuple[float, float, float, float, int, int]] = deque()
        self._roll = _Accumulator()
        self._total = _Accumulator()
        self._refresh_every = self.window * _REFRESH_EVERY_WINDOWS

    @property
    def intervals(self) -> int:
        """Total observations scored so far."""
        return self._total.n

    def update(self, predicted: float, actual: float) -> float:
        """Score one revealed interval; returns its absolute % error.

        The returned APE is the value drift detectors and SLO accuracy
        objectives consume — computing it once here keeps the per-interval
        monitoring cost a single pass.
        """
        # Hot path: accumulator updates are inlined (no .add()/.sub()
        # calls, no tuple indexing) — this runs once per served interval
        # and its cost is what bench_serving_stream.py pins as "monitor
        # overhead", so every attribute lookup here is paid millions of
        # times.
        p = float(predicted)
        a = float(actual)
        err = p - a
        ae = err if err >= 0.0 else -err
        abs_a = a if a >= 0.0 else -a
        abs_p = p if p >= 0.0 else -p
        eps = self.eps
        ape = 100.0 * ae / (abs_a if abs_a > eps else eps)
        pa = abs_p + abs_a
        sape = 200.0 * ae / (pa if pa > eps else eps)
        # Provisioning lands in whole VMs (ceil), so over/under is judged
        # on the integer counts the autoscaler would actually compare.
        prov = math.ceil(p) if p > 0.0 else 0
        need = math.ceil(a) if a > 0.0 else 0
        over = 1 if prov > need else 0
        under = 1 if prov < need else 0

        t = self._total
        t.n += 1
        t.err += err
        t.ae += ae
        t.ape += ape
        t.sape += sape
        t.over += over
        t.under += under
        r = self._roll
        r.n += 1
        r.err += err
        r.ae += ae
        r.ape += ape
        r.sape += sape
        r.over += over
        r.under += under
        recent = self._recent
        recent.append((err, ae, ape, sape, over, under))
        if len(recent) > self.window:
            old = recent.popleft()
            r.n -= 1
            r.err -= old[0]
            r.ae -= old[1]
            r.ape -= old[2]
            r.sape -= old[3]
            r.over -= old[4]
            r.under -= old[5]
        if t.n % self._refresh_every == 0:
            self._refresh_rolling()
        return ape

    def _refresh_rolling(self) -> None:
        """Recompute window sums from scratch (kills accumulated drift)."""
        fresh = _Accumulator()
        for rec in self._recent:
            fresh.add(rec)
        self._roll = fresh

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable mutable state for crash-safe serving resume.

        The rolling accumulator is serialized *as accumulated* (raw
        running sums), not recomputed from the window records: the
        subtract-on-evict float drift it carries is part of the exact
        state, and a resumed stream must reproduce the uninterrupted
        run's outputs bit-for-bit.
        """
        return {
            "recent": [list(rec) for rec in self._recent],
            "roll": self._roll.state_dict(),
            "total": self._total.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a same-config instance."""
        recent = [tuple(rec) for rec in state["recent"]]
        if len(recent) > self.window:
            raise ValueError(
                f"{len(recent)} saved window records exceed window {self.window}"
            )
        self._recent = deque(recent)
        self._roll.load_state_dict(state["roll"])
        self._total.load_state_dict(state["total"])

    def rolling_mape(self) -> float:
        """Mean APE over the current window (NaN when empty)."""
        return self._roll.ape / self._roll.n if self._roll.n else math.nan

    def snapshot(self) -> dict:
        """Both views as a plain JSON-serializable dict."""
        win = self._roll.snapshot()
        win["size"] = self.window
        return {
            "intervals": self._total.n,
            "window": win,
            "cumulative": self._total.snapshot(),
        }
