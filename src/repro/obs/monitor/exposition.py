"""Metrics exposition: Prometheus text format + stable JSON snapshots.

Everything the instrumented subsystems record lands in the
:class:`~repro.obs.metrics.MetricsRegistry`; this module turns a
registry snapshot into the two formats operators actually consume:

* :func:`render_prometheus` — the Prometheus text exposition format.
  Counters and gauges render as single samples; histograms/timers
  render as a ``summary``: ``{quantile="0.5"|"0.9"|"0.99"}`` sample per
  reservoir percentile plus exact ``_count``/``_sum``, with
  ``_min``/``_max``/``_mean`` and the reservoir provenance
  (``_reservoir_size``, ``_reservoir_wrapped``) as companion gauges.
  Dotted registry names are sanitized to the Prometheus charset
  deterministically; a sanitization collision raises rather than
  silently merging two metrics.
* :func:`write_snapshot` / :func:`load_snapshot` — a stable
  (sorted-keys) JSON dump of the same snapshot, the machine-checkable
  artifact behind ``repro simulate --metrics-out`` and the
  ``repro metrics`` renderer.

:func:`parse_prometheus` inverts the renderer into the same flat
``(name, labels) -> value`` mapping :func:`flatten_snapshot` produces,
which is what the round-trip property test pins: *rendered text parses
back to exactly the names and values that went in*.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs import metrics as _metrics

__all__ = [
    "sanitize_metric_name",
    "flatten_snapshot",
    "render_prometheus",
    "parse_prometheus",
    "write_snapshot",
    "load_snapshot",
]

#: Flat sample key: (metric name, sorted (label, value) pairs).
SampleKey = tuple[str, tuple[tuple[str, str], ...]]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')

#: Snapshot percentile key -> Prometheus quantile label value.
_QUANTILES = (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99"))


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus metric charset.

    Deterministic and total: invalid characters become ``_`` and a
    leading digit is prefixed.  Distinct registry names *can* collide
    after sanitization (``a.b`` vs ``a_b``); the renderer detects that
    and raises instead of merging.
    """
    out = _INVALID_CHARS.sub("_", str(name))
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _format_value(value: float) -> str:
    """Exact float formatting: ``repr`` round-trips IEEE doubles."""
    return repr(float(value))


class _FlatSeries:
    """Ordered (name, labels) -> value map that rejects duplicates."""

    def __init__(self):
        self.samples: dict[SampleKey, float] = {}

    def add(self, name: str, labels: tuple[tuple[str, str], ...], value) -> None:
        key = (name, labels)
        if key in self.samples:
            raise ValueError(
                f"metric name collision after sanitization: {name!r} "
                f"{dict(labels)!r} produced twice"
            )
        self.samples[key] = float(value)


def _flatten_one(series: _FlatSeries, base: str, snap: dict) -> None:
    kind = snap.get("kind")
    if kind in ("counter", "gauge"):
        series.add(base, (), snap["value"])
        return
    # histogram / timer
    series.add(base + "_count", (), snap["count"])
    series.add(base + "_sum", (), snap["sum"])
    if snap["count"]:
        for stat in ("min", "max", "mean"):
            if snap.get(stat) is not None:
                series.add(f"{base}_{stat}", (), snap[stat])
        for pkey, q in _QUANTILES:
            if snap.get(pkey) is not None:
                series.add(base, (("quantile", q),), snap[pkey])
    if "reservoir_size" in snap:
        series.add(base + "_reservoir_size", (), snap["reservoir_size"])
        series.add(base + "_reservoir_wrapped", (),
                   1.0 if snap.get("reservoir_wrapped") else 0.0)


def flatten_snapshot(metrics: dict) -> dict[SampleKey, float]:
    """Flatten a ``{name: snapshot}`` registry dump to exposition samples.

    This is the reference shape :func:`parse_prometheus` recovers from
    rendered text — the round-trip invariant.
    """
    series = _FlatSeries()
    for raw_name in sorted(metrics):
        _flatten_one(series, sanitize_metric_name(raw_name), metrics[raw_name])
    return series.samples


def render_prometheus(metrics: dict | None = None, *, prefix: str | None = None) -> str:
    """Render a registry snapshot to Prometheus text format.

    ``metrics`` is a ``{name: snapshot}`` mapping (default: a fresh
    snapshot of the global registry, optionally ``prefix``-filtered).
    """
    if metrics is None:
        metrics = _metrics.get_registry().snapshot(prefix)
    lines: list[str] = []
    seen = _FlatSeries()  # collision detection across the whole page
    for raw_name in sorted(metrics):
        snap = metrics[raw_name]
        base = sanitize_metric_name(raw_name)
        kind = snap.get("kind")
        if kind in ("counter", "gauge"):
            seen.add(base, (), snap["value"])
            lines.append(f"# TYPE {base} {kind}")
            lines.append(f"{base} {_format_value(snap['value'])}")
            continue
        # histogram / timer -> summary + companion gauges
        lines.append(f"# TYPE {base} summary")
        if snap["count"]:
            for pkey, q in _QUANTILES:
                if snap.get(pkey) is not None:
                    seen.add(base, (("quantile", q),), snap[pkey])
                    lines.append(
                        f'{base}{{quantile="{q}"}} {_format_value(snap[pkey])}'
                    )
        seen.add(base + "_sum", (), snap["sum"])
        lines.append(f"{base}_sum {_format_value(snap['sum'])}")
        seen.add(base + "_count", (), snap["count"])
        lines.append(f"{base}_count {_format_value(snap['count'])}")
        if snap["count"]:
            for stat in ("min", "max", "mean"):
                if snap.get(stat) is not None:
                    seen.add(f"{base}_{stat}", (), snap[stat])
                    lines.append(f"# TYPE {base}_{stat} gauge")
                    lines.append(f"{base}_{stat} {_format_value(snap[stat])}")
        if "reservoir_size" in snap:
            seen.add(base + "_reservoir_size", (), snap["reservoir_size"])
            seen.add(base + "_reservoir_wrapped", (),
                     1.0 if snap.get("reservoir_wrapped") else 0.0)
            lines.append(f"# TYPE {base}_reservoir_size gauge")
            lines.append(
                f"{base}_reservoir_size {_format_value(snap['reservoir_size'])}"
            )
            lines.append(f"# TYPE {base}_reservoir_wrapped gauge")
            wrapped = 1.0 if snap.get("reservoir_wrapped") else 0.0
            lines.append(f"{base}_reservoir_wrapped {_format_value(wrapped)}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict[SampleKey, float]:
    """Parse exposition text back into the flat sample mapping.

    Inverse of :func:`render_prometheus` over its output (comment and
    blank lines are skipped; malformed sample lines raise).
    """
    samples: dict[SampleKey, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_LINE.match(line)
        if m is None:
            raise ValueError(f"unparseable exposition line {lineno}: {line!r}")
        name, label_text, value = m.groups()
        labels: tuple[tuple[str, str], ...] = ()
        if label_text:
            labels = tuple(
                (k, v) for k, v in _LABEL.findall(label_text)
            )
        samples[(name, labels)] = float(value)
    return samples


def write_snapshot(
    path: str | Path,
    *,
    metrics: dict | None = None,
    prefix: str | None = None,
) -> Path:
    """Dump a registry snapshot as stable JSON; returns the path written.

    The shape matches :func:`repro.obs.metrics.summary` —
    ``{"schema": 1, "metrics": {name: snapshot}}`` with sorted keys —
    so chaos runs and benchmarks are machine-checkable with one loader.
    """
    if metrics is None:
        metrics = _metrics.get_registry().snapshot(prefix)
    out = Path(path)
    out.write_text(
        json.dumps({"schema": 1, "metrics": metrics}, indent=2, sort_keys=True)
        + "\n",
        encoding="utf-8",
    )
    return out


def load_snapshot(path: str | Path) -> dict:
    """Read back a :func:`write_snapshot` file; returns the metrics dict."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "metrics" not in data:
        raise ValueError(f"{path}: not a metrics snapshot (missing 'metrics')")
    metrics = data["metrics"]
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: 'metrics' must be an object")
    return metrics
