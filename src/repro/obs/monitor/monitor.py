"""The composed forecast monitor the serving loop feeds.

:class:`ForecastMonitor` is the single object
:func:`repro.serving.online.serve_and_simulate` accepts via its
``monitor=`` hook: one :meth:`observe` call per served interval updates
the quality trackers, every drift detector, and the SLO ledgers in one
pass — a handful of float operations, no allocation beyond the window
deques, so monitoring stays well under the serving loop's own
per-interval cost (``bench_serving_stream.py`` pins the overhead).

Division of labour:

* :class:`~repro.obs.monitor.quality.QualityTracker` scores each
  revealed interval and yields the APE the other two consume;
* the :class:`~repro.obs.monitor.drift.DriftDetector` list watches that
  error stream for sustained shifts (``drifted`` latches);
* the optional :class:`~repro.obs.monitor.slo.SLOTracker` charges
  latency/accuracy violations against their error budgets.

:meth:`report` assembles the quality/drift/SLO sections (and publishes
headline ``monitor.*`` gauges); :meth:`health` folds SLO status and the
drift latch into one :class:`~repro.obs.monitor.slo.HealthReport` — a
latched detector alone degrades an otherwise healthy verdict, because a
drifted model is failing *silently* even while budgets still hold.
"""

from __future__ import annotations

from repro.obs import metrics as _metrics
from repro.obs.monitor.drift import CusumDetector, DriftDetector, PageHinkleyDetector
from repro.obs.monitor.quality import QualityTracker
from repro.obs.monitor.slo import DEGRADED, HEALTHY, HealthReport, SLOTracker

__all__ = ["ForecastMonitor", "default_detectors"]


def default_detectors() -> list[DriftDetector]:
    """The standard detector pair: calibrated CUSUM + Page-Hinkley."""
    return [CusumDetector(), PageHinkleyDetector()]


class ForecastMonitor:
    """Online forecast-quality monitoring for one serving stream.

    Parameters
    ----------
    quality:
        A configured :class:`QualityTracker`, or ``None`` for defaults.
    detectors:
        Drift detectors fed the per-interval APE; ``None`` installs
        :func:`default_detectors`, ``[]`` disables drift detection.
    slo:
        An :class:`SLOTracker`, or ``None`` for no SLO accounting.
    """

    def __init__(
        self,
        quality: QualityTracker | None = None,
        detectors: list[DriftDetector] | tuple[DriftDetector, ...] | None = None,
        slo: SLOTracker | None = None,
    ):
        self.quality = quality if quality is not None else QualityTracker()
        self.detectors = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.slo = slo
        self.intervals = 0
        # Hot-path bindings resolved once, not per observation: observe()
        # runs once per served interval, and bench_serving_stream.py pins
        # its cost against the whole serving pipeline.  The detector list
        # is therefore fixed at construction.
        self._q_update = self.quality.update
        self._detector_updates = tuple(d.update for d in self.detectors)
        self._slo_update = slo.update if slo is not None else None
        self._c_intervals = _metrics.counter("monitor.intervals")
        self._h_latency = _metrics.histogram("monitor.latency_ms")
        self._h_latency_observe = self._h_latency.observe
        # The monitor.intervals counter is synced lazily (report()) so the
        # hot path does not take the registry lock per observation.
        self._published_intervals = 0

    # ------------------------------------------------------------------
    def observe(
        self,
        predicted: float,
        actual: float,
        latency_s: float | None = None,
    ) -> float:
        """Score one served interval; returns its absolute % error."""
        self.intervals += 1
        ape = self._q_update(predicted, actual)
        for update in self._detector_updates:
            update(ape)
        if latency_s is not None:
            self._h_latency_observe(latency_s * 1e3)
        if self._slo_update is not None:
            self._slo_update(latency_s=latency_s, ape=ape)
        return ape

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable composed state for crash-safe serving resume.

        Covers the quality tracker, every detector (position-matched to
        the construction-time detector list), the SLO ledgers, and the
        interval counters.  All restores mutate the composed objects in
        place, so the prebound hot-path methods stay valid.
        """
        return {
            "intervals": self.intervals,
            "published_intervals": self._published_intervals,
            "quality": self.quality.state_dict(),
            "detectors": [d.state_dict() for d in self.detectors],
            "slo": self.slo.state_dict() if self.slo is not None else None,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a same-config instance."""
        saved = state["detectors"]
        if len(saved) != len(self.detectors):
            raise ValueError(
                f"{len(saved)} saved detector states for "
                f"{len(self.detectors)} configured detectors"
            )
        if (state["slo"] is None) != (self.slo is None):
            raise ValueError("saved SLO state does not match configuration")
        self.intervals = int(state["intervals"])
        self._published_intervals = int(state["published_intervals"])
        self.quality.load_state_dict(state["quality"])
        for detector, det_state in zip(self.detectors, saved):
            detector.load_state_dict(det_state)
        if self.slo is not None:
            self.slo.load_state_dict(state["slo"])

    # ------------------------------------------------------------------
    @property
    def drifted(self) -> bool:
        """True when any detector has latched."""
        return any(d.drifted for d in self.detectors)

    def drift_snapshots(self) -> list[dict]:
        """Per-detector state, in registration order."""
        return [d.snapshot() for d in self.detectors]

    def health(self) -> HealthReport:
        """SLO verdict, degraded further if a drift detector latched."""
        report = (
            self.slo.health() if self.slo is not None
            else HealthReport(status=HEALTHY)
        )
        if self.drifted:
            fired = ", ".join(d.name for d in self.detectors if d.drifted)
            report = report.worse_of(
                HealthReport(
                    status=DEGRADED,
                    reasons=(f"drift detected ({fired})",),
                )
            )
        return report

    def report(self) -> dict:
        """Quality/drift/SLO sections + health, publishing headline gauges."""
        if self.intervals > self._published_intervals:
            self._c_intervals.inc(self.intervals - self._published_intervals)
            self._published_intervals = self.intervals
        quality = self.quality.snapshot()
        window = quality["window"]
        if window["n"]:
            _metrics.gauge("monitor.rolling_mape").set(window["mape"])
            _metrics.gauge("monitor.rolling_bias").set(window["bias"])
        _metrics.gauge("monitor.drifted").set(1.0 if self.drifted else 0.0)
        return {
            "intervals": self.intervals,
            "quality": quality,
            "drift": self.drift_snapshots(),
            "slo": self.slo.snapshot() if self.slo is not None else None,
            "health": self.health().as_dict(),
        }
