"""``repro.obs`` — observability: events, metrics, tracing, logging.

The telemetry substrate every subsystem reports through:

=====================  ================================================
``repro.obs.events``   structured event records + JSONL/memory sinks
``repro.obs.metrics``  counters, gauges, timers, histograms (registry)
``repro.obs.tracing``  nested span context manager
``repro.obs.callbacks``per-epoch / per-trial callback protocol
``repro.obs.logging``  namespaced ``repro.*`` loggers
=====================  ================================================

Quick use::

    from repro import obs

    obs.configure_logging("DEBUG")            # diagnostics on stderr
    sink = obs.add_sink(obs.JsonlSink("trace.jsonl"))
    with obs.span("my.block"):
        ...                                   # spans/events land in the file
    print(obs.summary())                      # machine-readable metrics

Everything is off by default: with no sinks registered and logging
unconfigured, the instrumented hot paths pay a single branch.
"""

from repro.obs.callbacks import (
    CallbackList,
    TelemetryCallback,
    TrainingCallback,
    TrialCallback,
)
from repro.obs.events import (
    Event,
    JsonlSink,
    MemorySink,
    add_sink,
    clear_sinks,
    emit,
    enabled,
    read_jsonl,
    remove_sink,
)
from repro.obs.logging import JsonFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    counter,
    gauge,
    get_registry,
    histogram,
    reset_metrics,
    summary,
    timer,
)
from repro.obs.tracing import Span, current_span, span

__all__ = [
    # events
    "Event",
    "JsonlSink",
    "MemorySink",
    "add_sink",
    "remove_sink",
    "clear_sinks",
    "enabled",
    "emit",
    "read_jsonl",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "timer",
    "reset_metrics",
    "summary",
    # tracing
    "Span",
    "span",
    "current_span",
    # callbacks
    "TrainingCallback",
    "TrialCallback",
    "TelemetryCallback",
    "CallbackList",
    # logging
    "get_logger",
    "configure_logging",
    "JsonFormatter",
]
