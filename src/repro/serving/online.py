"""The hardened online loop: guarded serving driven through the autoscaler.

Glues the serving-robustness layer to the Section IV-C case study: a
(guarded) predictor walks forward over a trace producing the
provisioning schedule, the :class:`~repro.autoscale.cloudsim.CloudSimulator`
replays it against the actual arrivals, and the per-stage serving
telemetry (fallback counters, breaker transitions) is collected into a
:class:`ServingReport`.  This is the path ``repro simulate --guarded``
and the CI serving-chaos stage exercise end to end: with faults planted
at every serving site the loop must complete the full trace and the
autoscaler must never receive a non-finite or negative forecast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autoscale import CloudSimulator, SimulationResult, VMSpec, provisioning_schedule
from repro.baselines.base import Predictor
from repro.obs import metrics as _metrics
from repro.serving.guard import GuardedPredictor

__all__ = ["ServingReport", "daily_period", "serve_and_simulate"]


def daily_period(interval_minutes: int) -> int | None:
    """Intervals per day, the natural seasonal-naive period for a trace.

    Returns ``None`` when the interval does not divide a day into at
    least two buckets (no usable daily seasonality).
    """
    if interval_minutes < 1 or interval_minutes > 720:
        return None
    return 1440 // interval_minutes


@dataclass
class ServingReport:
    """One guarded serving run: schedule, simulation, and degradations."""

    result: SimulationResult
    schedule: np.ndarray
    #: ``serving.*`` counter values observed after the run.
    serving_counters: dict[str, float] = field(default_factory=dict)
    #: Breaker (from, to, reason) transitions, when the predictor had one.
    breaker_transitions: list[tuple[str, str, str]] = field(default_factory=list)
    #: Per-stage serve counts, when the predictor was guarded.
    served_by: dict[str, int] = field(default_factory=dict)

    @property
    def n_fallback_serves(self) -> int:
        """Predictions served by any stage other than the primary model."""
        return sum(n for stage, n in self.served_by.items() if stage != "primary")


def serve_and_simulate(
    predictor: Predictor,
    arrivals: np.ndarray,
    start: int,
    *,
    spec: VMSpec | None = None,
    refit_every: int = 1,
    seed: int = 0,
) -> ServingReport:
    """Walk ``predictor`` over ``arrivals[start:]`` and simulate the result.

    The predictor sees only the history prefix at each interval (no
    lookahead); the schedule it produces is validated finite before the
    simulator replays it — with a :class:`GuardedPredictor` in front
    this holds even under injected serving faults.
    """
    a = np.asarray(arrivals, dtype=np.float64).ravel()
    schedule = provisioning_schedule(predictor, a, start, refit_every=refit_every)
    result = CloudSimulator(spec=spec, seed=seed).run(a[start:], schedule)

    counters = {
        name: snap["value"]
        for name, snap in _metrics.get_registry().snapshot(prefix="serving.").items()
        if snap.get("kind") == "counter"
    }
    transitions: list[tuple[str, str, str]] = []
    served_by: dict[str, int] = {}
    if isinstance(predictor, GuardedPredictor):
        transitions = list(predictor.breaker.transitions)
        served_by = dict(predictor.served_by)
    return ServingReport(
        result=result,
        schedule=schedule,
        serving_counters=counters,
        breaker_transitions=transitions,
        served_by=served_by,
    )
