"""The hardened online loop: guarded serving driven through the autoscaler.

Glues the serving-robustness layer to the Section IV-C case study: a
(guarded) predictor walks forward over a trace producing the
provisioning schedule, the :class:`~repro.autoscale.cloudsim.CloudSimulator`
replays it against the actual arrivals, and the per-stage serving
telemetry (fallback counters, breaker transitions) is collected into a
:class:`ServingReport`.  This is the path ``repro simulate --guarded``
and the CI serving-chaos stage exercise end to end: with faults planted
at every serving site the loop must complete the full trace and the
autoscaler must never receive a non-finite or negative forecast.

Model-level observability hooks in here too: pass a
:class:`~repro.obs.monitor.monitor.ForecastMonitor` as ``monitor=`` and
every interval's forecast is scored the moment its actual is revealed —
rolling accuracy, drift detection, and SLO/error-budget accounting ride
along in one pass, and the resulting quality/drift/SLO/health sections
land on the :class:`ServingReport`.  With ``monitor=None`` (the
default) the pre-monitoring code path runs unchanged, so un-monitored
serving output stays bit-for-bit identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.autoscale import CloudSimulator, SimulationResult, VMSpec, provisioning_schedule
from repro.autoscale.controller import _guarded_forecast
from repro.baselines.base import Predictor
from repro.obs import metrics as _metrics
from repro.serving.guard import GuardedPredictor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autoscale.controller import HybridController
    from repro.obs.monitor.monitor import ForecastMonitor
    from repro.serving.sanitize import TraceSanitizer
    from repro.serving.stream import StreamConfig

__all__ = ["ServingReport", "daily_period", "serve_and_simulate"]


def daily_period(interval_minutes: int) -> int | None:
    """Intervals per day, the natural seasonal-naive period for a trace.

    Returns ``None`` when the interval does not divide a day into at
    least two buckets (no usable daily seasonality).
    """
    if interval_minutes < 1 or interval_minutes > 720:
        return None
    return 1440 // interval_minutes


@dataclass
class ServingReport:
    """One guarded serving run: schedule, simulation, and degradations."""

    result: SimulationResult
    schedule: np.ndarray
    #: ``serving.*`` counter values observed after the run.
    serving_counters: dict[str, float] = field(default_factory=dict)
    #: Breaker (from, to, reason) transitions, when the predictor had one.
    breaker_transitions: list[tuple[str, str, str]] = field(default_factory=list)
    #: Breaker state after the run (``closed``/``open``/``half_open``),
    #: ``None`` when the predictor carried no breaker.
    breaker_state: str | None = None
    #: Per-stage serve counts, when the predictor was guarded.
    served_by: dict[str, int] = field(default_factory=dict)
    #: Rolling/cumulative accuracy section, when a monitor was attached.
    quality: dict | None = None
    #: Per-detector drift state, when a monitor was attached.
    drift: list[dict] | None = None
    #: SLO/error-budget section, when the monitor carried an SLOTracker.
    slo: dict | None = None
    #: Folded health verdict (status + reasons), when monitored.
    health: dict | None = None
    #: :meth:`HybridController.snapshot` (decided_by counts, rail hits,
    #: burst state), when the run was closed-loop.
    controller: dict | None = None
    #: :meth:`~repro.serving.stream.StreamingServer.summary` — chunk,
    #: quarantine, stall, shed, and checkpoint accounting — when the run
    #: was streamed.
    stream: dict | None = None

    @property
    def n_fallback_serves(self) -> int:
        """Predictions served by any stage other than the primary model."""
        return sum(n for stage, n in self.served_by.items() if stage != "primary")

    @property
    def drifted(self) -> bool:
        """True when any attached drift detector latched during the run."""
        return bool(self.drift) and any(d.get("drifted") for d in self.drift)


def _monitored_walk(
    predictor: Predictor,
    series: np.ndarray,
    target: np.ndarray,
    start: int,
    refit_every: int,
    monitor: "ForecastMonitor",
) -> np.ndarray:
    """Walk-forward with per-interval scoring and latency timing.

    Produces exactly the predictions
    :func:`repro.baselines.base.walk_forward` would (same fit cadence,
    same persistence rescue, same non-negativity clip — regression-tested
    against it), additionally timing each ``predict_next`` and feeding
    the monitor the (forecast, revealed actual, latency) triple.

    For a 2-D ``(steps, D)`` series the predictor sees the full
    multivariate history while rescue/scoring read ``target`` (the
    target channel; the series itself when 1-D).
    """
    n = int(series.shape[0])
    if not 0 < start <= n:
        raise ValueError(f"invalid start {start} for series of length {n}")
    if refit_every < 1:
        raise ValueError("refit_every must be >= 1")
    perf_counter = time.perf_counter
    preds = np.empty(n - start)
    for j, i in enumerate(range(start, n)):
        history = series[:i]
        if j % refit_every == 0:
            predictor.fit(history)
        t0 = perf_counter()
        p = predictor.predict_next(history)
        latency = perf_counter() - t0
        if not np.isfinite(p):
            # Persistence rescue, identical to walk_forward's.
            last = float(target[i - 1])
            p = last if np.isfinite(last) else 0.0
        p = max(p, 0.0)
        preds[j] = p
        monitor.observe(p, float(target[i]), latency_s=latency)
    return preds


def _controller_walk(
    predictor: Predictor,
    series: np.ndarray,
    target: np.ndarray,
    start: int,
    refit_every: int,
    controller: "HybridController",
    monitor: "ForecastMonitor | None",
) -> np.ndarray:
    """Closed-loop walk: each revealed actual feeds the corrector.

    The controller owns degradation, so unlike the open-loop walks a
    failing or non-finite forecast is *not* rescued here — it reaches
    :meth:`HybridController.step` as NaN and routes the decision to the
    reactive tier (visible in ``decided_by``, exactly as in offline
    :class:`~repro.autoscale.controller.HybridPolicy` schedules).  The
    emitted schedule is the controller's whole-VM decisions, rails and
    burst included.  A monitor still scores only the *finite* forecasts
    — decisions are not forecasts.

    The predictor walks the full (possibly multivariate) ``series``;
    the controller's reactive tier and the monitor read ``target``.
    """
    n = int(series.shape[0])
    if not 0 < start <= n:
        raise ValueError(f"invalid start {start} for series of length {n}")
    if refit_every < 1:
        raise ValueError("refit_every must be >= 1")
    if controller.breaker is None:
        controller.breaker = getattr(predictor, "breaker", None)
    controller.reset()
    perf_counter = time.perf_counter
    schedule = np.empty(n - start)
    for j, i in enumerate(range(start, n)):
        history = series[:i]
        t0 = perf_counter()
        p = _guarded_forecast(predictor, history, refit=(j % refit_every == 0))
        latency = perf_counter() - t0
        if monitor is not None and np.isfinite(p):
            monitor.observe(max(float(p), 0.0), float(target[i]), latency_s=latency)
        schedule[j] = controller.step(p, target[:i]).vms
    return schedule


def serve_and_simulate(
    predictor: Predictor,
    arrivals: np.ndarray,
    start: int,
    *,
    spec: VMSpec | None = None,
    refit_every: int = 1,
    seed: int = 0,
    monitor: "ForecastMonitor | None" = None,
    controller: "HybridController | None" = None,
    stream: "StreamConfig | None" = None,
    sanitizer: "TraceSanitizer | None" = None,
) -> ServingReport:
    """Walk ``predictor`` over ``arrivals[start:]`` and simulate the result.

    The predictor sees only the history prefix at each interval (no
    lookahead); the schedule it produces is validated finite before the
    simulator replays it — with a :class:`GuardedPredictor` in front
    this holds even under injected serving faults.

    ``monitor`` attaches online forecast-quality monitoring: each
    interval is scored as it is revealed and the report gains
    quality/drift/SLO/health sections.  Unmonitored runs take the
    original code path untouched.

    ``controller`` closes the loop: instead of provisioning the raw
    forecasts, each revealed arrival feeds the
    :class:`~repro.autoscale.controller.HybridController` corrector and
    the *controller's decisions* (correction, rails, burst, tiered
    degradation) become the schedule; the report gains the controller
    snapshot and the breaker state.

    ``stream`` replaces the batch walk with the chunked
    :class:`~repro.serving.stream.StreamingServer`: ``arrivals[start:]``
    arrives as a deterministic chunk sequence with per-chunk
    re-sanitation (``sanitizer``, default interpolate-policy), stall
    watchdog, backpressure, and — with a ``checkpoint_dir`` configured —
    crash-safe checkpoints the ``resume`` flag restores from.  The
    streaming path is univariate (the feed is one metric).

    2-D ``(steps, D)`` arrivals drive a multivariate predictor: the
    full history walks into the predictor while the target channel
    (``predictor.target_channel``, default 0) feeds the bound checks,
    the monitor, and the simulator's actual-arrival replay.
    """
    a = np.asarray(arrivals, dtype=np.float64)
    if a.ndim == 2:
        target = a[:, int(getattr(predictor, "target_channel", 0) or 0)]
    else:
        a = a.ravel()
        target = a
    if stream is not None:
        if a.ndim != 1:
            raise ValueError(
                "streaming serving is univariate; pass a 1-D trace"
            )
        if not 0 < start <= a.size:
            raise ValueError(
                f"invalid start {start} for series of length {a.size}"
            )
        from repro.serving.stream import StreamingServer, chunk_stream

        server = StreamingServer(
            predictor,
            a[:start],
            config=stream,
            sanitizer=sanitizer,
            monitor=monitor,
            controller=controller,
            spec=spec,
            seed=seed,
            refit_every=refit_every,
        )
        return server.run(chunk_stream(a[start:], config=stream))
    if controller is not None:
        schedule = _controller_walk(
            predictor, a, target, start, refit_every, controller, monitor
        )
    elif monitor is None:
        schedule = provisioning_schedule(predictor, a, start, refit_every=refit_every)
    else:
        preds = _monitored_walk(predictor, a, target, start, refit_every, monitor)
        if not np.all(np.isfinite(preds)):
            raise ValueError(
                f"predictor {predictor.name!r} produced non-finite forecasts; "
                "wrap it in repro.serving.GuardedPredictor for online use"
            )
        schedule = np.ceil(np.maximum(preds, 0.0))
    result = CloudSimulator(spec=spec, seed=seed).run(target[start:], schedule)

    counters = {
        name: snap["value"]
        for name, snap in _metrics.get_registry().snapshot(prefix="serving.").items()
        if snap.get("kind") == "counter"
    }
    transitions: list[tuple[str, str, str]] = []
    served_by: dict[str, int] = {}
    breaker_state: str | None = None
    if isinstance(predictor, GuardedPredictor):
        transitions = list(predictor.breaker.transitions)
        breaker_state = predictor.breaker.state
        served_by = dict(predictor.served_by)
    report = ServingReport(
        result=result,
        schedule=schedule,
        serving_counters=counters,
        breaker_transitions=transitions,
        breaker_state=breaker_state,
        served_by=served_by,
        controller=controller.snapshot() if controller is not None else None,
    )
    if monitor is not None:
        sections = monitor.report()
        report.quality = sections["quality"]
        report.drift = sections["drift"]
        report.slo = sections["slo"]
        report.health = sections["health"]
    return report
