"""Circuit breaker shedding a misbehaving model from the serving path.

A predictor that starts throwing or emitting non-finite forecasts every
interval should not be probed on every prediction: each probe costs
latency, pollutes telemetry, and — for the adaptive variant — can mask
the drift signal.  The breaker implements the classic three-state
machine, but *call-counted* rather than wall-clock-timed so tests and
replayed simulations are exactly deterministic:

* ``closed`` — outcomes are recorded in a sliding window; when the
  window holds at least ``min_calls`` outcomes and the failure rate
  reaches ``failure_threshold``, the breaker opens;
* ``open`` — :meth:`allow` answers ``False`` for the next ``cooldown``
  calls (the model is shed; callers go straight to their fallback),
  then the breaker moves to half-open and admits a probe;
* ``half_open`` — calls are admitted as probation probes; ``probes``
  consecutive successes close the breaker, any failure re-opens it.

State transitions are recorded on the instance, counted in
``serving.breaker.transitions``, and emitted as
``serving.breaker.transition`` events.
"""

from __future__ import annotations

from collections import deque

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger

__all__ = ["CLOSED", "OPEN", "HALF_OPEN", "CircuitBreaker"]

logger = get_logger("serving.breaker")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Deterministic closed/open/half-open breaker over call outcomes."""

    def __init__(
        self,
        failure_threshold: float = 0.5,
        window: int = 20,
        min_calls: int = 5,
        cooldown: int = 10,
        probes: int = 3,
        name: str = "serving",
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        if min_calls < 1 or min_calls > window:
            raise ValueError("min_calls must be in [1, window]")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        if probes < 1:
            raise ValueError("probes must be >= 1")
        self.failure_threshold = float(failure_threshold)
        self.window = int(window)
        self.min_calls = int(min_calls)
        self.cooldown = int(cooldown)
        self.probes = int(probes)
        self.name = str(name)

        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=self.window)  # True = failure
        self._denied = 0          # allow() refusals since opening
        self._probe_successes = 0
        #: (from_state, to_state, reason) history, oldest first.
        self.transitions: list[tuple[str, str, str]] = []

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def failure_rate(self) -> float:
        """Failure fraction over the sliding window (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def allow(self) -> bool:
        """May the protected call be attempted right now?

        In the open state this is where the cool-down elapses: after
        ``cooldown`` refusals the breaker moves to half-open and admits
        the call as a probe.
        """
        if self._state == OPEN:
            self._denied += 1
            if self._denied >= self.cooldown:
                self._transition(HALF_OPEN, "cooldown_elapsed")
                return True
            return False
        return True

    def record_success(self) -> None:
        if self._state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.probes:
                self._transition(CLOSED, "probes_passed")
        elif self._state == CLOSED:
            self._outcomes.append(False)

    def record_failure(self) -> None:
        if self._state == HALF_OPEN:
            self._transition(OPEN, "probe_failed")
        elif self._state == CLOSED:
            self._outcomes.append(True)
            if (
                len(self._outcomes) >= self.min_calls
                and self.failure_rate >= self.failure_threshold
            ):
                self._transition(OPEN, "failure_rate")

    # ------------------------------------------------------------------
    # persistence: the breaker's entire decision state is the window of
    # outcomes plus the open/half-open bookkeeping — all of it must
    # survive a serialize/restore cycle or a resumed serving process
    # would re-admit a model the crashed process had already shed.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable mutable state (config is not included).

        Captures the sliding outcome window, the open-state denial count,
        the half-open probe tally, and the full transition history, so a
        :meth:`load_state_dict` round-trip preserves cool-down progress
        and probation accounting exactly.
        """
        return {
            "state": self._state,
            "outcomes": [bool(x) for x in self._outcomes],
            "denied": self._denied,
            "probe_successes": self._probe_successes,
            "transitions": [list(t) for t in self.transitions],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a same-config instance."""
        to_state = str(state["state"])
        if to_state not in (CLOSED, OPEN, HALF_OPEN):
            raise ValueError(f"unknown breaker state {to_state!r}")
        outcomes = [bool(x) for x in state["outcomes"]]
        if len(outcomes) > self.window:
            raise ValueError(
                f"{len(outcomes)} saved outcomes exceed window {self.window}"
            )
        self._state = to_state
        self._outcomes = deque(outcomes, maxlen=self.window)
        self._denied = int(state["denied"])
        self._probe_successes = int(state["probe_successes"])
        self.transitions = [
            (str(f), str(t), str(r)) for f, t, r in state["transitions"]
        ]

    # ------------------------------------------------------------------
    def _transition(self, to_state: str, reason: str) -> None:
        from_state = self._state
        self._state = to_state
        self.transitions.append((from_state, to_state, reason))
        if to_state == OPEN:
            self._denied = 0
        if to_state == HALF_OPEN:
            self._probe_successes = 0
        if to_state == CLOSED:
            self._outcomes.clear()
        logger.warning(
            "breaker %s: %s -> %s (%s)", self.name, from_state, to_state, reason
        )
        _metrics.counter("serving.breaker.transitions").inc()
        if _events.enabled():
            _events.emit(
                "serving.breaker.transition",
                breaker=self.name,
                from_state=from_state,
                to_state=to_state,
                reason=reason,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self._state!r}, "
            f"failure_rate={self.failure_rate:.2f}, window={self.window})"
        )
