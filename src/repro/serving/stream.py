"""Crash-safe streaming serving: chunked ingestion, checkpoints, resume.

The batch loop in :mod:`repro.serving.online` sees the whole trace up
front; a real metrics feed arrives as *chunks* — a scrape window at a
time, late when the collector stalls, missing when a scraper restarts,
and the serving process itself can be killed between any two of them.
:class:`StreamingServer` is the runtime for that regime:

* **chunked ingestion** — :func:`chunk_stream` turns a trace into a
  deterministic arrival sequence (configurable chunk size/jitter) and is
  instrumented at the ``stream.chunk`` fault site, so stalled feeds
  (``stall@stream.chunk:at``), lost chunks (``drop@stream.chunk:at``)
  and process kills (``kill@stream.chunk:at``) are exactly
  reproducible;
* **per-chunk sanitation** — every chunk passes through the
  :class:`~repro.serving.sanitize.TraceSanitizer` again; a chunk the
  active policy rejects is *quarantined* (ledger entry, intervals served
  from the fallback chain over the clean history) instead of poisoning
  the model's history;
* **stall watchdog** — an arrival gap beyond ``deadline_s`` degrades
  that chunk to hold-last provisioning and records a typed
  :class:`StreamStalled` telemetry event; service recovers on the next
  on-time chunk;
* **backpressure accounting** — a deterministic queue model
  (``service_time_per_interval`` x backlog vs ``queue_capacity``) sheds
  whole chunks when the server falls behind, with ``serving.stream.*``
  load-shed counters;
* **crash-safe resume** — every ``checkpoint_every`` chunks the server
  appends the new schedule/actual intervals to fsynced ``.f64`` sidecars
  and atomically replaces ``checkpoint.json`` (tmp + fsync +
  ``os.replace``, the :func:`repro.nn.serialization.save_regressor`
  discipline) holding the ``state_dict()`` of every stateful component.
  After a kill, :meth:`StreamingServer.restore` + a replay of the same
  chunk source produce a **bit-for-bit identical** provisioning schedule
  and :class:`~repro.serving.online.ServingReport` — asserted by
  ``tests/test_serving_stream.py`` and the CI streaming-chaos stage.

Determinism contract: the stream runs on *logical* time (nominal chunk
arrival clocks derived from ``interval_s``), monitors are scored with
``latency_s=None``, and all degradation decisions are pure functions of
the chunk sequence — wall-clock never leaks into the schedule, which is
what makes the resume guarantee testable at all.  Resume replays the
chunk source from the start (cheap: generation is pure) and skips
chunks the checkpoint already covers; faults planted at sites other
than ``stream.chunk`` re-count their invocation indices in the resumed
process.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.autoscale import CloudSimulator, VMSpec
from repro.autoscale.controller import HybridController, _guarded_forecast
from repro.baselines.base import Predictor
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger
from repro.obs.monitor.monitor import ForecastMonitor
from repro.resilience import faults as _faults
from repro.serving.guard import GuardedPredictor
from repro.serving.online import ServingReport
from repro.serving.sanitize import TraceSanitizer
from repro.traces.loader import TraceValidationError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "StreamChunk",
    "StreamConfig",
    "StreamStalled",
    "StreamingServer",
    "chunk_stream",
]

logger = get_logger("serving.stream")

#: Version stamp written into every ``checkpoint.json``; a mismatch on
#: restore is a typed :class:`CheckpointError`, never a silent
#: misinterpretation of old state.
CHECKPOINT_SCHEMA = 1

_CHECKPOINT_FILE = "checkpoint.json"
#: Append-only raw-float64 sidecars holding the served intervals; they
#: are fsynced *before* the checkpoint replace, and the checkpoint
#: records how many entries are valid, so a torn tail from a crash
#: mid-append is simply ignored on restore.
_SCHEDULE_FILE = "schedule.f64"
_ACTUALS_FILE = "actuals.f64"


class CheckpointError(Exception):
    """A serving checkpoint cannot be used.

    Raised for unreadable/corrupt ``checkpoint.json``, a schema-version
    mismatch, an identity mismatch (the resuming server is configured
    differently from the one that wrote the checkpoint), or a replayed
    chunk source whose chunk boundaries straddle the resume cursor.
    """


@dataclass(frozen=True)
class StreamChunk:
    """One feed arrival: ``values`` covering ``[offset, offset+len)``.

    ``arrival_s`` is the *logical* arrival clock (seconds since stream
    start) the stall watchdog and backpressure model read — derived from
    the chunk boundary and injected stalls, never from wall-clock.
    """

    index: int
    offset: int
    values: np.ndarray
    arrival_s: float


@dataclass(frozen=True)
class StreamStalled:
    """Typed telemetry record: the feed went quiet past the deadline."""

    chunk_index: int
    offset: int
    gap_s: float
    deadline_s: float
    intervals_held: int

    def as_dict(self) -> dict:
        return {
            "chunk_index": self.chunk_index,
            "offset": self.offset,
            "gap_s": self.gap_s,
            "deadline_s": self.deadline_s,
            "intervals_held": self.intervals_held,
        }


@dataclass(frozen=True)
class StreamConfig:
    """How a trace is chunked, watched, checkpointed, and resumed.

    Parameters
    ----------
    chunk_size:
        Nominal intervals per feed chunk.
    size_jitter:
        Uniform +/- jitter on each chunk's size (seeded, deterministic).
    interval_s:
        Logical seconds per trace interval; chunk ``i`` nominally
        arrives when its last interval completes.
    arrival_jitter_s:
        Uniform extra arrival delay per chunk (seeded, deterministic).
    seed:
        Seed for the chunking/arrival jitter stream.
    deadline_s:
        Stall watchdog: an inter-chunk arrival gap beyond this degrades
        the late chunk to hold-last provisioning.  ``None`` disables.
    queue_capacity:
        Backpressure bound, in backlog *intervals*; a chunk arriving
        with more backlog than this is load-shed.  ``None`` disables.
    service_time_per_interval:
        Logical seconds the server needs per ingested interval; ``0``
        disables the backpressure model entirely.
    checkpoint_every:
        Write a checkpoint every this many processed chunks (``0``
        disables periodic checkpoints; a final one is still written
        when a ``checkpoint_dir`` is configured).
    checkpoint_dir:
        Where ``checkpoint.json`` and the ``.f64`` sidecars live;
        ``None`` disables checkpointing.
    resume:
        Restore from ``checkpoint_dir`` before serving (missing
        checkpoint = fresh start, so a crash before the first
        checkpoint resumes trivially).
    history_window:
        Bounded model-visible history (intervals).  Both a fresh run
        and a resumed run predict from the same bounded tail, which is
        part of the bit-for-bit guarantee.
    """

    chunk_size: int = 64
    size_jitter: int = 0
    interval_s: float = 1.0
    arrival_jitter_s: float = 0.0
    seed: int = 0
    deadline_s: float | None = None
    queue_capacity: int | None = None
    service_time_per_interval: float = 0.0
    checkpoint_every: int = 100
    checkpoint_dir: str | None = None
    resume: bool = False
    history_window: int = 4096

    def __post_init__(self):
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.size_jitter < 0 or self.size_jitter >= self.chunk_size:
            raise ValueError("size_jitter must be in [0, chunk_size)")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.arrival_jitter_s < 0:
            raise ValueError("arrival_jitter_s must be >= 0")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1 (or None)")
        if self.service_time_per_interval < 0:
            raise ValueError("service_time_per_interval must be >= 0")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.history_window < 1:
            raise ValueError("history_window must be >= 1")


def chunk_stream(
    trace: np.ndarray,
    *,
    config: StreamConfig | None = None,
) -> Iterator[StreamChunk]:
    """Yield ``trace`` as a deterministic sequence of feed chunks.

    Chunk sizes and arrival times are drawn from a generator seeded by
    ``config.seed``, so the same config replays the same sequence —
    which is what lets a resumed run regenerate the exact chunks a
    crashed run saw.  Each chunk boundary fires the ``stream.chunk``
    fault site once: ``stall`` delays that chunk's arrival (arg
    seconds, default 30.0), ``drop`` silently loses it (the offset
    still advances, leaving the gap the server must detect), ``kill``
    raises :class:`~repro.resilience.faults.SimulatedCrash` mid-stream.
    The arrival clock is monotonic, so a stalled chunk makes its
    successors arrive back-to-back — exactly the burst that exercises
    the backpressure model.
    """
    cfg = config if config is not None else StreamConfig()
    t = np.asarray(trace, dtype=np.float64).ravel()
    rng = np.random.default_rng(cfg.seed)
    offset = 0
    index = 0
    last_arrival = 0.0
    while offset < t.size:
        size = cfg.chunk_size
        if cfg.size_jitter:
            size += int(rng.integers(-cfg.size_jitter, cfg.size_jitter + 1))
        size = max(1, min(size, t.size - offset))
        end = offset + size
        arrival = end * cfg.interval_s
        if cfg.arrival_jitter_s:
            arrival += float(rng.uniform(0.0, cfg.arrival_jitter_s))
        inj = _faults.active()
        fired = inj.maybe_fire("stream.chunk") if inj is not None else {}
        if "stall" in fired:
            spec = fired["stall"]
            arrival += spec.arg if spec.arg is not None else 30.0
        arrival = max(arrival, last_arrival)
        last_arrival = arrival
        if "drop" not in fired:
            yield StreamChunk(
                index=index,
                offset=offset,
                values=t[offset:end].copy(),
                arrival_s=arrival,
            )
        index += 1
        offset = end


class StreamingServer:
    """Serve a chunked feed with quarantine, degradation, and checkpoints.

    Parameters
    ----------
    predictor:
        The serving predictor — typically a
        :class:`~repro.serving.guard.GuardedPredictor`; its fallback
        chain also serves quarantined chunks.
    initial_history:
        Clean 1-D warmup history the first predictions draw on (the
        trace prefix before the served region).  Must be non-empty.
    config:
        A :class:`StreamConfig`; ``None`` takes the defaults.
    sanitizer:
        Per-chunk :class:`~repro.serving.sanitize.TraceSanitizer`;
        ``None`` installs ``TraceSanitizer(policy="interpolate")`` —
        chunks it cannot repair are quarantined.
    monitor / controller / spec / seed / refit_every:
        As in :func:`repro.serving.online.serve_and_simulate`; the
        monitor is scored with ``latency_s=None`` (logical time only)
        and ``refit_every=None`` disables in-stream refits.
    """

    def __init__(
        self,
        predictor: Predictor,
        initial_history: np.ndarray,
        *,
        config: StreamConfig | None = None,
        sanitizer: TraceSanitizer | None = None,
        monitor: ForecastMonitor | None = None,
        controller: HybridController | None = None,
        spec: VMSpec | None = None,
        seed: int = 0,
        refit_every: int | None = None,
    ):
        init = np.asarray(initial_history, dtype=np.float64).ravel()
        if init.size == 0:
            raise ValueError("initial_history must be non-empty")
        if refit_every is not None and refit_every < 1:
            raise ValueError("refit_every must be >= 1 (or None)")
        self.config = config if config is not None else StreamConfig()
        self.predictor = predictor
        self.sanitizer = (
            sanitizer if sanitizer is not None
            else TraceSanitizer(policy="interpolate")
        )
        self.monitor = monitor
        self.controller = controller
        self.spec = spec
        self.seed = int(seed)
        self.refit_every = refit_every
        if controller is not None:
            if controller.breaker is None:
                controller.breaker = getattr(predictor, "breaker", None)
            controller.reset()

        window = self.config.history_window
        tail = init[-window:]
        self._hbuf = np.empty(2 * window, dtype=np.float64)
        self._hbuf[: tail.size] = tail
        self._hlen = int(tail.size)
        self._initial_len = int(init.size)

        # Served intervals (the schedule the simulator will replay).
        self._cap = 1024
        self._sched_buf = np.empty(self._cap, dtype=np.float64)
        self._act_buf = np.empty(self._cap, dtype=np.float64)
        self._n = 0
        #: Sidecar entries durably on disk (== entries the checkpoint covers).
        self._sidecar_n = 0

        last = float(init[-1])
        self._last_clean = last if math.isfinite(last) else 0.0
        self._last_decision = float(np.ceil(max(self._last_clean, 0.0)))

        # Stream cursor + degradation ledgers.
        self._next_offset = 0
        self._chunks_processed = 0
        self._chunks_skipped = 0
        self._served_intervals = 0
        self._held_intervals = 0
        self._gap_intervals = 0
        self._shed_chunks = 0
        self._shed_intervals = 0
        self._quarantined_intervals = 0
        self._repaired_values = 0
        self._last_arrival_s = 0.0
        self._busy_until_s = 0.0
        self._queue_peak = 0.0
        self._checkpoints_written = 0
        self._restored = False
        self.quarantine: list[dict] = []
        self.stalls: list[StreamStalled] = []

        # Hot-path metric handles resolved once, not per chunk.
        self._c_chunks = _metrics.counter("serving.stream.chunks")
        self._c_held = _metrics.counter("serving.stream.held_intervals")
        self._c_gap = _metrics.counter("serving.stream.gap_intervals")
        self._c_quar_chunks = _metrics.counter("serving.stream.quarantined_chunks")
        self._c_quar = _metrics.counter("serving.stream.quarantined_intervals")
        self._c_stalls = _metrics.counter("serving.stream.stalls")
        self._c_shed = _metrics.counter("serving.stream.shed_chunks")
        self._c_shed_iv = _metrics.counter("serving.stream.shed_intervals")
        self._c_ckpt = _metrics.counter("serving.stream.checkpoints")
        self._c_repaired = _metrics.counter("serving.stream.repaired_values")

    # ------------------------------------------------------------------
    # bounded history + interval buffers
    # ------------------------------------------------------------------
    def _history_view(self) -> np.ndarray:
        w = self.config.history_window
        lo = self._hlen - w
        return self._hbuf[lo if lo > 0 else 0 : self._hlen]

    def _append_history_scalar(self, value: float) -> None:
        if self._hlen == self._hbuf.size:
            w = self.config.history_window
            self._hbuf[:w] = self._hbuf[self._hlen - w : self._hlen].copy()
            self._hlen = w
        self._hbuf[self._hlen] = value
        self._hlen += 1

    def _append_history_block(self, values: np.ndarray) -> None:
        w = self.config.history_window
        m = int(values.size)
        if m >= w:
            self._hbuf[:w] = values[-w:]
            self._hlen = w
            return
        if self._hlen + m > self._hbuf.size:
            self._hbuf[:w] = self._hbuf[self._hlen - w : self._hlen].copy()
            self._hlen = w
        self._hbuf[self._hlen : self._hlen + m] = values
        self._hlen += m

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        if need <= self._cap:
            return
        while self._cap < need:
            self._cap *= 2
        for name in ("_sched_buf", "_act_buf"):
            grown = np.empty(self._cap, dtype=np.float64)
            old = getattr(self, name)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def _push(self, decision: float, actual: float) -> None:
        self._reserve(1)
        self._sched_buf[self._n] = decision
        self._act_buf[self._n] = actual
        self._n += 1

    def _push_block(self, decisions: np.ndarray, actuals: np.ndarray) -> None:
        m = int(decisions.size)
        self._reserve(m)
        self._sched_buf[self._n : self._n + m] = decisions
        self._act_buf[self._n : self._n + m] = actuals
        self._n += m

    # ------------------------------------------------------------------
    # serving modes
    # ------------------------------------------------------------------
    def _serve_values(self, values: np.ndarray) -> None:
        """Normal serving: predict → provision → reveal, per interval."""
        predictor = self.predictor
        monitor = self.monitor
        controller = self.controller
        refit_every = self.refit_every
        for v in values.tolist():
            history = self._history_view()
            refit = (
                refit_every is not None
                and self._served_intervals % refit_every == 0
            )
            if controller is not None:
                p = _guarded_forecast(predictor, history, refit=refit)
                if monitor is not None and math.isfinite(p):
                    monitor.observe(max(float(p), 0.0), v, latency_s=None)
                decision = float(controller.step(p, history).vms)
            else:
                if refit:
                    predictor.fit(history)
                p = float(predictor.predict_next(history))
                if not math.isfinite(p):
                    # Persistence rescue, identical to walk_forward's.
                    last = float(history[-1])
                    p = last if math.isfinite(last) else 0.0
                p = max(p, 0.0)
                if monitor is not None:
                    monitor.observe(p, v, latency_s=None)
                decision = float(np.ceil(p))
            self._served_intervals += 1
            self._last_decision = decision
            self._push(decision, v)
            self._append_history_scalar(v)
            self._last_clean = v

    def _fallback_forecast(self, history: np.ndarray) -> float:
        """First finite answer from the predictor's fallback chain."""
        fallbacks = getattr(self.predictor, "fallbacks", None) or ()
        for fb in fallbacks:
            try:
                raw = float(fb.predict_next(history))
            except _faults.SimulatedCrash:
                raise
            except Exception:
                continue
            if math.isfinite(raw):
                return max(raw, 0.0)
        last = float(history[-1]) if history.size else 0.0
        return last if math.isfinite(last) else 0.0

    def _quarantine_block(self, n: int) -> None:
        """Serve ``n`` quarantined intervals from the fallback chain.

        Actuals are unknown (the chunk was rejected), so the last clean
        value is held in the history and the simulator replay; the
        monitor is not scored — unobserved actuals are not evidence.
        """
        held = self._last_clean
        for _ in range(n):
            history = self._history_view()
            p = self._fallback_forecast(history)
            decision = float(np.ceil(p))
            self._last_decision = decision
            self._push(decision, held)
            self._append_history_scalar(held)
        self._quarantined_intervals += n
        self._c_quar.inc(n)

    def _degrade_block(self, n: int) -> None:
        """Hold-last provisioning for ``n`` intervals with no data at all."""
        held = self._last_clean
        self._push_block(
            np.full(n, self._last_decision), np.full(n, held)
        )
        self._append_history_block(np.full(n, held))
        self._held_intervals += n
        self._c_held.inc(n)

    def _hold_block(self, values: np.ndarray) -> None:
        """Stalled chunk: hold-last decisions, but the (late) actuals are
        real — they enter the history so the model recovers immediately."""
        m = int(values.size)
        self._push_block(np.full(m, self._last_decision), values)
        self._append_history_block(values)
        self._last_clean = float(values[-1])
        self._held_intervals += m
        self._c_held.inc(m)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def _ingest(self, chunk: StreamChunk) -> None:
        cfg = self.config
        n = int(chunk.values.size)
        end = chunk.offset + n
        if end <= self._next_offset:
            # Replay of an interval range the restored checkpoint already
            # covers — the resume fast-path.
            self._chunks_skipped += 1
            return
        if chunk.offset < self._next_offset:
            raise CheckpointError(
                f"chunk [{chunk.offset}, {end}) straddles the resume cursor "
                f"{self._next_offset}; checkpoints align to chunk "
                "boundaries, so the replayed source must use the original "
                "chunking config"
            )

        self._c_chunks.inc()
        self._chunks_processed += 1

        if chunk.offset > self._next_offset:
            # Dropped chunk(s) ahead of this one: the feed lost those
            # intervals for good — serve them blind.
            gap = chunk.offset - self._next_offset
            logger.warning(
                "stream gap: %d intervals missing before chunk %d",
                gap, chunk.index,
            )
            if _events.enabled():
                _events.emit("stream.gap", chunk=chunk.index, intervals=gap)
            self._degrade_block(gap)
            self._gap_intervals += gap
            self._c_gap.inc(gap)
            self._next_offset = chunk.offset

        gap_s = chunk.arrival_s - self._last_arrival_s
        stalled = cfg.deadline_s is not None and gap_s > cfg.deadline_s
        self._last_arrival_s = chunk.arrival_s

        shed = False
        if cfg.service_time_per_interval > 0.0:
            backlog_s = self._busy_until_s - chunk.arrival_s
            backlog = (
                backlog_s / cfg.service_time_per_interval
                if backlog_s > 0.0 else 0.0
            )
            if backlog > self._queue_peak:
                self._queue_peak = backlog
            if cfg.queue_capacity is not None and backlog > cfg.queue_capacity:
                shed = True
            else:
                start_s = (
                    self._busy_until_s if backlog_s > 0.0 else chunk.arrival_s
                )
                self._busy_until_s = (
                    start_s + cfg.service_time_per_interval * n
                )

        if shed:
            self._shed_chunks += 1
            self._shed_intervals += n
            self._c_shed.inc()
            self._c_shed_iv.inc(n)
            logger.warning(
                "load shed: chunk %d (%d intervals) dropped at backlog "
                "%.1f intervals", chunk.index, n, self._queue_peak,
            )
            if _events.enabled():
                _events.emit("stream.shed", chunk=chunk.index, intervals=n)
            self._degrade_block(n)
            self._next_offset = end
        else:
            try:
                clean, report = self.sanitizer.sanitize(chunk.values)
            except TraceValidationError as exc:
                self.quarantine.append({
                    "chunk": chunk.index,
                    "offset": chunk.offset,
                    "intervals": n,
                    "reason": str(exc),
                })
                self._c_quar_chunks.inc()
                logger.warning(
                    "chunk %d quarantined (%d intervals): %s",
                    chunk.index, n, exc,
                )
                if _events.enabled():
                    _events.emit(
                        "stream.quarantined", chunk=chunk.index, intervals=n,
                    )
                self._quarantine_block(n)
                self._next_offset = end
            else:
                clean = np.asarray(clean, dtype=np.float64).ravel()
                repaired = int(report.n_repaired)
                if repaired:
                    self._repaired_values += repaired
                    self._c_repaired.inc(repaired)
                if stalled:
                    rec = StreamStalled(
                        chunk_index=chunk.index,
                        offset=chunk.offset,
                        gap_s=float(gap_s),
                        deadline_s=float(cfg.deadline_s),
                        intervals_held=n,
                    )
                    self.stalls.append(rec)
                    self._c_stalls.inc()
                    logger.warning(
                        "stream stalled: chunk %d arrived %.1fs late "
                        "(deadline %.1fs) — holding last decision",
                        chunk.index, gap_s, cfg.deadline_s,
                    )
                    if _events.enabled():
                        _events.emit("stream.stalled", **rec.as_dict())
                    self._hold_block(clean)
                else:
                    self._serve_values(clean)
                self._next_offset = end

        if (
            self.config.checkpoint_dir is not None
            and cfg.checkpoint_every
            and self._chunks_processed % cfg.checkpoint_every == 0
        ):
            self._checkpoint()

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def _identity(self) -> dict:
        """Config echo a checkpoint must match before it may restore."""
        cfg = self.config
        return {
            "predictor": getattr(
                self.predictor, "name", type(self.predictor).__name__
            ),
            "chunk_size": cfg.chunk_size,
            "size_jitter": cfg.size_jitter,
            "interval_s": cfg.interval_s,
            "arrival_jitter_s": cfg.arrival_jitter_s,
            "seed": cfg.seed,
            "deadline_s": cfg.deadline_s,
            "queue_capacity": cfg.queue_capacity,
            "service_time_per_interval": cfg.service_time_per_interval,
            "history_window": cfg.history_window,
            "sanitizer_policy": self.sanitizer.policy,
            "refit_every": self.refit_every,
            "initial_len": self._initial_len,
            "monitored": self.monitor is not None,
            "controlled": self.controller is not None,
        }

    def _append_sidecar(self, path: Path, buf: np.ndarray) -> None:
        new = buf[self._sidecar_n : self._n]
        base = self._sidecar_n * 8
        mode = "r+b" if path.exists() else "w+b"
        with open(path, mode) as fh:
            # Drop any torn/stale tail beyond the durable prefix before
            # appending, so file contents always equal the buffer prefix.
            fh.truncate(base)
            fh.seek(base)
            fh.write(new.tobytes())
            fh.flush()
            os.fsync(fh.fileno())

    def _checkpoint(self) -> None:
        d = Path(self.config.checkpoint_dir)
        d.mkdir(parents=True, exist_ok=True)
        self._append_sidecar(d / _SCHEDULE_FILE, self._sched_buf)
        self._append_sidecar(d / _ACTUALS_FILE, self._act_buf)
        self._sidecar_n = self._n

        self._checkpoints_written += 1
        self._c_ckpt.inc()
        components: dict = {
            "predictor": (
                self.predictor.state_dict()
                if hasattr(self.predictor, "state_dict") else None
            ),
            "monitor": (
                self.monitor.state_dict() if self.monitor is not None else None
            ),
            "controller": (
                self.controller.state_dict()
                if self.controller is not None else None
            ),
        }
        w = self.config.history_window
        lo = self._hlen - w
        tail = self._hbuf[lo if lo > 0 else 0 : self._hlen]
        counters = {
            name: snap["value"]
            for name, snap in _metrics.get_registry()
            .snapshot(prefix="serving.").items()
            if snap.get("kind") == "counter"
        }
        state = {
            "schema": CHECKPOINT_SCHEMA,
            "identity": self._identity(),
            "cursor": {
                "next_offset": self._next_offset,
                "chunks_processed": self._chunks_processed,
                "served_intervals": self._served_intervals,
                "last_arrival_s": self._last_arrival_s,
                "busy_until_s": self._busy_until_s,
                "queue_peak": self._queue_peak,
                "checkpoints_written": self._checkpoints_written,
            },
            "degrade": {
                "last_decision": self._last_decision,
                "last_clean": self._last_clean,
                "held_intervals": self._held_intervals,
                "gap_intervals": self._gap_intervals,
                "shed_chunks": self._shed_chunks,
                "shed_intervals": self._shed_intervals,
                "quarantined_intervals": self._quarantined_intervals,
                "repaired_values": self._repaired_values,
                "quarantine": list(self.quarantine),
                "stalls": [s.as_dict() for s in self.stalls],
            },
            "history": {"hex": tail.tobytes().hex()},
            "components": components,
            "counters": counters,
            "sidecar": {"n": self._n},
        }
        path = d / _CHECKPOINT_FILE
        tmp = d / (_CHECKPOINT_FILE + ".tmp")
        try:
            with open(tmp, "w") as fh:
                json.dump(state, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        if _events.enabled():
            _events.emit(
                "stream.checkpoint",
                chunks=self._chunks_processed, intervals=self._n,
            )

    def restore(self, directory: str | Path | None = None) -> bool:
        """Restore from a checkpoint directory; ``False`` = no checkpoint.

        A missing ``checkpoint.json`` is a fresh start (a crash before
        the first checkpoint resumes trivially); anything unusable —
        corrupt JSON, schema mismatch, identity mismatch, sidecars
        shorter than the checkpoint claims — raises
        :class:`CheckpointError` rather than serving from wrong state.
        """
        target = directory if directory is not None else self.config.checkpoint_dir
        if target is None:
            raise CheckpointError("no checkpoint directory configured")
        d = Path(target)
        path = d / _CHECKPOINT_FILE
        if not path.exists():
            logger.warning("no checkpoint at %s — starting fresh", path)
            return False
        try:
            state = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc

        schema = state.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint schema {schema!r} at {path} does not match "
                f"supported version {CHECKPOINT_SCHEMA}"
            )
        ident = self._identity()
        saved_ident = state.get("identity") or {}
        if saved_ident != ident:
            diff = sorted(
                k for k in set(ident) | set(saved_ident)
                if saved_ident.get(k) != ident.get(k)
            )
            raise CheckpointError(
                f"checkpoint identity mismatch on {diff}: the resuming "
                "server is configured differently from the one that wrote "
                f"{path}"
            )

        n = int(state["sidecar"]["n"])
        self._reserve(max(0, n - self._n))
        for fname, buf in (
            (_SCHEDULE_FILE, self._sched_buf),
            (_ACTUALS_FILE, self._act_buf),
        ):
            sidecar = d / fname
            try:
                blob = sidecar.read_bytes()
            except OSError as exc:
                raise CheckpointError(
                    f"unreadable sidecar {sidecar}: {exc}"
                ) from exc
            if len(blob) < n * 8:
                raise CheckpointError(
                    f"sidecar {sidecar} holds {len(blob) // 8} intervals, "
                    f"checkpoint claims {n}"
                )
            buf[:n] = np.frombuffer(blob[: n * 8], dtype=np.float64)
        self._n = n
        self._sidecar_n = n

        hist = np.frombuffer(
            bytes.fromhex(state["history"]["hex"]), dtype=np.float64
        )
        self._hbuf[: hist.size] = hist
        self._hlen = int(hist.size)

        cursor = state["cursor"]
        self._next_offset = int(cursor["next_offset"])
        self._chunks_processed = int(cursor["chunks_processed"])
        self._served_intervals = int(cursor["served_intervals"])
        self._last_arrival_s = float(cursor["last_arrival_s"])
        self._busy_until_s = float(cursor["busy_until_s"])
        self._queue_peak = float(cursor["queue_peak"])
        self._checkpoints_written = int(cursor["checkpoints_written"])

        degrade = state["degrade"]
        self._last_decision = float(degrade["last_decision"])
        self._last_clean = float(degrade["last_clean"])
        self._held_intervals = int(degrade["held_intervals"])
        self._gap_intervals = int(degrade["gap_intervals"])
        self._shed_chunks = int(degrade["shed_chunks"])
        self._shed_intervals = int(degrade["shed_intervals"])
        self._quarantined_intervals = int(degrade["quarantined_intervals"])
        self._repaired_values = int(degrade["repaired_values"])
        self.quarantine = list(degrade["quarantine"])
        self.stalls = [StreamStalled(**s) for s in degrade["stalls"]]

        components = state["components"]
        saved_pred = components.get("predictor")
        if saved_pred is not None:
            if not hasattr(self.predictor, "load_state_dict"):
                raise CheckpointError(
                    "checkpoint carries predictor state but the configured "
                    "predictor cannot load it"
                )
            self.predictor.load_state_dict(saved_pred)
        if self.monitor is not None:
            self.monitor.load_state_dict(components["monitor"])
        if self.controller is not None:
            self.controller.load_state_dict(components["controller"])

        # Counters are monotonic, so restoration is by delta: in a fresh
        # process every counter starts at 0 and lands exactly on the
        # checkpointed value, keeping ServingReport.serving_counters
        # bit-for-bit with an uninterrupted run.
        for name, value in state["counters"].items():
            c = _metrics.counter(name)
            delta = float(value) - c.value
            if delta > 0:
                c.inc(delta)

        self._restored = True
        logger.info(
            "resumed from %s: %d chunks, %d intervals, cursor at offset %d",
            path, self._chunks_processed, self._n, self._next_offset,
        )
        return True

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """The ``stream`` section of the final :class:`ServingReport`."""
        return {
            "chunks": self._chunks_processed,
            "intervals": self._n,
            "served_intervals": self._served_intervals,
            "held_intervals": self._held_intervals,
            "gap_intervals": self._gap_intervals,
            "shed_chunks": self._shed_chunks,
            "shed_intervals": self._shed_intervals,
            "quarantined_chunks": len(self.quarantine),
            "quarantined_intervals": self._quarantined_intervals,
            "repaired_values": self._repaired_values,
            "stalls": [s.as_dict() for s in self.stalls],
            "queue_peak_intervals": self._queue_peak,
            "checkpoints_written": self._checkpoints_written,
            "quarantine": list(self.quarantine),
        }

    def finish(self) -> ServingReport:
        """Final checkpoint, simulator replay, and report assembly."""
        if self._n == 0:
            raise ValueError("no intervals were served (empty stream?)")
        if self.config.checkpoint_dir is not None and self._n > self._sidecar_n:
            # Final checkpoint — skipped when the last periodic one already
            # covers everything (also makes resuming a *finished* run a
            # clean no-op with an identical report).
            self._checkpoint()
        schedule = self._sched_buf[: self._n].copy()
        actuals = self._act_buf[: self._n].copy()
        result = CloudSimulator(spec=self.spec, seed=self.seed).run(
            actuals, schedule
        )
        counters = {
            name: snap["value"]
            for name, snap in _metrics.get_registry()
            .snapshot(prefix="serving.").items()
            if snap.get("kind") == "counter"
        }
        transitions: list[tuple[str, str, str]] = []
        served_by: dict[str, int] = {}
        breaker_state: str | None = None
        if isinstance(self.predictor, GuardedPredictor):
            transitions = list(self.predictor.breaker.transitions)
            breaker_state = self.predictor.breaker.state
            served_by = dict(self.predictor.served_by)
        report = ServingReport(
            result=result,
            schedule=schedule,
            serving_counters=counters,
            breaker_transitions=transitions,
            breaker_state=breaker_state,
            served_by=served_by,
            controller=(
                self.controller.snapshot()
                if self.controller is not None else None
            ),
            stream=self.summary(),
        )
        if self.monitor is not None:
            sections = self.monitor.report()
            report.quality = sections["quality"]
            report.drift = sections["drift"]
            report.slo = sections["slo"]
            report.health = sections["health"]
        return report

    def run(self, chunks: Iterable[StreamChunk]) -> ServingReport:
        """Ingest every chunk, then :meth:`finish`.

        With ``config.resume`` set, :meth:`restore` runs first and the
        replayed chunks the checkpoint already covers are skipped.
        """
        if self.config.resume and not self._restored:
            self.restore()
        for chunk in chunks:
            self._ingest(chunk)
        return self.finish()
