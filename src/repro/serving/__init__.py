"""``repro.serving`` — the serving-robustness layer.

Training became crash-safe in the resilience PR; this package hardens
the *serving* path the autoscaler depends on, so that bad data or a
misbehaving model degrades service instead of corrupting provisioning:

=========================  ===========================================
``repro.serving.sanitize``  ingestion quality reports + repair policies
``repro.serving.guard``     guarded predictions + fallback chain
``repro.serving.breaker``   circuit breaker shedding a sick model
``repro.serving.online``    guarded walk-forward → autoscaler loop
``repro.serving.stream``    chunked feed + checkpoints + crash resume
=========================  ===========================================

Quick use::

    from repro.serving import GuardedPredictor, TraceSanitizer

    clean, report = TraceSanitizer(policy="interpolate").sanitize(raw)
    guarded = GuardedPredictor(predictor)      # validation + fallbacks
    p = guarded.predict_next(clean)            # always finite, >= 0

The chaos path is ``repro simulate --guarded`` under ``REPRO_FAULTS``
(sites ``serve.predict``, ``adaptive.refit``, ``model.load``); see
DESIGN.md §10.
"""

from repro.serving.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serving.guard import CorruptModelError, GuardedPredictor, default_fallbacks
from repro.serving.online import ServingReport, daily_period, serve_and_simulate
from repro.serving.sanitize import REPAIR_POLICIES, DataQualityReport, TraceSanitizer
from repro.serving.stream import (
    CheckpointError,
    StreamChunk,
    StreamConfig,
    StreamingServer,
    StreamStalled,
    chunk_stream,
)

__all__ = [
    "REPAIR_POLICIES",
    "DataQualityReport",
    "TraceSanitizer",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CorruptModelError",
    "GuardedPredictor",
    "default_fallbacks",
    "ServingReport",
    "daily_period",
    "serve_and_simulate",
    "CheckpointError",
    "StreamChunk",
    "StreamConfig",
    "StreamStalled",
    "StreamingServer",
    "chunk_stream",
]
