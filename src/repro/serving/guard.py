"""Guarded serving: output validation, fallback chain, corrupt-model shield.

:class:`GuardedPredictor` wraps any predictor — a tuned
:class:`~repro.core.predictor.LoadDynamicsPredictor`, the adaptive
variant, or any baseline — for online use in front of the autoscaler:

* **output validation** — a non-finite forecast is a fault (counted,
  never served); finite forecasts are clamped into
  ``[0, guard_factor x rolling max]`` so a model that momentarily
  explodes cannot order a thousand VMs;
* **fallback chain** — tuned model → seasonal-naive baseline →
  last-value persistence; the first stage that produces a valid value
  serves it, with per-stage ``serving.fallback.*`` counters;
* **circuit breaker** — repeated primary failures open a
  :class:`~repro.serving.breaker.CircuitBreaker`, shedding the model
  (fallback serves directly) until probation probes pass;
* **corrupt-model shield** — :meth:`GuardedPredictor.load` turns any
  unreadable/truncated predictor directory into a typed
  :class:`CorruptModelError`, or (``on_corrupt="fallback"``) into a
  guarded predictor that serves from the fallback chain alone.

Zero-overhead guarantee: on a healthy model and in-range forecast the
served value is *bit-for-bit* the primary's own output — validation
uses comparisons only, never arithmetic (regression-tested in
``tests/test_serving_guard.py``).
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.baselines.base import Predictor
from repro.baselines.naive import LastValuePredictor, SeasonalNaivePredictor
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger
from repro.resilience import faults as _faults
from repro.serving.breaker import CircuitBreaker

__all__ = ["CorruptModelError", "GuardedPredictor", "default_fallbacks"]

logger = get_logger("serving.guard")


class CorruptModelError(Exception):
    """A saved predictor directory could not be loaded back.

    Raised by :meth:`GuardedPredictor.load` for truncated/corrupted
    ``predictor.json`` or model-weight files (and for injected
    ``corrupt@model.load`` faults) so serving code has one typed error
    to handle instead of the zoo of JSON/zipfile/OS errors underneath.
    """

    def __init__(self, message: str, directory: str | Path | None = None):
        super().__init__(message)
        self.directory = str(directory) if directory is not None else None


def default_fallbacks(period: int | None = None) -> list[Predictor]:
    """The standard fallback chain: seasonal-naive (if periodic) → last value.

    ``period`` is the season length in intervals (e.g. ``1440 //
    interval_minutes`` for a daily cycle); ``None`` or ``< 2`` drops the
    seasonal stage.
    """
    chain: list[Predictor] = []
    if period is not None and period >= 2:
        chain.append(SeasonalNaivePredictor(period))
    chain.append(LastValuePredictor())
    return chain


class GuardedPredictor(Predictor):
    """Wrap a predictor with validation, a fallback chain, and a breaker.

    Parameters
    ----------
    primary:
        The tuned model being guarded; ``None`` serves from the fallback
        chain alone (the corrupt-model degradation mode).
    fallbacks:
        Ordered stand-in predictors; defaults to
        :func:`default_fallbacks` (last-value persistence only, since
        the seasonal period is workload-specific).
    guard_factor:
        Forecasts are clamped to ``guard_factor`` times the rolling
        maximum of the recent history — the sanity ceiling between the
        model and the provisioning policy.
    rolling_window:
        How much recent history feeds the rolling maximum.
    breaker:
        A configured :class:`CircuitBreaker`, or ``None`` for defaults.
    """

    def __init__(
        self,
        primary: Predictor | None,
        fallbacks: list[Predictor] | tuple[Predictor, ...] | None = None,
        guard_factor: float = 10.0,
        rolling_window: int = 256,
        breaker: CircuitBreaker | None = None,
    ):
        if guard_factor <= 0:
            raise ValueError("guard_factor must be positive")
        if rolling_window < 1:
            raise ValueError("rolling_window must be >= 1")
        self.primary = primary
        self.fallbacks = list(fallbacks) if fallbacks is not None else default_fallbacks()
        self.guard_factor = float(guard_factor)
        self.rolling_window = int(rolling_window)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        base = primary.name if primary is not None else "none"
        self.name = f"guarded[{base}]"
        self.min_history = getattr(primary, "min_history", 1) if primary else 1
        #: Which column of a 2-D history is the forecast target; the
        #: bound, fallbacks, and rescue all work on that channel while a
        #: multivariate primary sees the full (steps, D) history.
        self.target_channel = int(getattr(primary, "target_channel", 0) or 0)
        #: Serve counts per stage: "primary", each fallback's name, "zero".
        self.served_by: dict[str, int] = {}
        #: Latched ``drift@serve.predict`` level shift: once the fault
        #: fires, every later primary forecast is scaled by this factor
        #: (a drift, once it happens, persists — that is what the drift
        #: detectors downstream must catch).
        self._drift_shift: float | None = None

        # Hot-path metric handles resolved once, not per prediction.
        self._c_total = _metrics.counter("serving.predictions")
        self._c_nonfinite = _metrics.counter("serving.fault.nonfinite")
        self._c_exception = _metrics.counter("serving.fault.exception")
        self._c_clamped = _metrics.counter("serving.clamped")
        self._c_shed = _metrics.counter("serving.breaker.short_circuit")

    # ------------------------------------------------------------------
    def _split_history(self, history) -> tuple[np.ndarray, np.ndarray]:
        """``(full, target)`` views of a raw history.

        1-D histories return the same array twice (no copy, no change);
        2-D ``(steps, D)`` histories pair the full matrix (for the
        primary) with the target channel (for bound/fallbacks/baselines).
        """
        h = np.asarray(history, dtype=np.float64)
        if h.ndim == 2:
            if not 0 <= self.target_channel < h.shape[1]:
                raise ValueError(
                    f"target_channel {self.target_channel} out of range "
                    f"for {h.shape[1]}-channel history"
                )
            return h, h[:, self.target_channel]
        h = h.ravel()
        return h, h

    def _bound(self, h: np.ndarray) -> float:
        """Sanity ceiling: guard_factor x max of the recent finite history."""
        tail = h[-self.rolling_window :]
        finite = tail[np.isfinite(tail)]
        if finite.size == 0:
            return math.inf
        return self.guard_factor * max(float(finite.max()), 0.0)

    def _served(self, stage: str) -> None:
        self.served_by[stage] = self.served_by.get(stage, 0) + 1

    def _validate(self, raw: float, bound: float, stage: str) -> float | None:
        """Return the servable value, or ``None`` when the stage faulted.

        Comparisons only on the happy path: an in-range forecast is
        returned exactly as produced (bit-for-bit).
        """
        value = float(raw)
        if not math.isfinite(value):
            self._c_nonfinite.inc()
            if _events.enabled():
                _events.emit("serving.fault", stage=stage, kind="nonfinite")
            return None
        if value < 0.0:
            self._c_clamped.inc()
            return 0.0
        if value > bound:
            self._c_clamped.inc()
            if _events.enabled():
                _events.emit(
                    "serving.fault", stage=stage, kind="clamped",
                    value=value, bound=bound,
                )
            return bound
        return value

    def _try_primary(self, h: np.ndarray, bound: float) -> float | None:
        if self.primary is None:
            return None
        if not self.breaker.allow():
            self._c_shed.inc()
            return None
        inj = _faults.active()
        try:
            fired = inj.maybe_fire("serve.predict") if inj is not None else {}
            raw = self.primary.predict_next(h)
            if "nan" in fired:
                raw = float("nan")
            if "drift" in fired:
                spec = fired["drift"]
                self._drift_shift = spec.arg if spec.arg is not None else 2.0
            if self._drift_shift is not None:
                raw = float(raw) * self._drift_shift
        except _faults.SimulatedCrash:
            raise
        except Exception as exc:
            self._c_exception.inc()
            self.breaker.record_failure()
            logger.warning("primary predictor %s failed: %s", self.primary.name, exc)
            if _events.enabled():
                _events.emit(
                    "serving.fault", stage="primary", kind="exception",
                    error=type(exc).__name__,
                )
            return None
        value = self._validate(raw, bound, "primary")
        if value is None:
            self.breaker.record_failure()
            return None
        self.breaker.record_success()
        return value

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable mutable serving state.

        Covers the per-stage serve counts, the latched drift shift, the
        nested breaker state, and — when the primary itself exposes
        ``state_dict`` (e.g. :class:`~repro.core.adaptive.AdaptiveLoadDynamics`)
        — the primary's state.  Frozen models and the stateless baseline
        fallbacks carry no mutable serving state, so they are not
        serialized here.
        """
        out: dict = {
            "served_by": dict(self.served_by),
            "drift_shift": self._drift_shift,
            "breaker": self.breaker.state_dict(),
        }
        if self.primary is not None and hasattr(self.primary, "state_dict"):
            out["primary"] = self.primary.state_dict()
        return out

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a same-config instance."""
        self.served_by = {str(k): int(v) for k, v in state["served_by"].items()}
        shift = state["drift_shift"]
        self._drift_shift = float(shift) if shift is not None else None
        self.breaker.load_state_dict(state["breaker"])
        if "primary" in state:
            if self.primary is None or not hasattr(self.primary, "load_state_dict"):
                raise ValueError(
                    "saved state carries primary-predictor state but the "
                    "configured primary cannot load it"
                )
            self.primary.load_state_dict(state["primary"])

    # ------------------------------------------------------------------
    # Predictor protocol
    # ------------------------------------------------------------------
    def fit(self, history: np.ndarray) -> "GuardedPredictor":
        """Guarded refit: a failing primary fit keeps the stale model."""
        h, tgt = self._split_history(history)
        if self.primary is not None:
            try:
                self.primary.fit(h)
            except _faults.SimulatedCrash:
                raise
            except Exception as exc:
                _metrics.counter("serving.fault.fit_exception").inc()
                logger.warning(
                    "primary predictor %s fit failed (serving stale state): %s",
                    self.primary.name, exc,
                )
        for fb in self.fallbacks:
            try:
                fb.fit(tgt)
            except Exception:  # fallbacks must never take serving down
                logger.warning("fallback %s fit failed", fb.name)
        return self

    def predict_next(self, history: np.ndarray) -> float:
        """Always returns a finite value in ``[0, guard_factor x rolling max]``.

        A 2-D ``(steps, D)`` history feeds the primary whole; the
        rolling-max bound and the (univariate) fallback chain see the
        target channel.
        """
        h, tgt = self._split_history(history)
        bound = self._bound(tgt)
        self._c_total.inc()

        value = self._try_primary(h, bound)
        if value is not None:
            self._served("primary")
            return value

        for fb in self.fallbacks:
            try:
                raw = fb.predict_next(tgt)
            except _faults.SimulatedCrash:
                raise
            except Exception:
                continue
            value = self._validate(raw, bound, fb.name)
            if value is not None:
                self._served(fb.name)
                _metrics.counter(f"serving.fallback.{fb.name}").inc()
                if _events.enabled():
                    _events.emit("serving.fallback", stage=fb.name)
                return value

        # Terminal answer when even persistence has nothing finite.
        self._served("zero")
        _metrics.counter("serving.fallback.zero").inc()
        return 0.0

    # ------------------------------------------------------------------
    @classmethod
    def load(
        cls,
        directory: str | Path,
        *,
        on_corrupt: str = "raise",
        **kwargs,
    ) -> "GuardedPredictor":
        """Load a saved predictor directory behind the guard.

        Any failure to reconstruct the model — truncated
        ``predictor.json``, corrupted weight files, injected
        ``corrupt@model.load`` faults — surfaces as
        :class:`CorruptModelError` (``on_corrupt="raise"``) or degrades
        to a guarded predictor without a primary
        (``on_corrupt="fallback"``), which serves from the fallback
        chain.  Extra ``kwargs`` go to the constructor.
        """
        if on_corrupt not in ("raise", "fallback"):
            raise ValueError("on_corrupt must be 'raise' or 'fallback'")
        from repro.core.predictor import LoadDynamicsPredictor

        try:
            primary: Predictor | None = LoadDynamicsPredictor.load(directory)
        except _faults.SimulatedCrash:
            raise
        except Exception as exc:
            err = CorruptModelError(
                f"cannot load predictor from {directory}: "
                f"{type(exc).__name__}: {exc}",
                directory=directory,
            )
            if on_corrupt == "raise":
                raise err from exc
            logger.error("%s — serving from the fallback chain", err)
            _metrics.counter("serving.corrupt_model").inc()
            if _events.enabled():
                _events.emit(
                    "serving.corrupt_model",
                    directory=str(directory),
                    error=type(exc).__name__,
                )
            primary = None
        return cls(primary, **kwargs)
