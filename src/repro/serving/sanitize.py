"""Trace sanitization: data-quality reports and composable repair policies.

Real arrival traces reach the serving path with export glitches the
synthetic generators never produce: NaN/inf samples from collector
restarts, negative counts from resetting counters, flatlined segments
from a stuck exporter, and spikes that are artifacts rather than load.
Windowing such a series poisons scaling, training, and — worst — the
provisioning policy.  :class:`TraceSanitizer` runs ingestion-time
validation producing a :class:`DataQualityReport` and, when asked,
repairs the series under one of four policies:

``reject``
    (default) raise :class:`~repro.traces.loader.TraceValidationError`
    when any non-finite or negative value is present — strict ingestion;
``interpolate``
    replace invalid values by linear interpolation between the nearest
    valid neighbours (edges clamp to the nearest valid value);
``ffill``
    replace invalid values with the last valid value (a leading invalid
    run takes the first valid value);
``clip``
    clamp into the valid range: negatives and ``-inf``/NaN to 0,
    ``+inf`` to the largest finite value.

Every repair policy guarantees a finite, non-negative output, which
makes sanitization idempotent: sanitizing a sanitized series is a no-op
(property-tested in ``tests/test_property_invariants.py``).

Diagnostics that do not invalidate a trace — flatline segments and
robust-MAD outliers — are *reported*, not repaired, unless
``repair_outliers=True`` treats outliers as missing values under the
active policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.traces.loader import TraceValidationError

__all__ = ["REPAIR_POLICIES", "DataQualityReport", "TraceSanitizer"]

#: Accepted ``TraceSanitizer(policy=...)`` values.
REPAIR_POLICIES = ("reject", "interpolate", "clip", "ffill")


def _runs(mask: np.ndarray) -> list[tuple[int, int]]:
    """Contiguous True-runs of ``mask`` as (start, length) pairs."""
    if not mask.any():
        return []
    padded = np.diff(np.concatenate(([False], mask, [False])).astype(np.int8))
    starts = np.flatnonzero(padded == 1)
    ends = np.flatnonzero(padded == -1)
    return [(int(s), int(e - s)) for s, e in zip(starts, ends)]


@dataclass
class DataQualityReport:
    """What ingestion found in (and did to) one series."""

    n_samples: int
    n_nan: int = 0
    n_inf: int = 0
    n_negative: int = 0
    #: Contiguous non-finite runs as (start, length) — collector gaps.
    gap_spans: list[tuple[int, int]] = field(default_factory=list)
    #: Constant-value runs of at least ``flat_min_run`` — stuck exporters.
    flat_segments: list[tuple[int, int]] = field(default_factory=list)
    #: Indices whose robust (MAD) z-score exceeds the threshold.
    outlier_indices: tuple[int, ...] = ()
    #: Repair actions performed, action name -> value count.
    repairs: dict[str, int] = field(default_factory=dict)
    #: Per-channel sub-reports of a multivariate series (empty for 1-D);
    #: the parent report aggregates their counts, the spans/outlier
    #: detail lives on the sub-report of the channel it belongs to.
    channel_reports: list = field(default_factory=list)
    #: Channel labels matching ``channel_reports`` (``None`` for 1-D).
    channel_names: tuple | None = None

    @property
    def n_invalid(self) -> int:
        """Values a repair policy must touch before the series is usable."""
        return self.n_nan + self.n_inf + self.n_negative

    @property
    def is_clean(self) -> bool:
        """True when the series needs no repair (diagnostics may remain)."""
        return self.n_invalid == 0

    @property
    def n_repaired(self) -> int:
        return int(sum(self.repairs.values()))

    def summary(self) -> str:
        """One-line human-readable digest for logs and the CLI."""
        parts = [f"{self.n_samples} samples"]
        if self.channel_reports:
            parts[0] += f" across {len(self.channel_reports)} channels"
        if self.n_invalid:
            parts.append(
                f"{self.n_nan} NaN / {self.n_inf} inf / {self.n_negative} negative"
            )
        if self.gap_spans:
            parts.append(f"{len(self.gap_spans)} gap span(s)")
        if self.flat_segments:
            parts.append(f"{len(self.flat_segments)} flat segment(s)")
        if self.outlier_indices:
            parts.append(f"{len(self.outlier_indices)} outlier(s)")
        if self.repairs:
            parts.append(
                "repaired " + ", ".join(f"{k}={v}" for k, v in sorted(self.repairs.items()))
            )
        return "; ".join(parts) if len(parts) > 1 else parts[0] + "; clean"


class TraceSanitizer:
    """Composable ingestion validator/repairer for arrival-count series.

    Parameters
    ----------
    policy:
        One of :data:`REPAIR_POLICIES`; ``reject`` raises on invalid
        values, the others repair them (see module docstring).
    mad_threshold:
        Flag samples whose robust z-score ``0.6745*(x-median)/MAD``
        exceeds this magnitude.  Workloads are bursty, so the default is
        deliberately loose; it flags artifacts, not peaks.
    flat_min_run:
        Minimum length of a constant-value run to report as a flatline.
    repair_outliers:
        Treat flagged outliers as missing values under the repair
        policy (default off: outliers are diagnostics only, which also
        keeps sanitization idempotent).
    """

    def __init__(
        self,
        policy: str = "reject",
        mad_threshold: float = 8.0,
        flat_min_run: int = 16,
        repair_outliers: bool = False,
    ):
        if policy not in REPAIR_POLICIES:
            raise ValueError(f"policy must be one of {REPAIR_POLICIES}, got {policy!r}")
        if mad_threshold <= 0:
            raise ValueError("mad_threshold must be positive")
        if flat_min_run < 2:
            raise ValueError("flat_min_run must be >= 2")
        self.policy = policy
        self.mad_threshold = float(mad_threshold)
        self.flat_min_run = int(flat_min_run)
        self.repair_outliers = bool(repair_outliers)

    # ------------------------------------------------------------------
    def _combined(
        self, s: np.ndarray, subs: list[DataQualityReport], names
    ) -> DataQualityReport:
        """Aggregate per-channel sub-reports into one parent report."""
        repairs: dict[str, int] = {}
        for rep in subs:
            for action, count in rep.repairs.items():
                repairs[action] = repairs.get(action, 0) + count
        return DataQualityReport(
            n_samples=int(s.size),
            n_nan=sum(r.n_nan for r in subs),
            n_inf=sum(r.n_inf for r in subs),
            n_negative=sum(r.n_negative for r in subs),
            repairs=repairs,
            channel_reports=subs,
            channel_names=names,
        )

    @staticmethod
    def _channel_labels(s: np.ndarray, channel_names) -> tuple | None:
        if channel_names is None:
            return None
        names = tuple(str(x) for x in channel_names)
        if len(names) != s.shape[1]:
            raise ValueError(f"{len(names)} channel names for {s.shape[1]} channels")
        return names

    # ------------------------------------------------------------------
    def check(self, series, channel_names=None) -> DataQualityReport:
        """Diagnose ``series`` without modifying it.

        A 2-D ``(steps, D)`` series is diagnosed per channel: the
        returned report aggregates the counts, with the per-channel
        detail on ``channel_reports``.
        """
        s = np.asarray(series, dtype=np.float64)
        if s.ndim == 2:
            if s.size == 0:
                raise TraceValidationError("cannot sanitize an empty series")
            names = self._channel_labels(s, channel_names)
            subs = [self.check(s[:, d]) for d in range(s.shape[1])]
            return self._combined(s, subs, names)
        s = s.ravel()
        if s.size == 0:
            raise TraceValidationError("cannot sanitize an empty series")
        nan_mask = np.isnan(s)
        inf_mask = np.isinf(s)
        nonfinite = nan_mask | inf_mask
        neg_mask = ~nonfinite & (s < 0)

        # Flatlines: constant runs (over finite values) of >= flat_min_run.
        flat: list[tuple[int, int]] = []
        if s.size >= self.flat_min_run:
            with np.errstate(invalid="ignore"):  # NaN-NaN diffs are not flat
                same = np.concatenate(([False], (np.diff(s) == 0.0)))
            for start, length in _runs(same):
                # `same[i]` marks s[i] == s[i-1]; the run of equal values
                # includes the anchor element before it.
                if length + 1 >= self.flat_min_run:
                    flat.append((start - 1, length + 1))

        # Robust outliers over the valid samples only.
        outliers: tuple[int, ...] = ()
        valid = ~nonfinite & ~neg_mask
        if np.count_nonzero(valid) >= 8:
            v = s[valid]
            med = float(np.median(v))
            mad = float(np.median(np.abs(v - med)))
            if mad > 0:
                # Extreme samples overflow the scaled ratio to inf, which
                # still compares correctly against the threshold.
                with np.errstate(over="ignore"):
                    z = 0.6745 * (s[valid] - med) / mad
                idx = np.flatnonzero(valid)[np.abs(z) > self.mad_threshold]
                outliers = tuple(int(i) for i in idx)

        return DataQualityReport(
            n_samples=int(s.size),
            n_nan=int(np.count_nonzero(nan_mask)),
            n_inf=int(np.count_nonzero(inf_mask)),
            n_negative=int(np.count_nonzero(neg_mask)),
            gap_spans=_runs(nonfinite),
            flat_segments=flat,
            outlier_indices=outliers,
        )

    # ------------------------------------------------------------------
    def sanitize(self, series, channel_names=None) -> tuple[np.ndarray, DataQualityReport]:
        """Validate-and-repair; returns ``(repaired, report)``.

        Under ``reject`` any invalid value raises
        :class:`TraceValidationError`; otherwise the returned array is
        finite and non-negative.  A clean input is returned as an
        unmodified copy (bit-for-bit), so sanitization is idempotent.

        A 2-D ``(steps, D)`` series repairs each channel independently
        (gap interpolation in ``cpu`` never consults ``requests``); a
        rejection names the offending channel.
        """
        s = np.asarray(series, dtype=np.float64)
        if s.ndim == 2:
            if s.size == 0:
                raise TraceValidationError("cannot sanitize an empty series")
            names = self._channel_labels(s, channel_names)
            cols: list[np.ndarray] = []
            subs: list[DataQualityReport] = []
            for d in range(s.shape[1]):
                label = names[d] if names else str(d)
                try:
                    col, rep = self.sanitize(s[:, d])
                except TraceValidationError as exc:
                    raise TraceValidationError(
                        f"channel {label!r}: {exc}", report=exc.report
                    ) from exc
                cols.append(col)
                subs.append(rep)
            return np.column_stack(cols), self._combined(s, subs, names)
        s = s.ravel().copy()
        report = self.check(s)

        bad = ~np.isfinite(s) | (s < 0)
        if self.repair_outliers and report.outlier_indices:
            bad[np.asarray(report.outlier_indices, dtype=np.intp)] = True

        if self.policy == "reject":
            if bad.any():
                raise TraceValidationError(
                    f"trace rejected: {report.summary()}", report=report
                )
            self._emit(report)
            return s, report

        if not bad.any():
            self._emit(report)
            return s, report
        n_bad = int(np.count_nonzero(bad))
        good_idx = np.flatnonzero(~bad)
        if good_idx.size == 0:
            raise TraceValidationError(
                "trace rejected: no valid samples to repair from", report=report
            )

        if self.policy == "interpolate":
            bad_idx = np.flatnonzero(bad)
            s[bad_idx] = np.interp(bad_idx, good_idx, s[good_idx])
            report.repairs["interpolated"] = n_bad
        elif self.policy == "ffill":
            # Index of the most recent valid sample at each position; a
            # leading invalid run borrows the first valid value.
            carry = np.where(~bad, np.arange(s.size), -1)
            carry = np.maximum.accumulate(carry)
            carry[carry < 0] = good_idx[0]
            s = s[carry]
            report.repairs["filled"] = n_bad
        else:  # clip
            upper = float(s[good_idx].max())
            before = s.copy()
            s = np.nan_to_num(s, nan=0.0, posinf=upper, neginf=0.0)
            np.clip(s, 0.0, upper, out=s)
            # NaN != anything, so the comparison counts NaN repairs too.
            report.repairs["clipped"] = int(np.count_nonzero(before != s))

        # Every policy must deliver a servable series; anything else is
        # a bug in the policy, not the data.
        assert np.all(np.isfinite(s)) and np.all(s >= 0)
        self._emit(report)
        return s, report

    def _emit(self, report: DataQualityReport) -> None:
        if report.n_repaired:
            _metrics.counter("serving.sanitize.values_repaired").inc(report.n_repaired)
        if report.n_invalid:
            _metrics.counter("serving.sanitize.invalid_values").inc(report.n_invalid)
        if _events.enabled():
            _events.emit(
                "sanitize.report",
                policy=self.policy,
                n_samples=report.n_samples,
                n_nan=report.n_nan,
                n_inf=report.n_inf,
                n_negative=report.n_negative,
                n_gaps=len(report.gap_spans),
                n_flat=len(report.flat_segments),
                n_outliers=len(report.outlier_indices),
                n_repaired=report.n_repaired,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceSanitizer(policy={self.policy!r})"
