"""Naive predictors: mean and kNN (paper Table II, "Naive" category)."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Predictor
from repro.ml.neighbors import KNNRegressor

__all__ = [
    "LastValuePredictor",
    "MeanPredictor",
    "KNNPredictor",
    "SeasonalNaivePredictor",
]


class LastValuePredictor(Predictor):
    """Persistence: the next JAR equals the last observed one.

    The terminal stage of the serving fallback chain
    (:class:`repro.serving.guard.GuardedPredictor`) — the cheapest
    forecast that is always available and always finite on a sane
    history.
    """

    name = "last-value"

    def predict_next(self, history: np.ndarray) -> float:
        return self._fallback(history)


class SeasonalNaivePredictor(Predictor):
    """Lag-``period`` persistence: predict the value one season ago.

    Strong on cyclic workloads, trivially cheap, and stateless — the
    classic seasonal baseline (and the mid-tier of the serving fallback
    chain, where it covers for a shed model without flattening daily
    cycles the way plain persistence would).
    """

    def __init__(self, period: int):
        if period < 2:
            raise ValueError("period must be >= 2")
        self.period = int(period)
        self.name = f"seasonal-naive-{period}"

    def predict_next(self, history: np.ndarray) -> float:
        if len(history) < self.period:
            return self._fallback(history)
        return float(history[-self.period])


class MeanPredictor(Predictor):
    """Predict the mean of the last ``window`` JARs (all history if None)."""

    name = "mean"

    def __init__(self, window: int | None = 10):
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 or None")
        self.window = window

    def predict_next(self, history: np.ndarray) -> float:
        if len(history) == 0:
            return 0.0
        h = history if self.window is None else history[-self.window :]
        return float(np.mean(h))


class KNNPredictor(Predictor):
    """Pattern-matching kNN: find the k historical windows most similar to
    the current one and average what followed them."""

    name = "knn"

    def __init__(self, k: int = 5, window: int = 6, weights: str = "distance"):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.k = int(k)
        self.window = int(window)
        self.weights = weights
        self.min_history = self.window + 1
        self._model: KNNRegressor | None = None
        self._fit_len = -1

    def fit(self, history: np.ndarray) -> "KNNPredictor":
        n, w = len(history), self.window
        if n < w + 1:
            self._model = None
            return self
        # Lag-matrix construction via stride tricks: zero-copy windows.
        windows = np.lib.stride_tricks.sliding_window_view(history[:-1], w)
        targets = history[w:]
        model = KNNRegressor(k=self.k, weights=self.weights)
        model.fit(windows, targets)
        self._model = model
        self._fit_len = n
        return self

    def predict_next(self, history: np.ndarray) -> float:
        if self._model is None or len(history) < self.window:
            return self._fallback(history)
        query = np.asarray(history[-self.window :], dtype=np.float64)[None, :]
        return float(self._model.predict(query)[0])
