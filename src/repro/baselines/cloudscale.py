"""CloudScale predictor [Shen et al., SoCC 2011] (paper baseline #2).

CloudScale combines a fast-Fourier-transform signature detector with a
discrete-time Markov chain:

1. **FFT stage** — transform the recent history and look for a dominant
   frequency.  If one frequency carries a large share of the (non-DC)
   spectral energy, the workload has a repeating pattern; the prediction
   reuses the value one detected period back (the "signature").
2. **Markov stage** — otherwise, quantize the history into ``n_states``
   equal-width bins, estimate the state-transition matrix, and predict
   the expected value of the next state given the current one.

This faithfully reproduces why CloudScale wins on strongly-seasonal web
traces and degrades on non-seasonal data-center traces (paper Fig. 2/9).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Predictor

__all__ = ["CloudScale"]


class CloudScale(Predictor):
    """FFT signature detection + Markov-chain fallback."""

    name = "cloudscale"
    min_history = 8

    def __init__(
        self,
        fft_window: int = 512,
        dominance_threshold: float = 0.25,
        n_states: int = 16,
        markov_window: int = 512,
    ):
        if fft_window < 8:
            raise ValueError("fft_window must be >= 8")
        if not 0.0 < dominance_threshold < 1.0:
            raise ValueError("dominance_threshold must be in (0, 1)")
        if n_states < 2:
            raise ValueError("n_states must be >= 2")
        self.fft_window = int(fft_window)
        self.dominance_threshold = float(dominance_threshold)
        self.n_states = int(n_states)
        self.markov_window = int(markov_window)
        # Diagnostics, refreshed by fit().
        self.detected_period_: int | None = None
        self._transition: np.ndarray | None = None
        self._bin_edges: np.ndarray | None = None
        self._bin_centers: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, history: np.ndarray) -> "CloudScale":
        h = np.asarray(history, dtype=np.float64)
        self.detected_period_ = self._detect_period(h)
        if self.detected_period_ is None:
            self._fit_markov(h)
        return self

    def _detect_period(self, h: np.ndarray) -> int | None:
        """Dominant FFT period of the recent window, or None."""
        seg = h[-self.fft_window :]
        n = len(seg)
        if n < 8:
            return None
        detrended = seg - np.mean(seg)
        spectrum = np.abs(np.fft.rfft(detrended)) ** 2
        spectrum[0] = 0.0  # drop DC
        total = float(spectrum.sum())
        if total <= 0.0:
            return None
        k = int(np.argmax(spectrum))
        if k == 0 or spectrum[k] / total < self.dominance_threshold:
            return None
        period = int(round(n / k))
        # A usable signature must fit inside the history at least twice.
        if period < 2 or period > n // 2:
            return None
        return period

    def _fit_markov(self, h: np.ndarray) -> None:
        seg = h[-self.markov_window :]
        lo, hi = float(np.min(seg)), float(np.max(seg))
        if hi <= lo:
            self._transition = None
            return
        edges = np.linspace(lo, hi, self.n_states + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        states = np.clip(np.digitize(seg, edges[1:-1]), 0, self.n_states - 1)
        counts = np.zeros((self.n_states, self.n_states))
        np.add.at(counts, (states[:-1], states[1:]), 1.0)
        row_sums = counts.sum(axis=1, keepdims=True)
        # Unvisited rows fall back to the empirical state distribution.
        marginal = np.bincount(states, minlength=self.n_states).astype(np.float64)
        marginal /= marginal.sum()
        trans = np.where(row_sums > 0, counts / np.maximum(row_sums, 1.0), marginal)
        self._transition = trans
        self._bin_edges = edges
        self._bin_centers = centers

    # ------------------------------------------------------------------
    def predict_next(self, history: np.ndarray) -> float:
        h = np.asarray(history, dtype=np.float64)
        if len(h) == 0:
            return 0.0
        if self.detected_period_ is None and self._transition is None:
            # fit() not called yet, or degenerate history.
            self.fit(h)
        if self.detected_period_ is not None and len(h) >= self.detected_period_:
            return float(h[-self.detected_period_])
        if self._transition is None or self._bin_edges is None:
            return self._fallback(h)
        state = int(
            np.clip(
                np.digitize(h[-1], self._bin_edges[1:-1]), 0, self.n_states - 1
            )
        )
        probs = self._transition[state]
        return float(np.dot(probs, self._bin_centers))
