"""CloudInsight ensemble [Kim et al., IEEE CLOUD 2018] (paper baseline #1).

A council of 21 experts (Table II, built by
:func:`repro.baselines.registry.cloudinsight_pool`).  At every interval
each member produces a forecast; the council's output is the forecast of
the member with the lowest recent error.  Members are rebuilt (refit on
the full known history) every ``rebuild_every`` intervals — the paper
notes "CloudInsight also dynamically rebuilds its predictors after every
five intervals."

Error bookkeeping happens in :meth:`fit` (called by ``walk_forward``
once per interval): the value revealed at interval *i* scores the
member forecasts that were cached when predicting interval *i*, giving
every member an exponentially-weighted recent-accuracy estimate without
any lookahead.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Predictor

__all__ = ["CloudInsight"]


class CloudInsight(Predictor):
    """Best-recent-expert selection over the 21-predictor pool."""

    name = "cloudinsight"

    def __init__(
        self,
        pool: list[Predictor] | None = None,
        rebuild_every: int = 5,
        eval_window: int = 10,
        profile: str = "fast",
    ):
        if rebuild_every < 1:
            raise ValueError("rebuild_every must be >= 1")
        if eval_window < 1:
            raise ValueError("eval_window must be >= 1")
        if pool is None:
            from repro.baselines.registry import cloudinsight_pool

            pool = cloudinsight_pool(profile=profile)
        if not pool:
            raise ValueError("pool must be non-empty")
        self.pool = pool
        self.rebuild_every = int(rebuild_every)
        self.eval_window = int(eval_window)
        self.min_history = max(m.min_history for m in pool)
        self._reset_state()

    def _reset_state(self) -> None:
        k = len(self.pool)
        self._seen_len = 0          # history length after the last fit()
        self._since_rebuild = self.rebuild_every  # force rebuild on first fit
        self._cached_forecasts: np.ndarray | None = None  # member predictions for next interval
        self._errors: list[list[float]] = [[] for _ in range(k)]
        self._selected = 0

    # ------------------------------------------------------------------
    @property
    def selected_member(self) -> Predictor:
        """The expert currently answering for the council."""
        return self.pool[self._selected]

    def member_scores(self) -> np.ndarray:
        """Mean recent absolute error per member (inf when unscored)."""
        out = np.full(len(self.pool), np.inf)
        for j, errs in enumerate(self._errors):
            if errs:
                recent = errs[-self.eval_window :]
                out[j] = float(np.mean(recent))
        return out

    # ------------------------------------------------------------------
    def fit(self, history: np.ndarray) -> "CloudInsight":
        h = np.asarray(history, dtype=np.float64)
        n = len(h)
        if n < self._seen_len:
            # The series restarted (new trace): drop all state.
            self._reset_state()

        # Score cached member forecasts against every newly revealed value.
        if self._cached_forecasts is not None and n > self._seen_len:
            actual = float(h[self._seen_len])  # the interval we had forecast
            denom = max(abs(actual), 1e-9)
            for j, p in enumerate(self._cached_forecasts):
                self._errors[j].append(abs(p - actual) / denom)

        new_intervals = n - self._seen_len
        self._since_rebuild += max(new_intervals, 0)
        self._seen_len = n

        if self._since_rebuild >= self.rebuild_every:
            for member in self.pool:
                member.fit(h)
            self._since_rebuild = 0

        # Collect every member's forecast for the *next* interval; cache
        # for scoring when that value is revealed.
        forecasts = np.empty(len(self.pool))
        for j, member in enumerate(self.pool):
            try:
                p = member.predict_next(h)
            except (ValueError, np.linalg.LinAlgError):
                p = float(h[-1]) if n else 0.0
            forecasts[j] = p if np.isfinite(p) else (float(h[-1]) if n else 0.0)
        self._cached_forecasts = forecasts

        scores = self.member_scores()
        if np.isfinite(scores).any():
            self._selected = int(np.argmin(scores))
        return self

    def predict_next(self, history: np.ndarray) -> float:
        if self._cached_forecasts is None or self._seen_len != len(history):
            # fit() not called for this prefix (direct API use): do it now.
            self.fit(history)
        return float(self._cached_forecasts[self._selected])
