"""Seasonal (triple) Holt-Winters exponential smoothing.

The CloudInsight pool (Table II) carries Holt's *double* ES; for
strongly seasonal workloads like Wikipedia the classical next step is
the seasonal triple-ES model (level + trend + multiplicative-or-additive
seasonal indices).  It is provided as an additional library predictor —
a strong, cheap comparator on cyclic traces and a sanity anchor for the
LSTM's advantage on the non-cyclic ones.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Predictor

__all__ = ["HoltWintersSeasonalPredictor"]


class HoltWintersSeasonalPredictor(Predictor):
    """Triple exponential smoothing with a fixed seasonal period.

    Parameters
    ----------
    period:
        Season length in intervals (e.g. 48 for daily cycles at 30-min).
    alpha / beta / gamma:
        Level / trend / seasonal smoothing factors in (0, 1].
    multiplicative:
        Multiplicative seasonality (default — workload cycles scale with
        level) or additive.
    """

    def __init__(
        self,
        period: int,
        alpha: float = 0.4,
        beta: float = 0.1,
        gamma: float = 0.3,
        multiplicative: bool = True,
    ):
        if period < 2:
            raise ValueError("period must be >= 2")
        for name, v in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if not 0.0 < v <= 1.0:
                raise ValueError(f"{name} must be in (0, 1]")
        self.period = int(period)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.gamma = float(gamma)
        self.multiplicative = bool(multiplicative)
        self.name = f"holt-winters-s{period}"
        self.min_history = 2 * self.period

    def _init_state(self, h: np.ndarray):
        """Classical initialization from the first two seasons."""
        p = self.period
        season1, season2 = h[:p], h[p : 2 * p]
        level = float(season1.mean())
        trend = float((season2.mean() - season1.mean()) / p)
        if self.multiplicative:
            base = level if abs(level) > 1e-12 else 1.0
            seasonal = season1 / base
            seasonal = np.where(np.abs(seasonal) < 1e-9, 1.0, seasonal)
        else:
            seasonal = season1 - level
        return level, trend, seasonal.astype(np.float64).copy()

    def predict_next(self, history: np.ndarray) -> float:
        h = np.asarray(history, dtype=np.float64)
        n = len(h)
        if n < 2 * self.period:
            return self._fallback(h)
        p = self.period
        level, trend, seasonal = self._init_state(h)
        a, b, g = self.alpha, self.beta, self.gamma
        for t in range(p, n):
            s_idx = t % p
            x = float(h[t])
            prev_level = level
            if self.multiplicative:
                s = seasonal[s_idx] if abs(seasonal[s_idx]) > 1e-9 else 1.0
                level = a * (x / s) + (1.0 - a) * (level + trend)
                trend = b * (level - prev_level) + (1.0 - b) * trend
                denom = level if abs(level) > 1e-12 else 1.0
                seasonal[s_idx] = g * (x / denom) + (1.0 - g) * seasonal[s_idx]
            else:
                level = a * (x - seasonal[s_idx]) + (1.0 - a) * (level + trend)
                trend = b * (level - prev_level) + (1.0 - b) * trend
                seasonal[s_idx] = g * (x - level) + (1.0 - g) * seasonal[s_idx]
        s_next = seasonal[n % p]
        if self.multiplicative:
            return float((level + trend) * s_next)
        return float(level + trend + s_next)
