"""Polynomial trend extrapolation (Table II, "Regression" category).

Six variants: {local, global} x {linear, quadratic, cubic}.  A polynomial
in *time* is fit to the recent window (local) or the entire history
(global) and evaluated one step past the end.  Time is rescaled to [0, 1]
before fitting — raw interval indices in the thousands make the cubic
Vandermonde catastrophically ill-conditioned.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Predictor

__all__ = ["PolynomialTrendPredictor"]


class PolynomialTrendPredictor(Predictor):
    """Fit ``J_t ≈ poly(t)`` and extrapolate to the next interval.

    Parameters
    ----------
    degree:
        1 (linear), 2 (quadratic) or 3 (cubic) — the paper's six
        regression baselines use exactly these.
    scope:
        ``"local"`` fits the last ``window`` points; ``"global"`` fits
        everything seen so far.
    window:
        Local window length (ignored for global scope).
    """

    def __init__(self, degree: int = 1, scope: str = "local", window: int = 20):
        if degree not in (1, 2, 3):
            raise ValueError("degree must be 1, 2 or 3")
        if scope not in ("local", "global"):
            raise ValueError("scope must be 'local' or 'global'")
        if window < 2:
            raise ValueError("window must be >= 2")
        self.degree = int(degree)
        self.scope = scope
        self.window = int(window)
        self.name = f"{scope}-poly{degree}"
        self.min_history = degree + 1

    def predict_next(self, history: np.ndarray) -> float:
        n = len(history)
        if n < self.degree + 1:
            return self._fallback(history)
        if self.scope == "local":
            seg = history[-min(self.window, n) :]
        else:
            seg = history
        m = len(seg)
        if m < self.degree + 1:
            return self._fallback(history)
        # Rescale time to [0,1]; "next" is (m)/(m-1) just past the end.
        t = np.linspace(0.0, 1.0, m)
        try:
            coeffs = np.polynomial.polynomial.polyfit(t, seg, deg=self.degree)
        except np.linalg.LinAlgError:
            return self._fallback(history)
        t_next = m / (m - 1.0)
        return float(np.polynomial.polynomial.polyval(t_next, coeffs))
