"""Workload-prediction baselines (paper Table II + three frameworks).

Every predictor implements the one-step-ahead protocol of
:class:`repro.baselines.base.Predictor`: given the known JAR history
``J_1 … J_{i-1}``, produce ``P_i``.  :func:`repro.baselines.base.walk_forward`
replays a trace through any predictor exactly the way the paper's
evaluation does (predict each test interval from everything before it).

Contents:

* :mod:`naive` — mean, kNN                      (Table II "Naive")
* :mod:`regression` — local/global poly trends  (Table II "Regression")
* :mod:`timeseries` — WMA, EMA, Holt DES, Brown DES, AR, ARMA, ARIMA
* :mod:`ml` — linear/Gaussian SVR, tree, forest, boosting, extra trees
* :mod:`cloudinsight` — the 21-predictor council [Kim et al. 2018]
* :mod:`cloudscale` — FFT + Markov chain        [Shen et al. 2011]
* :mod:`wood` — online robust linear regression [Wood et al. 2011]
* :mod:`registry` — name → factory for all of the above
"""

from repro.baselines.base import Predictor, walk_forward
from repro.baselines.cloudinsight import CloudInsight
from repro.baselines.cloudscale import CloudScale
from repro.baselines.naive import (
    KNNPredictor,
    LastValuePredictor,
    MeanPredictor,
    SeasonalNaivePredictor,
)
from repro.baselines.regression import PolynomialTrendPredictor
from repro.baselines.seasonal import HoltWintersSeasonalPredictor
from repro.baselines.registry import (
    cloudinsight_pool,
    list_baselines,
    make_baseline,
)
from repro.baselines.timeseries import (
    ARIMAPredictor,
    ARMAPredictor,
    ARPredictor,
    BrownDESPredictor,
    EMAPredictor,
    HoltDESPredictor,
    WMAPredictor,
)
from repro.baselines.ml import WindowedMLPredictor
from repro.baselines.wood import WoodPredictor

__all__ = [
    "Predictor",
    "walk_forward",
    "LastValuePredictor",
    "MeanPredictor",
    "KNNPredictor",
    "SeasonalNaivePredictor",
    "PolynomialTrendPredictor",
    "HoltWintersSeasonalPredictor",
    "WMAPredictor",
    "EMAPredictor",
    "HoltDESPredictor",
    "BrownDESPredictor",
    "ARPredictor",
    "ARMAPredictor",
    "ARIMAPredictor",
    "WindowedMLPredictor",
    "CloudInsight",
    "CloudScale",
    "WoodPredictor",
    "make_baseline",
    "list_baselines",
    "cloudinsight_pool",
]
