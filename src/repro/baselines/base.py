"""Common predictor protocol and walk-forward evaluation.

The paper's problem statement (Eq. 1) makes every predictor a function of
the known history prefix: ``P_i = f(J_{i-1}, …, J_{i-n})``.  We model
that directly:

* :meth:`Predictor.fit` — (re)build internal state from a history prefix;
  expensive models (ARIMA, forests) implement it, cheap ones may not.
* :meth:`Predictor.predict_next` — return ``P_i`` given the prefix; must
  be side-effect free so councils can probe members cheaply.

:func:`walk_forward` replays the test portion of a trace interval by
interval, refitting every ``refit_every`` steps — this is exactly how the
evaluation in Section IV-B scores each technique on the last 20% of a
workload configuration.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Predictor", "walk_forward"]


class Predictor:
    """Base class for one-step-ahead JAR predictors."""

    #: Human-readable name used in experiment tables.
    name: str = "predictor"

    #: Minimum history length ``predict_next`` needs to produce a value.
    min_history: int = 1

    def fit(self, history: np.ndarray) -> "Predictor":
        """(Re)build model state from the history prefix.  Default: no-op."""
        return self

    def predict_next(self, history: np.ndarray) -> float:
        """Predict the JAR of the next interval from the known prefix."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _fallback(self, history: np.ndarray) -> float:
        """Last-value persistence — the universal degenerate answer when a
        model cannot produce a number (too-short history, singular fit)."""
        return float(history[-1]) if len(history) else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def walk_forward(
    predictor: Predictor,
    series: np.ndarray,
    start: int,
    end: int | None = None,
    refit_every: int = 1,
    clip_nonnegative: bool = True,
) -> np.ndarray:
    """Predict ``series[start:end]`` one step ahead, walking forward.

    For each index ``i`` the predictor sees ``series[:i]`` only — no
    lookahead.  ``refit_every=k`` calls :meth:`Predictor.fit` on every
    k-th step (CloudInsight rebuilds every 5 intervals; pure smoothing
    models can use a large value since fit is a no-op).

    Returns the predictions aligned with ``series[start:end]``.  A 2-D
    ``(steps, D)`` series walks the full multivariate history into the
    predictor; the persistence rescue reads the predictor's target
    channel.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim == 2:
        target = series[:, int(getattr(predictor, "target_channel", 0) or 0)]
    else:
        series = series.ravel()
        target = series
    n = int(series.shape[0])
    end = n if end is None else end
    if not 0 < start <= end <= n:
        raise ValueError(f"invalid window [{start}, {end}) for series of length {n}")
    if refit_every < 1:
        raise ValueError("refit_every must be >= 1")

    preds = np.empty(end - start)
    for j, i in enumerate(range(start, end)):
        history = series[:i]
        if j % refit_every == 0:
            predictor.fit(history)
        p = predictor.predict_next(history)
        if not np.isfinite(p):
            # Persistence rescue; a non-finite last value (unsanitized
            # trace) must not leak through as the "rescue".
            last = float(target[i - 1])
            p = last if np.isfinite(last) else 0.0
        if clip_nonnegative:
            p = max(p, 0.0)
        preds[j] = p
    return preds
