"""Wood et al. predictor [Middleware 2011] (paper baseline #3).

"Wood et al. employed robust linear regression to predict workloads.
The model built with the linear regression is refined online to adapt
with changes." (paper Section IV-A)

Following the original's modeling approach (robust linear models over
recent observations, refined online), the predictor fits a Huber-robust
linear trend ``J_t ≈ a + b·t`` over a sliding window of recent intervals
and extrapolates one step.  Robustness (IRLS with Huber weights, not
least squares) is the defining feature: isolated workload spikes should
not corrupt the provisioning model.  The linear-in-time form is also why
the technique trails on non-linear, non-seasonal data-center traces
(paper Fig. 2 / Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Predictor
from repro.ml.linear import HuberRegressor

__all__ = ["WoodPredictor"]


class WoodPredictor(Predictor):
    """Online robust linear-trend regression."""

    name = "wood"

    def __init__(self, window: int = 24, delta: float = 1.345):
        if window < 3:
            raise ValueError("window must be >= 3")
        self.window = int(window)
        self.delta = float(delta)
        self.min_history = 3
        self._model: HuberRegressor | None = None
        self._fit_len = 0

    def fit(self, history: np.ndarray) -> "WoodPredictor":
        h = np.asarray(history, dtype=np.float64)
        if len(h) < 3:
            self._model = None
            return self
        seg = h[-self.window :]
        m = len(seg)
        t = np.linspace(0.0, 1.0, m)[:, None]
        model = HuberRegressor(delta=self.delta)
        try:
            model.fit(t, seg)
        except np.linalg.LinAlgError:
            self._model = None
            return self
        self._model = model
        self._fit_len = m
        return self

    def predict_next(self, history: np.ndarray) -> float:
        if self._model is None or len(history) < 3:
            self.fit(history)
        if self._model is None:
            return self._fallback(history)
        m = self._fit_len
        t_next = np.array([[m / (m - 1.0)]])  # one step past the window end
        return float(self._model.predict(t_next)[0])
