"""Windowed ML predictors (Table II, "ML" category).

:class:`WindowedMLPredictor` turns any ``fit/predict`` regressor from
:mod:`repro.ml` into a one-step-ahead forecaster: the history is unrolled
into (lag-window → next value) supervised pairs, the regressor is fit on
them, and the prediction queries the final window.  This is exactly how
prior work (Wrangler, Resource Central, …) framed workload forecasting
as supervised learning.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.baselines.base import Predictor

__all__ = ["WindowedMLPredictor"]


class WindowedMLPredictor(Predictor):
    """Lag-window supervised wrapper around a ``fit/predict`` regressor.

    Parameters
    ----------
    model_factory:
        Zero-argument callable building a fresh regressor (a fresh model
        per :meth:`fit` keeps walk-forward evaluations independent).
    window:
        Number of past JARs in the feature vector.
    max_train:
        Cap on training pairs (most recent kept) so walk-forward over
        long traces stays tractable for O(n^2)–O(n^3) models.
    name:
        Table label.
    """

    def __init__(
        self,
        model_factory: Callable[[], object],
        window: int = 10,
        max_train: int | None = 2000,
        name: str = "ml",
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.model_factory = model_factory
        self.window = int(window)
        self.max_train = max_train
        self.name = name
        self.min_history = self.window + 2
        self._model: object | None = None

    def fit(self, history: np.ndarray) -> "WindowedMLPredictor":
        h = np.asarray(history, dtype=np.float64)
        w = self.window
        if len(h) < w + 1:
            self._model = None
            return self
        X = np.lib.stride_tricks.sliding_window_view(h[:-1], w)
        y = h[w:]
        if self.max_train is not None and len(y) > self.max_train:
            X, y = X[-self.max_train :], y[-self.max_train :]
        model = self.model_factory()
        model.fit(np.ascontiguousarray(X), y)
        self._model = model
        return self

    def predict_next(self, history: np.ndarray) -> float:
        if self._model is None:
            self.fit(history)
        if self._model is None or len(history) < self.window:
            return self._fallback(history)
        q = np.asarray(history[-self.window :], dtype=np.float64)[None, :]
        return float(self._model.predict(q)[0])
