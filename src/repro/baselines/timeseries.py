"""Time-series predictors (Table II, "Time-series" category).

Seven models: WMA, EMA, Holt-Winters DES, Brown's DES, AR, ARMA, ARIMA.
The autoregressive family is implemented from scratch:

* **AR(p)** — ordinary least squares on the lag matrix (conditional MLE
  for Gaussian innovations);
* **ARMA(p, q)** — the Hannan–Rissanen two-stage procedure: a long AR
  fit supplies innovation estimates, then lagged innovations join the
  regression as MA terms;
* **ARIMA(p, d, q)** — d-fold differencing around an ARMA core, with the
  forecast integrated back to the original level.

These cover the modeling techniques the related work (refs [12]–[16],
[31], [32], [37]–[42]) built cloud predictors from.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lstsq

from repro.baselines.base import Predictor

__all__ = [
    "WMAPredictor",
    "EMAPredictor",
    "HoltDESPredictor",
    "BrownDESPredictor",
    "ARPredictor",
    "ARMAPredictor",
    "ARIMAPredictor",
]


class WMAPredictor(Predictor):
    """Linearly-weighted moving average: recent intervals weigh more."""

    name = "wma"

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)

    def predict_next(self, history: np.ndarray) -> float:
        if len(history) == 0:
            return 0.0
        seg = history[-self.window :]
        w = np.arange(1, len(seg) + 1, dtype=np.float64)
        return float(np.dot(seg, w) / w.sum())


class EMAPredictor(Predictor):
    """Exponential moving average with smoothing factor ``alpha``."""

    name = "ema"

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)

    def predict_next(self, history: np.ndarray) -> float:
        if len(history) == 0:
            return 0.0
        # Closed-form EMA over the (short) effective memory: weights decay
        # geometrically, so truncating at ~5/alpha terms is exact to 1e-3.
        k = min(len(history), max(8, int(np.ceil(5.0 / self.alpha))))
        seg = history[-k:]
        w = (1.0 - self.alpha) ** np.arange(len(seg) - 1, -1, -1)
        w *= self.alpha
        w[0] += (1.0 - self.alpha) ** len(seg)  # mass of the truncated tail
        return float(np.dot(seg, w) / w.sum())


class HoltDESPredictor(Predictor):
    """Holt's linear (double-exponential) smoothing: level + trend."""

    name = "holt-des"
    min_history = 2

    def __init__(self, alpha: float = 0.5, beta: float = 0.3):
        if not 0.0 < alpha <= 1.0 or not 0.0 < beta <= 1.0:
            raise ValueError("alpha and beta must be in (0, 1]")
        self.alpha = float(alpha)
        self.beta = float(beta)

    def predict_next(self, history: np.ndarray) -> float:
        n = len(history)
        if n == 0:
            return 0.0
        if n == 1:
            return float(history[0])
        level = float(history[0])
        trend = float(history[1] - history[0])
        for x in history[1:]:
            prev_level = level
            level = self.alpha * float(x) + (1.0 - self.alpha) * (level + trend)
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend
        return level + trend


class BrownDESPredictor(Predictor):
    """Brown's double exponential smoothing (single parameter)."""

    name = "brown-des"
    min_history = 2

    def __init__(self, alpha: float = 0.4):
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = float(alpha)

    def predict_next(self, history: np.ndarray) -> float:
        n = len(history)
        if n == 0:
            return 0.0
        s1 = s2 = float(history[0])
        a = self.alpha
        for x in history[1:]:
            s1 = a * float(x) + (1.0 - a) * s1
            s2 = a * s1 + (1.0 - a) * s2
        level = 2.0 * s1 - s2
        trend = (a / (1.0 - a)) * (s1 - s2)
        return level + trend


def _fit_ar_ols(series: np.ndarray, p: int) -> np.ndarray | None:
    """Least-squares AR(p) coefficients [c, phi_1..phi_p], or None."""
    n = len(series)
    if n < p + 2:
        return None
    # Lag matrix: row t has [1, y_{t-1}, ..., y_{t-p}].
    Y = series[p:]
    cols = [np.ones(n - p)]
    for lag in range(1, p + 1):
        cols.append(series[p - lag : n - lag])
    A = np.column_stack(cols)
    beta, *_ = lstsq(A, Y, lapack_driver="gelsd")
    return beta


def _ar_one_step(series: np.ndarray, beta: np.ndarray, p: int) -> float:
    lags = series[-1 : -p - 1 : -1]  # y_{t}, y_{t-1}, ..., y_{t-p+1}
    return float(beta[0] + np.dot(beta[1:], lags))


class ARPredictor(Predictor):
    """Autoregressive model of order ``p``, refit by OLS."""

    def __init__(self, p: int = 5):
        if p < 1:
            raise ValueError("p must be >= 1")
        self.p = int(p)
        self.name = f"ar({p})"
        self.min_history = p + 2
        self._beta: np.ndarray | None = None

    def fit(self, history: np.ndarray) -> "ARPredictor":
        self._beta = _fit_ar_ols(np.asarray(history, dtype=np.float64), self.p)
        return self

    def predict_next(self, history: np.ndarray) -> float:
        if self._beta is None:
            self.fit(history)
        if self._beta is None or len(history) < self.p:
            return self._fallback(history)
        return _ar_one_step(np.asarray(history, dtype=np.float64), self._beta, self.p)


class ARMAPredictor(Predictor):
    """ARMA(p, q) via the Hannan–Rissanen two-stage estimator."""

    def __init__(self, p: int = 2, q: int = 1, long_ar: int | None = None):
        if p < 1 or q < 0:
            raise ValueError("need p >= 1 and q >= 0")
        self.p = int(p)
        self.q = int(q)
        self.long_ar = long_ar
        self.name = f"arma({p},{q})"
        self.min_history = max(p, q) + (long_ar or self._default_long_ar()) + 2
        self._beta: np.ndarray | None = None
        self._resid_tail: np.ndarray | None = None

    def _default_long_ar(self) -> int:
        return max(10, 2 * (self.p + self.q))

    def fit(self, history: np.ndarray) -> "ARMAPredictor":
        y = np.asarray(history, dtype=np.float64)
        self._beta = None
        m = self.long_ar or self._default_long_ar()
        n = len(y)
        if n < m + max(self.p, self.q) + 2:
            return self
        # Stage 1: long AR to estimate the innovation sequence.
        long_beta = _fit_ar_ols(y, m)
        if long_beta is None:
            return self
        cols = [np.ones(n - m)]
        for lag in range(1, m + 1):
            cols.append(y[m - lag : n - lag])
        resid = y[m:] - np.column_stack(cols) @ long_beta  # e_t for t >= m
        # Stage 2: regress y_t on p lags of y and q lags of e.
        p, q = self.p, self.q
        start = m + max(p, q)  # first t with all regressors available
        if n - start < p + q + 2:
            return self
        Y = y[start:]
        cols2 = [np.ones(n - start)]
        for lag in range(1, p + 1):
            cols2.append(y[start - lag : n - lag])
        for lag in range(1, q + 1):
            # resid[t - m] corresponds to e_t
            cols2.append(resid[start - lag - m : n - lag - m])
        A = np.column_stack(cols2)
        beta, *_ = lstsq(A, Y, lapack_driver="gelsd")
        self._beta = beta
        # Keep the last q innovations for forecasting.
        fitted = A @ beta
        e = Y - fitted
        self._resid_tail = e[-max(q, 1) :] if q > 0 else np.empty(0)
        return self

    def predict_next(self, history: np.ndarray) -> float:
        if self._beta is None:
            self.fit(history)
        y = np.asarray(history, dtype=np.float64)
        if self._beta is None or len(y) < self.p:
            return self._fallback(history)
        p, q = self.p, self.q
        val = float(self._beta[0])
        val += float(np.dot(self._beta[1 : p + 1], y[-1 : -p - 1 : -1]))
        if q > 0 and self._resid_tail is not None and len(self._resid_tail) >= q:
            val += float(np.dot(self._beta[p + 1 :], self._resid_tail[::-1][:q]))
        return val


class ARIMAPredictor(Predictor):
    """ARIMA(p, d, q): difference d times, ARMA forecast, integrate back."""

    def __init__(self, p: int = 2, d: int = 1, q: int = 1):
        if d < 0:
            raise ValueError("d must be >= 0")
        self.p = int(p)
        self.d = int(d)
        self.q = int(q)
        self.name = f"arima({p},{d},{q})"
        self._core = ARMAPredictor(p, q)
        self.min_history = self._core.min_history + d

    def fit(self, history: np.ndarray) -> "ARIMAPredictor":
        y = np.asarray(history, dtype=np.float64)
        self._core.fit(np.diff(y, n=self.d) if self.d else y)
        return self

    def predict_next(self, history: np.ndarray) -> float:
        y = np.asarray(history, dtype=np.float64)
        if len(y) <= self.d:
            return self._fallback(history)
        diffed = np.diff(y, n=self.d) if self.d else y
        if len(diffed) < 1:
            return self._fallback(history)
        delta = self._core.predict_next(diffed)
        # Integrate: forecast of the d-th difference plus the reconstruction
        # from the last values of each lower-order difference.
        val = delta
        for k in range(self.d - 1, -1, -1):
            last = np.diff(y, n=k)[-1] if k else y[-1]
            val = float(last) + val
        return val
