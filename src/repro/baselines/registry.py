"""Factories for all baseline predictors, including CloudInsight's pool.

Table II of the paper enumerates the 21 predictors inside CloudInsight:

===========  ==================================================================
Category     Predictors
===========  ==================================================================
Naive (2)    mean, kNN
Regression   local & global x linear, quadratic, cubic            (6)
Time-series  WMA, EMA, Holt-Winters DES, Brown's DES, AR, ARMA, ARIMA (7)
ML (6)       linear SVM, Gaussian SVM, decision tree, random forest,
             gradient boosting, extra trees
===========  ==================================================================

:func:`cloudinsight_pool` builds exactly those 21.  A ``fast`` profile
shrinks the expensive ensemble members (fewer trees, capped training
windows) so walk-forward evaluation over 14 workload configurations
stays laptop-tractable; the ``paper`` profile uses fuller settings.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.base import Predictor
from repro.baselines.ml import WindowedMLPredictor
from repro.baselines.naive import KNNPredictor, MeanPredictor
from repro.baselines.regression import PolynomialTrendPredictor
from repro.baselines.timeseries import (
    ARIMAPredictor,
    ARMAPredictor,
    ARPredictor,
    BrownDESPredictor,
    EMAPredictor,
    HoltDESPredictor,
    WMAPredictor,
)
from repro.baselines.seasonal import HoltWintersSeasonalPredictor
from repro.baselines.wood import WoodPredictor
from repro.ml import (
    DecisionTreeRegressor,
    ExtraTreesRegressor,
    GradientBoostingRegressor,
    KernelSVR,
    LinearSVR,
    RandomForestRegressor,
)

__all__ = ["cloudinsight_pool", "make_baseline", "list_baselines"]

_PROFILES = ("fast", "paper")


def _ml_members(profile: str, window: int) -> list[Predictor]:
    """The six Table II ML predictors, sized per profile."""
    if profile == "paper":
        trees, max_train = 50, 2000
    else:
        trees, max_train = 8, 300
    gb_estimators = 100 if profile == "paper" else 25
    specs: list[tuple[str, Callable[[], object]]] = [
        ("svr-linear", lambda: LinearSVR(C=1.0, epsilon=0.05)),
        ("svr-gaussian", lambda: KernelSVR(C=10.0, epsilon=0.05, max_samples=300)),
        ("decision-tree", lambda: DecisionTreeRegressor(max_depth=8, min_samples_leaf=3)),
        (
            "random-forest",
            lambda: RandomForestRegressor(n_estimators=trees, max_depth=10, seed=7),
        ),
        (
            "gradient-boosting",
            lambda: GradientBoostingRegressor(
                n_estimators=gb_estimators, max_depth=3, seed=7
            ),
        ),
        (
            "extra-trees",
            lambda: ExtraTreesRegressor(n_estimators=trees, max_depth=10, seed=7),
        ),
    ]
    return [
        WindowedMLPredictor(factory, window=window, max_train=max_train, name=name)
        for name, factory in specs
    ]


def cloudinsight_pool(profile: str = "fast", window: int = 8) -> list[Predictor]:
    """Build the 21-predictor CloudInsight council (Table II)."""
    if profile not in _PROFILES:
        raise ValueError(f"profile must be one of {_PROFILES}")
    pool: list[Predictor] = [
        # Naive (2)
        MeanPredictor(window=10),
        KNNPredictor(k=5, window=window),
        # Regression (6)
        PolynomialTrendPredictor(1, "local"),
        PolynomialTrendPredictor(2, "local"),
        PolynomialTrendPredictor(3, "local"),
        PolynomialTrendPredictor(1, "global"),
        PolynomialTrendPredictor(2, "global"),
        PolynomialTrendPredictor(3, "global"),
        # Time-series (7)
        WMAPredictor(window=10),
        EMAPredictor(alpha=0.3),
        HoltDESPredictor(alpha=0.5, beta=0.3),
        BrownDESPredictor(alpha=0.4),
        ARPredictor(p=5),
        ARMAPredictor(p=2, q=1),
        ARIMAPredictor(p=2, d=1, q=1),
    ]
    pool.extend(_ml_members(profile, window))
    assert len(pool) == 21, f"CloudInsight pool must have 21 members, got {len(pool)}"
    return pool


def _baseline_factories() -> dict[str, Callable[[], Predictor]]:
    from repro.baselines.cloudinsight import CloudInsight
    from repro.baselines.cloudscale import CloudScale

    factories: dict[str, Callable[[], Predictor]] = {
        "mean": lambda: MeanPredictor(window=10),
        "knn": lambda: KNNPredictor(),
        "wma": lambda: WMAPredictor(),
        "ema": lambda: EMAPredictor(),
        "holt-des": lambda: HoltDESPredictor(),
        "brown-des": lambda: BrownDESPredictor(),
        "ar": lambda: ARPredictor(),
        "arma": lambda: ARMAPredictor(),
        "arima": lambda: ARIMAPredictor(),
        "cloudinsight": lambda: CloudInsight(),
        "cloudscale": lambda: CloudScale(),
        "wood": lambda: WoodPredictor(),
        "holt-winters-seasonal": lambda: HoltWintersSeasonalPredictor(period=48),
    }
    for degree in (1, 2, 3):
        for scope in ("local", "global"):
            factories[f"{scope}-poly{degree}"] = (
                lambda d=degree, s=scope: PolynomialTrendPredictor(d, s)
            )
    for member in _ml_members("fast", window=8):
        factories[member.name] = (
            lambda n=member.name: next(
                m for m in _ml_members("fast", window=8) if m.name == n
            )
        )
    return factories


def list_baselines() -> list[str]:
    """Names accepted by :func:`make_baseline`."""
    return sorted(_baseline_factories())


def make_baseline(name: str) -> Predictor:
    """Instantiate a baseline predictor by name."""
    factories = _baseline_factories()
    if name not in factories:
        raise ValueError(f"unknown baseline {name!r}; choose from {sorted(factories)}")
    return factories[name]()
