"""Error and provisioning metrics used throughout the reproduction.

The paper reports prediction accuracy as MAPE (Section IV-A):

    MAPE = 100/n * sum_i | (P_i - J_i) / J_i |

and the auto-scaling case study (Section IV-C) reports average job
turnaround time plus VM under- and over-provisioning rates.  All metric
functions here are pure, vectorized, and guard the degenerate cases that
real JAR series produce (zero-valued intervals, empty windows).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mape",
    "smape",
    "mae",
    "rmse",
    "mse",
    "absolute_percentage_errors",
    "underprovision_rate",
    "overprovision_rate",
]


def _as_pair(predicted, actual) -> tuple[np.ndarray, np.ndarray]:
    """Validate and broadcast a (predicted, actual) pair to 1-D float arrays."""
    p = np.asarray(predicted, dtype=np.float64).ravel()
    a = np.asarray(actual, dtype=np.float64).ravel()
    if p.shape != a.shape:
        raise ValueError(
            f"predicted and actual must have the same length, got {p.shape} vs {a.shape}"
        )
    if p.size == 0:
        raise ValueError("metric undefined for empty arrays")
    return p, a


def absolute_percentage_errors(
    predicted, actual, *, eps: float = 1e-12
) -> np.ndarray:
    """Per-interval absolute percentage errors, in percent.

    Intervals whose actual JAR is (numerically) zero are excluded by the
    caller-visible contract of :func:`mape`; here they yield ``nan`` so the
    caller can decide.  ``eps`` guards exact division by zero.
    """
    p, a = _as_pair(predicted, actual)
    out = np.full(p.shape, np.nan)
    nz = np.abs(a) > eps
    out[nz] = 100.0 * np.abs((p[nz] - a[nz]) / a[nz])
    return out


def mape(predicted, actual) -> float:
    """Mean absolute percentage error in percent (paper's accuracy metric).

    Zero-valued actual intervals are skipped (they make the percentage
    error undefined); if *all* intervals are zero a ``ValueError`` is
    raised rather than returning a silent 0.
    """
    errs = absolute_percentage_errors(predicted, actual)
    valid = ~np.isnan(errs)
    if not valid.any():
        raise ValueError("MAPE undefined: all actual values are zero")
    return float(np.mean(errs[valid]))


def smape(predicted, actual) -> float:
    """Symmetric MAPE in percent; bounded in [0, 200].

    Not used by the paper's headline numbers but handy as a robust
    secondary metric for small-JAR configurations.
    """
    p, a = _as_pair(predicted, actual)
    denom = (np.abs(p) + np.abs(a)) / 2.0
    mask = denom > 1e-12
    if not mask.any():
        return 0.0
    return float(100.0 * np.mean(np.abs(p[mask] - a[mask]) / denom[mask]))


def mae(predicted, actual) -> float:
    """Mean absolute error."""
    p, a = _as_pair(predicted, actual)
    return float(np.mean(np.abs(p - a)))


def mse(predicted, actual) -> float:
    """Mean squared error (the LSTM training loss, Section IV-A)."""
    p, a = _as_pair(predicted, actual)
    return float(np.mean((p - a) ** 2))


def rmse(predicted, actual) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(predicted, actual)))


def underprovision_rate(provisioned, required) -> float:
    """Average VM under-provisioning rate in percent (Section IV-C).

    Per interval the shortfall ``max(J_i - P_i, 0)`` is expressed as a
    percentage of the actually required VMs ``J_i``; intervals with no
    arrivals contribute zero shortfall.
    """
    p, r = _as_pair(provisioned, required)
    shortfall = np.maximum(r - p, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        rate = np.where(r > 0, shortfall / r, 0.0)
    return float(100.0 * np.mean(rate))


def overprovision_rate(provisioned, required) -> float:
    """Average VM over-provisioning rate in percent (Section IV-C).

    Per interval the surplus ``max(P_i - J_i, 0)`` is expressed as a
    percentage of the required VMs; when nothing was required the surplus
    is measured against 1 VM to keep the rate finite.
    """
    p, r = _as_pair(provisioned, required)
    surplus = np.maximum(p - r, 0.0)
    denom = np.maximum(r, 1.0)
    return float(100.0 * np.mean(surplus / denom))
