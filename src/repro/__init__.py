"""LoadDynamics reproduction — self-optimized cloud workload prediction.

A full, from-scratch reproduction of *"A Self-Optimized Generic Workload
Prediction Framework for Cloud Computing"* (Jayakumar, Kim, Lee, Wang —
IPDPS 2020) on numpy/scipy only.

Quickstart::

    import numpy as np
    from repro import LoadDynamics, FrameworkSettings, search_space_for
    from repro.traces import get_configuration

    series = get_configuration("gl-30m").load()          # a JAR series
    ld = LoadDynamics(space=search_space_for("gl", "reduced"),
                      settings=FrameworkSettings.reduced())
    predictor, report = ld.fit(series)                   # Fig. 6 workflow
    next_jar = predictor.predict_next(series)            # one step ahead

Subpackages (see DESIGN.md for the full inventory):

=====================  ====================================================
``repro.core``         LoadDynamics itself (LSTM + BO self-optimization)
``repro.nn``           from-scratch LSTM/dense/Adam substrate
``repro.gp``           Gaussian-process regression substrate
``repro.bayesopt``     BO / random / grid hyperparameter search
``repro.ml``           classical-ML substrate (trees, SVR, robust LR, …)
``repro.baselines``    CloudInsight (21 experts), CloudScale, Wood et al.
``repro.traces``       synthetic stand-ins for the five public traces
``repro.autoscale``    cloud simulator + predictive auto-scaling policies
``repro.serving``      serving robustness: sanitizer, guard, breaker
``repro.experiments``  one runner per paper table/figure
``repro.obs``          observability: events, metrics, spans, loggers
=====================  ====================================================
"""

from repro import obs
from repro.core import (
    FrameworkSettings,
    LoadDynamics,
    LoadDynamicsPredictor,
    LSTMHyperparameters,
    search_space_for,
)
from repro.metrics import mae, mape, mse, rmse, smape

__version__ = "1.0.0"

__all__ = [
    "LoadDynamics",
    "LoadDynamicsPredictor",
    "LSTMHyperparameters",
    "FrameworkSettings",
    "search_space_for",
    "mape",
    "smape",
    "mae",
    "mse",
    "rmse",
    "obs",
    "__version__",
]
