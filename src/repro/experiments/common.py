"""Shared plumbing for experiment runners.

All accuracy numbers follow the paper's protocol (Section IV-A/B): the
last 20% of each workload configuration is the test set, predicted one
interval ahead with no lookahead, scored by MAPE.

``max_eval`` caps how many test intervals are scored (most recent kept)
so walk-forward baselines with expensive refits (CloudInsight rebuilds
21 models every 5 intervals) stay tractable on 6000-interval 5-minute
traces; the *same* cap is applied to every method in a comparison, so
rankings are computed on identical targets.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import make_baseline, walk_forward
from repro.core import FrameworkSettings, LoadDynamics, LoadDynamicsPredictor, search_space_for
from repro.core.framework import FitReport
from repro.metrics import mape

__all__ = [
    "test_start_index",
    "evaluate_on_test",
    "baseline_test_mape",
    "fit_loaddynamics",
    "format_table",
]

TRAIN_FRAC = 0.6
VAL_FRAC = 0.2


def test_start_index(n: int, max_eval: int | None = None) -> int:
    """First index of the evaluated test window for a series of length n."""
    start = int(round((TRAIN_FRAC + VAL_FRAC) * n))
    if max_eval is not None and n - start > max_eval:
        start = n - max_eval
    return start


def evaluate_on_test(
    predictions: np.ndarray, series: np.ndarray, start: int
) -> float:
    """MAPE of one-step predictions against ``series[start:]``."""
    return mape(predictions, series[start:])


def baseline_test_mape(
    name: str,
    series: np.ndarray,
    max_eval: int | None = None,
    refit_every: int | None = None,
) -> float:
    """Walk a named baseline over the test window and score it.

    ``refit_every`` defaults to 1 for CloudInsight (its council
    bookkeeping is per-interval) and 5 for other model-based predictors.
    """
    predictor = make_baseline(name)
    if refit_every is None:
        refit_every = 1 if name == "cloudinsight" else 5
    start = test_start_index(len(series), max_eval)
    preds = walk_forward(predictor, series, start, refit_every=refit_every)
    return evaluate_on_test(preds, series, start)


def fit_loaddynamics(
    series: np.ndarray,
    trace_name: str,
    budget: str = "reduced",
    settings: FrameworkSettings | None = None,
    max_eval: int | None = None,
) -> tuple[LoadDynamicsPredictor, FitReport, float]:
    """Run the full LoadDynamics workflow and score the test window.

    Returns (predictor, fit report, test MAPE).
    """
    if settings is None:
        settings = FrameworkSettings.reduced()
    ld = LoadDynamics(space=search_space_for(trace_name, budget), settings=settings)
    predictor, report = ld.fit(series)
    start = test_start_index(len(series), max_eval)
    preds = predictor.predict_series(series, start)
    return predictor, report, evaluate_on_test(preds, series, start)


def format_table(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render row dicts as an aligned text table (benches print these)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: list[list[str]] = [[str(c) for c in columns]]
    for row in rows:
        cells = []
        for c in columns:
            v = row.get(c, "")
            cells.append(f"{v:.2f}" if isinstance(v, float) else str(v))
        rendered.append(cells)
    widths = [max(len(r[j]) for r in rendered) for j in range(len(columns))]
    lines = []
    for i, r in enumerate(rendered):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths, strict=True)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
