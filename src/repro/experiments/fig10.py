"""Fig. 10 — auto-scaling case study (Azure 60-minute, JARs ÷ 100).

Reproduces Section IV-C on the simulator substrate: the Azure 60-minute
configuration, scaled down 100x (the paper's quota-driven scale-down,
keeping every interval under ~50 VMs), drives a predictive auto-scaling
policy under each predictor.  Three panels per policy: average job
turnaround, VM under-provisioning rate, VM over-provisioning rate.

Expected shape: LoadDynamics < CloudInsight < Wood on turnaround and on
both provisioning rates; the oracle bounds everything from below.
"""

from __future__ import annotations

import numpy as np

from repro.autoscale import (
    CloudSimulator,
    OraclePolicy,
    ReactivePolicy,
    VMSpec,
    provisioning_schedule,
    summarize,
)
from repro.baselines import make_baseline
from repro.core import FrameworkSettings
from repro.experiments.common import fit_loaddynamics, test_start_index
from repro.traces import get_configuration

__all__ = ["run_fig10"]


def run_fig10(
    budget: str = "reduced",
    settings: FrameworkSettings | None = None,
    scale_down: float = 5.0,
    max_eval: int | None = 150,
    vm_spec: VMSpec | None = None,
    baselines: tuple[str, ...] = ("cloudinsight", "wood"),
    include_reference_policies: bool = True,
    seed: int = 0,
) -> list[dict]:
    """Simulate the Fig. 10 policies; one summary row per policy."""
    if settings is None:
        # Fig. 10 is a single workload, so afford LoadDynamics a larger
        # slice of the paper's maxIters=100 budget than the 14-config sweep.
        settings = FrameworkSettings.reduced(max_iters=24, epochs=60)
    series = get_configuration("az-60m").load()
    # Paper: the Azure JARs were "scaled down by 100 times so that at
    # each interval there were less than 50 jobs".  Our synthetic Azure
    # trace is smaller in absolute terms than the real one, so the
    # default divisor of 5 lands in the same <50-VMs-per-interval regime
    # the paper targeted.
    arrivals = np.round(series / scale_down)
    start = test_start_index(len(arrivals), max_eval)
    sim = CloudSimulator(spec=vm_spec, seed=seed)
    actual = arrivals[start:]
    rows: list[dict] = []

    # LoadDynamics: fit on the scaled series, then schedule ahead.
    predictor, _, _ = fit_loaddynamics(
        arrivals, "az", budget=budget, settings=settings, max_eval=max_eval
    )
    schedule = np.ceil(np.maximum(predictor.predict_series(arrivals, start), 0.0))
    rows.append(summarize("loaddynamics", sim.run(actual, schedule)).as_dict())

    for name in baselines:
        pred = make_baseline(name)
        refit = 1 if name == "cloudinsight" else 5
        schedule = provisioning_schedule(pred, arrivals, start, refit_every=refit)
        rows.append(summarize(name, sim.run(actual, schedule)).as_dict())

    if include_reference_policies:
        for policy in (ReactivePolicy(), OraclePolicy()):
            schedule = policy.schedule(arrivals, start)
            rows.append(summarize(policy.name, sim.run(actual, schedule)).as_dict())
    return rows
