"""Fig. 5 — hyperparameter sensitivity of LSTM models on Google.

The paper trains 100 LSTM models with different hyperparameter
combinations on the Google workload and shows a ~3x spread between the
best and worst MAPE — the motivation for automatic tuning.

We reproduce the experiment by sampling ``n_models`` hyperparameter sets
uniformly from the (reduced) Table III space, training each on the
Google 30-minute configuration, and reporting the cross-validation MAPE
distribution.  The headline statistic is ``max/min`` — the factor
separating a lucky choice from an unlucky one.
"""

from __future__ import annotations

import numpy as np

from repro.core import FrameworkSettings, search_space_for
from repro.core.data import prepare_data
from repro.core.evaluation import TrialEvaluator
from repro.models import get_family
from repro.traces import get_configuration

__all__ = ["run_fig5"]


def run_fig5(
    n_models: int = 100,
    workload: str = "gl-30m",
    budget: str = "reduced",
    settings: FrameworkSettings | None = None,
    seed: int = 0,
) -> dict:
    """Train ``n_models`` randomly-configured LSTMs; return the MAPE spread.

    Returns a dict with the sorted per-model MAPEs plus summary stats
    (min, median, max, max/min ratio).
    """
    if n_models < 2:
        raise ValueError("n_models must be >= 2")
    series = get_configuration(workload).load()
    trace = workload.split("-")[0]
    space = search_space_for(trace, budget)
    if settings is None:
        # No early stopping here: Fig. 5 measures how much the
        # hyperparameters themselves matter, so every sample trains for
        # the same fixed number of epochs (early stopping would let the
        # validation set rescue bad configurations and compress the
        # spread the figure exists to show).
        settings = FrameworkSettings.reduced(max_iters=1, epochs=15, patience=10_000)

    # Use the trial-evaluation stage directly so each sample costs
    # exactly one training run (no BO machinery); the shared window
    # cache makes repeated history lengths free.
    data = prepare_data(series, settings)
    evaluator = TrialEvaluator(get_family("lstm"), settings)

    rng = np.random.default_rng(seed)
    configs = space.sample(rng, n_models)
    mapes: list[float] = []
    for config in configs:
        value, model, _meta = evaluator.evaluate(
            data.scaled, data.raw, data.scaler, config,
            data.i_train_end, data.i_val_end, window_cache=data.window_cache,
        )
        if model is not None:
            mapes.append(value)
    if len(mapes) < 2:
        raise RuntimeError("too few feasible hyperparameter samples")
    arr = np.sort(np.array(mapes))
    return {
        "workload": workload,
        "n_feasible": len(arr),
        "mapes_sorted": arr,
        "min": float(arr[0]),
        "median": float(np.median(arr)),
        "max": float(arr[-1]),
        "spread_ratio": float(arr[-1] / max(arr[0], 1e-12)),
    }
