"""Markdown report generation from experiment results.

Turns runner outputs into the EXPERIMENTS.md-style artifacts so a full
reproduction run can be archived as one document:

* :func:`rows_to_markdown` — row dicts → GitHub-flavoured table;
* :func:`fig9_report` — Fig. 9 rows + average + Table IV in one section;
* :func:`full_report` — stitch arbitrary named sections into a document.
"""

from __future__ import annotations

from repro.experiments.fig9 import Fig9Result
from repro.experiments.table4 import run_table4

__all__ = ["rows_to_markdown", "fig9_report", "full_report"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def rows_to_markdown(rows: list[dict], columns: list[str] | None = None) -> str:
    """Render row dicts as a GitHub-flavoured markdown table."""
    if not rows:
        return "*(no rows)*"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = [
        "| " + " | ".join(_fmt(row.get(c, "")) for c in columns) + " |"
        for row in rows
    ]
    return "\n".join([header, rule, *body])


def fig9_report(result: Fig9Result, title: str = "Fig. 9 — accuracy") -> str:
    """One markdown section: per-configuration MAPEs, the average row,
    and the Table IV hyperparameter ranges derived from the same runs."""
    if not result.rows:
        raise ValueError("empty Fig9Result")
    parts = [f"## {title}", ""]
    parts.append(rows_to_markdown(result.rows + [result.average_row()]))
    parts.append("")
    parts.append("### Table IV — selected hyperparameter ranges")
    parts.append("")
    parts.append(rows_to_markdown(run_table4(result)))
    return "\n".join(parts)


def full_report(sections: dict[str, str], title: str = "Reproduction report") -> str:
    """Stitch named markdown sections into one document."""
    parts = [f"# {title}", ""]
    for name, body in sections.items():
        if not body.lstrip().startswith("#"):
            parts.append(f"## {name}")
            parts.append("")
        parts.append(body)
        parts.append("")
    return "\n".join(parts)
