"""Experiment runners — one per table/figure of the paper's evaluation.

Each runner returns plain row dicts (printable with
:func:`repro.experiments.common.format_table`) so the pytest-benchmark
harnesses in ``benchmarks/`` and the EXPERIMENTS.md generator share one
code path.  Budgets are explicit arguments; the defaults are the
CI-scale settings documented in DESIGN.md §6.

* :mod:`fig2` — motivation: prior predictors on Google/Facebook/Wiki
* :mod:`fig5` — LSTM hyperparameter sensitivity on Google
* :mod:`fig9` — the headline 14-configuration accuracy comparison
* :mod:`table4` — min–max of BO-selected hyperparameters per trace
* :mod:`fig10` — auto-scaling case study on Azure-60m
* :mod:`ablations` — BO vs random vs grid; acquisition functions;
  model families
"""

from repro.experiments.common import (
    baseline_test_mape,
    evaluate_on_test,
    fit_loaddynamics,
    format_table,
    test_start_index,
)
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig9 import Fig9Result, run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.table4 import run_table4
from repro.experiments.ablations import (
    run_acquisition_ablation,
    run_family_ablation,
    run_search_ablation,
)

__all__ = [
    "run_fig2",
    "run_fig5",
    "run_fig9",
    "Fig9Result",
    "run_table4",
    "run_fig10",
    "run_search_ablation",
    "run_acquisition_ablation",
    "run_family_ablation",
    "fit_loaddynamics",
    "baseline_test_mape",
    "evaluate_on_test",
    "test_start_index",
    "format_table",
]
