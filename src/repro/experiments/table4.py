"""Table IV — min/max of the hyperparameters LoadDynamics selected.

The paper reports, per trace, the minimum and maximum value of each
tuned hyperparameter across that trace's interval configurations,
showing (a) high variation → manual tuning is impractical, and (b)
selected values sit below the search-space maxima → the space is large
enough.

This runner consumes the :class:`~repro.experiments.fig9.Fig9Result`
fit reports so Table IV comes from the same runs as Fig. 9 (as in the
paper).
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.fig9 import Fig9Result

__all__ = ["run_table4"]

_FIELDS = ("history_len", "cell_size", "num_layers", "batch_size")


def run_table4(fig9_result: Fig9Result) -> list[dict]:
    """Aggregate per-trace min–max of the BO-selected hyperparameters."""
    if not fig9_result.reports:
        raise ValueError("fig9_result has no fit reports")
    per_trace: dict[str, list] = defaultdict(list)
    for key, report in fig9_result.reports.items():
        trace = key.split("-")[0]
        per_trace[trace].append(report.best_hyperparameters)
    rows: list[dict] = []
    for trace, hps in sorted(per_trace.items()):
        row: dict = {"workload": trace, "n_configs": len(hps)}
        for f in _FIELDS:
            values = [getattr(h, f) for h in hps]
            row[f] = f"{min(values)}-{max(values)}"
        rows.append(row)
    return rows
