"""Fig. 2 — motivation: prior predictors miss on diverse workloads.

The paper's Fig. 2 shows MAPE of CloudInsight, CloudScale and Wood et
al. on the Google, Facebook and Wikipedia traces: none stays below 50%
error on *all* three, and the seasonal-pattern methods (CloudScale,
Wood) blow up on the non-seasonal data-center traces.

Expected shape here: CloudScale/Wood do fine on Wikipedia (strong
seasonality) but degrade on Google/Facebook; CloudInsight is more even
but not uniformly strong.
"""

from __future__ import annotations

from repro.experiments.common import baseline_test_mape
from repro.traces import get_configuration

__all__ = ["run_fig2", "FIG2_WORKLOADS", "FIG2_PREDICTORS"]

#: The three Fig. 1 workloads at the intervals Fig. 1 displays them.
FIG2_WORKLOADS = ("gl-30m", "fb-10m", "wiki-30m")
FIG2_PREDICTORS = ("cloudinsight", "cloudscale", "wood")


def run_fig2(max_eval: int | None = 150) -> list[dict]:
    """MAPE of the three prior predictors on the three Fig. 1 workloads.

    Returns one row per workload with a column per predictor.
    """
    rows: list[dict] = []
    for key in FIG2_WORKLOADS:
        series = get_configuration(key).load()
        row: dict = {"workload": key}
        for name in FIG2_PREDICTORS:
            row[name] = baseline_test_mape(name, series, max_eval=max_eval)
        rows.append(row)
    return rows
