"""Fig. 9 — the headline accuracy comparison over 14 configurations.

For every workload configuration (Table I) this runner scores:

* **LoadDynamics** — the full Fig. 6 workflow (BO over Table III space);
* **CloudInsight**, **CloudScale**, **Wood et al.** — the three prior
  frameworks;
* **LSTMBruteForce** — exhaustive search over a shuffled grid of the
  same space (the paper ran this for up to six weeks per workload; the
  ``brute_force_trials`` budget truncates it honestly — see DESIGN.md §6).

Expected shape (paper Section IV-B): LoadDynamics lowest on average and
within ~1% of brute force; errors rise at small intervals for the
small-JAR traces (FB, Azure, LCG); Wikipedia easiest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.bayesopt.grid_search import GridSearch
from repro.core import FrameworkSettings, LoadDynamics, search_space_for
from repro.core.framework import FitReport
from repro.experiments.common import (
    baseline_test_mape,
    evaluate_on_test,
    test_start_index,
)
from repro.obs.logging import get_logger
from repro.traces import ALL_CONFIGURATIONS, get_configuration

__all__ = ["run_fig9", "Fig9Result"]

logger = get_logger("experiments.fig9")

BASELINES = ("cloudinsight", "cloudscale", "wood")


@dataclass
class Fig9Result:
    """Rows plus the per-config LoadDynamics fit reports (feeds Table IV)."""

    rows: list[dict] = field(default_factory=list)
    reports: dict[str, FitReport] = field(default_factory=dict)

    def average_row(self) -> dict:
        """The "AVG" bar of Fig. 9b."""
        if not self.rows:
            raise RuntimeError("no rows")
        keys = [k for k in self.rows[0] if k != "workload"]
        avg: dict = {"workload": "AVG"}
        for k in keys:
            vals = [r[k] for r in self.rows if np.isfinite(r.get(k, np.nan))]
            avg[k] = float(np.mean(vals)) if vals else float("nan")
        return avg


def _brute_force_mape(
    series: np.ndarray,
    trace: str,
    budget: str,
    settings: FrameworkSettings,
    trials: int,
    max_eval: int | None,
) -> float:
    """LSTMBruteForce: grid search over the same space, same trainer."""
    space = search_space_for(trace, budget)
    ld = LoadDynamics(
        space=space,
        settings=settings,
        optimizer_cls=GridSearch,
        optimizer_kwargs={"points_per_dim": 3, "shuffle": True, "seed": 1},
    )
    # GridSearch.run caps at the grid size internally.
    saved = settings.max_iters
    settings.max_iters = trials
    try:
        predictor, _ = ld.fit(series)
    finally:
        settings.max_iters = saved
    start = test_start_index(len(series), max_eval)
    preds = predictor.predict_series(series, start)
    return evaluate_on_test(preds, series, start)


def run_fig9(
    configurations: list[str] | None = None,
    budget: str = "reduced",
    settings: FrameworkSettings | None = None,
    brute_force_trials: int = 16,
    max_eval: int | None = 150,
    include_brute_force: bool = True,
    verbose: bool = False,
) -> Fig9Result:
    """Score every method on every configuration.

    ``configurations`` defaults to all 14 Table I keys; pass a subset for
    quick runs.  ``max_eval`` caps the scored test window per config
    (identical targets for all methods).
    """
    if configurations is None:
        configurations = [c.key for c in ALL_CONFIGURATIONS]
    result = Fig9Result()
    for key in configurations:
        t0 = time.perf_counter()
        series = get_configuration(key).load()
        trace = key.split("-")[0]
        per_cfg_settings = (
            settings if settings is not None else FrameworkSettings.reduced()
        )
        from repro.experiments.common import fit_loaddynamics

        predictor, report, ld_mape = fit_loaddynamics(
            series, trace, budget=budget, settings=per_cfg_settings, max_eval=max_eval
        )
        row: dict = {"workload": key, "loaddynamics": ld_mape}
        result.reports[key] = report
        for name in BASELINES:
            row[name] = baseline_test_mape(name, series, max_eval=max_eval)
        if include_brute_force:
            row["lstm_bruteforce"] = _brute_force_mape(
                series, trace, budget, per_cfg_settings, brute_force_trials, max_eval
            )
        result.rows.append(row)
        log = logger.info if verbose else logger.debug
        log("[fig9] %s: %s (%.1fs)", key, row, time.perf_counter() - t0)
    return result
