"""Ablations for the design choices DESIGN.md §7 calls out.

* :func:`run_search_ablation` — BO vs random vs grid search under an
  equal trial budget (paper Section III-A: grid was less effective; random
  matched accuracy but took longer — here wall time per trial is identical,
  so we report best-found error *and* the iteration at which it was found,
  the paper's effective-time argument).
* :func:`run_acquisition_ablation` — EI (paper) vs PI vs LCB.
* :func:`run_family_ablation` — the same self-optimization loop over
  different model families (the framework's "generic" claim made
  measurable: only the family changes, the workflow does not).
"""

from __future__ import annotations

import time

from repro.bayesopt.grid_search import GridSearch
from repro.bayesopt.optimizer import BayesianOptimizer
from repro.bayesopt.random_search import RandomSearch
from repro.core import FrameworkSettings, LoadDynamics, search_space_for
from repro.experiments.common import test_start_index, evaluate_on_test
from repro.traces import get_configuration

__all__ = [
    "run_search_ablation",
    "run_acquisition_ablation",
    "run_family_ablation",
]


def _fit_and_score(
    ld: LoadDynamics, series, max_eval: int | None
) -> tuple[float, float, int, float]:
    """(val mape, test mape, best-found-at iteration, seconds)."""
    t0 = time.perf_counter()
    predictor, report = ld.fit(series)
    elapsed = time.perf_counter() - t0
    start = test_start_index(len(series), max_eval)
    preds = predictor.predict_series(series, start)
    test = evaluate_on_test(preds, series, start)
    best_iter = int(min(range(len(report.trials)), key=lambda i: report.trials[i].value))
    return report.best_validation_mape, test, best_iter, elapsed


def run_search_ablation(
    workload: str = "gl-30m",
    budget: str = "reduced",
    n_iters: int = 12,
    settings: FrameworkSettings | None = None,
    max_eval: int | None = 150,
) -> list[dict]:
    """BO vs random vs grid with the same trial budget on one workload."""
    series = get_configuration(workload).load()
    trace = workload.split("-")[0]
    space_args = (trace, budget)
    if settings is None:
        settings = FrameworkSettings.reduced(max_iters=n_iters)
    else:
        settings.max_iters = n_iters
    rows: list[dict] = []
    optimizers = [
        ("bayesian", BayesianOptimizer, {"n_initial": max(2, n_iters // 4), "seed": 0}),
        ("random", RandomSearch, {"seed": 0}),
        ("grid", GridSearch, {"points_per_dim": 3, "shuffle": True, "seed": 0}),
    ]
    for name, cls, kwargs in optimizers:
        ld = LoadDynamics(
            space=search_space_for(*space_args),
            settings=settings,
            optimizer_cls=cls,
            optimizer_kwargs=kwargs,
        )
        val, test, best_iter, secs = _fit_and_score(ld, series, max_eval)
        rows.append(
            {
                "optimizer": name,
                "val_mape": val,
                "test_mape": test,
                "best_found_at_iter": best_iter,
                "seconds": secs,
            }
        )
    return rows


def run_family_ablation(
    workload: str = "gl-30m",
    budget: str = "reduced",
    n_iters: int = 12,
    families: tuple[str, ...] = ("lstm", "gru", "gbr", "svr"),
    settings: FrameworkSettings | None = None,
    max_eval: int | None = 150,
) -> list[dict]:
    """One BO run per model family with identical budgets on one workload.

    Everything but the family (search space + trial training) is held
    fixed — same optimizer, seed, split, and iteration budget — so the
    rows isolate what the model *kind* contributes.
    """
    series = get_configuration(workload).load()
    trace = workload.split("-")[0]
    rows: list[dict] = []
    for family in families:
        s = settings if settings is not None else FrameworkSettings.reduced(max_iters=n_iters)
        s.max_iters = n_iters
        ld = LoadDynamics(
            settings=s, trace_name=trace, budget=budget, family=family
        )
        val, test, best_iter, secs = _fit_and_score(ld, series, max_eval)
        rows.append(
            {
                "family": family,
                "val_mape": val,
                "test_mape": test,
                "best_found_at_iter": best_iter,
                "seconds": secs,
            }
        )
    return rows


def run_acquisition_ablation(
    workload: str = "gl-30m",
    budget: str = "reduced",
    n_iters: int = 12,
    settings: FrameworkSettings | None = None,
    max_eval: int | None = 150,
) -> list[dict]:
    """EI vs PI vs LCB with the same budget (DESIGN.md §7)."""
    series = get_configuration(workload).load()
    trace = workload.split("-")[0]
    rows: list[dict] = []
    for acq in ("ei", "pi", "lcb"):
        s = settings if settings is not None else FrameworkSettings.reduced(max_iters=n_iters)
        s.acquisition = acq
        s.max_iters = n_iters
        ld = LoadDynamics(space=search_space_for(trace, budget), settings=s)
        val, test, best_iter, secs = _fit_and_score(ld, series, max_eval)
        rows.append(
            {
                "acquisition": acq,
                "val_mape": val,
                "test_mape": test,
                "best_found_at_iter": best_iter,
                "seconds": secs,
            }
        )
    return rows
