"""Interval-driven cloud simulator for predictive auto-scaling.

Models exactly what the paper's Google Cloud case study measures
(Section IV-C):

* at each interval ``i``, ``provisioned[i]`` VMs were created in advance
  (the policy decided this at interval ``i-1`` from its JAR prediction);
* ``arrivals[i]`` jobs arrive at the interval start, one job per VM;
* jobs landing on warm VMs start immediately; the overflow
  ``max(arrivals - provisioned, 0)`` waits for on-demand VM startup;
* each job runs for a service time drawn around ``job_seconds``
  (CloudSuite In-Memory Analytics-like fixed work with jitter);
* idle surplus VMs ``max(provisioned - arrivals, 0)`` burn cost.

The per-interval records are the paper's three Fig. 10 quantities:
average job turnaround, under-provisioning rate, over-provisioning rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import events as _events
from repro.obs import metrics as _metrics

__all__ = ["VMSpec", "SimulationResult", "CloudSimulator"]


@dataclass(frozen=True)
class VMSpec:
    """VM and job timing model.

    Defaults approximate the paper's setup: n1-standard-1 startup around
    two minutes end-to-end (VM boot + benchmark warm-up; Mao & Humphrey
    measured 50–100 s for the boot alone), and an In-Memory Analytics
    job of a few minutes.  ``max_concurrent_startups`` models the cloud
    API's throttling of on-demand VM creation: when an interval is badly
    under-provisioned, cold VMs come up in waves, which is what makes
    under-provisioning so expensive on real clouds.
    """

    startup_seconds: float = 120.0
    job_seconds: float = 180.0
    job_jitter_frac: float = 0.1
    max_concurrent_startups: int = 4

    def __post_init__(self):
        if self.startup_seconds < 0:
            raise ValueError("startup_seconds must be non-negative")
        if self.job_seconds <= 0:
            raise ValueError("job_seconds must be positive")
        if not 0.0 <= self.job_jitter_frac < 1.0:
            raise ValueError("job_jitter_frac must be in [0, 1)")
        if self.max_concurrent_startups < 1:
            raise ValueError("max_concurrent_startups must be >= 1")


@dataclass
class SimulationResult:
    """Per-interval outcomes of one auto-scaling run."""

    arrivals: np.ndarray
    provisioned: np.ndarray
    turnaround_seconds: np.ndarray     # mean job turnaround per interval
    makespan_seconds: np.ndarray       # time to finish all jobs per interval
    under_provisioned: np.ndarray      # VM shortfall per interval
    over_provisioned: np.ndarray       # idle VM surplus per interval
    vm_seconds: float = 0.0            # total VM time paid for
    extra: dict = field(default_factory=dict)

    @property
    def n_intervals(self) -> int:
        return int(self.arrivals.size)

    @property
    def mean_turnaround(self) -> float:
        """Average job turnaround across intervals with arrivals (Fig. 10a)."""
        mask = self.arrivals > 0
        if not mask.any():
            return 0.0
        return float(np.mean(self.turnaround_seconds[mask]))

    @property
    def underprovision_rate(self) -> float:
        """Average % of required VMs missing at interval start (Fig. 10b)."""
        mask = self.arrivals > 0
        if not mask.any():
            return 0.0
        return float(
            100.0 * np.mean(self.under_provisioned[mask] / self.arrivals[mask])
        )

    @property
    def overprovision_rate(self) -> float:
        """Average % of surplus VMs over required (Fig. 10c)."""
        denom = np.maximum(self.arrivals, 1.0)
        return float(100.0 * np.mean(self.over_provisioned / denom))


class CloudSimulator:
    """Replay a provisioning schedule against actual arrivals."""

    def __init__(self, spec: VMSpec | None = None, seed: int = 0):
        self.spec = spec if spec is not None else VMSpec()
        self.seed = int(seed)

    def run(self, arrivals: np.ndarray, provisioned: np.ndarray) -> SimulationResult:
        """Simulate all intervals.

        ``arrivals[i]`` and ``provisioned[i]`` are interpreted as VM/job
        counts (fractions are rounded up — you cannot provision 0.4 VMs).
        """
        a_raw = np.asarray(arrivals, dtype=np.float64)
        p_raw = np.asarray(provisioned, dtype=np.float64)
        # NaN/inf would silently wrap through the int64 cast into garbage
        # provisioning; reject loudly — forecasts must be guarded
        # upstream (repro.serving.GuardedPredictor) before reaching here.
        if not np.all(np.isfinite(a_raw)) or not np.all(np.isfinite(p_raw)):
            raise ValueError(
                "arrivals and provisioned must be finite; guard predictions "
                "with repro.serving before simulating"
            )
        a = np.ceil(a_raw).astype(np.int64)
        p = np.ceil(p_raw).astype(np.int64)
        if a.shape != p.shape:
            raise ValueError("arrivals and provisioned must have the same length")
        if np.any(a < 0) or np.any(p < 0):
            raise ValueError("counts must be non-negative")
        n = a.size
        rng = np.random.default_rng(self.seed)
        spec = self.spec

        turnaround = np.zeros(n)
        makespan = np.zeros(n)
        under = np.maximum(a - p, 0).astype(np.float64)
        over = np.maximum(p - a, 0).astype(np.float64)
        vm_seconds = 0.0

        # Per-step scaling-decision telemetry costs one branch per
        # interval when no event sink is registered.
        trace = _events.enabled()

        for i in range(n):
            jobs = int(a[i])
            warm = min(jobs, int(p[i]))
            cold = jobs - warm
            if jobs == 0:
                # Idle interval: surplus VMs still cost for the full interval.
                vm_seconds += float(p[i]) * spec.job_seconds
                if trace:
                    _events.emit(
                        "autoscale.step", interval=i, arrivals=0,
                        provisioned=int(p[i]), cold_starts=0,
                        idle_vms=int(p[i]), turnaround_s=0.0,
                    )
                continue
            durations = spec.job_seconds * (
                1.0
                + spec.job_jitter_frac * (2.0 * rng.uniform(size=jobs) - 1.0)
            )
            completion = durations.copy()
            if cold > 0:
                # Cold jobs wait for a throttled on-demand startup wave:
                # the k-th cold VM becomes ready after
                # (1 + k // max_concurrent) startup rounds.
                waves = 1 + np.arange(cold) // spec.max_concurrent_startups
                completion[warm:] += spec.startup_seconds * waves
            turnaround[i] = float(np.mean(completion))
            makespan[i] = float(np.max(completion))
            # Paid VM time: every used VM for its job (+startup for cold),
            # plus idle surplus for a nominal job-length lease.
            vm_seconds += float(np.sum(completion))
            vm_seconds += float(over[i]) * spec.job_seconds
            if trace:
                _events.emit(
                    "autoscale.step", interval=i, arrivals=jobs,
                    provisioned=int(p[i]), cold_starts=cold,
                    idle_vms=int(over[i]), turnaround_s=turnaround[i],
                    makespan_s=makespan[i],
                )

        m = _metrics
        m.counter("autoscale.intervals").inc(n)
        m.counter("autoscale.cold_starts").inc(float(np.sum(under)))
        m.counter("autoscale.idle_vm_intervals").inc(float(np.sum(over)))
        m.histogram("autoscale.turnaround_seconds").observe_many(
            turnaround[a > 0].tolist()
        )
        return SimulationResult(
            arrivals=a.astype(np.float64),
            provisioned=p.astype(np.float64),
            turnaround_seconds=turnaround,
            makespan_seconds=makespan,
            under_provisioned=under,
            over_provisioned=over,
            vm_seconds=vm_seconds,
        )
