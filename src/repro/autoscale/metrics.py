"""Summaries of auto-scaling runs (the three Fig. 10 panels)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.autoscale.cloudsim import SimulationResult

__all__ = ["AutoscaleSummary", "summarize"]


@dataclass(frozen=True)
class AutoscaleSummary:
    """One row of the Fig. 10 comparison."""

    policy: str
    mean_turnaround_seconds: float
    underprovision_rate_pct: float
    overprovision_rate_pct: float
    vm_hours: float
    n_intervals: int

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "mean_turnaround_seconds": self.mean_turnaround_seconds,
            "underprovision_rate_pct": self.underprovision_rate_pct,
            "overprovision_rate_pct": self.overprovision_rate_pct,
            "vm_hours": self.vm_hours,
            "n_intervals": self.n_intervals,
        }


def summarize(policy_name: str, result: SimulationResult) -> AutoscaleSummary:
    """Collapse a :class:`SimulationResult` into the Fig. 10 quantities."""
    return AutoscaleSummary(
        policy=policy_name,
        mean_turnaround_seconds=result.mean_turnaround,
        underprovision_rate_pct=result.underprovision_rate,
        overprovision_rate_pct=result.overprovision_rate,
        vm_hours=result.vm_seconds / 3600.0,
        n_intervals=result.n_intervals,
    )
